//! Declarative experiments: describe a (topology × algorithms × pattern
//! × load grid) sweep as data, then run it on any number of threads.
//!
//! Every figure and table regenerator used to hand-roll the same loop —
//! build a topology, build each algorithm, sweep the loads, relabel,
//! print. [`ExperimentSpec`] collapses that loop to a value: the
//! topology, pattern and algorithms are *names* (resolved through the
//! same parsers as the `turnroute` CLI, so specs read exactly like
//! command lines), and [`Experiment::run`] fans the whole grid out
//! through the deterministic parallel [`Executor`]. Results are
//! bit-identical for every thread count.
//!
//! # Example
//!
//! ```
//! use turnroute::experiment::ExperimentSpec;
//! use turnroute::sim::SimConfig;
//!
//! let spec = ExperimentSpec::new("mesh:8x8", "transpose")
//!     .algorithm("xy")
//!     .algorithm("west-first")
//!     .loads(&[0.01, 0.05])
//!     .config(SimConfig::paper().warmup_cycles(500).measure_cycles(2_000));
//! let series = spec.run(2).unwrap();
//! assert_eq!(series.len(), 2);
//! assert_eq!(series[0].algorithm, "dimension-order");
//! ```

use std::sync::Arc;

use crate::cli::{
    parse_algorithm, parse_faults, parse_pattern, parse_topology, parse_vc_algorithm,
    ParseSpecError,
};
use turnroute_core::RoutingAlgorithm;
use turnroute_fault::{verify, FaultPlan, FaultSchedule};
use turnroute_sim::{Executor, SeriesJob, SimConfig, SweepSeries};
use turnroute_vc::{vc_series_job, VcRoutingAlgorithm};

/// Default seed for [`ExperimentSpec::fault_axis`] random draws, chosen
/// once so every degradation figure fails the same channels.
pub const DEFAULT_FAULT_SEED: u64 = 0xFA17_5EED;

/// Which simulation engine runs the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The single-flit-buffer wormhole engine of the paper's Section 6.
    #[default]
    Wormhole,
    /// The lane-aware engine (reference \[18\]); plain algorithms run on
    /// class-0 lanes, and `mad-y` / `dateline` become available.
    VirtualChannel,
}

/// One algorithm of an experiment: the parse name plus an optional
/// display label for the emitted series (figures relabel, e.g., `p-cube`
/// as `negative-first` to match the paper's terminology).
///
/// The *parse name* is the series' identity: per-cell seeds and cache
/// keys derive from the resolved algorithm, so relabelling never changes
/// the simulated numbers.
#[derive(Debug, Clone)]
pub struct AlgorithmSpec {
    /// A name accepted by [`parse_algorithm`] (or, under
    /// [`Engine::VirtualChannel`], by [`parse_vc_algorithm`]).
    pub name: String,
    /// The label for the emitted [`SweepSeries`]; defaults to the
    /// resolved algorithm's own name.
    pub label: Option<String>,
}

/// A declarative description of one sweep experiment.
///
/// Build with [`ExperimentSpec::new`] and the chainable setters; run
/// with [`ExperimentSpec::run`] (or [`Experiment::run`], the same call
/// spelled entry-point-first). Warmup/measure windows and the base seed
/// travel in [`SimConfig`].
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Topology specification, e.g. `mesh:16x16` (see
    /// [`parse_topology`]).
    pub topology: String,
    /// The algorithms to sweep, one series each.
    pub algorithms: Vec<AlgorithmSpec>,
    /// Traffic pattern name, e.g. `transpose` (see [`parse_pattern`]).
    pub pattern: String,
    /// Offered loads (flits/cycle/node), ascending.
    pub loads: Vec<f64>,
    /// Base simulation configuration: warmup/measure windows, seed,
    /// selection policies. The injection rate is overridden per cell.
    pub config: SimConfig,
    /// Which engine runs the cells.
    pub engine: Engine,
    /// Degradation-sweep axis: numbers of seed-derived random channel
    /// faults. Each count becomes one series per algorithm, with the
    /// fault sets nested (the channels failed at count `k` are a subset
    /// of those at `k + 1`) and identical across algorithms. Empty
    /// means healthy-network only. [`Engine::Wormhole`] only.
    pub fault_axis: Vec<u64>,
    /// Seed for the [`fault_axis`](Self::fault_axis) random draws.
    pub fault_seed: u64,
    /// An explicit fault plan (see [`crate::cli::parse_faults`])
    /// applied to every series. Mutually exclusive with
    /// [`fault_axis`](Self::fault_axis). [`Engine::Wormhole`] only.
    pub faults_spec: Option<String>,
}

impl ExperimentSpec {
    /// A new spec on `topology` under `pattern`, with no algorithms or
    /// loads yet and the paper's default [`SimConfig`].
    pub fn new(topology: impl Into<String>, pattern: impl Into<String>) -> Self {
        ExperimentSpec {
            topology: topology.into(),
            algorithms: Vec::new(),
            pattern: pattern.into(),
            loads: Vec::new(),
            config: SimConfig::paper(),
            engine: Engine::Wormhole,
            fault_axis: Vec::new(),
            fault_seed: DEFAULT_FAULT_SEED,
            faults_spec: None,
        }
    }

    /// Adds an algorithm by parse name.
    pub fn algorithm(mut self, name: impl Into<String>) -> Self {
        self.algorithms.push(AlgorithmSpec {
            name: name.into(),
            label: None,
        });
        self
    }

    /// Adds an algorithm by parse name, relabelled as `label` in the
    /// emitted series.
    pub fn algorithm_as(mut self, label: impl Into<String>, name: impl Into<String>) -> Self {
        self.algorithms.push(AlgorithmSpec {
            name: name.into(),
            label: Some(label.into()),
        });
        self
    }

    /// Sets the offered-load grid.
    pub fn loads(mut self, loads: &[f64]) -> Self {
        self.loads = loads.to_vec();
        self
    }

    /// Sets the base simulation configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the degradation-sweep axis: one series per algorithm per
    /// fault count, failing that many seed-derived random channels.
    pub fn fault_axis(mut self, counts: &[u64]) -> Self {
        self.fault_axis = counts.to_vec();
        self
    }

    /// Sets the seed for [`fault_axis`](Self::fault_axis) draws.
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Applies an explicit fault plan to every series (mutually
    /// exclusive with [`fault_axis`](Self::fault_axis)).
    pub fn faults(mut self, spec: impl Into<String>) -> Self {
        self.faults_spec = Some(spec.into());
        self
    }

    /// Runs the experiment on `threads` workers.
    ///
    /// # Errors
    ///
    /// Returns the parse error if any name in the spec does not resolve.
    pub fn run(&self, threads: usize) -> Result<Vec<SweepSeries>, ParseSpecError> {
        Experiment::run(self, threads)
    }

    /// Runs the experiment on an existing executor (to share a cell
    /// cache or collect statistics across several specs).
    ///
    /// # Errors
    ///
    /// Returns the parse error if any name in the spec does not resolve.
    pub fn run_on(&self, executor: &mut Executor) -> Result<Vec<SweepSeries>, ParseSpecError> {
        Experiment::run_on(self, executor)
    }
}

/// The entry point that resolves an [`ExperimentSpec`] and executes it.
#[derive(Debug)]
pub struct Experiment;

impl Experiment {
    /// Resolves `spec` through the CLI parsers and runs the full
    /// (algorithm × load) grid on `threads` workers, returning one
    /// series per algorithm in spec order.
    ///
    /// # Errors
    ///
    /// Returns the parse error if any name in the spec does not resolve.
    pub fn run(spec: &ExperimentSpec, threads: usize) -> Result<Vec<SweepSeries>, ParseSpecError> {
        Self::run_on(spec, &mut Executor::new(threads))
    }

    /// Like [`Experiment::run`], but on a caller-supplied executor so
    /// several experiments can share one [`turnroute_sim::CellCache`]
    /// and one set of [`turnroute_sim::ExecStats`].
    ///
    /// # Errors
    ///
    /// Returns the parse error if any name in the spec does not resolve.
    pub fn run_on(
        spec: &ExperimentSpec,
        executor: &mut Executor,
    ) -> Result<Vec<SweepSeries>, ParseSpecError> {
        let topo = parse_topology(&spec.topology)?;
        let pattern = parse_pattern(&spec.pattern)?;
        let has_faults = spec.faults_spec.is_some() || !spec.fault_axis.is_empty();
        if has_faults && spec.engine == Engine::VirtualChannel {
            return Err(ParseSpecError::new(
                "fault plans are not supported by the virtual-channel engine",
            ));
        }
        if spec.faults_spec.is_some() && !spec.fault_axis.is_empty() {
            return Err(ParseSpecError::new(
                "an explicit fault plan and a fault axis are mutually exclusive",
            ));
        }
        // The fault settings every algorithm is swept under: one entry
        // per series within each algorithm. Fault-axis draws use one
        // seed for every count, so the failed sets nest (count k is a
        // subset of count k + 1) and are identical across algorithms.
        let schedules: Vec<Option<Arc<FaultSchedule>>> = if let Some(fs) = &spec.faults_spec {
            vec![Some(Arc::new(parse_faults(fs, topo.as_ref())?))]
        } else if !spec.fault_axis.is_empty() {
            spec.fault_axis
                .iter()
                .map(|&count| {
                    if count == 0 {
                        return Ok(None);
                    }
                    FaultPlan::new()
                        .random_channels(count as usize, spec.fault_seed)
                        .compile(topo.as_ref())
                        .map(|s| Some(Arc::new(s)))
                        .map_err(|e| ParseSpecError::new(format!("fault axis: {e}")))
                })
                .collect::<Result<_, _>>()?
        } else {
            vec![None]
        };
        let mut series = match spec.engine {
            Engine::Wormhole => {
                let algos: Vec<Box<dyn RoutingAlgorithm>> = spec
                    .algorithms
                    .iter()
                    .map(|a| parse_algorithm(&a.name, topo.as_ref()))
                    .collect::<Result<_, _>>()?;
                let mut jobs: Vec<SeriesJob<'_>> = Vec::new();
                for a in &algos {
                    for schedule in &schedules {
                        let cfg = spec.config.clone().fault_schedule(schedule.clone());
                        // Series-level fault columns: the cycle-0 fault
                        // count and how many (src, dst) pairs the
                        // verifier proves unroutable under it.
                        let (faults, disconnected) = match schedule.as_deref() {
                            Some(s) => {
                                let report =
                                    verify(topo.as_ref(), a.as_ref(), &s.failed_at_start());
                                (
                                    s.failed_count_at_start() as u64,
                                    report.disconnected.len() as u64,
                                )
                            }
                            None => (0, 0),
                        };
                        jobs.push(
                            SeriesJob::simulation(
                                topo.as_ref(),
                                a.as_ref(),
                                pattern.as_ref(),
                                &cfg,
                                &spec.loads,
                            )
                            .with_fault_info(faults, disconnected),
                        );
                    }
                }
                executor.run(jobs)
            }
            Engine::VirtualChannel => {
                let algos: Vec<Box<dyn VcRoutingAlgorithm>> = spec
                    .algorithms
                    .iter()
                    .map(|a| parse_vc_algorithm(&a.name, topo.as_ref()))
                    .collect::<Result<_, _>>()?;
                let jobs: Vec<SeriesJob<'_>> = algos
                    .iter()
                    .map(|a| {
                        vc_series_job(
                            topo.as_ref(),
                            a.as_ref(),
                            pattern.as_ref(),
                            &spec.config,
                            &spec.loads,
                        )
                    })
                    .collect();
                executor.run(jobs)
            }
        };
        // One algorithm spawns one series per fault setting; relabel
        // each whole block.
        let per_algo = series.len() / spec.algorithms.len().max(1);
        for (i, s) in series.iter_mut().enumerate() {
            if let Some(label) = &spec.algorithms[i / per_algo.max(1)].label {
                s.algorithm = label.clone();
            }
        }
        Ok(series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_sim::report::write_csv;

    fn quick() -> SimConfig {
        SimConfig::paper()
            .warmup_cycles(500)
            .measure_cycles(2_000)
            .seed(11)
    }

    fn mesh_spec() -> ExperimentSpec {
        ExperimentSpec::new("mesh:6x6", "transpose")
            .algorithm("xy")
            .algorithm_as("wf", "west-first")
            .loads(&[0.01, 0.03])
            .config(quick())
    }

    #[test]
    fn resolves_and_labels_series_in_spec_order() {
        let series = mesh_spec().run(1).unwrap();
        assert_eq!(series.len(), 2);
        // Unlabelled series carry the resolved algorithm's own name.
        assert_eq!(series[0].algorithm, "dimension-order");
        assert_eq!(series[1].algorithm, "wf");
        assert!(series.iter().all(|s| s.points.len() == 2));
        assert!(series.iter().all(|s| s.pattern == "matrix-transpose"));
    }

    #[test]
    fn thread_count_does_not_change_the_bytes() {
        let spec = mesh_spec();
        let mut csv1 = Vec::new();
        let mut csv4 = Vec::new();
        write_csv(&spec.run(1).unwrap(), &mut csv1).unwrap();
        write_csv(&spec.run(4).unwrap(), &mut csv4).unwrap();
        assert_eq!(csv1, csv4);
    }

    #[test]
    fn relabelling_does_not_change_the_numbers() {
        let plain = ExperimentSpec::new("mesh:6x6", "uniform")
            .algorithm("negative-first")
            .loads(&[0.02])
            .config(quick());
        let labelled = ExperimentSpec::new("mesh:6x6", "uniform")
            .algorithm_as("nf (paper)", "negative-first")
            .loads(&[0.02])
            .config(quick());
        let a = plain.run(1).unwrap().remove(0);
        let b = labelled.run(1).unwrap().remove(0);
        assert_eq!(b.algorithm, "nf (paper)");
        assert_eq!(a.points[0].throughput, b.points[0].throughput);
        assert_eq!(a.points[0].avg_latency_usec, b.points[0].avg_latency_usec);
    }

    #[test]
    fn vc_engine_accepts_lane_algorithms_and_plain_names() {
        let series = ExperimentSpec::new("mesh:6x6", "uniform")
            .algorithm("mad-y")
            .algorithm("xy")
            .loads(&[0.02])
            .config(quick())
            .engine(Engine::VirtualChannel)
            .run(2)
            .unwrap();
        assert_eq!(series.len(), 2);
        assert!(series.iter().all(|s| s.points[0].sustainable));
    }

    #[test]
    fn fault_axis_multiplies_series_and_labels_blocks() {
        let series = ExperimentSpec::new("mesh:6x6", "uniform")
            .algorithm("xy")
            .algorithm_as("wf", "west-first")
            .loads(&[0.02])
            .config(quick())
            .fault_axis(&[0, 2, 4])
            .run(2)
            .unwrap();
        // One series per (algorithm, fault count): algorithms outer,
        // counts inner, relabelling applied per block.
        assert_eq!(series.len(), 6);
        let names: Vec<&str> = series.iter().map(|s| s.algorithm.as_str()).collect();
        assert_eq!(
            names,
            [
                "dimension-order",
                "dimension-order",
                "dimension-order",
                "wf",
                "wf",
                "wf"
            ]
        );
        let faults: Vec<u64> = series.iter().map(|s| s.faults).collect();
        assert_eq!(faults, [0, 2, 4, 0, 2, 4]);
        // Deterministic xy loses pairs for any failed channel, and the
        // nested fault sets lose monotonically more.
        assert_eq!(series[0].disconnected, 0);
        assert!(series[1].disconnected > 0);
        assert!(series[2].disconnected >= series[1].disconnected);
        // One fault seed for the whole axis: the same channels fail
        // under every algorithm.
        assert_eq!(series[1].faults, series[4].faults);
        assert!(series[0].points[0].delivered > 0);
    }

    #[test]
    fn explicit_fault_plan_applies_to_every_series() {
        let series = ExperimentSpec::new("mesh:6x6", "uniform")
            .algorithm("xy")
            .algorithm("west-first")
            .loads(&[0.02])
            .config(quick())
            .faults("random:3:7")
            .run(1)
            .unwrap();
        assert_eq!(series.len(), 2);
        assert!(series.iter().all(|s| s.faults == 3));
    }

    #[test]
    fn fault_plan_conflicts_are_rejected() {
        // The VC engine has no fault support.
        assert!(ExperimentSpec::new("mesh:6x6", "uniform")
            .algorithm("mad-y")
            .loads(&[0.02])
            .config(quick())
            .engine(Engine::VirtualChannel)
            .fault_axis(&[2])
            .run(1)
            .is_err());
        // An explicit plan and a fault axis are mutually exclusive.
        assert!(ExperimentSpec::new("mesh:6x6", "uniform")
            .algorithm("xy")
            .loads(&[0.02])
            .config(quick())
            .faults("chan:3")
            .fault_axis(&[2])
            .run(1)
            .is_err());
        // A malformed plan surfaces as a parse error.
        assert!(ExperimentSpec::new("mesh:6x6", "uniform")
            .algorithm("xy")
            .loads(&[0.02])
            .config(quick())
            .faults("laser:3")
            .run(1)
            .is_err());
    }

    #[test]
    fn bad_names_surface_as_parse_errors() {
        assert!(ExperimentSpec::new("mesh:6x6", "uniform")
            .algorithm("frobnicate")
            .loads(&[0.02])
            .run(1)
            .is_err());
        assert!(ExperimentSpec::new("ring:9", "uniform")
            .algorithm("xy")
            .run(1)
            .is_err());
        assert!(ExperimentSpec::new("mesh:6x6", "noise")
            .algorithm("xy")
            .run(1)
            .is_err());
        // Lane algorithms only exist in the VC engine.
        assert!(ExperimentSpec::new("mesh:6x6", "uniform")
            .algorithm("mad-y")
            .loads(&[0.02])
            .run(1)
            .is_err());
    }
}
