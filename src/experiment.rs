//! Declarative experiments: describe a (topology × algorithms × pattern
//! × load grid) sweep as data, then run it on any number of threads.
//!
//! Every figure and table regenerator used to hand-roll the same loop —
//! build a topology, build each algorithm, sweep the loads, relabel,
//! print. [`ExperimentSpec`] collapses that loop to a value: the
//! topology, pattern and algorithms are *names* (resolved through the
//! same parsers as the `turnroute` CLI, so specs read exactly like
//! command lines), and [`Experiment::run`] fans the whole grid out
//! through the deterministic parallel [`Executor`]. Results are
//! bit-identical for every thread count.
//!
//! # Example
//!
//! ```
//! use turnroute::experiment::ExperimentSpec;
//! use turnroute::sim::SimConfig;
//!
//! let spec = ExperimentSpec::new("mesh:8x8", "transpose")
//!     .algorithm("xy")
//!     .algorithm("west-first")
//!     .loads(&[0.01, 0.05])
//!     .config(SimConfig::paper().warmup_cycles(500).measure_cycles(2_000));
//! let series = spec.run(2).unwrap();
//! assert_eq!(series.len(), 2);
//! assert_eq!(series[0].algorithm, "dimension-order");
//! ```

use crate::cli::{
    parse_algorithm, parse_pattern, parse_topology, parse_vc_algorithm, ParseSpecError,
};
use turnroute_core::RoutingAlgorithm;
use turnroute_sim::{Executor, SeriesJob, SimConfig, SweepSeries};
use turnroute_vc::{vc_series_job, VcRoutingAlgorithm};

/// Which simulation engine runs the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The single-flit-buffer wormhole engine of the paper's Section 6.
    #[default]
    Wormhole,
    /// The lane-aware engine (reference \[18\]); plain algorithms run on
    /// class-0 lanes, and `mad-y` / `dateline` become available.
    VirtualChannel,
}

/// One algorithm of an experiment: the parse name plus an optional
/// display label for the emitted series (figures relabel, e.g., `p-cube`
/// as `negative-first` to match the paper's terminology).
///
/// The *parse name* is the series' identity: per-cell seeds and cache
/// keys derive from the resolved algorithm, so relabelling never changes
/// the simulated numbers.
#[derive(Debug, Clone)]
pub struct AlgorithmSpec {
    /// A name accepted by [`parse_algorithm`] (or, under
    /// [`Engine::VirtualChannel`], by [`parse_vc_algorithm`]).
    pub name: String,
    /// The label for the emitted [`SweepSeries`]; defaults to the
    /// resolved algorithm's own name.
    pub label: Option<String>,
}

/// A declarative description of one sweep experiment.
///
/// Build with [`ExperimentSpec::new`] and the chainable setters; run
/// with [`ExperimentSpec::run`] (or [`Experiment::run`], the same call
/// spelled entry-point-first). Warmup/measure windows and the base seed
/// travel in [`SimConfig`].
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Topology specification, e.g. `mesh:16x16` (see
    /// [`parse_topology`]).
    pub topology: String,
    /// The algorithms to sweep, one series each.
    pub algorithms: Vec<AlgorithmSpec>,
    /// Traffic pattern name, e.g. `transpose` (see [`parse_pattern`]).
    pub pattern: String,
    /// Offered loads (flits/cycle/node), ascending.
    pub loads: Vec<f64>,
    /// Base simulation configuration: warmup/measure windows, seed,
    /// selection policies. The injection rate is overridden per cell.
    pub config: SimConfig,
    /// Which engine runs the cells.
    pub engine: Engine,
}

impl ExperimentSpec {
    /// A new spec on `topology` under `pattern`, with no algorithms or
    /// loads yet and the paper's default [`SimConfig`].
    pub fn new(topology: impl Into<String>, pattern: impl Into<String>) -> Self {
        ExperimentSpec {
            topology: topology.into(),
            algorithms: Vec::new(),
            pattern: pattern.into(),
            loads: Vec::new(),
            config: SimConfig::paper(),
            engine: Engine::Wormhole,
        }
    }

    /// Adds an algorithm by parse name.
    pub fn algorithm(mut self, name: impl Into<String>) -> Self {
        self.algorithms.push(AlgorithmSpec {
            name: name.into(),
            label: None,
        });
        self
    }

    /// Adds an algorithm by parse name, relabelled as `label` in the
    /// emitted series.
    pub fn algorithm_as(mut self, label: impl Into<String>, name: impl Into<String>) -> Self {
        self.algorithms.push(AlgorithmSpec {
            name: name.into(),
            label: Some(label.into()),
        });
        self
    }

    /// Sets the offered-load grid.
    pub fn loads(mut self, loads: &[f64]) -> Self {
        self.loads = loads.to_vec();
        self
    }

    /// Sets the base simulation configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Runs the experiment on `threads` workers.
    ///
    /// # Errors
    ///
    /// Returns the parse error if any name in the spec does not resolve.
    pub fn run(&self, threads: usize) -> Result<Vec<SweepSeries>, ParseSpecError> {
        Experiment::run(self, threads)
    }

    /// Runs the experiment on an existing executor (to share a cell
    /// cache or collect statistics across several specs).
    ///
    /// # Errors
    ///
    /// Returns the parse error if any name in the spec does not resolve.
    pub fn run_on(&self, executor: &mut Executor) -> Result<Vec<SweepSeries>, ParseSpecError> {
        Experiment::run_on(self, executor)
    }
}

/// The entry point that resolves an [`ExperimentSpec`] and executes it.
#[derive(Debug)]
pub struct Experiment;

impl Experiment {
    /// Resolves `spec` through the CLI parsers and runs the full
    /// (algorithm × load) grid on `threads` workers, returning one
    /// series per algorithm in spec order.
    ///
    /// # Errors
    ///
    /// Returns the parse error if any name in the spec does not resolve.
    pub fn run(spec: &ExperimentSpec, threads: usize) -> Result<Vec<SweepSeries>, ParseSpecError> {
        Self::run_on(spec, &mut Executor::new(threads))
    }

    /// Like [`Experiment::run`], but on a caller-supplied executor so
    /// several experiments can share one [`turnroute_sim::CellCache`]
    /// and one set of [`turnroute_sim::ExecStats`].
    ///
    /// # Errors
    ///
    /// Returns the parse error if any name in the spec does not resolve.
    pub fn run_on(
        spec: &ExperimentSpec,
        executor: &mut Executor,
    ) -> Result<Vec<SweepSeries>, ParseSpecError> {
        let topo = parse_topology(&spec.topology)?;
        let pattern = parse_pattern(&spec.pattern)?;
        let mut series = match spec.engine {
            Engine::Wormhole => {
                let algos: Vec<Box<dyn RoutingAlgorithm>> = spec
                    .algorithms
                    .iter()
                    .map(|a| parse_algorithm(&a.name, topo.as_ref()))
                    .collect::<Result<_, _>>()?;
                let jobs: Vec<SeriesJob<'_>> = algos
                    .iter()
                    .map(|a| {
                        SeriesJob::simulation(
                            topo.as_ref(),
                            a.as_ref(),
                            pattern.as_ref(),
                            &spec.config,
                            &spec.loads,
                        )
                    })
                    .collect();
                executor.run(jobs)
            }
            Engine::VirtualChannel => {
                let algos: Vec<Box<dyn VcRoutingAlgorithm>> = spec
                    .algorithms
                    .iter()
                    .map(|a| parse_vc_algorithm(&a.name, topo.as_ref()))
                    .collect::<Result<_, _>>()?;
                let jobs: Vec<SeriesJob<'_>> = algos
                    .iter()
                    .map(|a| {
                        vc_series_job(
                            topo.as_ref(),
                            a.as_ref(),
                            pattern.as_ref(),
                            &spec.config,
                            &spec.loads,
                        )
                    })
                    .collect();
                executor.run(jobs)
            }
        };
        for (s, a) in series.iter_mut().zip(&spec.algorithms) {
            if let Some(label) = &a.label {
                s.algorithm = label.clone();
            }
        }
        Ok(series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_sim::report::write_csv;

    fn quick() -> SimConfig {
        SimConfig::paper()
            .warmup_cycles(500)
            .measure_cycles(2_000)
            .seed(11)
    }

    fn mesh_spec() -> ExperimentSpec {
        ExperimentSpec::new("mesh:6x6", "transpose")
            .algorithm("xy")
            .algorithm_as("wf", "west-first")
            .loads(&[0.01, 0.03])
            .config(quick())
    }

    #[test]
    fn resolves_and_labels_series_in_spec_order() {
        let series = mesh_spec().run(1).unwrap();
        assert_eq!(series.len(), 2);
        // Unlabelled series carry the resolved algorithm's own name.
        assert_eq!(series[0].algorithm, "dimension-order");
        assert_eq!(series[1].algorithm, "wf");
        assert!(series.iter().all(|s| s.points.len() == 2));
        assert!(series.iter().all(|s| s.pattern == "matrix-transpose"));
    }

    #[test]
    fn thread_count_does_not_change_the_bytes() {
        let spec = mesh_spec();
        let mut csv1 = Vec::new();
        let mut csv4 = Vec::new();
        write_csv(&spec.run(1).unwrap(), &mut csv1).unwrap();
        write_csv(&spec.run(4).unwrap(), &mut csv4).unwrap();
        assert_eq!(csv1, csv4);
    }

    #[test]
    fn relabelling_does_not_change_the_numbers() {
        let plain = ExperimentSpec::new("mesh:6x6", "uniform")
            .algorithm("negative-first")
            .loads(&[0.02])
            .config(quick());
        let labelled = ExperimentSpec::new("mesh:6x6", "uniform")
            .algorithm_as("nf (paper)", "negative-first")
            .loads(&[0.02])
            .config(quick());
        let a = plain.run(1).unwrap().remove(0);
        let b = labelled.run(1).unwrap().remove(0);
        assert_eq!(b.algorithm, "nf (paper)");
        assert_eq!(a.points[0].throughput, b.points[0].throughput);
        assert_eq!(a.points[0].avg_latency_usec, b.points[0].avg_latency_usec);
    }

    #[test]
    fn vc_engine_accepts_lane_algorithms_and_plain_names() {
        let series = ExperimentSpec::new("mesh:6x6", "uniform")
            .algorithm("mad-y")
            .algorithm("xy")
            .loads(&[0.02])
            .config(quick())
            .engine(Engine::VirtualChannel)
            .run(2)
            .unwrap();
        assert_eq!(series.len(), 2);
        assert!(series.iter().all(|s| s.points[0].sustainable));
    }

    #[test]
    fn bad_names_surface_as_parse_errors() {
        assert!(ExperimentSpec::new("mesh:6x6", "uniform")
            .algorithm("frobnicate")
            .loads(&[0.02])
            .run(1)
            .is_err());
        assert!(ExperimentSpec::new("ring:9", "uniform")
            .algorithm("xy")
            .run(1)
            .is_err());
        assert!(ExperimentSpec::new("mesh:6x6", "noise")
            .algorithm("xy")
            .run(1)
            .is_err());
        // Lane algorithms only exist in the VC engine.
        assert!(ExperimentSpec::new("mesh:6x6", "uniform")
            .algorithm("mad-y")
            .loads(&[0.02])
            .run(1)
            .is_err());
    }
}
