//! `turnroute` — the turn model for adaptive wormhole routing.
//!
//! A faithful, tested reproduction of Glass & Ni, *"The Turn Model for
//! Adaptive Routing"* (ISCA 1992; reprinted with a retrospective in
//! *25 Years of ISCA*, 1998), as a Rust workspace:
//!
//! * [`topology`] — n-dimensional meshes, k-ary n-cubes, hypercubes;
//! * [`core`] — the turn model itself: turn algebra, turn sets, the
//!   channel-dependency-graph deadlock check, the paper's channel
//!   numberings, and all nine routing algorithms;
//! * [`sim`] — a flit-level wormhole network simulator matching the
//!   paper's Section 6 setup;
//! * [`analysis`] — the paper's theorems and analytic tables, executable;
//! * [`vc`] — virtual channels: the companion results of reference \[18\]
//!   (fully adaptive mad-y for meshes, dateline routing for tori) and a
//!   lane-aware simulator;
//! * [`fault`] — deterministic fault plans, fault-aware routing
//!   relations, and the faulted deadlock/reachability verifier;
//! * [`synth`] — arbitrary-graph topologies (edge-list files plus
//!   full-mesh / ring / dragonfly / fat-tree generators) and automatic
//!   turn-prohibition synthesis: a parallel search for minimal
//!   deadlock-free turn models on networks the paper never considered;
//! * [`experiment`] — the validated [`experiment::ExperimentSpec`]
//!   builder, its JSON wire format, and the shared CLI spec parsers
//!   ([`cli`]);
//! * [`serve`] — the headless job server: HTTP/JSON API over the
//!   executor with a content-addressed on-disk result store.
//!
//! This facade crate re-exports the individual crates under short module
//! names and hosts the runnable examples (`examples/`) and cross-crate
//! integration tests (`tests/`).
//!
//! # Quickstart
//!
//! ```
//! use turnroute::core::{walk, ChannelDependencyGraph, TurnSet, WestFirst};
//! use turnroute::topology::{Mesh, Topology};
//!
//! let mesh = Mesh::new_2d(8, 8);
//! // Deadlock freedom, checked rather than assumed:
//! let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &TurnSet::west_first());
//! assert!(cdg.is_acyclic());
//! // And a route under the algorithm:
//! let path = walk(
//!     &WestFirst::minimal(),
//!     &mesh,
//!     mesh.node_at(&[7, 0].into()),
//!     mesh.node_at(&[0, 7].into()),
//! );
//! assert_eq!(path.len(), 15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use turnroute_analysis as analysis;
pub use turnroute_core as core;
pub use turnroute_experiment::cli;
pub use turnroute_experiment::spec as experiment;
pub use turnroute_fault as fault;
pub use turnroute_serve as serve;
pub use turnroute_sim as sim;
pub use turnroute_synth as synth;
pub use turnroute_topology as topology;
pub use turnroute_vc as vc;
