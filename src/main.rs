//! The `turnroute` command-line tool: verify, route and simulate with
//! the paper's algorithms from a shell.
//!
//! ```sh
//! turnroute verify   --topology mesh:16x16 --algorithm west-first
//! turnroute route    --topology mesh:16x16 --algorithm west-first --from 12,2 --to 3,9
//! turnroute simulate --topology hypercube:8 --algorithm p-cube \
//!                    --pattern reverse-flip --load 0.2
//! ```

use std::collections::HashMap;
use std::io::Write;
use std::process::ExitCode;
use turnroute::cli::{
    check_pattern_fits, parse_algorithm, parse_faults, parse_node, parse_pattern, parse_topology,
    parse_traffic, ALGORITHM_NAMES, FAULT_SPECS, PATTERN_NAMES, TOPOLOGY_SPECS, TRAFFIC_SPECS,
    VC_ALGORITHM_NAMES,
};
use turnroute::core::{count_paths, walk, ChannelDependencyGraph, RoutingAlgorithm, TurnSet};
use turnroute::experiment::{Engine, ExperimentSpec};
use turnroute::serve::{client, ServeOptions, Server};
use turnroute::sim::report::{write_csv, write_report_json, write_telemetry_json};
use turnroute::sim::{
    CellCache, Executor, FlitTraceObserver, Level, Logger, RouteTableMode, RunOutcome, SimConfig,
    Simulation,
};
use turnroute::topology::{ChannelId, Topology};

const USAGE: &str = "\
usage: turnroute <command> [--option value ...]

commands:
  verify    --topology T --algorithm A [--faults SPEC]
            check deadlock freedom (channel dependency graph) for the
            algorithm's turn discipline on the topology; with --faults,
            check the pruned relation instead: the faulted dependence
            graph must stay acyclic and every (src, dst) pair reachable
  route     --topology T --algorithm A --from NODE --to NODE
            walk one route and count the allowed shortest paths
  simulate  --topology T --algorithm A --pattern P --load F[,F...]
            [--threads N] [--shards auto|N] [--cycles N] [--warmup N]
            [--seed N] [--traffic poisson|mmpp:B,I]
            [--route-table auto|on|off] [--faults SPEC]
            [--trace FILE [--trace-window START:END]]
            run the Section 6 wormhole simulation; one load reports in
            detail, several loads sweep in parallel and print CSV.
            --route-table precomputes routing decisions into a dense
            lookup table (auto: when it fits 64 MiB; results are
            bit-identical either way).
            --shards partitions one run's arbitration across worker
            threads at a cycle barrier (auto: one shard per core;
            reports are bit-identical at every shard count).
            --traffic selects the arrival process: poisson (default)
            or mmpp:B,I, bursty on-off arrivals with mean burst / idle
            sojourns of B / I cycles at the same mean offered load
            --faults injects a deterministic fault plan (see `list`)
            --trace writes a flit-level Chrome trace-event JSON file
            (open in Perfetto), optionally restricted to a cycle window
  sweep     --topology T --algorithms A[,B...] --pattern P
            --loads F[,F...] [--threads N] [--shards auto|N]
            [--engine wormhole|vc] [--format csv|json] [--cache FILE]
            [--telemetry [FILE]] [--cycles N] [--warmup N] [--seed N]
            [--traffic poisson|mmpp:B,I] [--route-table auto|on|off]
            [--faults SPEC | --fault-axis N[,N...] [--fault-seed S]]
            fan the (algorithm x load) grid across worker threads;
            deterministic for any thread count. --telemetry reports
            per-cell wall times and merged latency quantiles (to FILE
            as JSON, or to stderr without one).
            --fault-axis sweeps each algorithm under 0, N, ... random
            permanent channel faults (one seed-derived nested fault set
            per count) for degradation curves; --faults injects one
            explicit plan into every cell instead
  synth     --topology T [--seed N] [--candidates N] [--threads N]
            [--out FILE]
            search for a minimal turn-prohibition set on the topology
            (made for the graph topologies: graph:FILE, fullmesh:N,
            ring:N, dragonfly:R,G, fattree:L,S — but any topology
            works) and print the synthesized turn model: prohibited
            turns, adaptiveness score, and verification verdict.
            deterministic: the same seed prints byte-identical output
            at any thread count. the winning model is available to
            simulate/sweep/verify as --algorithm synth[:<seed>]
  serve     [--addr HOST:PORT] [--store DIR] [--threads N]
            [--log FILE|-] [--log-level debug|info|warn|error]
            run the headless job server: POST /v1/jobs submits an
            experiment spec (JSON), GET /v1/jobs/ID polls status with
            per-cell progress, GET /v1/jobs/ID/result fetches the
            versioned report; plus GET /v1/healthz, GET /v1/cache/stats
            and the Prometheus text exposition at GET /v1/metrics.
            identical specs are answered from the content-addressed
            store in DIR (default .turnroute-store) byte-identically
            with zero engine cycles; duplicate in-flight submissions
            coalesce onto one job. --log streams structured line-JSON
            events (requests, job lifecycle spans, store activity) to
            FILE, or to stderr with '-'; --log-level defaults to info
            (debug adds per-cell progress events)
  submit    --spec FILE [--addr HOST:PORT]
            validate FILE ('-' reads stdin) locally, then submit it as
            a job; prints the server's job document
  status    --job ID [--addr HOST:PORT]
            poll one job: state plus cells_completed / cells_total
  fetch     --job ID [--addr HOST:PORT] [--out FILE]
            download a finished job's report (byte-identical to
            `sweep --format json` for the same spec)
  cancel    --job ID [--addr HOST:PORT]
            cancel a queued or running job
  list      print the accepted topologies, algorithms, patterns and
            fault spec forms

nodes are dense ids (137) or coordinates (9,4);
the default server address is 127.0.0.1:7453.";

/// The default `HOST:PORT` for `serve` and the client subcommands.
const DEFAULT_ADDR: &str = "127.0.0.1:7453";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn options(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(key) = it.next() {
        let key = key
            .strip_prefix("--")
            .ok_or_else(|| format!("expected an --option, got '{key}'"))?;
        // `--telemetry` may stand alone (report to stderr) or take a
        // file path; every other option requires a value.
        let standalone = key == "telemetry" && it.peek().is_none_or(|next| next.starts_with("--"));
        let value = if standalone {
            String::new()
        } else {
            it.next()
                .ok_or_else(|| format!("--{key} needs a value"))?
                .clone()
        };
        map.insert(key.to_owned(), value);
    }
    Ok(map)
}

fn required<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{key}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("no command given".into());
    };
    match command.as_str() {
        "list" => {
            println!("topologies:\n{TOPOLOGY_SPECS}\n");
            println!("algorithms:\n{ALGORITHM_NAMES}\n");
            println!("algorithms (--engine vc only):\n{VC_ALGORITHM_NAMES}\n");
            println!("patterns:\n{PATTERN_NAMES}\n");
            println!("traffic models (--traffic):\n{TRAFFIC_SPECS}\n");
            println!("fault specs (--faults, +-separated):\n{FAULT_SPECS}");
            Ok(())
        }
        "verify" => {
            let opts = options(rest)?;
            let topo = parse_topology(required(&opts, "topology")?).map_err(|e| e.to_string())?;
            let name = required(&opts, "algorithm")?;
            let algo = parse_algorithm(name, topo.as_ref()).map_err(|e| e.to_string())?;
            if let Some(fspec) = opts.get("faults") {
                let schedule = parse_faults(fspec, topo.as_ref()).map_err(|e| e.to_string())?;
                let report = turnroute::fault::verify(
                    topo.as_ref(),
                    algo.as_ref(),
                    &schedule.failed_at_start(),
                );
                println!(
                    "{} on {} under faults '{fspec}':",
                    algo.name(),
                    topo.label()
                );
                println!(
                    "  {} of {} channels failed at cycle 0",
                    schedule.failed_count_at_start(),
                    topo.num_channels()
                );
                println!("  verdict: {report}");
                return Ok(());
            }
            verify(topo.as_ref(), algo.as_ref(), name);
            Ok(())
        }
        "synth" => {
            let opts = options(rest)?;
            let topo = parse_topology(required(&opts, "topology")?).map_err(|e| e.to_string())?;
            let seed: u64 = opts
                .get("seed")
                .map(|v| v.parse().map_err(|_| "bad --seed value".to_string()))
                .transpose()?
                .unwrap_or(0);
            let candidates: usize = opts
                .get("candidates")
                .map(|v| v.parse().map_err(|_| "bad --candidates value".to_string()))
                .transpose()?
                .unwrap_or(turnroute::synth::DEFAULT_CANDIDATES);
            let threads = if opts.contains_key("threads") {
                threads_option(&opts)?
            } else {
                0 // one worker per core
            };
            let options = turnroute::synth::SynthesisOptions {
                seed,
                candidates,
                threads,
            };
            let synthesis =
                turnroute::synth::synthesize(topo.as_ref(), &options).map_err(|e| e.to_string())?;
            let text = synthesis.report.render();
            match opts.get("out") {
                Some(path) => std::fs::write(path, &text)
                    .map_err(|e| format!("cannot write '{path}': {e}"))?,
                None => print!("{text}"),
            }
            Ok(())
        }
        "route" => {
            let opts = options(rest)?;
            let topo = parse_topology(required(&opts, "topology")?).map_err(|e| e.to_string())?;
            let algo = parse_algorithm(required(&opts, "algorithm")?, topo.as_ref())
                .map_err(|e| e.to_string())?;
            let from =
                parse_node(required(&opts, "from")?, topo.as_ref()).map_err(|e| e.to_string())?;
            let to =
                parse_node(required(&opts, "to")?, topo.as_ref()).map_err(|e| e.to_string())?;
            if from == to {
                return Err("--from and --to are the same node".into());
            }
            let path = walk(algo.as_ref(), topo.as_ref(), from, to);
            let coords: Vec<String> = path.iter().map(|&n| topo.coord_of(n).to_string()).collect();
            println!(
                "{} on {}: {} hops (distance {})",
                algo.name(),
                topo.label(),
                path.len() - 1,
                topo.distance(from, to)
            );
            println!("  {}", coords.join(" -> "));
            if algo.is_minimal() {
                println!(
                    "  shortest paths allowed: {}",
                    count_paths(algo.as_ref(), topo.as_ref(), from, to)
                );
            }
            Ok(())
        }
        "simulate" => {
            let opts = options(rest)?;
            let name = required(&opts, "algorithm")?.to_owned();
            let pattern_name = required(&opts, "pattern")?.to_owned();
            let loads = parse_loads(required(&opts, "load")?)?;
            let config = sim_config(&opts)?;
            if loads.len() > 1 {
                // Several loads: a sweep of one algorithm, in parallel.
                let mut builder =
                    ExperimentSpec::builder(required(&opts, "topology")?, &pattern_name)
                        .algorithm(&name)
                        .loads(&loads)
                        .config(config);
                if let Some(fspec) = opts.get("faults") {
                    builder = builder.faults(fspec);
                }
                let series = builder
                    .build()
                    .map_err(|e| e.to_string())?
                    .run(threads_option(&opts)?)
                    .map_err(|e| e.to_string())?;
                let mut out = std::io::stdout().lock();
                write_csv(&series, &mut out).map_err(|e| e.to_string())?;
                return Ok(());
            }
            let topo = parse_topology(required(&opts, "topology")?).map_err(|e| e.to_string())?;
            let algo = parse_algorithm(&name, topo.as_ref()).map_err(|e| e.to_string())?;
            let pattern = parse_pattern(&pattern_name).map_err(|e| e.to_string())?;
            check_pattern_fits(pattern.as_ref(), topo.as_ref()).map_err(|e| e.to_string())?;
            let load = loads[0];
            let mut config = config.injection_rate(load);
            if let Some(fspec) = opts.get("faults") {
                let schedule = parse_faults(fspec, topo.as_ref()).map_err(|e| e.to_string())?;
                let check = turnroute::fault::verify(
                    topo.as_ref(),
                    algo.as_ref(),
                    &schedule.failed_at_start(),
                );
                eprintln!(
                    "# faults: {} of {} channels failed at cycle 0; {check}",
                    schedule.failed_count_at_start(),
                    topo.num_channels()
                );
                config = config.faults(schedule);
            }
            let report = match opts.get("trace") {
                Some(trace_path) => {
                    let mut obs = FlitTraceObserver::new();
                    if let Some(window) = opts.get("trace-window") {
                        let (start, end) = parse_trace_window(window)?;
                        obs = obs.window(start, end);
                    }
                    let mut sim = Simulation::with_observer(
                        topo.as_ref(),
                        algo.as_ref(),
                        pattern.as_ref(),
                        config,
                        obs,
                    );
                    if let Some(reason) = sim.route_table_fallback_reason() {
                        eprintln!("# route table off: {reason}");
                    }
                    let report = sim.run();
                    if let Some(reason) = sim.shard_fallback_reason() {
                        eprintln!("# sharding off (serial engine): {reason}");
                    }
                    let obs = sim.into_observer();
                    let file = std::fs::File::create(trace_path)
                        .map_err(|e| format!("cannot create --trace {trace_path}: {e}"))?;
                    let mut out = std::io::BufWriter::new(file);
                    obs.write_chrome_trace(&mut out, &channel_names(topo.as_ref()))
                        .and_then(|()| out.flush())
                        .map_err(|e| format!("cannot write --trace {trace_path}: {e}"))?;
                    eprintln!("# wrote {} trace events to {trace_path}", obs.len());
                    report
                }
                None => {
                    let mut sim =
                        Simulation::new(topo.as_ref(), algo.as_ref(), pattern.as_ref(), config);
                    if let Some(reason) = sim.route_table_fallback_reason() {
                        eprintln!("# route table off: {reason}");
                    }
                    let report = sim.run();
                    if let Some(reason) = sim.shard_fallback_reason() {
                        eprintln!("# sharding off (serial engine): {reason}");
                    }
                    report
                }
            };
            println!(
                "{} / {} / {} at {load} flits/cycle/node:",
                topo.label(),
                algo.name(),
                pattern.name()
            );
            match &report.outcome {
                RunOutcome::Completed => {
                    println!(
                        "  delivered  {:>10.1} flits/usec ({} messages)",
                        report.metrics.throughput_flits_per_usec(),
                        report.total_delivered
                    );
                    if let Some(lat) = report.metrics.avg_latency_usec() {
                        println!(
                            "  latency    {:>10.2} usec avg, {:.2} usec p95",
                            lat,
                            report
                                .metrics
                                .latency_quantile_usec(0.95)
                                .unwrap_or(f64::NAN)
                        );
                    }
                    if let Some(hops) = report.metrics.avg_hops() {
                        println!("  hops       {hops:>10.2} avg");
                    }
                    if report.stranded_packets > 0 {
                        println!(
                            "  stranded   {:>10} messages (no healthy route left)",
                            report.stranded_packets
                        );
                    }
                    println!("  sustainable: {}", report.sustainable());
                }
                RunOutcome::Deadlocked(d) => {
                    println!("  DEADLOCK:");
                    print!("{d}");
                }
            }
            Ok(())
        }
        "sweep" => {
            let opts = options(rest)?;
            let loads = parse_loads(required(&opts, "loads")?)?;
            let engine = match opts.get("engine").map(String::as_str) {
                None => Engine::Wormhole,
                Some(name) => Engine::from_name(name)
                    .ok_or_else(|| format!("unknown engine '{name}' (wormhole | vc)"))?,
            };
            let mut builder =
                ExperimentSpec::builder(required(&opts, "topology")?, required(&opts, "pattern")?)
                    .loads(&loads)
                    .config(sim_config(&opts)?)
                    .engine(engine);
            for name in required(&opts, "algorithms")?.split(',') {
                let name = name.trim();
                if name.is_empty() {
                    return Err("empty algorithm name in --algorithms".into());
                }
                builder = builder.algorithm(name);
            }
            if let Some(fspec) = opts.get("faults") {
                builder = builder.faults(fspec);
            }
            if let Some(axis) = opts.get("fault-axis") {
                builder = builder.fault_axis(&parse_fault_axis(axis)?);
            }
            if let Some(seed) = opts.get("fault-seed") {
                let seed: u64 = seed
                    .parse()
                    .map_err(|_| "bad --fault-seed value".to_string())?;
                builder = builder.fault_seed(seed);
            }
            let spec = builder.build().map_err(|e| e.to_string())?;
            let mut executor = Executor::new(threads_option(&opts)?);
            if let Some(path) = opts.get("cache") {
                let cache = CellCache::at_path(path)
                    .map_err(|e| format!("cannot open --cache {path}: {e}"))?;
                executor = executor.with_cache(cache);
            }
            let series = spec.run_on(&mut executor).map_err(|e| e.to_string())?;
            let mut out = std::io::stdout().lock();
            match opts.get("format").map(String::as_str) {
                None | Some("csv") => write_csv(&series, &mut out),
                Some("json") => write_report_json(&series, &executor.stats(), &mut out),
                Some(other) => return Err(format!("unknown format '{other}' (csv | json)")),
            }
            .map_err(|e| e.to_string())?;
            let stats = executor.stats();
            eprintln!(
                "# {} simulated, {} from cache, {} skipped as saturated",
                stats.simulated, stats.cache_hits, stats.skipped
            );
            if let Some(dest) = opts.get("telemetry") {
                if dest.is_empty() {
                    let mut err = std::io::stderr().lock();
                    write_telemetry_json(executor.telemetry(), &mut err)
                        .map_err(|e| e.to_string())?;
                } else {
                    let file = std::fs::File::create(dest)
                        .map_err(|e| format!("cannot create --telemetry {dest}: {e}"))?;
                    let mut tw = std::io::BufWriter::new(file);
                    write_telemetry_json(executor.telemetry(), &mut tw)
                        .and_then(|()| tw.flush())
                        .map_err(|e| format!("cannot write --telemetry {dest}: {e}"))?;
                }
            }
            if opts.contains_key("cache") {
                executor.cache().flush().map_err(|e| e.to_string())?;
            }
            Ok(())
        }
        "serve" => {
            let opts = options(rest)?;
            let addr = opts.get("addr").map(String::as_str).unwrap_or(DEFAULT_ADDR);
            let store_dir = opts
                .get("store")
                .map(String::as_str)
                .unwrap_or(".turnroute-store");
            let logger = serve_logger(&opts)?;
            let handle = Server::start(
                addr,
                ServeOptions {
                    store_dir: store_dir.into(),
                    threads: threads_option(&opts)?,
                    logger,
                },
            )
            .map_err(|e| format!("cannot start the server on {addr}: {e}"))?;
            println!("turnroute-serve listening on http://{}", handle.addr());
            println!("  result store: {store_dir}");
            println!("  POST /v1/jobs   GET /v1/jobs/ID   GET /v1/jobs/ID/result");
            println!("  GET /v1/healthz   GET /v1/cache/stats   GET /v1/metrics");
            if let Some(dest) = opts.get("log") {
                let dest = if dest == "-" { "stderr" } else { dest };
                println!("  structured log: {dest}   (Ctrl-C stops)");
            } else {
                println!("  (Ctrl-C stops; --log - streams structured events)");
            }
            loop {
                std::thread::park();
            }
        }
        "submit" => {
            let opts = options(rest)?;
            let spec_json = read_spec_arg(&opts)?;
            // Validate locally first: a bad spec fails with the typed
            // error without a server round-trip.
            ExperimentSpec::from_json(&spec_json).map_err(|e| e.to_string())?;
            let addr = server_addr(&opts);
            let (status, body) = client::submit(&addr, &spec_json).map_err(|e| e.to_string())?;
            print_response(status, &body)
        }
        "status" => {
            let opts = options(rest)?;
            let (status, body) = client::status(&server_addr(&opts), required(&opts, "job")?)
                .map_err(|e| e.to_string())?;
            print_response(status, &body)
        }
        "fetch" => {
            let opts = options(rest)?;
            let (status, body) = client::fetch(&server_addr(&opts), required(&opts, "job")?)
                .map_err(|e| e.to_string())?;
            match opts.get("out") {
                Some(path) if status < 400 => std::fs::write(path, &body)
                    .map_err(|e| format!("cannot write --out {path}: {e}")),
                _ => print_response(status, &body),
            }
        }
        "cancel" => {
            let opts = options(rest)?;
            let (status, body) = client::cancel(&server_addr(&opts), required(&opts, "job")?)
                .map_err(|e| e.to_string())?;
            print_response(status, &body)
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Builds the `serve` logger from `--log FILE|-` and `--log-level`
/// (default `info`). Without `--log`, logging is disabled entirely.
fn serve_logger(opts: &HashMap<String, String>) -> Result<Logger, String> {
    let Some(dest) = opts.get("log") else {
        if opts.contains_key("log-level") {
            return Err("--log-level needs --log FILE|- to have somewhere to write".into());
        }
        return Ok(Logger::disabled());
    };
    let level: Level = opts
        .get("log-level")
        .map(String::as_str)
        .unwrap_or("info")
        .parse()
        .map_err(|e: String| format!("bad --log-level: {e}"))?;
    if dest == "-" {
        Ok(Logger::to_stderr(level))
    } else {
        Logger::to_file(level, dest).map_err(|e| format!("cannot open --log {dest}: {e}"))
    }
}

/// The server address for the client subcommands (`--addr`, or the
/// default).
fn server_addr(opts: &HashMap<String, String>) -> String {
    opts.get("addr")
        .cloned()
        .unwrap_or_else(|| DEFAULT_ADDR.into())
}

/// Reads the `--spec` argument: a file path, or `-` for stdin.
fn read_spec_arg(opts: &HashMap<String, String>) -> Result<String, String> {
    let path = required(opts, "spec")?;
    if path == "-" {
        let mut text = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut text)
            .map_err(|e| format!("cannot read the spec from stdin: {e}"))?;
        Ok(text)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read --spec {path}: {e}"))
    }
}

/// Prints the server's response body; 4xx/5xx answers also fail the
/// process so scripts can branch on the exit code.
fn print_response(status: u16, body: &[u8]) -> Result<(), String> {
    let mut out = std::io::stdout().lock();
    out.write_all(body)
        .and_then(|()| out.flush())
        .map_err(|e| e.to_string())?;
    if status >= 400 {
        return Err(format!("the server answered HTTP {status}"));
    }
    Ok(())
}

/// Parses `--trace-window START:END` (cycle bounds, half-open).
fn parse_trace_window(spec: &str) -> Result<(u64, u64), String> {
    let bad = || format!("bad --trace-window '{spec}' (expected START:END in cycles)");
    let (start, end) = spec.split_once(':').ok_or_else(bad)?;
    let start: u64 = start.trim().parse().map_err(|_| bad())?;
    let end: u64 = end.trim().parse().map_err(|_| bad())?;
    if start >= end {
        return Err(format!(
            "--trace-window start {start} must be below end {end}"
        ));
    }
    Ok((start, end))
}

/// Human-readable lane names for the trace viewer, one per channel:
/// `"ch12 (3,0)->(2,0) -x"`.
fn channel_names(topo: &dyn Topology) -> Vec<String> {
    (0..topo.num_channels())
        .map(|c| {
            let ch = topo.channel(ChannelId::new(c));
            format!(
                "ch{c} {}->{} {}",
                topo.coord_of(ch.src),
                topo.coord_of(ch.dst),
                ch.dir
            )
        })
        .collect()
}

/// Parses the `--fault-axis` list: comma-separated fault counts like
/// `0,2,4,8` (each sweeps every algorithm under that many random
/// permanent channel faults).
fn parse_fault_axis(spec: &str) -> Result<Vec<u64>, String> {
    let counts: Vec<u64> = spec
        .split(',')
        .map(|p| {
            p.trim()
                .parse()
                .map_err(|_| format!("bad --fault-axis count '{p}'"))
        })
        .collect::<Result<_, _>>()?;
    if counts.is_empty() {
        return Err("--fault-axis needs at least one count".into());
    }
    Ok(counts)
}

/// Parses a comma-separated load list like `0.01,0.05,0.1`.
fn parse_loads(spec: &str) -> Result<Vec<f64>, String> {
    let loads: Vec<f64> = spec
        .split(',')
        .map(|p| {
            p.trim()
                .parse()
                .map_err(|_| format!("bad load value '{p}'"))
        })
        .collect::<Result<_, _>>()?;
    if loads.is_empty() || loads.iter().any(|l| !l.is_finite() || *l <= 0.0) {
        return Err("loads must be positive numbers".into());
    }
    Ok(loads)
}

/// Parses `--threads N` (default 1).
fn threads_option(opts: &HashMap<String, String>) -> Result<usize, String> {
    let threads = opts
        .get("threads")
        .map(|v| v.parse().map_err(|_| "bad --threads value".to_string()))
        .transpose()?
        .unwrap_or(1);
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    Ok(threads)
}

/// Parses `--shards auto|N` (default 1, the serial engine; `auto` asks
/// for one shard per available core; results are bit-identical at
/// every value).
fn shards_option(opts: &HashMap<String, String>) -> Result<usize, String> {
    match opts.get("shards").map(String::as_str) {
        None => Ok(1),
        Some("auto") => Ok(0),
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!(
                "bad --shards value '{v}' (expected auto or N >= 1)"
            )),
        },
    }
}

/// Builds the base [`SimConfig`] from `--cycles`, `--warmup`, `--seed`,
/// `--traffic` and `--shards` (shared by `simulate` and `sweep`).
fn sim_config(opts: &HashMap<String, String>) -> Result<SimConfig, String> {
    let cycles: u64 = opts
        .get("cycles")
        .map(|v| v.parse().map_err(|_| "bad --cycles value".to_string()))
        .transpose()?
        .unwrap_or(20_000);
    let warmup: u64 = opts
        .get("warmup")
        .map(|v| v.parse().map_err(|_| "bad --warmup value".to_string()))
        .transpose()?
        .unwrap_or(cycles / 4);
    let seed: u64 = opts
        .get("seed")
        .map(|v| v.parse().map_err(|_| "bad --seed value".to_string()))
        .transpose()?
        .unwrap_or(0x7453_1DE5);
    let route_table = match opts.get("route-table").map(String::as_str) {
        None | Some("auto") => RouteTableMode::Auto,
        Some("on") => RouteTableMode::On,
        Some("off") => RouteTableMode::Off,
        Some(other) => {
            return Err(format!(
                "bad --route-table value '{other}' (expected auto, on or off)"
            ))
        }
    };
    let traffic = match opts.get("traffic") {
        None => turnroute::sim::TrafficModel::Poisson,
        Some(spec) => parse_traffic(spec).map_err(|e| e.to_string())?,
    };
    Ok(SimConfig::paper()
        .warmup_cycles(warmup)
        .measure_cycles(cycles)
        .seed(seed)
        .route_table(route_table)
        .traffic(traffic)
        .shards(shards_option(opts)?))
}

fn verify(topo: &dyn Topology, algo: &dyn RoutingAlgorithm, name: &str) {
    // Synthesized relations carry no abstract turn set; check the
    // concrete relation instead — acyclicity of its dependence graph
    // plus all-pairs deliverability, with no channels failed.
    if name == "synth" || name.starts_with("synth:") {
        println!("{} on {}:", algo.name(), topo.label());
        let report = turnroute::fault::verify(topo, algo, &vec![false; topo.num_channels()]);
        if report.is_ok() {
            println!(
                "  verdict: DEADLOCK FREE (relation acyclic; all {} pairs deliverable)",
                report.checked_pairs
            );
        } else {
            println!("  verdict: {report}");
        }
        return;
    }
    // The turn discipline to check: named constructions map to their
    // turn sets; for everything else, fall back to the most permissive
    // relation the minimal algorithm could use.
    let n = topo.num_dims();
    let set = match name {
        "xy" | "dimension-order" | "e-cube" => Some(TurnSet::dimension_order(n)),
        "west-first" | "west-first-nonminimal" => Some(TurnSet::west_first()),
        "north-last" | "north-last-nonminimal" => Some(TurnSet::north_last()),
        "negative-first"
        | "negative-first-nonminimal"
        | "p-cube"
        | "pcube"
        | "p-cube-nonminimal" => Some(TurnSet::negative_first(n)),
        "abonf" => Some(TurnSet::abonf(n)),
        "abopl" => Some(TurnSet::abopl(n)),
        _ => None,
    };
    println!("{} on {}:", algo.name(), topo.label());
    match set {
        Some(set) => {
            println!(
                "  turn set prohibits {} of {} turns",
                set.prohibited_ninety().count(),
                4 * n * (n - 1)
            );
            println!(
                "  breaks all abstract cycles: {}",
                set.breaks_all_abstract_cycles()
            );
            let cdg = ChannelDependencyGraph::from_turn_set(topo, &set);
            println!(
                "  channel dependency graph: {} channels, {} dependencies",
                cdg.num_channels(),
                cdg.num_dependencies()
            );
            match cdg.find_cycle() {
                None => println!("  verdict: DEADLOCK FREE (acyclic; monotone numbering exists)"),
                Some(cycle) => {
                    println!(
                        "  verdict: NOT deadlock free; {}-channel cycle found",
                        cycle.len()
                    )
                }
            }
        }
        None => {
            println!(
                "  (torus discipline: verified by the relation-specific checks in the test suite)"
            );
        }
    }
}
