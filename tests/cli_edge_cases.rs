//! Degenerate-shape coverage for the CLI: 1×k line meshes, a
//! single-node network that generates zero packets, the 2-ary
//! torus-vs-hypercube equivalence, and JSON sanity on a degenerate
//! sweep. None of these may panic.

use std::process::{Command, Output};

use turnroute::topology::{Direction, Hypercube, Mesh, Topology};

mod support;
use support::json;

fn turnroute(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_turnroute"))
        .args(args)
        .output()
        .expect("spawn turnroute")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn one_by_k_mesh_simulates_as_a_line() {
    let out = turnroute(&[
        "simulate",
        "--topology",
        "mesh:1x4",
        "--algorithm",
        "xy",
        "--pattern",
        "uniform",
        "--load",
        "0.05",
        "--cycles",
        "2000",
        "--seed",
        "7",
    ]);
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        stdout(&out),
        stderr(&out)
    );
    let text = stdout(&out);
    assert!(text.contains("delivered"), "{text}");
    assert!(!text.contains("DEADLOCK"), "{text}");
}

#[test]
fn single_node_mesh_simulates_with_zero_packets() {
    // One node, so uniform traffic has no destination: the run must
    // complete with nothing delivered and nothing strange printed.
    let out = turnroute(&[
        "simulate",
        "--topology",
        "mesh:1x1",
        "--algorithm",
        "xy",
        "--pattern",
        "uniform",
        "--load",
        "0.2",
        "--cycles",
        "500",
    ]);
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        stdout(&out),
        stderr(&out)
    );
    let text = stdout(&out);
    assert!(text.contains("(0 messages)"), "{text}");
    assert!(!text.contains("DEADLOCK"), "{text}");
}

#[test]
fn degenerate_sweep_emits_sane_json() {
    let out = turnroute(&[
        "sweep",
        "--topology",
        "mesh:1x4",
        "--algorithms",
        "xy,negative-first",
        "--pattern",
        "uniform",
        "--loads",
        "0.02,0.05",
        "--format",
        "json",
        "--cycles",
        "1000",
        "--seed",
        "3",
    ]);
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        stdout(&out),
        stderr(&out)
    );
    let doc = json::parse(&stdout(&out)).expect("sweep --format json must emit valid JSON");
    let series = doc
        .get("series")
        .and_then(|v| v.as_arr())
        .expect("top-level 'series' array");
    assert_eq!(series.len(), 2, "one series per algorithm");
    for s in series {
        let points = s.get("points").and_then(|v| v.as_arr()).expect("points");
        assert_eq!(points.len(), 2, "one point per load");
        for p in points {
            let load = p
                .get("offered_load")
                .and_then(|v| v.as_num())
                .expect("offered_load");
            assert!(load > 0.0 && load < 1.0);
            // Delivered throughput must be a finite non-negative number.
            let thr = p
                .get("throughput_flits_per_usec")
                .and_then(|v| v.as_num())
                .expect("throughput");
            assert!(thr.is_finite() && thr >= 0.0);
        }
    }
}

#[test]
fn two_ary_torus_is_rejected_toward_hypercube() {
    let out = turnroute(&[
        "simulate",
        "--topology",
        "torus:2,2",
        "--algorithm",
        "negative-first-torus",
        "--pattern",
        "uniform",
        "--load",
        "0.05",
    ]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("hypercube"),
        "rejection should point at the hypercube: {}",
        stderr(&out)
    );
}

#[test]
fn two_ary_n_cube_is_the_hypercube() {
    // The CLI redirects torus:2,n to hypercube:n. Verify the claim that
    // redirect rests on: a radix-2 cube (wrap links coincide with the
    // direct links, so a [2; n] mesh) is node-for-node, channel-for-
    // channel the binary hypercube.
    for n in 1..=4 {
        let cube = Hypercube::new(n);
        let two_cube = Mesh::new(vec![2; n]);
        assert_eq!(two_cube.num_nodes(), cube.num_nodes());
        assert_eq!(two_cube.num_channels(), cube.num_channels());
        for a in cube.nodes() {
            for dir in Direction::all(n) {
                assert_eq!(
                    two_cube.neighbor(a, dir),
                    cube.neighbor(a, dir),
                    "n={n} node={a:?} dir={dir}"
                );
            }
            for b in cube.nodes() {
                assert_eq!(
                    two_cube.distance(a, b),
                    cube.distance(a, b),
                    "n={n} {a:?}->{b:?}"
                );
                assert_eq!(
                    two_cube.minimal_directions(a, b),
                    cube.minimal_directions(a, b),
                    "n={n} {a:?}->{b:?}"
                );
            }
        }
    }
}
