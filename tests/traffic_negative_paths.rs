//! Negative-path coverage for the traffic axes: malformed, truncated
//! and out-of-range trace files, and invalid MMPP parameters, must
//! surface as typed `SpecError`s through the builder, as `error:` +
//! nonzero exit through the CLI, and as 4xx (never 500, never a panic)
//! through `POST /v1/jobs`.

use std::path::PathBuf;
use std::process::{Command, Output};

use turnroute::experiment::{ExperimentSpec, SpecError};
use turnroute::serve::{client, ServeOptions, Server, ServerHandle};
use turnroute::sim::{Logger, SimConfig, TrafficModel};

fn fixture_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("turnroute-traffic-neg-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("fixture dir");
    dir
}

fn write_fixture(name: &str, contents: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::write(&path, contents).expect("fixture writes");
    path.display().to_string()
}

fn turnroute(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_turnroute"))
        .args(args)
        .output()
        .expect("spawn turnroute")
}

fn spec_with_pattern(pattern: &str) -> Result<ExperimentSpec, SpecError> {
    ExperimentSpec::builder("mesh:4x4", pattern)
        .algorithm("xy")
        .loads(&[0.05])
        .config(SimConfig::paper().warmup_cycles(100).measure_cycles(500))
        .build()
}

#[test]
fn builder_rejects_bad_trace_files_with_typed_errors() {
    // Missing file.
    let err = spec_with_pattern("trace:/no/such/turnroute-file.trace").unwrap_err();
    assert_eq!(err.kind(), "parse", "{err}");
    // Malformed weight.
    let bad = write_fixture("bad-weight.trace", "0 1 zap\n");
    let err = spec_with_pattern(&format!("trace:{bad}")).unwrap_err();
    assert_eq!(err.kind(), "parse", "{err}");
    assert!(err.to_string().contains("bad weight"), "{err}");
    // Truncated line (source without destination).
    let trunc = write_fixture("truncated.trace", "0 1\n3\n");
    let err = spec_with_pattern(&format!("trace:{trunc}")).unwrap_err();
    assert_eq!(err.kind(), "parse", "{err}");
    assert!(err.to_string().contains("line 2"), "{err}");
    // Zero and negative weights.
    let zero = write_fixture("zero-weight.trace", "0 1 0\n");
    let err = spec_with_pattern(&format!("trace:{zero}")).unwrap_err();
    assert!(err.to_string().contains("positive"), "{err}");
    // Only comments: no entries at all.
    let empty = write_fixture("empty.trace", "# nothing here\n\n");
    let err = spec_with_pattern(&format!("trace:{empty}")).unwrap_err();
    assert!(err.to_string().contains("no entries"), "{err}");
    // Well-formed file referencing a node beyond the topology.
    let oob = write_fixture("oob.trace", "0 99\n");
    let err = spec_with_pattern(&format!("trace:{oob}")).unwrap_err();
    assert_eq!(err.kind(), "parse", "{err}");
    assert!(
        err.to_string().contains("references node 99"),
        "want the out-of-range node named: {err}"
    );
}

#[test]
fn builder_rejects_bad_mmpp_parameters() {
    for (burst, idle) in [(0.0, 100.0), (100.0, 0.0), (f64::NAN, 100.0), (100.0, -3.0)] {
        let err = ExperimentSpec::builder("mesh:4x4", "uniform")
            .algorithm("xy")
            .loads(&[0.05])
            .config(SimConfig::paper().traffic(TrafficModel::Mmpp {
                burst_cycles: burst,
                idle_cycles: idle,
            }))
            .build()
            .unwrap_err();
        assert_eq!(err.kind(), "invalid", "burst {burst} idle {idle}: {err}");
    }
}

#[test]
fn cli_surfaces_trace_and_traffic_errors_without_panicking() {
    let bad = write_fixture("cli-bad.trace", "0 one\n");
    let oob = write_fixture("cli-oob.trace", "0 400 2\n");
    let scenarios: Vec<(Vec<&str>, &str)> = vec![
        (
            vec!["--pattern", "trace:/no/such/file.trace"],
            "cannot read trace file",
        ),
        (vec!["--pattern", "trace-bad"], "unknown pattern"),
        (vec!["--pattern", "uniform", "--traffic", "mmpp:5"], "mmpp"),
        (
            vec!["--pattern", "uniform", "--traffic", "mmpp:0,100"],
            "positive",
        ),
        (
            vec!["--pattern", "uniform", "--traffic", "lava"],
            "unknown traffic model",
        ),
        (vec!["--pattern", "hotspot:999,20"], "references node 999"),
    ];
    let mut scenarios = scenarios;
    let bad_spec = format!("trace:{bad}");
    scenarios.push((vec!["--pattern", &bad_spec], "bad destination node"));
    let oob_spec = format!("trace:{oob}");
    scenarios.push((vec!["--pattern", &oob_spec], "references node 400"));
    for (extra, needle) in &scenarios {
        let mut args = vec![
            "simulate",
            "--topology",
            "mesh:4x4",
            "--algorithm",
            "xy",
            "--load",
            "0.05",
            "--cycles",
            "200",
        ];
        args.extend(extra.iter().copied());
        let out = turnroute(&args);
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(!out.status.success(), "{extra:?} should fail: {stderr}");
        assert!(stderr.starts_with("error:"), "{extra:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "{extra:?}: {stderr}");
        assert!(
            stderr.contains(needle),
            "{extra:?} missing '{needle}': {stderr}"
        );
    }
}

fn start_server() -> (ServerHandle, String) {
    let store = std::env::temp_dir().join(format!("turnroute-neg-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let handle = Server::start(
        "127.0.0.1:0",
        ServeOptions {
            store_dir: store,
            threads: 1,
            logger: Logger::disabled(),
        },
    )
    .expect("server starts");
    let addr = handle.addr().to_string();
    (handle, addr)
}

#[test]
fn server_rejects_bad_traffic_and_trace_specs_with_4xx() {
    let (_handle, addr) = start_server();
    let bad_trace = write_fixture("srv-bad.trace", "0 1 nope\n");
    let doc_with = |pattern: &str, traffic: &str| {
        format!(
            r#"{{"topology": "mesh:4x4", "pattern": "{pattern}",
                "algorithms": ["xy"], "loads": [0.05],
                "config": {{"seed": 1, "traffic": "{traffic}"}}}}"#
        )
    };
    let cases = [
        (doc_with("uniform", "mmpp:0,100"), "parse"),
        (doc_with("uniform", "voip"), "parse"),
        (doc_with("trace:/no/such/file.trace", "poisson"), "parse"),
        (
            doc_with(&format!("trace:{bad_trace}"), "mmpp:100,300"),
            "parse",
        ),
        (doc_with("hotspot:999,20", "poisson"), "parse"),
    ];
    for (body, kind) in &cases {
        let (status, response) = client::submit(&addr, body).expect("request reaches the server");
        let text = String::from_utf8_lossy(&response).into_owned();
        assert_eq!(status, 400, "{body}: {text}");
        assert!(
            text.contains(&format!("\"error\":\"{kind}\"")) || text.contains(kind),
            "{body}: want error kind '{kind}' in {text}"
        );
    }
    // A well-formed MMPP spec on the same server still runs to
    // completion: the rejections above are per-request, not wedged
    // state.
    let ok = doc_with("uniform", "mmpp:100,300");
    let (status, response) = client::submit(&addr, &ok).expect("submit reaches the server");
    let text = String::from_utf8_lossy(&response).into_owned();
    assert_eq!(status, 202, "{text}");
}
