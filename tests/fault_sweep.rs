//! Degradation sweeps end to end: one `fault_axis` experiment must
//! produce a deterministic degradation curve — bit-identical JSON for
//! any thread count — for the paper's algorithms on a 2D mesh, with
//! per-cell delivered/stranded counts and per-series fault/disconnected
//! counts, and a disconnecting fault plan must surface in the verifier
//! columns rather than silently stranding packets.

use turnroute::experiment::ExperimentSpec;
use turnroute::sim::report::{write_csv, write_json, CSV_HEADER};
use turnroute::sim::SimConfig;

fn quick() -> SimConfig {
    SimConfig::paper()
        .warmup_cycles(300)
        .measure_cycles(1_500)
        .seed(9)
}

/// The acceptance sweep: three turn-model algorithms, three fault
/// levels, two loads.
fn degradation_spec() -> ExperimentSpec {
    ExperimentSpec::builder("mesh:8x8", "uniform")
        .algorithm("xy")
        .algorithm("west-first")
        .algorithm("negative-first")
        .loads(&[0.02, 0.05])
        .config(quick())
        .fault_axis(&[0, 2, 6])
        .build()
        .expect("spec resolves")
}

#[test]
fn degradation_sweep_json_is_bit_identical_across_thread_counts() {
    let spec = degradation_spec();
    let mut one = Vec::new();
    write_json(&spec.run(1).unwrap(), &mut one).unwrap();
    let mut eight = Vec::new();
    write_json(&spec.run(8).unwrap(), &mut eight).unwrap();
    assert_eq!(one, eight, "thread count changed degradation JSON bytes");
    let text = String::from_utf8(one).unwrap();
    assert!(text.contains("\"faults\": 6"), "fault axis missing");
    assert!(text.contains("\"delivered\": "), "delivered count missing");
    assert!(text.contains("\"stranded\": "), "stranded count missing");
    assert!(
        text.contains("\"disconnected\": "),
        "verifier column missing"
    );
}

#[test]
fn degradation_grid_is_complete_and_ordered() {
    let series = degradation_spec().run(4).unwrap();
    // algorithms outer, fault counts inner: 3 x 3 series of 2 points.
    assert_eq!(series.len(), 9);
    for (i, algo) in ["dimension-order", "west-first", "negative-first"]
        .iter()
        .enumerate()
    {
        for (j, &count) in [0u64, 2, 6].iter().enumerate() {
            let s = &series[i * 3 + j];
            assert_eq!(s.algorithm, *algo, "series {} out of order", i * 3 + j);
            assert_eq!(s.faults, count);
            assert_eq!(s.points.len(), 2);
        }
    }
    // Healthy series verify clean; deterministic xy loses pairs for any
    // failed channel, monotonically more under the nested fault sets.
    assert_eq!(series[0].disconnected, 0);
    assert!(series[1].disconnected > 0);
    assert!(series[2].disconnected >= series[1].disconnected);
    // One fault seed for the whole sweep: every algorithm sees the same
    // failed channels, so the fault column agrees across blocks.
    assert_eq!(series[1].faults, series[4].faults);
    assert_eq!(series[4].faults, series[7].faults);
    // Healthy cells deliver.
    assert!(series[0].points.iter().all(|p| p.delivered > 0));
}

#[test]
fn degradation_csv_carries_the_fault_columns() {
    let mut buf = Vec::new();
    write_csv(&degradation_spec().run(2).unwrap(), &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some(CSV_HEADER));
    assert_eq!(lines.count(), 18, "9 series x 2 loads");
    // Each row's third column is the series' fault count.
    let with_six = text
        .lines()
        .skip(1)
        .filter(|l| l.split(',').nth(2) == Some("6"))
        .count();
    assert_eq!(with_six, 6, "two rows per algorithm at 6 faults");
}

#[test]
fn a_disconnecting_plan_surfaces_in_the_verifier_column() {
    // Cutting off the corner node disconnects all 70 pairs touching it;
    // the sweep must report that instead of hiding it in the numbers.
    let series = ExperimentSpec::builder("mesh:6x6", "uniform")
        .algorithm("west-first")
        .loads(&[0.02])
        .config(quick())
        .faults("node:0,0")
        .build()
        .expect("spec resolves")
        .run(1)
        .unwrap();
    assert_eq!(series.len(), 1);
    assert!(
        series[0].disconnected >= 70,
        "corner cutoff reported only {} disconnected pairs",
        series[0].disconnected
    );
}
