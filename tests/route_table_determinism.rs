//! Route tables are a pure speed optimisation: sweeping with
//! `--route-table on` must produce byte-for-byte the CSV of
//! `--route-table off`, for every algorithm in the CLI registry on
//! every topology family, at any thread count — and the size-cap
//! fallback must be equally invisible.

use turnroute::experiment::ExperimentSpec;
use turnroute::sim::report::write_csv;
use turnroute::sim::{RouteTableMode, SimConfig};

fn quick() -> SimConfig {
    SimConfig::paper()
        .warmup_cycles(200)
        .measure_cycles(1_000)
        .seed(42)
}

/// CSV bytes of the spec swept with the given route-table mode.
fn csv(
    topology: &str,
    pattern: &str,
    algos: &[&str],
    mode: RouteTableMode,
    threads: usize,
) -> Vec<u8> {
    let mut builder = ExperimentSpec::builder(topology, pattern)
        .loads(&[0.02, 0.05])
        .config(quick().route_table(mode));
    for a in algos {
        builder = builder.algorithm(*a);
    }
    let spec = builder.build().expect("spec resolves");
    let mut buf = Vec::new();
    write_csv(&spec.run(threads).expect("spec resolves"), &mut buf).expect("in-memory CSV");
    buf
}

/// Every CLI-registered algorithm that runs on the topology, swept with
/// tables on and off, 1 and 8 threads: all four byte streams equal.
fn assert_mode_invisible(topology: &str, pattern: &str, algos: &[&str]) {
    let off = csv(topology, pattern, algos, RouteTableMode::Off, 1);
    for threads in [1, 8] {
        let on = csv(topology, pattern, algos, RouteTableMode::On, threads);
        assert_eq!(
            off, on,
            "{topology}: route table changed sweep bytes ({threads} threads)"
        );
    }
    assert_eq!(
        off,
        csv(topology, pattern, algos, RouteTableMode::Off, 8),
        "{topology}: thread count changed direct-routed bytes"
    );
}

#[test]
fn mesh_sweeps_are_identical_with_and_without_tables() {
    assert_mode_invisible(
        "mesh:6x6",
        "transpose",
        &[
            "xy",
            "west-first",
            "north-last",
            "negative-first",
            "abonf",
            "abopl",
        ],
    );
}

#[test]
fn torus_sweeps_are_identical_with_and_without_tables() {
    assert_mode_invisible(
        "torus:5,2",
        "uniform",
        &["xy", "negative-first-torus", "first-hop-wrap"],
    );
}

#[test]
fn hypercube_sweeps_are_identical_with_and_without_tables() {
    assert_mode_invisible(
        "hypercube:4",
        "hypercube-transpose",
        &["xy", "p-cube", "negative-first"],
    );
}

#[test]
fn budget_fallback_is_equally_invisible() {
    // A 1-byte budget forces Auto onto the direct path; the bytes must
    // not notice.
    let algos = ["west-first", "xy"];
    let base = csv("mesh:6x6", "transpose", &algos, RouteTableMode::On, 1);
    let mut builder = ExperimentSpec::builder("mesh:6x6", "transpose")
        .loads(&[0.02, 0.05])
        .config(quick().route_table_budget(1));
    for a in &algos {
        builder = builder.algorithm(*a);
    }
    let spec = builder.build().expect("spec resolves");
    let mut capped = Vec::new();
    write_csv(&spec.run(1).expect("spec resolves"), &mut capped).expect("in-memory CSV");
    assert_eq!(base, capped, "budget fallback changed sweep bytes");
}
