//! The turn model on hexagonal meshes, end to end: the generic
//! machinery (TwoPhase, DimensionOrder, the simulator) runs unchanged on
//! the six-direction topology, and the hex-specific theory from
//! `turnroute-analysis` predicts the dynamic outcomes.

use turnroute::analysis::{hex_deadlock_free, hex_negative_first};
use turnroute::core::{
    check_routing_contract, walk, DimensionOrder, NegativeFirst, RoutingAlgorithm, TurnSet,
    TurnSetRouting,
};
use turnroute::sim::patterns::Uniform;
use turnroute::sim::{LengthDistribution, RunOutcome, SimConfig, Simulation};
use turnroute::topology::{HexMesh, NodeId, Topology};

#[test]
fn hex_negative_first_contract_and_minimality() {
    let hex = HexMesh::new(5, 5);
    let nf = NegativeFirst::with_dims(3, true);
    check_routing_contract(&nf, &hex);
    for a in hex.nodes() {
        for b in hex.nodes() {
            if a != b {
                let path = walk(&nf, &hex, a, b);
                assert_eq!(path.len() - 1, hex.distance(a, b), "{a}->{b}");
            }
        }
    }
}

#[test]
fn hex_axis_order_contract_and_minimality() {
    let hex = HexMesh::new(5, 4);
    let dor = DimensionOrder::new();
    check_routing_contract(&dor, &hex);
    for a in hex.nodes() {
        for b in hex.nodes() {
            if a != b {
                let path = walk(&dor, &hex, a, b);
                assert_eq!(path.len() - 1, hex.distance(a, b), "{a}->{b}");
            }
        }
    }
}

/// The greedy lowest-axis-first policy never makes a descending axis
/// transition, so its routes live inside the (acyclic) ordered-phase
/// turn set.
#[test]
fn hex_axis_order_transitions_are_ascending() {
    let hex = HexMesh::new(6, 6);
    let dor = DimensionOrder::new();
    for a in hex.nodes() {
        for b in hex.nodes() {
            if a == b {
                continue;
            }
            let path = walk(&dor, &hex, a, b);
            let mut dims = Vec::new();
            for w in path.windows(2) {
                let dir = turnroute::topology::Direction::all(3)
                    .find(|&d| hex.neighbor(w[0], d) == Some(w[1]))
                    .expect("adjacent");
                dims.push(dir.dim());
            }
            let mut sorted = dims.clone();
            sorted.sort_unstable();
            assert_eq!(dims, sorted, "{a}->{b} used a descending axis change");
        }
    }
}

#[test]
fn hex_simulation_runs_all_algorithms() {
    let hex = HexMesh::new(6, 6);
    let config = SimConfig::paper()
        .injection_rate(0.03)
        .warmup_cycles(1_000)
        .measure_cycles(6_000)
        .deadlock_threshold(5_000)
        .seed(17);
    let algos: Vec<Box<dyn RoutingAlgorithm>> = vec![
        Box::new(DimensionOrder::new()),
        Box::new(NegativeFirst::with_dims(3, true)),
    ];
    for algo in &algos {
        let mut sim = Simulation::new(&hex, algo.as_ref(), &Uniform, config.clone());
        let report = sim.run();
        assert!(
            matches!(report.outcome, RunOutcome::Completed),
            "{} deadlocked on the hex mesh",
            algo.name()
        );
        assert!(report.sustainable(), "{}", algo.name());
        assert!(report.total_delivered > 50);
        // Minimality of every delivered packet.
        for p in sim.packets() {
            if p.delivered_at.is_some() {
                assert_eq!(p.hops(), hex.distance(p.src, p.dst) as u32);
            }
        }
    }
}

#[test]
fn hex_negative_first_survives_stress_where_fully_adaptive_deadlocks() {
    let hex = HexMesh::new(5, 5);
    let stress = SimConfig::paper()
        .injection_rate(0.9)
        .lengths(LengthDistribution::Fixed(48))
        .warmup_cycles(0)
        .measure_cycles(12_000)
        .deadlock_threshold(1_500)
        .seed(5);

    // Unrestricted turns: the triangles alone suffice to deadlock.
    assert!(!hex_deadlock_free(&hex, &TurnSet::fully_adaptive(3)));
    let free = TurnSetRouting::new(TurnSet::fully_adaptive(3));
    let mut sim = Simulation::new(&hex, &free, &Uniform, stress.clone());
    let report = sim.run();
    assert!(
        matches!(report.outcome, RunOutcome::Deadlocked(_)),
        "unrestricted hex turns must deadlock under stress"
    );

    // Negative-first on the three axes: verified acyclic, and survives.
    assert!(hex_deadlock_free(&hex, &hex_negative_first()));
    let nf = NegativeFirst::with_dims(3, true);
    let mut sim = Simulation::new(&hex, &nf, &Uniform, stress);
    let report = sim.run();
    assert!(matches!(report.outcome, RunOutcome::Completed));
    assert!(report.total_delivered > 100);
}

#[test]
fn hex_distances_respect_the_triangle_inequality() {
    let hex = HexMesh::new(6, 5);
    let nodes: Vec<NodeId> = hex.nodes().collect();
    for &a in nodes.iter().step_by(3) {
        for &b in nodes.iter().step_by(4) {
            for &c in nodes.iter().step_by(5) {
                assert!(hex.distance(a, c) <= hex.distance(a, b) + hex.distance(b, c));
            }
        }
    }
}
