//! End-to-end coverage for synthesized turn models on graph
//! topologies: deterministic synthesis output, thread-invariant sweeps
//! through the experiment executor, and the job server answering a
//! synth-on-graph spec byte-identically to a local run.

mod support;

use std::path::PathBuf;
use std::time::{Duration, Instant};
use support::json::{self, Value};
use turnroute::experiment::ExperimentSpec;
use turnroute::serve::{client, ServeOptions, Server, ServerHandle};
use turnroute::sim::report::{write_csv, write_report_json};
use turnroute::sim::{Executor, Logger, SimConfig};
use turnroute::synth::{synthesize, GraphSpec, GraphTopology, SynthesisOptions};

fn quick() -> SimConfig {
    SimConfig::paper()
        .warmup_cycles(300)
        .measure_cycles(1_500)
        .seed(7)
}

fn graph_spec() -> ExperimentSpec {
    ExperimentSpec::builder("dragonfly:4,4", "uniform")
        .algorithm("synth:3")
        .algorithm("xy")
        .loads(&[0.02, 0.05])
        .config(quick())
        .build()
        .expect("spec resolves")
}

fn csv(spec: &ExperimentSpec, threads: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    write_csv(&spec.run(threads).expect("spec resolves"), &mut buf).expect("in-memory CSV");
    buf
}

#[test]
fn synthesis_reports_are_byte_identical_across_thread_counts() {
    for spec in [GraphSpec::full_mesh(8), GraphSpec::dragonfly(4, 4)] {
        let topo = GraphTopology::new(&spec).expect("generator graphs build");
        let mut renders = Vec::new();
        for threads in [1, 8] {
            let synthesis = synthesize(
                &topo,
                &SynthesisOptions {
                    seed: 7,
                    candidates: 16,
                    threads,
                },
            )
            .expect("generator graphs synthesize");
            let report = &synthesis.report;
            assert!(report.viable > 0, "{}: no viable candidate", spec.label);
            assert_eq!(
                report.allowed + report.prohibited.len(),
                report.turn_pairs,
                "{}: every adjacent pair is allowed or prohibited",
                spec.label
            );
            renders.push(synthesis.report.render());
        }
        assert_eq!(
            renders[0], renders[1],
            "{}: thread count leaked",
            spec.label
        );
        assert!(renders[0]
            .lines()
            .last()
            .unwrap()
            .starts_with("fingerprint: "));
    }
}

#[test]
fn graph_sweeps_are_thread_invariant() {
    let spec = graph_spec();
    let serial = csv(&spec, 1);
    assert_eq!(serial, csv(&spec, 8), "8 threads changed the bytes");
    let text = String::from_utf8(serial).unwrap();
    assert!(
        text.contains("synth:3,uniform"),
        "missing synth rows:\n{text}"
    );
}

#[test]
fn edge_list_files_run_through_the_experiment_stack() {
    let dir = std::env::temp_dir().join(format!("turnroute-synth-int-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("k4.graph");
    std::fs::write(&file, "# complete graph on 4 nodes\nnodes 4\n0 <-> 1\n0 <-> 2\n0 <-> 3\n1 <-> 2\n1 <-> 3\n2 <-> 3\n").unwrap();
    let spec = ExperimentSpec::builder(format!("graph:{}", file.display()), "uniform")
        .algorithm("synth")
        .loads(&[0.02])
        .config(quick())
        .build()
        .expect("file-backed graph resolves");
    let series = spec.run(2).expect("sweep runs");
    assert_eq!(series.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

fn temp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "turnroute-synth-int-store-{tag}-{}",
        std::process::id()
    ))
}

fn start(tag: &str) -> (ServerHandle, String) {
    let store_dir = temp_store(tag);
    let _ = std::fs::remove_dir_all(&store_dir);
    let handle = Server::start(
        "127.0.0.1:0",
        ServeOptions {
            store_dir,
            threads: 2,
            logger: Logger::disabled(),
        },
    )
    .expect("server starts on an ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn parse(body: &[u8]) -> Value {
    json::parse(std::str::from_utf8(body).expect("UTF-8 response"))
        .expect("well-formed JSON response")
}

fn str_field<'a>(doc: &'a Value, key: &str) -> &'a str {
    doc.get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing string field '{key}'"))
}

fn wait_done(addr: &str, job_id: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = client::status(addr, job_id).expect("status reaches the server");
        assert_eq!(status, 200);
        let doc = parse(&body);
        match str_field(&doc, "status") {
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job {job_id} never finished");
                std::thread::sleep(Duration::from_millis(20));
            }
            "done" => return,
            other => panic!("job {job_id} ended as '{other}'"),
        }
    }
}

#[test]
fn the_job_server_answers_synth_specs_byte_identically_to_a_local_run() {
    let spec = graph_spec();
    let mut local = Executor::new(2);
    let series = spec.run_on(&mut local).expect("local run");
    let mut local_bytes = Vec::new();
    write_report_json(&series, &local.stats(), &mut local_bytes).unwrap();

    let (handle, addr) = start("serve");
    let (status, body) = client::submit(&addr, &spec.to_json()).unwrap();
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
    let job_id = str_field(&parse(&body), "job_id").to_owned();
    wait_done(&addr, &job_id);
    let (status, served_bytes) = client::fetch(&addr, &job_id).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        served_bytes, local_bytes,
        "server report differs from the local run"
    );
    handle.shutdown();
}
