//! Cross-crate integration of the virtual-channel extension: full
//! adaptivity pays off exactly where the paper's channel-free
//! algorithms run out of choices.

use turnroute::core::adaptiveness::fully_adaptive_shortest_paths;
use turnroute::core::{count_paths, NegativeFirst};
use turnroute::sim::patterns::DiagonalTranspose;
use turnroute::sim::SimConfig;
use turnroute::topology::{Mesh, Topology};
use turnroute::vc::{
    count_physical_paths, MadY, SingleClass, VcRoutingAlgorithm, VcSimulation, VcTable,
};

/// On mixed-sign pairs, negative-first allows exactly one shortest path
/// (Section 3.4) while mad-y allows them all.
#[test]
fn mixed_sign_pairs_separate_partial_from_full_adaptivity() {
    let mesh = Mesh::new_2d(8, 8);
    let nf = NegativeFirst::minimal();
    let mady = MadY::new();
    let table = VcTable::new(&mesh, &mady.provisioning(&mesh));
    let s = mesh.node_at(&[2, 6].into());
    let d = mesh.node_at(&[6, 2].into()); // dx = +4, dy = -4
    assert_eq!(count_paths(&nf, &mesh, s, d), 1);
    let full = fully_adaptive_shortest_paths(&mesh, s, d);
    assert_eq!(full, 70); // 8!/4!4!
    assert_eq!(count_physical_paths(&mady, &mesh, &table, s, d), full);
}

/// At loads past negative-first's diagonal-transpose saturation, mad-y
/// keeps latency flat and delivers more.
#[test]
fn mady_outlasts_negative_first_on_diagonal_transpose() {
    let mesh = Mesh::new_2d(8, 8);
    let config = SimConfig::paper()
        .injection_rate(0.2)
        .warmup_cycles(2_000)
        .measure_cycles(8_000)
        .seed(5);
    let mady = MadY::new();
    let mady_report = VcSimulation::new(&mesh, &mady, &DiagonalTranspose, config.clone()).run();
    let nf = SingleClass::new(NegativeFirst::minimal());
    let nf_report = VcSimulation::new(&mesh, &nf, &DiagonalTranspose, config).run();

    let (mt, nt) = (
        mady_report.metrics.throughput_flits_per_usec(),
        nf_report.metrics.throughput_flits_per_usec(),
    );
    assert!(mt > nt * 1.05, "mad-y {mt:.0} vs negative-first {nt:.0}");
    let (ml, nl) = (
        mady_report.metrics.avg_latency_usec().unwrap(),
        nf_report.metrics.avg_latency_usec().unwrap(),
    );
    assert!(
        ml < nl * 0.5,
        "mad-y {ml:.1} usec vs negative-first {nl:.1} usec"
    );
}
