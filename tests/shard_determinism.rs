//! Intra-run sharding is a pure speed optimisation: sweeping with
//! `--shards 8` must produce byte-for-byte the JSON of `--shards 1`,
//! across algorithms, topology families and thread counts — including
//! under a fault plan with mid-run repairs (the path that exercises
//! blocked-vs-stranded decisions at shard boundaries).

use turnroute::experiment::ExperimentSpec;
use turnroute::sim::report::write_json;
use turnroute::sim::SimConfig;

fn quick() -> SimConfig {
    SimConfig::paper()
        .warmup_cycles(200)
        .measure_cycles(1_200)
        .seed(42)
}

/// JSON bytes of the spec swept at the given shard count.
fn sweep_json(
    topology: &str,
    pattern: &str,
    algos: &[&str],
    faults: Option<&str>,
    shards: usize,
    threads: usize,
) -> Vec<u8> {
    let mut builder = ExperimentSpec::builder(topology, pattern)
        .loads(&[0.02, 0.05])
        .config(quick().shards(shards));
    for a in algos {
        builder = builder.algorithm(*a);
    }
    if let Some(fs) = faults {
        builder = builder.faults(fs);
    }
    let spec = builder.build().expect("spec resolves");
    let mut buf = Vec::new();
    write_json(&spec.run(threads).expect("spec resolves"), &mut buf).expect("in-memory JSON");
    buf
}

/// The spec swept serially and at 8 shards, on 1 and 2 worker threads:
/// all byte streams equal.
fn assert_shards_invisible(topology: &str, pattern: &str, algos: &[&str], faults: Option<&str>) {
    let serial = sweep_json(topology, pattern, algos, faults, 1, 1);
    for threads in [1, 2] {
        let sharded = sweep_json(topology, pattern, algos, faults, 8, threads);
        assert_eq!(
            serial, sharded,
            "{topology}: sharding changed sweep bytes ({threads} threads)"
        );
    }
}

#[test]
fn mesh_sweeps_are_identical_at_1_and_8_shards() {
    assert_shards_invisible(
        "mesh:6x6",
        "transpose",
        &["xy", "west-first", "negative-first"],
        None,
    );
}

#[test]
fn torus_sweeps_are_identical_at_1_and_8_shards() {
    // The mesh-only adaptive constructions do not resolve on tori; the
    // torus-safe registry entries stand in for them.
    assert_shards_invisible(
        "torus:5,2",
        "uniform",
        &["xy", "negative-first-torus", "first-hop-wrap"],
        None,
    );
}

#[test]
fn faulted_sweep_with_repair_is_identical_at_1_and_8_shards() {
    // A transient fault (repaired mid-window) plus a permanent one:
    // repairs disable the route table and force live fault pruning, so
    // the blocked-or-stranded decision runs inside shard arbitration.
    assert_shards_invisible(
        "mesh:6x6",
        "transpose",
        &["xy", "west-first", "negative-first"],
        Some("chan:30@150..600+chan:7"),
    );
}
