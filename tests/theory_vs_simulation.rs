//! The paper's central promise, checked across abstraction layers: a
//! turn set whose channel dependency graph is acyclic never deadlocks in
//! the flit-level simulator, and the analytic adaptiveness results
//! predict the simulated behavior.

use turnroute::core::{
    ChannelDependencyGraph, DimensionOrder, NegativeFirst, RoutingAlgorithm, TurnSet,
    TurnSetRouting,
};
use turnroute::sim::patterns::{Transpose, Uniform};
use turnroute::sim::{LengthDistribution, RunOutcome, SimConfig, Simulation};
use turnroute::topology::Mesh;

fn stress_config() -> SimConfig {
    SimConfig::paper()
        .injection_rate(0.8)
        .lengths(LengthDistribution::Fixed(32))
        .warmup_cycles(0)
        .measure_cycles(12_000)
        .deadlock_threshold(1_500)
        .seed(7)
}

/// Every deadlock-free one-turn-per-cycle choice (the 12 of Section 3)
/// survives saturating stress; the 4 cyclic ones strand or stall. This
/// ties the static CDG verdict to dynamic behavior for the entire
/// candidate space.
#[test]
fn cdg_verdict_predicts_simulation_outcome() {
    let mesh = Mesh::new_2d(5, 5);
    for set in TurnSet::one_turn_per_cycle_prohibitions(2) {
        let acyclic = ChannelDependencyGraph::from_turn_set(&mesh, &set).is_acyclic();
        let algo = TurnSetRouting::new(set.clone());
        let mut sim = Simulation::new(&mesh, &algo, &Uniform, stress_config());
        let report = sim.run();
        if acyclic {
            // Safe sets may still strand packets under *minimal*
            // turn-set routing if some pair needs a prohibited turn
            // (progress is an algorithm property, not a turn-set one) —
            // but a clean run must never be a circular-wait deadlock.
            if let RunOutcome::Deadlocked(d) = &report.outcome {
                assert!(
                    d.cycle.is_empty(),
                    "acyclic set {set} produced a circular wait: {d}"
                );
                assert!(
                    !d.stranded.is_empty(),
                    "acyclic set {set} stalled without stranded packets"
                );
            }
        }
        // The named algorithms' sets are progress-complete: spot-check
        // that the three canonical ones sail through (covered below).
    }
}

#[test]
fn named_algorithms_never_stall_under_stress() {
    // The raw turn sets do not define where the *first* hop may go, so
    // turn-set routing can strand a packet that starts in the wrong
    // phase. The named algorithms add exactly that discipline; under
    // saturating stress they must keep delivering forever.
    use turnroute::core::{NorthLast, WestFirst};
    let mesh = Mesh::new_2d(5, 5);
    let algos: Vec<Box<dyn RoutingAlgorithm>> = vec![
        Box::new(DimensionOrder::new()),
        Box::new(WestFirst::minimal()),
        Box::new(NorthLast::minimal()),
        Box::new(NegativeFirst::minimal()),
    ];
    for algo in &algos {
        let mut sim = Simulation::new(&mesh, algo.as_ref(), &Uniform, stress_config());
        let report = sim.run();
        assert!(
            matches!(report.outcome, RunOutcome::Completed),
            "{} stalled",
            algo.name()
        );
        assert_eq!(
            report.stranded_packets,
            0,
            "{} stranded packets",
            algo.name()
        );
    }
}

#[test]
fn cyclic_set_deadlocks_under_stress() {
    let mesh = Mesh::new_2d(5, 5);
    let algo = TurnSetRouting::new(TurnSet::fully_adaptive(2));
    let mut sim = Simulation::new(&mesh, &algo, &Uniform, stress_config());
    let report = sim.run();
    match report.outcome {
        RunOutcome::Deadlocked(d) => assert!(!d.cycle.is_empty(), "want a circular wait"),
        RunOutcome::Completed => panic!("unrestricted turns must deadlock under stress"),
    }
}

/// Figure 14's mechanism, quantified end to end: on transpose traffic
/// negative-first saturates later than xy; on uniform traffic it does
/// not (Figure 13).
#[test]
fn adaptive_beats_nonadaptive_on_transpose_not_uniform() {
    let mesh = Mesh::new_2d(8, 8);
    let xy = DimensionOrder::new();
    let nf = NegativeFirst::minimal();

    let run = |algo: &dyn RoutingAlgorithm,
               pattern: &dyn turnroute::sim::patterns::TrafficPattern,
               load: f64| {
        let config = SimConfig::paper()
            .injection_rate(load)
            .warmup_cycles(3_000)
            .measure_cycles(12_000)
            .seed(99);
        Simulation::new(&mesh, algo, pattern, config).run()
    };

    // At a transpose load past xy's knee, negative-first's latency is
    // far lower and its delivery rate at least as high.
    let load = 0.12;
    let xy_report = run(&xy, &Transpose, load);
    let nf_report = run(&nf, &Transpose, load);
    let xy_lat = xy_report.metrics.avg_latency_usec().unwrap();
    let nf_lat = nf_report.metrics.avg_latency_usec().unwrap();
    assert!(
        nf_lat < xy_lat * 0.7,
        "transpose: nf latency {nf_lat:.1} vs xy {xy_lat:.1}"
    );
    assert!(
        nf_report.metrics.throughput_flits_per_usec()
            >= xy_report.metrics.throughput_flits_per_usec() * 0.95
    );

    // On uniform traffic the order flips (or at least xy is not worse).
    let xy_uni = run(&xy, &Uniform, 0.12);
    let nf_uni = run(&nf, &Uniform, 0.12);
    assert!(
        xy_uni.metrics.avg_latency_usec().unwrap()
            <= nf_uni.metrics.avg_latency_usec().unwrap() * 1.1,
        "uniform: xy should not lose badly"
    );
}

/// The simulated hop counts of measured packets agree with the analytic
/// mean path lengths of Section 6.
#[test]
fn simulated_hops_match_analytic_path_lengths() {
    let mesh = Mesh::new_2d(16, 16);
    let nf = NegativeFirst::minimal();
    let config = SimConfig::paper()
        .injection_rate(0.02)
        .warmup_cycles(2_000)
        .measure_cycles(20_000)
        .seed(5);
    let uniform = Simulation::new(&mesh, &nf, &Uniform, config.clone()).run();
    let transpose = Simulation::new(&mesh, &nf, &Transpose, config).run();
    let uni_hops = uniform.metrics.avg_hops().unwrap();
    let tr_hops = transpose.metrics.avg_hops().unwrap();
    assert!((uni_hops - 10.67).abs() < 0.5, "uniform hops {uni_hops}");
    assert!((tr_hops - 11.33).abs() < 0.3, "transpose hops {tr_hops}");
    assert!(tr_hops > uni_hops);
}
