//! Cross-crate integration: every algorithm x pattern x topology pairing
//! the paper evaluates runs end to end — packets generated, routed,
//! delivered, accounted.

use turnroute::core::{
    Abonf, Abopl, DimensionOrder, NegativeFirst, NorthLast, PCube, RoutingAlgorithm, WestFirst,
};
use turnroute::sim::patterns::{
    BitComplement, HypercubeTranspose, ReverseFlip, TrafficPattern, Transpose, Uniform,
};
use turnroute::sim::{PacketState, RunOutcome, SimConfig, Simulation};
use turnroute::topology::{Hypercube, Mesh, Topology};

fn config() -> SimConfig {
    SimConfig::paper()
        .injection_rate(0.03)
        .warmup_cycles(1_000)
        .measure_cycles(6_000)
        .deadlock_threshold(5_000)
        .seed(2024)
}

fn check(topo: &dyn Topology, algo: &dyn RoutingAlgorithm, pattern: &dyn TrafficPattern) {
    let mut sim = Simulation::new(topo, algo, pattern, config());
    let report = sim.run();
    let label = format!("{} / {} / {}", topo.label(), algo.name(), pattern.name());
    assert!(
        matches!(report.outcome, RunOutcome::Completed),
        "{label}: deadlocked"
    );
    assert_eq!(report.stranded_packets, 0, "{label}: stranded packets");
    assert!(
        report.total_delivered > 50,
        "{label}: only {} delivered",
        report.total_delivered
    );
    assert!(
        report.sustainable(),
        "{label}: not sustainable at light load"
    );

    // Per-packet sanity on everything that was delivered.
    for p in sim.packets() {
        if p.state() == PacketState::Delivered {
            assert!(p.hops() >= topo.distance(p.src, p.dst) as u32);
            if algo.is_minimal() {
                assert_eq!(
                    p.hops(),
                    topo.distance(p.src, p.dst) as u32,
                    "{label}: minimal algorithm took a detour"
                );
            }
            assert!(p.latency_cycles().unwrap() >= p.hops() as u64);
        }
    }
}

#[test]
fn mesh_algorithms_times_patterns() {
    let mesh = Mesh::new_2d(8, 8);
    let algos: Vec<Box<dyn RoutingAlgorithm>> = vec![
        Box::new(DimensionOrder::new()),
        Box::new(WestFirst::minimal()),
        Box::new(NorthLast::minimal()),
        Box::new(NegativeFirst::minimal()),
    ];
    let patterns: Vec<Box<dyn TrafficPattern>> = vec![
        Box::new(Uniform),
        Box::new(Transpose),
        Box::new(BitComplement),
    ];
    for algo in &algos {
        for pattern in &patterns {
            check(&mesh, algo.as_ref(), pattern.as_ref());
        }
    }
}

#[test]
fn hypercube_algorithms_times_patterns() {
    let cube = Hypercube::new(6);
    let algos: Vec<Box<dyn RoutingAlgorithm>> = vec![
        Box::new(DimensionOrder::new()),
        Box::new(PCube::minimal()),
        Box::new(Abonf::with_dims(6, true)),
        Box::new(Abopl::with_dims(6, true)),
        Box::new(NegativeFirst::with_dims(6, true)),
    ];
    let patterns: Vec<Box<dyn TrafficPattern>> = vec![
        Box::new(Uniform),
        Box::new(HypercubeTranspose),
        Box::new(ReverseFlip),
    ];
    for algo in &algos {
        for pattern in &patterns {
            check(&cube, algo.as_ref(), pattern.as_ref());
        }
    }
}

#[test]
fn three_dimensional_mesh_runs() {
    let mesh = Mesh::new(vec![4, 4, 4]);
    let algos: Vec<Box<dyn RoutingAlgorithm>> = vec![
        Box::new(DimensionOrder::new()),
        Box::new(NegativeFirst::with_dims(3, true)),
        Box::new(Abonf::with_dims(3, true)),
        Box::new(Abopl::with_dims(3, true)),
    ];
    for algo in &algos {
        check(&mesh, algo.as_ref(), &Uniform);
    }
}

#[test]
fn nonminimal_variants_also_deliver() {
    let mesh = Mesh::new_2d(6, 6);
    let algos: Vec<Box<dyn RoutingAlgorithm>> = vec![
        Box::new(WestFirst::nonminimal()),
        Box::new(NorthLast::nonminimal()),
        Box::new(NegativeFirst::nonminimal()),
    ];
    for algo in &algos {
        let mut sim = Simulation::new(&mesh, algo.as_ref(), &Uniform, config());
        let report = sim.run();
        assert!(
            matches!(report.outcome, RunOutcome::Completed),
            "{}",
            algo.name()
        );
        assert!(report.total_delivered > 50, "{}", algo.name());
        assert_eq!(report.stranded_packets, 0, "{}", algo.name());
    }
}

#[test]
fn torus_extensions_deliver() {
    use turnroute::core::{FirstHopWraparound, NegativeFirstTorus};
    use turnroute::topology::Torus;
    let torus = Torus::new(5, 2);
    let nft = NegativeFirstTorus::new(&torus);
    let mut sim = Simulation::new(&torus, &nft, &Uniform, config());
    let report = sim.run();
    assert!(matches!(report.outcome, RunOutcome::Completed));
    assert!(report.total_delivered > 20);

    let fhw = FirstHopWraparound::new(&torus, NegativeFirst::with_dims(2, true));
    let mut sim = Simulation::new(&torus, &fhw, &Uniform, config());
    let report = sim.run();
    assert!(matches!(report.outcome, RunOutcome::Completed));
    assert!(report.total_delivered > 20);
    assert_eq!(report.stranded_packets, 0);
}
