//! Shared helpers for the integration tests. Each test file pulls this
//! in with `mod support;`, so items unused by one test binary are
//! expected.
#![allow(dead_code)]

/// A minimal recursive-descent JSON reader, enough to schema-check CLI
/// and trace output without pulling in a JSON dependency.
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_num(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {pos}", c as char))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(b't') => parse_literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_literal(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    *pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            fields.push((key, parse_value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }
}
