//! Operational-telemetry coverage: the Prometheus exposition at
//! `GET /v1/metrics` (validity, series count, counter deltas across a
//! job and a cache hit), the structured log's full job-lifecycle
//! schema, and the guarantee that logging never changes report bytes.

mod support;

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use support::json::{self, Value};
use turnroute::experiment::ExperimentSpec;
use turnroute::serve::{client, ServeOptions, Server, ServerHandle};
use turnroute::sim::report::write_report_json;
use turnroute::sim::{Executor, Level, Logger, SimConfig};

fn small_spec() -> ExperimentSpec {
    ExperimentSpec::builder("mesh:6x6", "transpose")
        .algorithm("xy")
        .algorithm("west-first")
        .loads(&[0.02, 0.05])
        .config(
            SimConfig::paper()
                .warmup_cycles(300)
                .measure_cycles(1_500)
                .seed(7),
        )
        .build()
        .expect("spec resolves")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("turnroute-obs-test-{tag}-{}", std::process::id()))
}

fn start(tag: &str, logger: Logger) -> (ServerHandle, String) {
    let store_dir = temp_path(&format!("store-{tag}"));
    let _ = std::fs::remove_dir_all(&store_dir);
    let handle = Server::start(
        "127.0.0.1:0",
        ServeOptions {
            store_dir,
            threads: 2,
            logger,
        },
    )
    .expect("server starts on an ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn parse(body: &[u8]) -> Value {
    json::parse(std::str::from_utf8(body).expect("UTF-8 response"))
        .expect("well-formed JSON response")
}

fn str_field<'a>(doc: &'a Value, key: &str) -> &'a str {
    doc.get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing string field '{key}'"))
}

fn wait_done(addr: &str, job_id: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = client::status(addr, job_id).expect("status reaches the server");
        assert_eq!(status, 200);
        let doc = parse(&body);
        match str_field(&doc, "status") {
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job {job_id} never finished");
                std::thread::sleep(Duration::from_millis(20));
            }
            "done" => return,
            other => panic!("job {job_id} ended as '{other}'"),
        }
    }
}

/// Scrapes `/v1/metrics` into `sample-line -> value`, validating the
/// exposition shape as it goes: every non-comment line is
/// `name{labels} value` with a finite numeric value, and every sample
/// belongs to a family announced by a `# TYPE` line.
fn scrape(addr: &str) -> HashMap<String, f64> {
    let (status, body) = client::metrics(addr).expect("metrics reach the server");
    assert_eq!(status, 200);
    let text = std::str::from_utf8(&body).expect("exposition is UTF-8");
    let mut typed_families = Vec::new();
    let mut samples = HashMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let family = parts.next().expect("TYPE line names a family");
            let kind = parts.next().expect("TYPE line carries a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown metric kind '{kind}'"
            );
            typed_families.push(family.to_owned());
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (key, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = value.parse().expect("sample value is numeric");
        assert!(value.is_finite(), "non-finite sample: {line}");
        let name = key.split('{').next().unwrap();
        assert!(
            typed_families.iter().any(|f| name.starts_with(f.as_str())),
            "sample '{name}' has no # TYPE header"
        );
        samples.insert(key.to_owned(), value);
    }
    assert!(
        typed_families.len() >= 8,
        "expected >=8 metric families, got {}: {typed_families:?}",
        typed_families.len()
    );
    samples
}

fn metric(samples: &HashMap<String, f64>, key: &str) -> f64 {
    *samples
        .get(key)
        .unwrap_or_else(|| panic!("metric '{key}' missing from the exposition"))
}

#[test]
fn metrics_deltas_track_a_job_and_a_cache_hit() {
    let (handle, addr) = start("metrics", Logger::disabled());
    let spec_json = small_spec().to_json();

    let before = scrape(&addr);
    assert_eq!(
        metric(&before, "turnroute_jobs_total{status=\"done\"}"),
        0.0
    );
    assert_eq!(
        metric(&before, "turnroute_engine_cells_simulated_total"),
        0.0
    );

    // First submission: a miss that executes the grid.
    let (status, body) = client::submit(&addr, &spec_json).unwrap();
    assert_eq!(status, 202);
    let job_id = str_field(&parse(&body), "job_id").to_owned();
    wait_done(&addr, &job_id);

    let after_run = scrape(&addr);
    assert_eq!(
        metric(&after_run, "turnroute_jobs_total{status=\"done\"}"),
        1.0
    );
    assert_eq!(metric(&after_run, "turnroute_jobs_submitted_total"), 1.0);
    assert_eq!(metric(&after_run, "turnroute_store_misses_total"), 1.0);
    assert_eq!(metric(&after_run, "turnroute_store_hits_total"), 0.0);
    assert_eq!(metric(&after_run, "turnroute_store_entries"), 1.0);
    assert_eq!(
        metric(&after_run, "turnroute_job_duration_seconds_count"),
        1.0
    );
    let cells = metric(&after_run, "turnroute_engine_cells_simulated_total");
    assert!(cells > 0.0, "the first run must simulate");
    assert!(metric(&after_run, "turnroute_store_bytes") > 0.0);

    // Second submission of the same spec: a store hit, zero new cells.
    let (status, body) = client::submit(&addr, &spec_json).unwrap();
    assert_eq!(status, 200);
    let second = parse(&body);
    assert_eq!(second.get("cached"), Some(&Value::Bool(true)));
    assert_eq!(
        str_field(&second, "span"),
        str_field(&second, "job_id"),
        "the job id doubles as its trace span"
    );

    let after_hit = scrape(&addr);
    assert_eq!(metric(&after_hit, "turnroute_store_hits_total"), 1.0);
    assert_eq!(metric(&after_hit, "turnroute_jobs_submitted_total"), 2.0);
    assert_eq!(
        metric(&after_hit, "turnroute_engine_cells_simulated_total"),
        cells,
        "a cache hit must cost zero engine cycles"
    );
    // The access counter saw the scrapes and submissions, with bounded
    // route labels.
    assert!(
        metric(
            &after_hit,
            "turnroute_http_requests_total{route=\"metrics\",code=\"200\"}"
        ) >= 2.0
    );
    assert!(
        metric(
            &after_hit,
            "turnroute_http_requests_total{route=\"jobs_submit\",code=\"200\"}"
        ) >= 1.0
    );
    assert!(metric(&after_hit, "turnroute_http_request_duration_seconds_count") > 0.0);

    // Wrong method on the metrics path is a 405, like every other route.
    let (status, _) = client::http_request(&addr, "POST", "/v1/metrics", None).unwrap();
    assert_eq!(status, 405);

    handle.shutdown();
}

/// Events of one log file, parsed and schema-checked: every line is an
/// object with a millisecond timestamp, a known level, and an event
/// name.
fn read_log(path: &PathBuf) -> Vec<Value> {
    let text = std::fs::read_to_string(path).expect("log file exists");
    text.lines()
        .map(|line| {
            let doc =
                json::parse(line).unwrap_or_else(|e| panic!("log line is not JSON ({e}): {line}"));
            assert!(
                doc.get("ts_ms")
                    .and_then(Value::as_num)
                    .is_some_and(|t| t > 0.0),
                "missing ts_ms: {line}"
            );
            let level = str_field(&doc, "level");
            assert!(
                matches!(level, "debug" | "info" | "warn" | "error"),
                "unknown level '{level}'"
            );
            assert!(!str_field(&doc, "event").is_empty());
            doc
        })
        .collect()
}

fn events_for_span<'a>(events: &'a [Value], span: &str) -> Vec<&'a Value> {
    events
        .iter()
        .filter(|e| e.get("span").and_then(Value::as_str) == Some(span))
        .collect()
}

#[test]
fn the_log_captures_a_full_job_lifecycle_under_one_span() {
    let log_path = temp_path("lifecycle.log");
    let _ = std::fs::remove_file(&log_path);
    let logger = Logger::to_file(Level::Debug, &log_path).expect("log file opens");
    let (handle, addr) = start("lifecycle", logger);

    let (status, body) = client::submit(&addr, &small_spec().to_json()).unwrap();
    assert_eq!(status, 202);
    let doc = parse(&body);
    let job_id = str_field(&doc, "job_id").to_owned();
    assert_eq!(str_field(&doc, "span"), job_id);
    wait_done(&addr, &job_id);
    handle.shutdown();

    let events = read_log(&log_path);
    let job_events = events_for_span(&events, &job_id);
    let names: Vec<&str> = job_events.iter().map(|e| str_field(e, "event")).collect();

    // The lifecycle in order: submitted -> store verdict -> queued ->
    // running -> per-cell progress -> store write -> done.
    let order = ["job_submitted", "store_miss", "job_queued", "job_running"];
    let mut positions = order.iter().map(|want| {
        names
            .iter()
            .position(|n| n == want)
            .unwrap_or_else(|| panic!("no '{want}' event for span {job_id} in {names:?}"))
    });
    let mut prev = positions.next().unwrap();
    for next in positions {
        assert!(prev < next, "lifecycle events out of order: {names:?}");
        prev = next;
    }
    let done_at = names
        .iter()
        .position(|n| *n == "job_done")
        .expect("job_done event");
    assert!(prev < done_at);

    // Per-cell debug progress, threaded through ExecProgress: 2
    // algorithms x 2 loads = 4 cells.
    let cells: Vec<&&Value> = job_events
        .iter()
        .filter(|e| str_field(e, "event") == "cell")
        .collect();
    assert_eq!(cells.len(), 4, "one debug event per executed cell");
    for cell in &cells {
        assert_eq!(cell.get("cells_total").and_then(Value::as_num), Some(4.0));
        assert!(cell.get("algorithm").and_then(Value::as_str).is_some());
        assert!(cell.get("offered_load").and_then(Value::as_num).is_some());
    }
    let write = job_events
        .iter()
        .find(|e| str_field(e, "event") == "store_write")
        .expect("store_write event");
    assert!(write.get("bytes").and_then(Value::as_num).unwrap() > 0.0);

    // The done event reports the work and the wall time.
    let done = job_events[done_at];
    assert!(done.get("cells_simulated").and_then(Value::as_num).unwrap() > 0.0);
    assert!(done.get("wall_secs").and_then(Value::as_num).unwrap() >= 0.0);

    // Access log: every HTTP request emitted one `request` event with
    // the full schema, under its own r<N> span.
    let requests: Vec<&Value> = events
        .iter()
        .filter(|e| str_field(e, "event") == "request")
        .collect();
    assert!(!requests.is_empty());
    for r in &requests {
        assert!(str_field(r, "span").starts_with('r'));
        assert!(str_field(r, "peer").contains(':'));
        assert!(!str_field(r, "method").is_empty());
        assert!(str_field(r, "path").starts_with("/v1/"));
        assert!(r.get("status").and_then(Value::as_num).is_some());
        assert!(r.get("bytes").and_then(Value::as_num).is_some());
        assert!(r.get("duration_ms").and_then(Value::as_num).is_some());
    }
    let submit_access = requests
        .iter()
        .find(|r| str_field(r, "path") == "/v1/jobs")
        .expect("the POST /v1/jobs access event");
    assert_eq!(str_field(submit_access, "method"), "POST");
    // The job_submitted event links back to the request span.
    let submitted = job_events
        .iter()
        .find(|e| str_field(e, "event") == "job_submitted")
        .unwrap();
    assert!(str_field(submitted, "request").starts_with('r'));

    // Server start/stop bracket the session.
    assert!(events
        .iter()
        .any(|e| str_field(e, "event") == "server_started"));
    assert!(events
        .iter()
        .any(|e| str_field(e, "event") == "server_stopped"));

    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn report_bytes_are_identical_with_logging_enabled_and_disabled() {
    let spec = small_spec();

    let mut quiet = Executor::new(2);
    let quiet_series = spec.run_on(&mut quiet).expect("spec runs");
    let mut quiet_bytes = Vec::new();
    write_report_json(&quiet_series, &quiet.stats(), &mut quiet_bytes).unwrap();

    let log_path = temp_path("exec.log");
    let _ = std::fs::remove_file(&log_path);
    let logger = Logger::to_file(Level::Debug, &log_path).expect("log file opens");
    let mut chatty = Executor::new(2).with_oplog(logger, "j1");
    let chatty_series = spec.run_on(&mut chatty).expect("spec runs");
    let mut chatty_bytes = Vec::new();
    write_report_json(&chatty_series, &chatty.stats(), &mut chatty_bytes).unwrap();

    assert_eq!(
        quiet_bytes, chatty_bytes,
        "logging must never change report bytes"
    );
    // And the log actually captured the execution it observed.
    let logged = std::fs::read_to_string(&log_path).unwrap();
    assert_eq!(logged.matches("\"event\":\"cell\"").count(), 4);
    let _ = std::fs::remove_file(&log_path);
}
