//! Integration coverage for the parallel experiment executor: thread
//! invariance through the real wormhole engine, the saturation-skip
//! rule, and cell-cache reuse on an extended load grid.

use turnroute::experiment::{Engine, ExperimentSpec};
use turnroute::sim::report::write_csv;
use turnroute::sim::{CellCache, Executor, SimConfig};

fn quick() -> SimConfig {
    SimConfig::paper()
        .warmup_cycles(500)
        .measure_cycles(3_000)
        .seed(42)
}

fn mesh_spec(loads: &[f64]) -> ExperimentSpec {
    ExperimentSpec::builder("mesh:6x6", "transpose")
        .algorithm("xy")
        .algorithm("west-first")
        .algorithm("negative-first")
        .loads(loads)
        .config(quick())
        .build()
        .expect("spec resolves")
}

fn csv(spec: &ExperimentSpec, threads: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    write_csv(&spec.run(threads).expect("spec resolves"), &mut buf).expect("in-memory CSV");
    buf
}

#[test]
fn one_two_and_eight_threads_produce_byte_identical_output() {
    // The grid straddles saturation so the skip path engages: the high
    // loads are unsustainable for every algorithm on a 6x6 mesh.
    let spec = mesh_spec(&[0.02, 0.06, 0.8, 1.2]);
    let serial = csv(&spec, 1);
    assert_eq!(serial, csv(&spec, 2), "2 threads changed the bytes");
    assert_eq!(serial, csv(&spec, 8), "8 threads changed the bytes");
    // The sweep did reach saturation, so the skip rule was exercised.
    let text = String::from_utf8(serial).unwrap();
    assert!(text.contains(",skipped"), "grid never saturated:\n{text}");
    assert!(text.contains(",ok"), "grid has no measured points");
}

#[test]
fn vc_engine_is_thread_invariant_too() {
    let spec = ExperimentSpec::builder("mesh:6x6", "uniform")
        .algorithm("mad-y")
        .algorithm("xy")
        .loads(&[0.02, 0.05])
        .config(quick())
        .engine(Engine::VirtualChannel)
        .build()
        .expect("spec resolves");
    assert_eq!(csv(&spec, 1), csv(&spec, 8));
}

#[test]
fn the_skip_rule_never_skips_a_sustainable_point() {
    let loads = [0.02, 0.06, 0.8, 1.2];
    for threads in [1, 8] {
        for series in mesh_spec(&loads).run(threads).unwrap() {
            // Skipped points form a suffix strictly after the first
            // unsustainable point.
            let first_bad = series.points.iter().position(|p| !p.sustainable);
            for (i, p) in series.points.iter().enumerate() {
                assert!(
                    !(p.skipped && p.sustainable),
                    "a skipped point can never claim sustainability"
                );
                if p.skipped {
                    assert!(first_bad.is_some_and(|b| i > b), "skip before saturation");
                }
            }
            // Re-simulate each skipped point in isolation (the per-cell
            // seed depends only on the cell's identity, not its position
            // in the grid): it must really be unsustainable.
            for p in series.points.iter().filter(|p| p.skipped) {
                let alone = ExperimentSpec::builder("mesh:6x6", "transpose")
                    .algorithm(&series.algorithm)
                    .loads(&[p.offered_load])
                    .config(quick())
                    .build()
                    .expect("spec resolves")
                    .run(1)
                    .unwrap()
                    .remove(0);
                assert!(
                    !alone.points[0].sustainable,
                    "{} at {} was skipped but is sustainable",
                    series.algorithm, p.offered_load
                );
            }
        }
    }
}

#[test]
fn extending_the_grid_reuses_cached_cells() {
    let short = mesh_spec(&[0.02, 0.06]);
    let long = mesh_spec(&[0.02, 0.04, 0.06]);

    let mut first = Executor::new(2).with_cache(CellCache::in_memory());
    let short_series = short.run_on(&mut first).unwrap();
    assert_eq!(first.stats().simulated, 6, "3 algorithms x 2 loads");

    // Re-run the extended grid against the same cache: only the new
    // load simulates; the overlapping points come back bit-identical.
    let mut second = Executor::new(2).with_cache(first.into_cache());
    let long_series = long.run_on(&mut second).unwrap();
    assert_eq!(second.stats().simulated, 3, "one new load per algorithm");
    assert_eq!(second.stats().cache_hits, 6);

    for (s, l) in short_series.iter().zip(&long_series) {
        assert_eq!(s.algorithm, l.algorithm);
        for (a, b) in s.points.iter().zip([&l.points[0], &l.points[2]]) {
            assert_eq!(a.offered_load, b.offered_load);
            assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
            assert_eq!(a.avg_latency_usec, b.avg_latency_usec);
        }
    }
}
