//! Property-based tests over the whole stack: random topologies,
//! endpoints, turn sets and loads.

use proptest::prelude::*;
use turnroute::core::{
    count_paths, walk, Abonf, Abopl, ChannelDependencyGraph, DimensionOrder,
    NegativeFirst, NorthLast, PCube, RoutingAlgorithm, TurnSet, TwoPhase, WestFirst,
};
use turnroute::core::adaptiveness::{
    fully_adaptive_shortest_paths, negative_first_shortest_paths,
};
use turnroute::core::numbering::{
    negative_first_numbering, verify_monotone, west_first_numbering, Monotonic,
};
use turnroute::sim::patterns::Uniform;
use turnroute::sim::{SimConfig, Simulation};
use turnroute::topology::{DirSet, Direction, Hypercube, Mesh, NodeId, Topology};

fn algo_2d(which: u8, minimal: bool) -> Box<dyn RoutingAlgorithm> {
    match which % 4 {
        0 => Box::new(DimensionOrder::new()),
        1 => Box::new(WestFirst::with_dims(2, minimal)),
        2 => Box::new(NorthLast::with_dims(2, minimal)),
        _ => Box::new(NegativeFirst::with_dims(2, minimal)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Minimal algorithms produce shortest walks between arbitrary pairs
    /// in arbitrary mesh shapes.
    #[test]
    fn minimal_walks_are_shortest(
        m in 2usize..9,
        n in 2usize..9,
        which in 0u8..4,
        a in 0usize..64,
        b in 0usize..64,
    ) {
        let mesh = Mesh::new_2d(m, n);
        let (a, b) = (a % (m * n), b % (m * n));
        prop_assume!(a != b);
        let algo = algo_2d(which, true);
        let (s, d) = (NodeId::new(a), NodeId::new(b));
        let path = walk(algo.as_ref(), &mesh, s, d);
        prop_assert_eq!(path.len() - 1, mesh.distance(s, d));
    }

    /// Nonminimal two-phase walks still terminate at the destination.
    #[test]
    fn nonminimal_walks_terminate(
        m in 2usize..7,
        n in 2usize..7,
        which in 1u8..4,
        a in 0usize..49,
        b in 0usize..49,
    ) {
        let mesh = Mesh::new_2d(m, n);
        let (a, b) = (a % (m * n), b % (m * n));
        prop_assume!(a != b);
        let algo = algo_2d(which, false);
        let (s, d) = (NodeId::new(a), NodeId::new(b));
        let path = walk(algo.as_ref(), &mesh, s, d);
        prop_assert_eq!(*path.last().unwrap(), d);
    }

    /// Theorem 2 numbering is monotone for every mesh shape, not just
    /// the tested sizes.
    #[test]
    fn west_first_numbering_monotone(m in 2usize..11, n in 2usize..11) {
        let mesh = Mesh::new_2d(m, n);
        let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &TurnSet::west_first());
        let numbers = west_first_numbering(&mesh);
        prop_assert_eq!(verify_monotone(&cdg, &numbers, Monotonic::Decreasing), Ok(()));
    }

    /// Theorem 5 numbering is monotone for random n-dimensional shapes.
    #[test]
    fn negative_first_numbering_monotone(dims in proptest::collection::vec(2usize..5, 1..4)) {
        let n = dims.len();
        let mesh = Mesh::new(dims);
        let cdg =
            ChannelDependencyGraph::from_turn_set(&mesh, &TurnSet::negative_first(n));
        let numbers = negative_first_numbering(&mesh);
        prop_assert_eq!(verify_monotone(&cdg, &numbers, Monotonic::Increasing), Ok(()));
    }

    /// Every two-phase split of the 2D directions yields a deadlock-free
    /// turn set: phase ordering is inherently acyclic.
    #[test]
    fn all_two_phase_splits_are_deadlock_free(bits in 0u32..16) {
        let phase1: DirSet = Direction::all(2)
            .filter(|d| bits >> d.index() & 1 == 1)
            .collect();
        // A degenerate split with every direction in one phase is fully
        // adaptive (all turns allowed within the phase) and cyclic.
        prop_assume!(!phase1.is_empty() && phase1.len() < 4);
        let algo = TwoPhase::new("split", 2, phase1, true);
        let mesh = Mesh::new_2d(4, 4);
        let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &algo.turn_set());
        prop_assert!(cdg.is_acyclic());
    }

    /// The negative-first closed form equals the DP oracle on random
    /// 3D boxes and pairs.
    #[test]
    fn negative_first_formula_matches_oracle_3d(
        dims in proptest::collection::vec(2usize..5, 3..4),
        a in 0usize..64,
        b in 0usize..64,
    ) {
        let mesh = Mesh::new(dims);
        let (a, b) = (a % mesh.num_nodes(), b % mesh.num_nodes());
        prop_assume!(a != b);
        let nf = NegativeFirst::with_dims(3, true);
        let (s, d) = (NodeId::new(a), NodeId::new(b));
        prop_assert_eq!(
            count_paths(&nf, &mesh, s, d),
            negative_first_shortest_paths(&mesh, s, d)
        );
    }

    /// Partial adaptiveness never exceeds full adaptiveness.
    #[test]
    fn sp_at_most_sf(
        m in 2usize..8,
        n in 2usize..8,
        which in 0u8..4,
        a in 0usize..64,
        b in 0usize..64,
    ) {
        let mesh = Mesh::new_2d(m, n);
        let (a, b) = (a % (m * n), b % (m * n));
        prop_assume!(a != b);
        let algo = algo_2d(which, true);
        let (s, d) = (NodeId::new(a), NodeId::new(b));
        let sp = count_paths(algo.as_ref(), &mesh, s, d);
        prop_assert!(sp >= 1);
        prop_assert!(sp <= fully_adaptive_shortest_paths(&mesh, s, d));
    }

    /// p-cube in random hypercubes: minimal, and offers at most the
    /// fully adaptive choice count at each step.
    #[test]
    fn pcube_walks_random_cubes(n in 2usize..8, a in 0usize..256, b in 0usize..256) {
        let cube = Hypercube::new(n);
        let (a, b) = (a % cube.num_nodes(), b % cube.num_nodes());
        prop_assume!(a != b);
        let pcube = PCube::minimal();
        let (s, d) = (NodeId::new(a), NodeId::new(b));
        let path = walk(&pcube, &cube, s, d);
        prop_assert_eq!(path.len() - 1, cube.distance(s, d));
    }

    /// Simulator flit conservation holds under random light loads and
    /// seeds, for a random algorithm.
    #[test]
    fn simulator_conserves_flits(
        seed in 0u64..1000,
        which in 0u8..4,
        load in 0.01f64..0.2,
    ) {
        let mesh = Mesh::new_2d(4, 4);
        let algo = algo_2d(which, true);
        let config = SimConfig::paper()
            .injection_rate(load)
            .warmup_cycles(0)
            .measure_cycles(0)
            .seed(seed);
        let mut sim = Simulation::new(&mesh, algo.as_ref(), &Uniform, config);
        for _ in 0..500 {
            sim.step();
        }
        for p in sim.packets() {
            prop_assert_eq!(
                p.flits_at_source() + p.flits_in_network() + p.flits_consumed(),
                p.length
            );
        }
    }

    /// n-dimensional analogs agree with the 2D originals on 2D meshes,
    /// for random pairs.
    #[test]
    fn analogs_reduce_to_2d(m in 2usize..8, a in 0usize..64, b in 0usize..64) {
        let mesh = Mesh::new_2d(m, m);
        let (a, b) = (a % (m * m), b % (m * m));
        prop_assume!(a != b);
        let (s, d) = (NodeId::new(a), NodeId::new(b));
        let wf = WestFirst::minimal();
        let abonf = Abonf::with_dims(2, true);
        prop_assert_eq!(wf.route(&mesh, s, d, None), abonf.route(&mesh, s, d, None));
        let nl = NorthLast::minimal();
        let abopl = Abopl::with_dims(2, true);
        prop_assert_eq!(nl.route(&mesh, s, d, None), abopl.route(&mesh, s, d, None));
    }
}
