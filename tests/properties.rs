//! Randomized tests over the whole stack: random topologies, endpoints,
//! turn sets and loads. Formerly proptest properties; now seeded loops
//! over the vendored RNG so the suite builds offline.

use turnroute::core::adaptiveness::{fully_adaptive_shortest_paths, negative_first_shortest_paths};
use turnroute::core::numbering::{
    negative_first_numbering, verify_monotone, west_first_numbering, Monotonic,
};
use turnroute::core::{
    count_paths, walk, Abonf, Abopl, ChannelDependencyGraph, DimensionOrder, NegativeFirst,
    NorthLast, PCube, RoutingAlgorithm, TurnSet, TwoPhase, WestFirst,
};
use turnroute::experiment::ExperimentSpec;
use turnroute::sim::patterns::Uniform;
use turnroute::sim::{LengthDistribution, MmppSource, SimConfig, Simulation, TrafficModel};
use turnroute::topology::{DirSet, Direction, Hypercube, Mesh, NodeId, Topology};
use turnroute_rng::{Rng, StdRng};

const CASES: usize = 64;

fn algo_2d(which: u8, minimal: bool) -> Box<dyn RoutingAlgorithm> {
    match which % 4 {
        0 => Box::new(DimensionOrder::new()),
        1 => Box::new(WestFirst::with_dims(2, minimal)),
        2 => Box::new(NorthLast::with_dims(2, minimal)),
        _ => Box::new(NegativeFirst::with_dims(2, minimal)),
    }
}

/// Draws a distinct `(a, b)` node pair in `0..n`.
fn distinct_pair(rng: &mut StdRng, n: usize) -> (NodeId, NodeId) {
    let a = rng.random_range(0..n);
    let mut b = rng.random_range(0..n);
    while b == a {
        b = rng.random_range(0..n);
    }
    (NodeId::new(a), NodeId::new(b))
}

/// Minimal algorithms produce shortest walks between arbitrary pairs
/// in arbitrary mesh shapes.
#[test]
fn minimal_walks_are_shortest() {
    let mut rng = StdRng::seed_from_u64(0xF001);
    for _ in 0..CASES {
        let m = rng.random_range(2..9usize);
        let n = rng.random_range(2..9usize);
        let mesh = Mesh::new_2d(m, n);
        let (s, d) = distinct_pair(&mut rng, m * n);
        let which = rng.random_range(0..4usize) as u8;
        let algo = algo_2d(which, true);
        let path = walk(algo.as_ref(), &mesh, s, d);
        assert_eq!(path.len() - 1, mesh.distance(s, d), "{m}x{n} algo {which}");
    }
}

/// Nonminimal two-phase walks still terminate at the destination.
#[test]
fn nonminimal_walks_terminate() {
    let mut rng = StdRng::seed_from_u64(0xF002);
    for _ in 0..CASES {
        let m = rng.random_range(2..7usize);
        let n = rng.random_range(2..7usize);
        let mesh = Mesh::new_2d(m, n);
        let (s, d) = distinct_pair(&mut rng, m * n);
        let which = rng.random_range(1..4usize) as u8;
        let algo = algo_2d(which, false);
        let path = walk(algo.as_ref(), &mesh, s, d);
        assert_eq!(*path.last().unwrap(), d);
    }
}

/// Theorem 2 numbering is monotone for every mesh shape, not just
/// the tested sizes.
#[test]
fn west_first_numbering_monotone() {
    for m in 2..11usize {
        for n in 2..11usize {
            let mesh = Mesh::new_2d(m, n);
            let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &TurnSet::west_first());
            let numbers = west_first_numbering(&mesh);
            assert_eq!(
                verify_monotone(&cdg, &numbers, Monotonic::Decreasing),
                Ok(()),
                "{m}x{n}"
            );
        }
    }
}

/// Theorem 5 numbering is monotone for random n-dimensional shapes.
#[test]
fn negative_first_numbering_monotone() {
    let mut rng = StdRng::seed_from_u64(0xF003);
    for _ in 0..CASES {
        let n = rng.random_range(1..4usize);
        let dims: Vec<usize> = (0..n).map(|_| rng.random_range(2..5usize)).collect();
        let mesh = Mesh::new(dims.clone());
        let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &TurnSet::negative_first(n));
        let numbers = negative_first_numbering(&mesh);
        assert_eq!(
            verify_monotone(&cdg, &numbers, Monotonic::Increasing),
            Ok(()),
            "{dims:?}"
        );
    }
}

/// Every two-phase split of the 2D directions yields a deadlock-free
/// turn set: phase ordering is inherently acyclic.
#[test]
fn all_two_phase_splits_are_deadlock_free() {
    for bits in 0u32..16 {
        let phase1: DirSet = Direction::all(2)
            .filter(|d| bits >> d.index() & 1 == 1)
            .collect();
        // A degenerate split with every direction in one phase is fully
        // adaptive (all turns allowed within the phase) and cyclic.
        if phase1.is_empty() || phase1.len() == 4 {
            continue;
        }
        let algo = TwoPhase::new("split", 2, phase1, true);
        let mesh = Mesh::new_2d(4, 4);
        let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &algo.turn_set());
        assert!(cdg.is_acyclic(), "bits={bits:04b}");
    }
}

/// The negative-first closed form equals the DP oracle on random
/// 3D boxes and pairs.
#[test]
fn negative_first_formula_matches_oracle_3d() {
    let mut rng = StdRng::seed_from_u64(0xF004);
    for _ in 0..CASES {
        let dims: Vec<usize> = (0..3).map(|_| rng.random_range(2..5usize)).collect();
        let mesh = Mesh::new(dims.clone());
        let (s, d) = distinct_pair(&mut rng, mesh.num_nodes());
        let nf = NegativeFirst::with_dims(3, true);
        assert_eq!(
            count_paths(&nf, &mesh, s, d),
            negative_first_shortest_paths(&mesh, s, d),
            "{dims:?} {s}->{d}"
        );
    }
}

/// Partial adaptiveness never exceeds full adaptiveness.
#[test]
fn sp_at_most_sf() {
    let mut rng = StdRng::seed_from_u64(0xF005);
    for _ in 0..CASES {
        let m = rng.random_range(2..8usize);
        let n = rng.random_range(2..8usize);
        let mesh = Mesh::new_2d(m, n);
        let (s, d) = distinct_pair(&mut rng, m * n);
        let which = rng.random_range(0..4usize) as u8;
        let algo = algo_2d(which, true);
        let sp = count_paths(algo.as_ref(), &mesh, s, d);
        assert!(sp >= 1);
        assert!(sp <= fully_adaptive_shortest_paths(&mesh, s, d));
    }
}

/// p-cube in random hypercubes: minimal, and offers at most the
/// fully adaptive choice count at each step.
#[test]
fn pcube_walks_random_cubes() {
    let mut rng = StdRng::seed_from_u64(0xF006);
    for _ in 0..CASES {
        let n = rng.random_range(2..8usize);
        let cube = Hypercube::new(n);
        let (s, d) = distinct_pair(&mut rng, cube.num_nodes());
        let pcube = PCube::minimal();
        let path = walk(&pcube, &cube, s, d);
        assert_eq!(path.len() - 1, cube.distance(s, d));
    }
}

/// Simulator flit conservation holds under random light loads and
/// seeds, for a random algorithm.
#[test]
fn simulator_conserves_flits() {
    let mut rng = StdRng::seed_from_u64(0xF007);
    for _ in 0..CASES {
        let seed = rng.random_range(0..1000u64);
        let which = rng.random_range(0..4usize) as u8;
        let load = rng.random_range(0.01f64..0.2);
        let mesh = Mesh::new_2d(4, 4);
        let algo = algo_2d(which, true);
        let config = SimConfig::paper()
            .injection_rate(load)
            .warmup_cycles(0)
            .measure_cycles(0)
            .seed(seed);
        let mut sim = Simulation::new(&mesh, algo.as_ref(), &Uniform, config);
        for _ in 0..500 {
            sim.step();
        }
        for p in sim.packets() {
            assert_eq!(
                p.flits_at_source() + p.flits_in_network() + p.flits_consumed(),
                p.length
            );
        }
    }
}

/// The MMPP arrival process is normalized so its long-run empirical
/// injection rate converges to the configured offered load, for random
/// loads and burst/idle sojourn scales.
#[test]
fn mmpp_empirical_rate_converges_to_offered_load() {
    let mut rng = StdRng::seed_from_u64(0xF009);
    for case in 0..8 {
        let load = rng.random_range(0.02f64..0.2);
        let burst = rng.random_range(20.0f64..400.0);
        let idle = rng.random_range(20.0f64..800.0);
        let nodes = 9;
        let horizon = 100_000u64;
        // Unit-length messages make flits == messages, so the offered
        // load is the arrival rate directly.
        let mut source = MmppSource::new(
            nodes,
            Some(1.0 / load),
            LengthDistribution::Fixed(1),
            burst,
            idle,
            0xF009 + case,
        );
        let mut arrivals = 0u64;
        for cycle in 0..horizon {
            for node in 0..nodes {
                source.poll(node, cycle, |_| arrivals += 1);
            }
        }
        let expected = load * horizon as f64 * nodes as f64;
        let ratio = arrivals as f64 / expected;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "load {load:.3} burst {burst:.0} idle {idle:.0}: \
             {arrivals} arrivals vs {expected:.0} expected (ratio {ratio:.3})"
        );
    }
}

/// Reports under the new traffic axes — bursty MMPP arrivals and a
/// trace-driven destination file — are byte-identical at any executor
/// thread count and any engine shard count: all injection randomness
/// comes from per-node prefix-nested streams, never from whichever
/// worker happens to run the cell.
#[test]
fn mmpp_and_trace_reports_are_thread_and_shard_invariant() {
    let dir = std::env::temp_dir().join("turnroute-properties");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("invariance.trace");
    std::fs::write(&trace, "# fixture\n0 5 2\n1 4\n2 0 3\n3 1\n5 2 2\n12 7 5\n").unwrap();
    for pattern in [
        &"uniform".to_string(),
        &format!("trace:{}", trace.display()),
    ] {
        let spec_for = |shards: usize| {
            ExperimentSpec::builder("mesh:4x4", pattern)
                .algorithm("west-first")
                .algorithm("xy")
                .loads(&[0.05, 0.1])
                .config(
                    SimConfig::paper()
                        .warmup_cycles(200)
                        .measure_cycles(1_500)
                        .seed(7)
                        .traffic(TrafficModel::Mmpp {
                            burst_cycles: 80.0,
                            idle_cycles: 240.0,
                        })
                        .shards(shards),
                )
                .build()
                .unwrap()
        };
        let csv = |shards: usize, threads: usize| {
            spec_for(shards)
                .run(threads)
                .unwrap()
                .iter()
                .map(|s| s.to_csv())
                .collect::<Vec<_>>()
                .join("\n")
        };
        let base = csv(1, 1);
        assert!(base.contains("0.05"), "sanity: {base}");
        assert_eq!(base, csv(1, 8), "thread invariance for {pattern}");
        assert_eq!(base, csv(4, 1), "shard invariance for {pattern}");
        assert_eq!(base, csv(4, 8), "combined invariance for {pattern}");
    }
}

/// n-dimensional analogs agree with the 2D originals on 2D meshes,
/// for random pairs.
#[test]
fn analogs_reduce_to_2d() {
    let mut rng = StdRng::seed_from_u64(0xF008);
    for _ in 0..CASES {
        let m = rng.random_range(2..8usize);
        let mesh = Mesh::new_2d(m, m);
        let (s, d) = distinct_pair(&mut rng, m * m);
        let wf = WestFirst::minimal();
        let abonf = Abonf::with_dims(2, true);
        assert_eq!(wf.route(&mesh, s, d, None), abonf.route(&mesh, s, d, None));
        let nl = NorthLast::minimal();
        let abopl = Abopl::with_dims(2, true);
        assert_eq!(nl.route(&mesh, s, d, None), abopl.route(&mesh, s, d, None));
    }
}
