//! Integration coverage for the observability layer: observers must
//! never perturb results, the turn-usage observer must catch real
//! prohibited turns, flit traces must be valid Chrome trace-event JSON,
//! histogram quantiles must track exact latencies, and the deadlock
//! watchdog must leave machine-readable evidence in the trace.

use turnroute::core::{TurnSet, TurnSetRouting, WestFirst};
use turnroute::sim::patterns::{Transpose, Uniform};
use turnroute::sim::report::write_csv;
use turnroute::sim::{
    CellOutput, ChannelActivityObserver, Executor, FlitTraceObserver, LatencyHistogram,
    LengthDistribution, OutputSelection, SeriesJob, SimConfig, Simulation, TurnUsageObserver,
};
use turnroute::topology::{Mesh, Topology};

mod support;
use support::json;

fn base_config() -> SimConfig {
    SimConfig::paper()
        .warmup_cycles(500)
        .measure_cycles(3_000)
        .seed(11)
}

/// The full observer stack simulations run under in the "observed" arm
/// of the no-perturbation test.
fn full_stack() -> (
    TurnUsageObserver,
    (ChannelActivityObserver, FlitTraceObserver),
) {
    (
        TurnUsageObserver::new(TurnSet::west_first()),
        (ChannelActivityObserver::new(), FlitTraceObserver::new()),
    )
}

#[test]
fn observers_do_not_perturb_sweep_bytes() {
    let mesh = Mesh::new_2d(8, 8);
    let algo = WestFirst::minimal();
    let base = base_config();
    let loads = [0.02, 0.05, 0.08];

    let plain = SeriesJob::new(
        "west-first",
        "transpose",
        "obs|plain",
        base.seed,
        &loads,
        |load, seed| {
            let cfg = base_config().injection_rate(load).seed(seed);
            let report = Simulation::new(&mesh, &algo, &Transpose, cfg).run();
            CellOutput::from_report(&report)
        },
    );
    let observed = SeriesJob::new(
        "west-first",
        "transpose",
        "obs|observed",
        base.seed,
        &loads,
        |load, seed| {
            let cfg = base_config().injection_rate(load).seed(seed);
            let mut sim = Simulation::with_observer(&mesh, &algo, &Transpose, cfg, full_stack());
            let report = sim.run();
            // The stack really saw the run (and the turn-usage assertion
            // really screened every turn against the west-first set).
            assert!(sim.observer().0.total_turns() > 0);
            CellOutput::from_report(&report)
        },
    );

    let mut plain_ex = Executor::new(2);
    let plain_series = plain_ex.run(vec![plain]);
    let mut observed_ex = Executor::new(2);
    let observed_series = observed_ex.run(vec![observed]);

    let mut plain_bytes = Vec::new();
    write_csv(&plain_series, &mut plain_bytes).unwrap();
    let mut observed_bytes = Vec::new();
    write_csv(&observed_series, &mut observed_bytes).unwrap();
    assert_eq!(
        plain_bytes, observed_bytes,
        "attaching observers changed the sweep bytes"
    );
    // Stronger than the CSV summary: the full merged latency
    // distributions are identical too.
    assert_eq!(
        plain_ex.telemetry().latencies,
        observed_ex.telemetry().latencies
    );
}

#[test]
#[should_panic(expected = "prohibited turn taken")]
fn turn_usage_observer_catches_a_real_prohibited_turn() {
    // Fully adaptive routing offers every minimal direction; forcing the
    // highest dimension first makes the packet travel y-then-x, whose
    // final turn (dim 1 into dim 0) dimension-order routing prohibits.
    // Checking against the dimension-order set must therefore fail.
    let mesh = Mesh::new_2d(6, 6);
    let algo = TurnSetRouting::new(TurnSet::fully_adaptive(2));
    let config = SimConfig::paper()
        .injection_rate(0.0)
        .warmup_cycles(0)
        .measure_cycles(0)
        .output_selection(OutputSelection::HighestDimension);
    let obs = TurnUsageObserver::new(TurnSet::dimension_order(2));
    let mut sim = Simulation::with_observer(&mesh, &algo, &Uniform, config, obs);
    let src = mesh.node_at(&[0, 0].into());
    let dst = mesh.node_at(&[3, 3].into());
    sim.inject_message(src, dst, 4);
    for _ in 0..100 {
        sim.step();
    }
}

#[test]
fn simulate_trace_writes_valid_chrome_trace_json() {
    let dir = std::env::temp_dir().join("turnroute-obs-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("trace-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let output = std::process::Command::new(env!("CARGO_BIN_EXE_turnroute"))
        .args([
            "simulate",
            "--topology",
            "mesh:6x6",
            "--algorithm",
            "west-first",
            "--pattern",
            "transpose",
            "--load",
            "0.05",
            "--cycles",
            "1500",
            "--warmup",
            "200",
            "--trace",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("the turnroute binary runs");
    assert!(
        output.status.success(),
        "simulate --trace failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    let doc = json::parse(&text).expect("trace file is valid JSON");

    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents is an array");
    assert!(!events.is_empty());

    let mut named_lanes = std::collections::HashSet::new();
    let mut open_depth: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
    let mut last_ts = 0.0_f64;
    let mut seen = (false, false, false); // (B, E, i)
    for e in events {
        let ph = e
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("every event has ph");
        let name = e
            .get("name")
            .and_then(|v| v.as_str())
            .expect("every event has a name");
        if ph == "M" {
            // Metadata: process/thread naming only, no timestamp.
            assert!(name == "process_name" || name == "thread_name", "{name}");
            let label = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(|v| v.as_str());
            assert!(label.is_some(), "metadata without args.name");
            if name == "thread_name" {
                named_lanes.insert(e.get("tid").and_then(|v| v.as_num()).unwrap() as u64);
            }
            continue;
        }
        let tid = e.get("tid").and_then(|v| v.as_num()).expect("event tid") as u64;
        let ts = e.get("ts").and_then(|v| v.as_num()).expect("event ts");
        assert!(ts >= last_ts, "timestamps must be non-decreasing");
        last_ts = ts;
        assert!(named_lanes.contains(&tid), "lane {tid} has no thread_name");
        match ph {
            "B" => {
                seen.0 = true;
                let depth = open_depth.entry(tid).or_insert(0);
                *depth += 1;
                // Single-flit buffers: one owner per channel, no nesting.
                assert_eq!(*depth, 1, "overlapping spans in lane {tid}");
            }
            "E" => {
                seen.1 = true;
                let depth = open_depth.entry(tid).or_insert(0);
                *depth -= 1;
                assert!(*depth >= 0, "E without B in lane {tid}");
            }
            "i" => {
                seen.2 = true;
                assert_eq!(e.get("s").and_then(|v| v.as_str()), Some("t"));
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(seen.0 && seen.1 && seen.2, "missing phases: {seen:?}");
    // Every opened span was closed (synthetically if necessary).
    assert!(open_depth.values().all(|&d| d == 0), "unclosed spans");
}

#[test]
fn engine_histogram_quantiles_track_exact_latencies() {
    let mesh = Mesh::new_2d(8, 8);
    let algo = WestFirst::minimal();
    let config = SimConfig::paper()
        .injection_rate(0.05)
        .warmup_cycles(0)
        .measure_cycles(4_000)
        .seed(9);
    let mut sim = Simulation::new(&mesh, &algo, &Transpose, config);
    let report = sim.run();

    // With no warmup, every generated message is inside the measurement
    // window (generation stops at its end), so the exact latency list is
    // just every delivered packet's.
    let mut exact: Vec<u64> = sim
        .packets()
        .iter()
        .filter_map(|p| p.latency_cycles())
        .collect();
    assert!(exact.len() > 50, "only {} messages delivered", exact.len());
    assert_eq!(
        report.metrics.latencies,
        LatencyHistogram::from_values(&exact),
        "the engine's histogram must record exactly the delivered latencies"
    );

    exact.sort_unstable();
    for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
        let rank = ((exact.len() - 1) as f64 * q).round() as usize;
        let want = exact[rank];
        let got = report.metrics.latencies.quantile(q).unwrap();
        let (low, high) = LatencyHistogram::bucket_bounds_of(want);
        assert!(
            (low..=high).contains(&got),
            "q{q}: histogram said {got}, exact is {want} (bucket {low}..={high})"
        );
    }
}

#[test]
fn watchdog_leaves_machine_readable_trace_evidence() {
    // The Fig. 1 deadlock scenario, traced. An empty packet filter drops
    // every per-packet event, but watchdog evidence ignores the packet
    // filter — the trace carries exactly the deadlock witness.
    let mesh = Mesh::new_2d(4, 4);
    let algo = TurnSetRouting::new(TurnSet::fully_adaptive(2));
    let config = SimConfig::paper()
        .injection_rate(0.9)
        .lengths(LengthDistribution::Fixed(64))
        .warmup_cycles(0)
        .measure_cycles(0)
        .deadlock_threshold(1_000)
        .seed(3);
    let obs = FlitTraceObserver::new().packets(&[]);
    let mut sim = Simulation::with_observer(&mesh, &algo, &Uniform, config, obs);

    let mut deadlock = None;
    for _ in 0..200_000 {
        if let Some(report) = sim.step() {
            deadlock = Some(report);
            break;
        }
    }
    let report = deadlock.expect("unrestricted turns must deadlock under load");

    let doc =
        json::parse(&sim.observer().to_chrome_trace_string(&[])).expect("trace is valid JSON");
    let events = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
    let watchdog = events
        .iter()
        .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("watchdog: deadlock detected"))
        .expect("the watchdog event is in the trace");
    let args = watchdog.get("args").expect("watchdog carries the report");
    assert_eq!(
        args.get("detected_at").and_then(|v| v.as_num()),
        Some(report.detected_at as f64)
    );
    assert_eq!(
        args.get("blocked_packets").and_then(|v| v.as_num()),
        Some(report.blocked_packets as f64)
    );
    let wait = args
        .get("circular_wait")
        .and_then(|v| v.as_arr())
        .expect("circular_wait is an array");
    assert_eq!(wait.len(), report.cycle.len());
    for (edge_json, edge) in wait.iter().zip(&report.cycle) {
        assert_eq!(
            edge_json.get("packet").and_then(|v| v.as_num()),
            Some(edge.packet.index() as f64)
        );
        assert_eq!(
            edge_json.get("wants").and_then(|v| v.as_num()),
            Some(edge.wants.index() as f64)
        );
    }
}
