#!/usr/bin/env bash
# Pre-merge gate (see ROADMAP.md): formatting, lints, and the test
# suite. Everything must pass before a PR merges.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> placeholder-URL guard"
# The real repository URL lives in Cargo.toml; the placeholder domain
# must never come back (this file is the only permitted mention).
if git grep -n "example\.invalid" -- ':!scripts/check.sh' ':!ISSUE.md' ':!CHANGES.md' ; then
  echo "error: placeholder domain 'example.invalid' reintroduced" >&2
  exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> shard determinism (sweep bytes identical at 1 vs 8 shards)"
cargo test -q --test shard_determinism

echo "==> server integration tests (submit/poll/fetch, cache, coalescing)"
cargo test -q -p turnroute-serve --test server_integration

echo "==> cargo bench --no-run (bench targets must compile)"
cargo bench --workspace --no-run --quiet

echo "==> traffic smoke (MMPP + trace pattern, bytes identical at 1 vs 8 threads)"
# Bursty arrivals and trace-driven destinations draw all injection
# randomness from per-node nested streams, so the sweep report must be
# byte-identical no matter how the executor schedules the cells.
cargo run --release -q -- sweep --topology mesh:4x4 --algorithms xy,west-first \
  --pattern trace:tests/fixtures/hotpairs.trace --loads 0.05,0.1 \
  --traffic mmpp:64,192 --cycles 800 --warmup 100 --seed 5 \
  --format json --threads 1 > target/traffic-a.json
cargo run --release -q -- sweep --topology mesh:4x4 --algorithms xy,west-first \
  --pattern trace:tests/fixtures/hotpairs.trace --loads 0.05,0.1 \
  --traffic mmpp:64,192 --cycles 800 --warmup 100 --seed 5 \
  --format json --threads 8 > target/traffic-b.json
cmp target/traffic-a.json target/traffic-b.json

echo "==> conformance soak (256 cases, fixed seed)"
cargo run --release -q -p turnroute-check --bin conformance -- \
  --cases 256 --seed 3405705229 --json target/conformance.json

echo "==> synthesis smoke (same seed => byte-identical, verified relation)"
# Bounded: 8 candidates on a 16-node dragonfly. The two runs differ in
# thread count, so identical bytes exercise the thread-invariant winner
# order; the verified line asserts acyclicity + all-pairs reachability.
cargo run --release -q -- synth --topology dragonfly:4,4 --seed 3 \
  --candidates 8 --threads 1 --out target/synth-a.turns
cargo run --release -q -- synth --topology dragonfly:4,4 --seed 3 \
  --candidates 8 --threads 8 --out target/synth-b.turns
cmp target/synth-a.turns target/synth-b.turns
grep -q "^verified: channel dependency graph acyclic" target/synth-a.turns
grep -q "^fingerprint: " target/synth-a.turns

echo "All checks passed."
