#!/usr/bin/env bash
# Perf-regression harness entry point.
#
#   scripts/bench.sh               re-measure, append bench/history.jsonl,
#                                  rewrite BENCH_*.json, regenerate the
#                                  trajectory dashboard
#   scripts/bench.sh --check       measure-only CI gate: fail on a >10%
#                                  throughput regression vs the last
#                                  committed record (still writes the
#                                  dashboard for artifact upload)
#
# All flags are forwarded to the bench_record binary (--tolerance F,
# --note TEXT, --help).
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -q -p turnroute-bench --bin bench_record -- "$@"
