//! Quickstart: design-check an algorithm, route a packet, simulate a
//! network.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use turnroute::core::{
    count_paths, walk, ChannelDependencyGraph, RoutingAlgorithm, TurnSet, WestFirst,
};
use turnroute::sim::{patterns::Uniform, SimConfig, Simulation};
use turnroute::topology::{Mesh, Topology};

fn main() {
    // 1. The topology: the paper's 16x16 mesh.
    let mesh = Mesh::new_2d(16, 16);
    println!(
        "topology: {} ({} channels)",
        mesh.label(),
        mesh.num_channels()
    );

    // 2. The turn model: west-first prohibits the two turns to the west
    //    (Fig. 5a). Both abstract cycles are broken, and — the real
    //    check — the channel dependency graph is acyclic.
    let turns = TurnSet::west_first();
    println!("turn set: {turns}");
    println!(
        "breaks abstract cycles: {}",
        turns.breaks_all_abstract_cycles()
    );
    let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &turns);
    println!("deadlock free (CDG acyclic): {}", cdg.is_acyclic());

    // 3. Routing: follow the algorithm hop by hop.
    let algo = WestFirst::minimal();
    let src = mesh.node_at(&[12, 2].into());
    let dst = mesh.node_at(&[3, 9].into());
    let path = walk(&algo, &mesh, src, dst);
    let coords: Vec<String> = path.iter().map(|&n| mesh.coord_of(n).to_string()).collect();
    println!(
        "\n{} route {} -> {} ({} hops):\n  {}",
        algo.name(),
        mesh.coord_of(src),
        mesh.coord_of(dst),
        path.len() - 1,
        coords.join(" ")
    );
    println!(
        "shortest paths the algorithm allows here: {}",
        count_paths(&algo, &mesh, src, dst)
    );

    // 4. Simulation: the paper's Section 6 setup at a light load.
    let config = SimConfig::paper()
        .injection_rate(0.05)
        .warmup_cycles(5_000)
        .measure_cycles(20_000);
    let report = Simulation::new(&mesh, &algo, &Uniform, config).run();
    println!(
        "\nuniform traffic at 1 flit/usec/node: {:.1} flits/usec delivered, {:.2} usec avg latency, sustainable: {}",
        report.metrics.throughput_flits_per_usec(),
        report.metrics.avg_latency_usec().unwrap_or(f64::NAN),
        report.sustainable()
    );
}
