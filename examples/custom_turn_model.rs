//! Designing your own routing algorithm with the turn model.
//!
//! The six steps of Section 2, executed: pick turns to prohibit, check
//! the abstract cycles, verify the channel dependency graph, and route.
//!
//! ```sh
//! cargo run --example custom_turn_model
//! ```

use turnroute::core::{walk, ChannelDependencyGraph, Turn, TurnSet, TurnSetRouting, TwoPhase};
use turnroute::topology::{DirSet, Direction, Mesh, Topology};

fn main() {
    let mesh = Mesh::new_2d(8, 8);

    // Attempt 1: prohibit two turns naively — one per abstract cycle,
    // but reversed copies of each other (Fig. 4's mistake).
    let mut naive = TurnSet::fully_adaptive(2);
    naive.prohibit(Turn::new(Direction::NORTH, Direction::EAST));
    naive.prohibit(Turn::new(Direction::EAST, Direction::NORTH));
    println!("attempt 1: {naive}");
    println!(
        "  breaks abstract cycles: {}",
        naive.breaks_all_abstract_cycles()
    );
    let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &naive);
    match cdg.find_cycle() {
        Some(cycle) => println!(
            "  REJECTED: circular wait of {} channels is still possible",
            cycle.len()
        ),
        None => println!("  accepted"),
    }

    // Attempt 2: "south-first", a rotation of west-first — a member of
    // the same symmetry class, built as a two-phase split.
    let phase1: DirSet = [Direction::SOUTH].into_iter().collect();
    let south_first = TwoPhase::new("south-first", 2, phase1, true);
    let turns = south_first.turn_set();
    println!("\nattempt 2: {turns}");
    println!(
        "  breaks abstract cycles: {}",
        turns.breaks_all_abstract_cycles()
    );
    let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &turns);
    println!("  deadlock free: {}", cdg.is_acyclic());

    // The Dally-Seitz numbering, constructed rather than guessed:
    let numbering = cdg.topological_numbering().expect("acyclic");
    println!(
        "  channel numbering exists: {} channels, every route strictly decreasing",
        numbering.len()
    );

    // Route with it, both as the two-phase algorithm and as raw
    // turn-set routing.
    let src = mesh.node_at(&[1, 6].into());
    let dst = mesh.node_at(&[6, 1].into());
    let path = walk(&south_first, &mesh, src, dst);
    println!(
        "  south-first route {} -> {}: {} hops",
        mesh.coord_of(src),
        mesh.coord_of(dst),
        path.len() - 1
    );
    // Raw turn-set routing lacks the algorithm's phase discipline at
    // the source (it could strand a packet that greedily heads east
    // when it still owes a south hop), so demonstrate it on a pair the
    // turn set serves from any first hop.
    let raw = TurnSetRouting::new(turns);
    let (ne_src, ne_dst) = (mesh.node_at(&[1, 2].into()), mesh.node_at(&[6, 6].into()));
    let path = walk(&raw, &mesh, ne_src, ne_dst);
    println!(
        "  raw turn-set route {} -> {}: {} hops",
        mesh.coord_of(ne_src),
        mesh.coord_of(ne_dst),
        path.len() - 1
    );

    // Survey: how many two-direction phase-1 splits are deadlock free?
    println!("\nsurvey of all two-phase splits of the 2D directions:");
    for bits in 1u32..15 {
        let phase1: DirSet = Direction::all(2)
            .filter(|d| bits >> d.index() & 1 == 1)
            .collect();
        let algo = TwoPhase::new("candidate", 2, phase1, true);
        let ok = ChannelDependencyGraph::from_turn_set(&mesh, &algo.turn_set()).is_acyclic();
        println!("  phase1 = {:<18} deadlock free: {ok}", phase1.to_string());
    }
}
