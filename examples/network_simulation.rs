//! A miniature of the paper's Section 6 evaluation: four algorithms,
//! two traffic patterns, one table.
//!
//! ```sh
//! cargo run --release --example network_simulation
//! ```

use turnroute::core::{DimensionOrder, NegativeFirst, NorthLast, RoutingAlgorithm, WestFirst};
use turnroute::sim::patterns::{TrafficPattern, Transpose, Uniform};
use turnroute::sim::{SimConfig, Simulation};
use turnroute::topology::{Mesh, Topology};

fn main() {
    let mesh = Mesh::new_2d(8, 8);
    let xy = DimensionOrder::new();
    let wf = WestFirst::minimal();
    let nl = NorthLast::minimal();
    let nf = NegativeFirst::minimal();
    let algorithms: Vec<(&str, &dyn RoutingAlgorithm)> = vec![
        ("xy", &xy),
        ("west-first", &wf),
        ("north-last", &nl),
        ("negative-first", &nf),
    ];
    let patterns: Vec<&dyn TrafficPattern> = vec![&Uniform, &Transpose];

    println!(
        "{} | paper setup: 20 flits/usec channels, 1-flit buffers, 10/200-flit messages",
        mesh.label()
    );
    println!();
    println!(
        "{:<16} {:<18} {:>10} {:>12} {:>12} {:>12}",
        "algorithm", "pattern", "offered", "delivered", "avg latency", "sustainable"
    );
    for pattern in &patterns {
        for &(name, algo) in &algorithms {
            for &load in &[0.04, 0.10] {
                let config = SimConfig::paper()
                    .injection_rate(load)
                    .warmup_cycles(4_000)
                    .measure_cycles(16_000);
                let report = Simulation::new(&mesh, algo, *pattern, config).run();
                println!(
                    "{:<16} {:<18} {:>10.2} {:>12.1} {:>9.2} us {:>12}",
                    name,
                    pattern.name(),
                    load,
                    report.metrics.throughput_flits_per_usec(),
                    report.metrics.avg_latency_usec().unwrap_or(f64::NAN),
                    report.sustainable()
                );
            }
        }
        println!();
    }
    println!("Note the paper's asymmetry: xy is fine on uniform traffic but");
    println!("saturates early on transpose, where negative-first routes every");
    println!("pair fully adaptively.");
}
