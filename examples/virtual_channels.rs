//! Buying full adaptivity with one extra lane: the mad-y algorithm
//! (reference [18]) and the dateline torus scheme, live.
//!
//! ```sh
//! cargo run --release --example virtual_channels
//! ```

use turnroute::core::adaptiveness::fully_adaptive_shortest_paths;
use turnroute::core::{NegativeFirst, NegativeFirstTorus};
use turnroute::sim::patterns::Transpose;
use turnroute::sim::SimConfig;
use turnroute::topology::{Mesh, NodeId, Topology, Torus};
use turnroute::vc::{
    count_physical_paths, sweep_vc, walk_vc, DatelineDimensionOrder, MadY, SingleClass,
    VcRoutingAlgorithm, VcSimulation, VcTable,
};

fn main() {
    // 1. Full adaptivity, verified: mad-y allows *every* shortest path.
    let mesh = Mesh::new_2d(8, 8);
    let mady = MadY::new();
    let table = VcTable::new(&mesh, &mady.provisioning(&mesh));
    let s = mesh.node_at(&[6, 1].into());
    let d = mesh.node_at(&[1, 5].into());
    println!(
        "mad-y paths {} -> {}: {} of {} (fully adaptive; negative-first allows {})",
        mesh.coord_of(s),
        mesh.coord_of(d),
        count_physical_paths(&mady, &mesh, &table, s, d),
        fully_adaptive_shortest_paths(&mesh, s, d),
        turnroute::core::count_paths(&NegativeFirst::minimal(), &mesh, s, d),
    );

    // 2. What it buys under load: transpose traffic at a rate past
    //    negative-first's saturation.
    let config = SimConfig::paper()
        .injection_rate(0.12)
        .warmup_cycles(3_000)
        .measure_cycles(12_000);
    let nf = SingleClass::new(NegativeFirst::minimal());
    for (name, algo) in [
        ("negative-first", &nf as &dyn VcRoutingAlgorithm),
        ("mad-y", &mady),
    ] {
        let report = VcSimulation::new(&mesh, algo, &Transpose, config.clone()).run();
        println!(
            "  {name:<16} transpose @0.12: {:.0} flits/usec, {:.1} usec latency, sustainable {}",
            report.metrics.throughput_flits_per_usec(),
            report.metrics.avg_latency_usec().unwrap_or(f64::NAN),
            report.sustainable()
        );
    }

    // 3. Tori: minimal deadlock-free routing with a dateline lane.
    let torus = Torus::new(8, 1);
    let dateline = DatelineDimensionOrder::new();
    let dtable = VcTable::new(&torus, &dateline.provisioning(&torus));
    let path = walk_vc(&dateline, &torus, &dtable, NodeId::new(6), NodeId::new(1));
    println!(
        "\ndateline route 6 -> 1 on an 8-ring: {} hops (torus distance {}); \
         negative-first-torus needs {}",
        path.len() - 1,
        torus.distance(NodeId::new(6), NodeId::new(1)),
        turnroute::core::walk(
            &NegativeFirstTorus::new(&torus),
            &torus,
            NodeId::new(6),
            NodeId::new(1)
        )
        .len()
            - 1,
    );

    // 4. And a mini sweep on the 8-ary 2-cube.
    let torus2 = Torus::new(8, 2);
    let dl = DatelineDimensionOrder::new();
    let series = sweep_vc(
        &torus2,
        &dl,
        &turnroute::sim::patterns::Uniform,
        &SimConfig::paper()
            .warmup_cycles(2_000)
            .measure_cycles(8_000),
        &[0.05, 0.15],
    );
    println!(
        "dateline on {}: {:.0} flits/usec sustainable at the heavier load",
        torus2.label(),
        series.points[1].throughput
    );
}
