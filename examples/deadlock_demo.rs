//! Watching wormhole deadlock happen (Figs. 1 and 4) — and not happen.
//!
//! Routing with unrestricted turns deadlocks under load; the simulator's
//! watchdog extracts the circular wait, naming the packets and the
//! channels each is waiting for. West-first, under the identical load
//! and seed, just keeps delivering.
//!
//! ```sh
//! cargo run --release --example deadlock_demo
//! ```

use turnroute::core::{TurnSet, TurnSetRouting, WestFirst};
use turnroute::sim::patterns::Uniform;
use turnroute::sim::{LengthDistribution, SimConfig, Simulation};
use turnroute::topology::{Mesh, Topology};

fn config() -> SimConfig {
    SimConfig::paper()
        .injection_rate(0.9) // far past saturation
        .lengths(LengthDistribution::Fixed(64))
        .warmup_cycles(0)
        .measure_cycles(0)
        .deadlock_threshold(1_000)
        .seed(3)
}

fn main() {
    let mesh = Mesh::new_2d(6, 6);

    // Fully adaptive minimal routing without extra channels: all eight
    // turns allowed, both abstract cycles intact.
    let unrestricted = TurnSetRouting::new(TurnSet::fully_adaptive(2));
    let mut sim = Simulation::new(&mesh, &unrestricted, &Uniform, config());
    println!(
        "unrestricted turns on a {} under saturating load...",
        mesh.label()
    );
    let mut cycles = 0u64;
    loop {
        cycles += 1;
        if let Some(report) = sim.step() {
            println!("{report}");
            for edge in &report.cycle {
                let holder = sim
                    .channel_owner(edge.wants)
                    .expect("cycle channels are held");
                println!("  -> {} is held by packet {}", edge.wants, holder.index());
            }
            break;
        }
        if cycles > 500_000 {
            println!("no deadlock within {cycles} cycles (unexpected)");
            break;
        }
    }

    // Same load, same seed, west-first.
    println!("\nwest-first under the identical load...");
    let wf = WestFirst::minimal();
    let mut sim = Simulation::new(&mesh, &wf, &Uniform, config());
    for _ in 0..30_000 {
        if let Some(report) = sim.step() {
            panic!("west-first cannot deadlock, but: {report}");
        }
    }
    let delivered = sim
        .packets()
        .iter()
        .filter(|p| p.delivered_at.is_some())
        .count();
    println!("30,000 cycles, no deadlock, {delivered} messages delivered.");
}
