//! Nonminimal routing around faults — the paper's motivation for
//! keeping algorithms nonminimal (Sections 1 and 7).
//!
//! West-first's nonminimal variant may misroute east/north/south at any
//! time; as long as a packet never needs a prohibited turn, it can steer
//! around broken channels. This example knocks out a wall of channels
//! and routes through the gap, choosing among the algorithm's permitted
//! directions with a simple fault-aware selection.
//!
//! ```sh
//! cargo run --example fault_tolerant_routing
//! ```

use std::collections::HashSet;
use turnroute::core::{RoutingAlgorithm, WestFirst};
use turnroute::topology::{ChannelId, Direction, Mesh, NodeId, Topology};

/// Follows `algo`, skipping faulty channels; picks the first healthy
/// permitted direction, preferring productive ones (the permitted set is
/// already ordered lowest-dimension-first).
fn walk_avoiding(
    algo: &dyn RoutingAlgorithm,
    mesh: &Mesh,
    faulty: &HashSet<ChannelId>,
    src: NodeId,
    dst: NodeId,
) -> Option<Vec<NodeId>> {
    let mut path = vec![src];
    let mut current = src;
    let mut arrived: Option<Direction> = None;
    for _ in 0..4 * mesh.num_nodes() {
        if current == dst {
            return Some(path);
        }
        let permitted = algo.route(mesh, current, dst, arrived);
        // Prefer productive healthy channels, then any healthy one.
        let productive = mesh.minimal_directions(current, dst);
        let healthy = |d: &Direction| {
            mesh.channel_from(current, *d)
                .is_some_and(|c| !faulty.contains(&c))
        };
        let choice = permitted
            .intersection(productive)
            .iter()
            .find(healthy)
            .or_else(|| permitted.iter().find(healthy))?;
        current = mesh
            .neighbor(current, choice)
            .expect("permitted => channel");
        arrived = Some(choice);
        path.push(current);
    }
    None
}

fn main() {
    let mesh = Mesh::new_2d(8, 8);
    let algo = WestFirst::nonminimal();
    let src = mesh.node_at(&[1, 1].into());
    let dst = mesh.node_at(&[6, 5].into());

    // Break every eastward channel crossing x = 3.5 except the one at
    // y = 7: a wall with a gap at the top.
    let mut faulty = HashSet::new();
    for y in 0..7u16 {
        let from = mesh.node_at(&[3, y].into());
        faulty.insert(mesh.channel_from(from, Direction::EAST).expect("interior"));
    }
    println!(
        "faulty: {} eastward channels at x=3..4 (gap at y=7)",
        faulty.len()
    );

    let healthy_path =
        walk_avoiding(&algo, &mesh, &HashSet::new(), src, dst).expect("no faults: must route");
    println!(
        "\nwithout faults: {} hops (minimal distance {})",
        healthy_path.len() - 1,
        mesh.distance(src, dst)
    );

    let path = walk_avoiding(&algo, &mesh, &faulty, src, dst)
        .expect("nonminimal west-first routes through the gap");
    let coords: Vec<String> = path.iter().map(|&n| mesh.coord_of(n).to_string()).collect();
    println!(
        "with the wall:  {} hops, via the gap at y=7:\n  {}",
        path.len() - 1,
        coords.join(" ")
    );
    assert!(
        path.len() - 1 > mesh.distance(src, dst),
        "detour is nonminimal"
    );

    // The minimal variant cannot help itself: every permitted direction
    // crosses the wall.
    let minimal = WestFirst::minimal();
    match walk_avoiding(&minimal, &mesh, &faulty, src, dst) {
        Some(_) => println!("\nminimal west-first also got through (unexpected here)"),
        None => println!("\nminimal west-first is stuck: all its shortest paths cross the wall"),
    }
}
