//! The debug-profile conformance smoke: replays the committed
//! regression corpus and a bounded batch of generated cases. The
//! release soak (`cargo run --release -p turnroute-check --bin
//! conformance`) covers the full 256-case budget; this keeps `cargo
//! test` fast while still exercising every invariant end to end.

use turnroute_check::runner::{run, RunConfig};

/// Case budget for the debug smoke, overridable via `CONFORMANCE_CASES`.
fn case_budget() -> u64 {
    std::env::var("CONFORMANCE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

#[test]
fn regression_corpus_and_generated_cases_pass() {
    let config = RunConfig {
        cases: case_budget(),
        seed: 0xCAFE_F00D,
        ..RunConfig::default()
    };
    let summary = run(&config);
    if let Some(failure) = &summary.failure {
        panic!(
            "conformance failure after {} replayed + {} generated cases\n  violation: {}\n  \
             case: {}\n  shrunk from: {}",
            summary.replayed,
            summary.executed,
            failure.message,
            failure.case,
            failure
                .shrunk_from
                .as_ref()
                .map(|c| c.to_string())
                .unwrap_or_else(|| "(already minimal)".into()),
        );
    }
    assert_eq!(summary.executed, config.cases);
    assert!(
        summary.replayed >= 8,
        "regression corpus should be replayed"
    );
}
