//! The per-case invariant battery.
//!
//! For every generated [`ConformanceCase`] the suite runs the reference
//! [`Oracle`] once and the optimized engine once
//! per route-table mode, then checks:
//!
//! 1. **Bit identity**: every metric the engine reports — histograms,
//!    counters, queue samples, channel utilization, final cycle —
//!    equals the oracle's, for table `Off`, `On` and `Auto` alike, and
//!    again for the cycle-barrier sharded arbitrator at 2 and 4 shards.
//! 2. **Prohibited turns**: a [`TurnUsageObserver`] rides the table-off
//!    run whenever the algorithm has a classifiable mesh turn set; it
//!    hard-asserts no prohibited turn is ever taken.
//! 3. **Flit conservation**: per packet,
//!    `at_source + in_network + consumed == length`, and globally
//!    `delivered + queued + in_flight == generated`.
//! 4. **Deadlock freedom**: fault-free runs of the paper algorithms
//!    never trip the watchdog.
//! 5. **Minimal zero-load latency**: on an idle network a minimal
//!    algorithm's packets take exactly `distance(src, dst)` hops.
//! 6. **Thread invariance**: the sweep executor produces byte-identical
//!    CSV at 1 and at `threads` workers.

use crate::case::{BuiltCase, ConformanceCase};
use crate::oracle::{Oracle, OracleReport};
use turnroute_rng::{Rng, StdRng};
use turnroute_sim::obs::TurnUsageObserver;
use turnroute_sim::{
    Executor, LatencyHistogram, PacketState, RouteTableMode, RunOutcome, SeriesJob, SimReport,
    Simulation,
};
use turnroute_topology::NodeId;

/// Runs the full invariant battery for `case`. `Err` carries a
/// human-readable description of the first violated invariant.
///
/// # Panics
///
/// Propagates engine/observer panics (e.g. the prohibited-turn
/// assertion); the conformance runner catches them and treats them as
/// failures, so shrinking works on panicking cases too.
pub fn check_case(case: &ConformanceCase) -> Result<(), String> {
    case.validate()?;
    let built = case.build();
    let oracle = Oracle::new(
        built.topo.as_ref(),
        built.algo.as_ref(),
        built.pattern.as_ref(),
        built.config.clone(),
    )
    .run();

    for mode in [
        RouteTableMode::Off,
        RouteTableMode::On,
        RouteTableMode::Auto,
    ] {
        check_engine_mode(&built, &oracle, mode)?;
    }

    for shards in [2, 4] {
        check_engine_sharded(&built, &oracle, shards)?;
    }

    if case.faults.is_empty() && oracle.deadlocked {
        return Err("deadlock watchdog fired on a fault-free paper algorithm".into());
    }

    if built.algo.is_minimal() && case.faults.is_empty() {
        check_zero_load_minimal(&built, case.seed)?;
    }

    if built.threads > 1 {
        check_thread_invariance(&built, case)?;
    }

    Ok(())
}

/// One optimized-engine run under `mode`, compared field-for-field with
/// the oracle; the table-off run also carries the prohibited-turn
/// observer and feeds the flit-conservation check.
fn check_engine_mode(
    built: &BuiltCase,
    oracle: &OracleReport,
    mode: RouteTableMode,
) -> Result<(), String> {
    let config = built.config.clone().route_table(mode);
    let tag = format!("route-table {mode:?}");
    if mode == RouteTableMode::Off {
        if let Some(turns) = &built.turn_set {
            // The observer asserts every turn is allowed; a violation
            // panics, which the runner converts into a failure.
            let mut sim = Simulation::with_observer(
                built.topo.as_ref(),
                built.algo.as_ref(),
                built.pattern.as_ref(),
                config,
                TurnUsageObserver::new(turns.clone()),
            );
            let report = sim.run();
            compare_reports(
                oracle,
                &report,
                sim.cycle(),
                &sim.channel_utilization(),
                &tag,
            )?;
            return check_conservation(&sim, &report);
        }
    }
    let mut sim = Simulation::new(
        built.topo.as_ref(),
        built.algo.as_ref(),
        built.pattern.as_ref(),
        config,
    );
    let report = sim.run();
    compare_reports(
        oracle,
        &report,
        sim.cycle(),
        &sim.channel_utilization(),
        &tag,
    )?;
    if mode == RouteTableMode::Off {
        check_conservation(&sim, &report)?;
    }
    Ok(())
}

/// One sharded-engine run (route-table `Auto`), compared
/// field-for-field with the oracle: the cycle-barrier partitioned
/// arbitrator must be bit-identical at every shard count. Cases whose
/// configuration forces the serial fallback (RNG-consuming selection
/// policies) still run — the fallback too must be invisible.
fn check_engine_sharded(
    built: &BuiltCase,
    oracle: &OracleReport,
    shards: usize,
) -> Result<(), String> {
    let config = built.config.clone().shards(shards);
    let tag = format!("shards {shards}");
    let mut sim = Simulation::new(
        built.topo.as_ref(),
        built.algo.as_ref(),
        built.pattern.as_ref(),
        config,
    );
    let report = sim.run();
    compare_reports(
        oracle,
        &report,
        sim.cycle(),
        &sim.channel_utilization(),
        &tag,
    )
}

macro_rules! expect_eq {
    ($tag:expr, $what:expr, $oracle:expr, $engine:expr) => {
        if $oracle != $engine {
            return Err(format!(
                "{}: {} diverged: oracle {:?}, engine {:?}",
                $tag, $what, $oracle, $engine
            ));
        }
    };
}

/// Demands the optimized engine's report is bit-identical to the
/// oracle's. Raw oracle latency lists are folded through
/// [`LatencyHistogram::from_values`], which is exactly what the engine
/// records incrementally.
pub fn compare_reports(
    oracle: &OracleReport,
    report: &SimReport,
    cycle: u64,
    utilization: &[f64],
    tag: &str,
) -> Result<(), String> {
    let deadlocked = matches!(report.outcome, RunOutcome::Deadlocked(_));
    expect_eq!(tag, "outcome", oracle.deadlocked, deadlocked);
    expect_eq!(tag, "final cycle", oracle.cycle, cycle);
    expect_eq!(
        tag,
        "offered load",
        oracle.offered_load,
        report.offered_load
    );
    expect_eq!(
        tag,
        "total generated",
        oracle.total_generated,
        report.total_generated
    );
    expect_eq!(
        tag,
        "total delivered",
        oracle.total_delivered,
        report.total_delivered
    );
    expect_eq!(
        tag,
        "stranded packets",
        oracle.stranded_packets,
        report.stranded_packets
    );
    let m = &report.metrics;
    expect_eq!(tag, "window start", oracle.window_start, m.window_start);
    expect_eq!(tag, "window end", oracle.window_end, m.window_end);
    expect_eq!(
        tag,
        "flits delivered",
        oracle.flits_delivered,
        m.flits_delivered
    );
    expect_eq!(
        tag,
        "messages generated",
        oracle.messages_generated,
        m.messages_generated
    );
    expect_eq!(
        tag,
        "flits generated",
        oracle.flits_generated,
        m.flits_generated
    );
    expect_eq!(tag, "hop counts", oracle.hop_counts, m.hop_counts);
    expect_eq!(tag, "queue samples", oracle.queue_samples, m.queue_samples);
    expect_eq!(
        tag,
        "latency histogram",
        LatencyHistogram::from_values(&oracle.latencies),
        m.latencies
    );
    expect_eq!(
        tag,
        "network latency histogram",
        LatencyHistogram::from_values(&oracle.network_latencies),
        m.network_latencies
    );
    expect_eq!(
        tag,
        "channel utilization",
        oracle.channel_utilization,
        utilization
    );
    Ok(())
}

/// Flit conservation on the engine's final state: nothing is created or
/// destroyed between the source queue, the network and the destination.
fn check_conservation<O: turnroute_sim::obs::SimObserver>(
    sim: &Simulation<'_, O>,
    report: &SimReport,
) -> Result<(), String> {
    let mut delivered = 0u64;
    for p in sim.packets() {
        let total = p.flits_at_source() + p.flits_in_network() + p.flits_consumed();
        if total != p.length {
            return Err(format!(
                "flit conservation: packet {:?} has {} at source + {} in network + {} \
                 consumed != length {}",
                p.id,
                p.flits_at_source(),
                p.flits_in_network(),
                p.flits_consumed(),
                p.length
            ));
        }
        if p.state() == PacketState::Delivered {
            delivered += 1;
        }
    }
    if delivered != report.total_delivered {
        return Err(format!(
            "conservation: {} delivered packets but report says {}",
            delivered, report.total_delivered
        ));
    }
    let accounted = delivered + sim.in_flight().len() as u64 + sim.queued_messages() as u64;
    if accounted != report.total_generated {
        return Err(format!(
            "conservation: delivered {} + in-flight {} + queued {} != generated {}",
            delivered,
            sim.in_flight().len(),
            sim.queued_messages(),
            report.total_generated
        ));
    }
    Ok(())
}

/// On an idle network, a minimal algorithm's packets must take exactly
/// the shortest-path hop count. Three pairs drawn from the case seed.
fn check_zero_load_minimal(built: &BuiltCase, seed: u64) -> Result<(), String> {
    let topo = built.topo.as_ref();
    let n = topo.num_nodes();
    if n < 2 {
        return Ok(());
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CA5E);
    for _ in 0..3 {
        let src = NodeId::new(rng.random_range(0..n));
        let mut dst = NodeId::new(rng.random_range(0..n - 1));
        if dst.index() >= src.index() {
            dst = NodeId::new(dst.index() + 1);
        }
        let config = built
            .config
            .clone()
            .injection_rate(0.0)
            .fault_schedule(None);
        let mut sim = Simulation::new(topo, built.algo.as_ref(), built.pattern.as_ref(), config);
        let id = sim.inject_message(src, dst, 4);
        let budget = 4 * (topo.num_channels() as u64 + 16);
        for _ in 0..budget {
            if sim.packet(id).state() == PacketState::Delivered {
                break;
            }
            sim.step();
        }
        let p = sim.packet(id);
        if p.state() != PacketState::Delivered {
            return Err(format!(
                "zero-load: packet {src:?}->{dst:?} not delivered within {budget} cycles"
            ));
        }
        let want = topo.distance(src, dst) as u32;
        if p.hops() != want {
            return Err(format!(
                "zero-load minimality: {src:?}->{dst:?} took {} hops, shortest path is {want}",
                p.hops()
            ));
        }
    }
    Ok(())
}

/// The sweep executor must produce byte-identical CSV regardless of
/// worker count.
fn check_thread_invariance(built: &BuiltCase, case: &ConformanceCase) -> Result<(), String> {
    let loads = [case.load];
    let csv_for = |threads: usize| {
        let job = SeriesJob::simulation(
            built.topo.as_ref(),
            built.algo.as_ref(),
            built.pattern.as_ref(),
            &built.config,
            &loads,
        );
        let mut ex = Executor::new(threads);
        let series = ex.run(vec![job]);
        series
            .iter()
            .map(|s| s.to_csv())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let serial = csv_for(1);
    let parallel = csv_for(built.threads);
    if serial != parallel {
        return Err(format!(
            "thread invariance: executor CSV differs between 1 and {} workers:\n--- 1 ---\n\
             {serial}\n--- {} ---\n{parallel}",
            built.threads, built.threads
        ));
    }
    Ok(())
}
