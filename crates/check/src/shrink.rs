//! Shrink-candidate enumeration for failing cases.
//!
//! Candidates are ordered most-aggressive-first so greedy descent
//! removes whole axes (faults, threads, RNG-consuming policies) before
//! nibbling at sizes. The algorithm is deliberately never shrunk: it is
//! the subject under test, and a counterexample that silently switched
//! algorithms would mislead whoever debugs it.

use crate::case::{ConformanceCase, LengthSpec, PatternSpec, TopoSpec};
use turnroute_sim::{InputSelection, OutputSelection, TrafficModel};

/// Smaller variants of `case`, most aggressive first. Candidates may be
/// invalid (the caller filters through
/// [`validate`](ConformanceCase::validate)) and are all distinct from
/// `case`.
pub fn shrink_candidates(case: &ConformanceCase) -> Vec<ConformanceCase> {
    let mut out = Vec::new();
    let mut push = |c: ConformanceCase| {
        if c != *case {
            out.push(c);
        }
    };

    // Drop faults entirely, then one at a time.
    if !case.faults.is_empty() {
        let mut c = case.clone();
        c.faults.clear();
        push(c);
        for i in 0..case.faults.len() {
            let mut c = case.clone();
            c.faults.remove(i);
            push(c);
        }
    }

    // Collapse the executor to one worker.
    if case.threads > 1 {
        let mut c = case.clone();
        c.threads = 1;
        push(c);
    }

    // Replace RNG-consuming policies with deterministic ones.
    if case.output != OutputSelection::LowestDimension {
        let mut c = case.clone();
        c.output = OutputSelection::LowestDimension;
        push(c);
    }
    if case.input != InputSelection::FirstComeFirstServed {
        let mut c = case.clone();
        c.input = InputSelection::FirstComeFirstServed;
        push(c);
    }

    // Collapse bursty arrivals back to the legacy Poisson stream.
    if case.traffic != TrafficModel::Poisson {
        let mut c = case.clone();
        c.traffic = TrafficModel::Poisson;
        push(c);
    }

    // Simplify the traffic pattern.
    if case.pattern != PatternSpec::Uniform {
        let mut c = case.clone();
        c.pattern = PatternSpec::Uniform;
        push(c);
    }

    // Shorten the run.
    if case.warmup > 0 {
        let mut c = case.clone();
        c.warmup = 0;
        push(c);
    }
    if case.measure > 128 {
        let mut c = case.clone();
        c.measure = (case.measure / 2).max(128);
        push(c);
    }

    // Lighten the traffic.
    if case.load > 0.01 {
        let mut c = case.clone();
        c.load = (case.load / 2.0).max(0.01);
        push(c);
    }
    match case.lengths {
        LengthSpec::Fixed(l) if l > 1 => {
            let mut c = case.clone();
            c.lengths = LengthSpec::Fixed((l / 2).max(1));
            push(c);
        }
        LengthSpec::Bimodal(_, _) => {
            let mut c = case.clone();
            c.lengths = LengthSpec::Fixed(4);
            push(c);
        }
        _ => {}
    }

    // Shrink the topology (fault indices may go out of range; the
    // validity filter drops those candidates).
    match &case.topo {
        TopoSpec::Mesh(dims) => {
            for i in 0..dims.len() {
                if dims[i] > 2 {
                    let mut c = case.clone();
                    let TopoSpec::Mesh(d) = &mut c.topo else {
                        unreachable!()
                    };
                    d[i] -= 1;
                    push(c);
                }
            }
            if dims.len() > 1 {
                let mut c = case.clone();
                let TopoSpec::Mesh(d) = &mut c.topo else {
                    unreachable!()
                };
                d.pop();
                push(c);
            }
        }
        TopoSpec::Torus { k, n } => {
            if *k > 3 {
                let mut c = case.clone();
                c.topo = TopoSpec::Torus { k: k - 1, n: *n };
                push(c);
            }
            if *n > 1 {
                let mut c = case.clone();
                c.topo = TopoSpec::Torus { k: *k, n: n - 1 };
                push(c);
            }
        }
        TopoSpec::Hypercube(n) => {
            if *n > 1 {
                let mut c = case.clone();
                c.topo = TopoSpec::Hypercube(n - 1);
                push(c);
            }
        }
        TopoSpec::FullMesh(n) => {
            if *n > 3 {
                let mut c = case.clone();
                c.topo = TopoSpec::FullMesh(n - 1);
                push(c);
            }
        }
        TopoSpec::Ring(n) => {
            if *n > 3 {
                let mut c = case.clone();
                c.topo = TopoSpec::Ring(n - 1);
                push(c);
            }
        }
    }

    // Canonicalize the seed last: many failures are seed-independent,
    // and seed 0 makes the counterexample easier to talk about.
    if case.seed != 0 {
        let mut c = case.clone();
        c.seed = 0;
        push(c);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::AlgoSpec;
    use turnroute_sim::{InputSelection, OutputSelection};

    fn big_case() -> ConformanceCase {
        ConformanceCase {
            topo: TopoSpec::Mesh(vec![6, 6]),
            algo: AlgoSpec::NegativeFirst(false),
            pattern: PatternSpec::Transpose,
            load: 0.08,
            traffic: TrafficModel::Poisson,
            lengths: LengthSpec::Bimodal(10, 200),
            input: InputSelection::Random,
            output: OutputSelection::Random,
            seed: 99,
            warmup: 512,
            measure: 2048,
            threads: 4,
            faults: vec![1, 2],
        }
    }

    #[test]
    fn candidates_are_distinct_and_smaller_on_some_axis() {
        let case = big_case();
        let candidates = shrink_candidates(&case);
        assert!(candidates.len() > 10);
        for c in &candidates {
            assert_ne!(c, &case);
        }
    }

    #[test]
    fn algorithm_is_never_shrunk() {
        for c in shrink_candidates(&big_case()) {
            assert_eq!(c.algo, AlgoSpec::NegativeFirst(false));
        }
    }

    #[test]
    fn a_minimal_case_offers_few_or_no_candidates() {
        let case = ConformanceCase {
            topo: TopoSpec::Mesh(vec![2, 2]),
            algo: AlgoSpec::DimensionOrder,
            pattern: PatternSpec::Uniform,
            load: 0.01,
            traffic: TrafficModel::Poisson,
            lengths: LengthSpec::Fixed(1),
            input: InputSelection::FirstComeFirstServed,
            output: OutputSelection::LowestDimension,
            seed: 0,
            warmup: 0,
            measure: 128,
            threads: 1,
            faults: vec![],
        };
        let candidates = shrink_candidates(&case);
        // Only the mesh-to-1D collapse remains ([2] is a valid 1D mesh).
        assert!(candidates.len() <= 1, "{candidates:?}");
    }
}
