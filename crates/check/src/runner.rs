//! The conformance runner: regression replay, random generation,
//! greedy shrinking, and counterexample persistence.
//!
//! This is the vendored stand-in for a `proptest` runner. A run first
//! replays every case in the committed regression file (shrunk
//! counterexamples live forever, like `proptest-regressions/`), then
//! draws fresh cases from the configured seed. The first failure is
//! shrunk by greedy first-improvement descent over a fixed candidate
//! order and, when persistence is enabled, appended to the regression
//! file.

use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use crate::case::ConformanceCase;
use crate::gen::generate_case;
use crate::invariants::check_case;
use crate::shrink::shrink_candidates;
use turnroute_rng::StdRng;

/// The committed regression file, resolved relative to this crate so
/// the suite finds it from any working directory.
pub fn default_regression_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("regressions/conformance.txt")
}

/// Configuration of one conformance run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Fresh cases to generate after the regression replay.
    pub cases: u64,
    /// Seed for case generation.
    pub seed: u64,
    /// Regression file to replay first (skipped if the file is absent).
    pub regressions: Option<PathBuf>,
    /// Append the shrunk counterexample to the regression file on
    /// failure.
    pub persist: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            cases: 256,
            seed: 0xCAFE_F00D,
            regressions: Some(default_regression_path()),
            persist: false,
        }
    }
}

/// A failing case, shrunk.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The minimal failing case found.
    pub case: ConformanceCase,
    /// The invariant violation (or panic message) of the shrunk case.
    pub message: String,
    /// The originally generated case, when shrinking changed it.
    pub shrunk_from: Option<ConformanceCase>,
}

/// What a conformance run did.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Regression-file cases replayed.
    pub replayed: u64,
    /// Fresh cases executed (including the failing one, if any).
    pub executed: u64,
    /// The first failure, if the run is red. The run stops at the first
    /// failure, proptest-style.
    pub failure: Option<Failure>,
}

impl RunSummary {
    /// `true` if every case passed.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Runs `check_case` with panics (engine asserts, the prohibited-turn
/// observer) converted into `Err` so they shrink like ordinary
/// violations.
pub fn run_case(case: &ConformanceCase) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| check_case(case))) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Greedy first-improvement shrink: repeatedly replace the failing case
/// with its first smaller variant that still fails, until none does.
/// Bounded, deterministic, and tolerant of candidates that panic.
pub fn shrink(case: &ConformanceCase, budget: u64) -> (ConformanceCase, String) {
    let mut current = case.clone();
    let mut message = run_case(&current).expect_err("shrink starts from a failing case");
    let mut spent = 0u64;
    'outer: loop {
        for candidate in shrink_candidates(&current) {
            if spent >= budget {
                break 'outer;
            }
            if candidate.validate().is_err() {
                continue;
            }
            spent += 1;
            if let Err(msg) = run_case(&candidate) {
                current = candidate;
                message = msg;
                continue 'outer;
            }
        }
        break;
    }
    (current, message)
}

/// Parses a regression file: one case per line, `#` comments and blank
/// lines ignored.
pub fn parse_regression_file(text: &str) -> Result<Vec<ConformanceCase>, String> {
    let mut cases = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let case =
            ConformanceCase::parse(line).map_err(|e| format!("regression line {}: {e}", i + 1))?;
        cases.push(case);
    }
    Ok(cases)
}

/// Runs the suite: regression replay, then `cases` fresh draws.
pub fn run(config: &RunConfig) -> RunSummary {
    let mut replayed = 0u64;
    if let Some(path) = &config.regressions {
        if let Ok(text) = fs::read_to_string(path) {
            let cases = parse_regression_file(&text)
                .unwrap_or_else(|e| panic!("unparseable regression file {}: {e}", path.display()));
            for case in cases {
                replayed += 1;
                if let Err(message) = run_case(&case) {
                    // Regression entries are already shrunk; report
                    // directly.
                    return RunSummary {
                        replayed,
                        executed: 0,
                        failure: Some(Failure {
                            case,
                            message,
                            shrunk_from: None,
                        }),
                    };
                }
            }
        }
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut executed = 0u64;
    for _ in 0..config.cases {
        let case = generate_case(&mut rng);
        executed += 1;
        if run_case(&case).is_err() {
            let (shrunk, message) = shrink(&case, 300);
            let shrunk_from = (shrunk != case).then(|| case.clone());
            if config.persist {
                if let Some(path) = &config.regressions {
                    persist_failure(path, &shrunk, &message);
                }
            }
            return RunSummary {
                replayed,
                executed,
                failure: Some(Failure {
                    case: shrunk,
                    message,
                    shrunk_from,
                }),
            };
        }
    }
    RunSummary {
        replayed,
        executed,
        failure: None,
    }
}

/// Appends the shrunk counterexample (with its violation as a comment)
/// to the regression file, creating it if needed.
fn persist_failure(path: &Path, case: &ConformanceCase, message: &str) {
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    let existing = fs::read_to_string(path).unwrap_or_default();
    let comment = message.replace('\n', " / ");
    let entry = format!("# {comment}\n{case}\n");
    if !existing.contains(&case.to_string()) {
        let _ = fs::write(path, existing + &entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_committed_regression_file_parses() {
        let path = default_regression_path();
        let text =
            fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
        let cases = parse_regression_file(&text).unwrap();
        assert!(!cases.is_empty(), "regression file should seed the replay");
        for case in &cases {
            case.validate().unwrap_or_else(|e| panic!("{case}: {e}"));
        }
    }

    #[test]
    fn a_tiny_run_is_green() {
        let summary = run(&RunConfig {
            cases: 2,
            seed: 1,
            regressions: None,
            persist: false,
        });
        assert!(summary.passed(), "{:?}", summary.failure);
        assert_eq!(summary.executed, 2);
    }
}
