//! The reference oracle engine: a deliberately simple, allocation-heavy
//! reimplementation of the wormhole simulation semantics.
//!
//! This is the *model* in "model-based testing". It mirrors the
//! optimized engine in `turnroute-sim` cycle for cycle and RNG draw for
//! RNG draw, but takes none of its shortcuts:
//!
//! * routing is always a dyn-dispatched `route()` call — no
//!   [`RouteTable`](turnroute_sim::RouteTable), ever;
//! * every cycle builds fresh `Vec`s for requesters, grants and
//!   candidates — no scratch reuse, no epoch-stamped granted sets;
//! * the worm's tail channel is released with a `Vec::remove(0)` shift —
//!   no cursor;
//! * source queues are plain `Vec`s popped from the front.
//!
//! Keeping it this naive is the point: the oracle stays small enough to
//! audit by eye, so when it and the optimized engine disagree, the
//! engine is wrong. The conformance runner
//! ([`crate::invariants`]) asserts their reports are bit-identical.
//!
//! The only pieces shared with the real engine are the ones that *are*
//! the specification of the RNG stream: [`TrafficSource`] (arrival and
//! length draws, for both the Poisson and the MMPP on-off models) and
//! the [`TrafficPattern`] trait objects (destination draws). Everything
//! downstream of those draws is reimplemented here.

use turnroute_core::RoutingAlgorithm;
use turnroute_fault::FaultEvent;
use turnroute_rng::{Rng, StdRng};
use turnroute_sim::patterns::TrafficPattern;
use turnroute_sim::{cycles_to_usec, InputSelection, OutputSelection, SimConfig, TrafficSource};
use turnroute_topology::{ChannelId, Direction, NodeId, Topology};

/// A packet in the oracle: same lifecycle as the engine's
/// [`Packet`](turnroute_sim::Packet), with the worm stored as the plain
/// occupied-channel chain (tail first).
#[derive(Debug, Clone)]
struct OraclePacket {
    src: NodeId,
    dst: NodeId,
    length: u32,
    created_at: u64,
    injected_at: Option<u64>,
    delivered_at: Option<u64>,
    /// Occupied channels, tail first; the tail is released by
    /// `remove(0)`.
    worm: Vec<ChannelId>,
    stranded: bool,
    flits_at_source: u32,
    flits_consumed: u32,
    head_node: NodeId,
    arrived: Option<Direction>,
    head_arrival: u64,
    hops: u32,
}

/// Everything the oracle measured, kept raw: latencies are plain `Vec`s
/// (the pre-histogram representation), utilization is recomputed from
/// first principles. [`crate::invariants::compare_reports`] folds these
/// into the engine's report types and demands bit identity.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Offered load per node in flits per cycle, echoed from the config.
    pub offered_load: f64,
    /// Cycle the run stopped at.
    pub cycle: u64,
    /// `true` if the deadlock watchdog fired.
    pub deadlocked: bool,
    /// First cycle of the measurement window.
    pub window_start: u64,
    /// One past the last cycle of the measurement window.
    pub window_end: u64,
    /// Flits consumed at destinations during the window.
    pub flits_delivered: u64,
    /// Messages created during the window.
    pub messages_generated: u64,
    /// Flits created during the window.
    pub flits_generated: u64,
    /// Per-delivery total latency in cycles, for messages created in the
    /// window, in delivery order.
    pub latencies: Vec<u64>,
    /// Per-delivery network latency (injection to delivery) in cycles.
    pub network_latencies: Vec<u64>,
    /// Per-delivery hop counts, in delivery order.
    pub hop_counts: Vec<u32>,
    /// Queue-depth samples taken every 256 cycles inside the window.
    pub queue_samples: Vec<usize>,
    /// Packets the routing relation stranded.
    pub stranded_packets: u64,
    /// Messages delivered over the whole run.
    pub total_delivered: u64,
    /// Messages created over the whole run.
    pub total_generated: u64,
    /// Per-channel offered load over the window, flits per microsecond.
    pub channel_utilization: Vec<f64>,
}

/// The reference engine. Build one with [`Oracle::new`] and call
/// [`Oracle::run`]; both take the same inputs as
/// [`Simulation`](turnroute_sim::Simulation).
pub struct Oracle<'a> {
    topo: &'a dyn Topology,
    algo: &'a dyn RoutingAlgorithm,
    pattern: &'a dyn TrafficPattern,
    config: SimConfig,
    rng: StdRng,
    source: TrafficSource,
    cycle: u64,
    packets: Vec<OraclePacket>,
    queues: Vec<Vec<usize>>,
    injecting: Vec<Option<usize>>,
    ejecting: Vec<Option<usize>>,
    channel_owner: Vec<Option<usize>>,
    faulty: Vec<bool>,
    fault_events: Vec<FaultEvent>,
    fault_cursor: usize,
    prune_faulty: bool,
    fault_repairs: bool,
    channel_flits: Vec<u64>,
    in_flight: Vec<usize>,
    stranded_count: u64,
    last_progress: u64,
    generation_enabled: bool,
    window_start: u64,
    window_end: u64,
    flits_delivered: u64,
    messages_generated: u64,
    flits_generated: u64,
    latencies: Vec<u64>,
    network_latencies: Vec<u64>,
    hop_counts: Vec<u32>,
    queue_samples: Vec<usize>,
    total_delivered: u64,
    total_generated: u64,
}

impl<'a> Oracle<'a> {
    /// Builds the oracle. Mirrors the engine's constructor, including
    /// the RNG draw for each node's first Poisson arrival.
    pub fn new(
        topo: &'a dyn Topology,
        algo: &'a dyn RoutingAlgorithm,
        pattern: &'a dyn TrafficPattern,
        config: SimConfig,
    ) -> Self {
        let (fault_events, fault_repairs) = match config.faults.as_deref() {
            Some(schedule) => {
                assert_eq!(
                    schedule.num_channels(),
                    topo.num_channels(),
                    "fault schedule compiled for a different topology"
                );
                (schedule.events().to_vec(), schedule.has_repairs())
            }
            None => (Vec::new(), false),
        };
        let prune_faulty = !fault_events.is_empty();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let source = TrafficSource::for_config(topo.num_nodes(), &config, &mut rng);
        Oracle {
            topo,
            algo,
            pattern,
            config,
            rng,
            source,
            cycle: 0,
            packets: Vec::new(),
            queues: vec![Vec::new(); topo.num_nodes()],
            injecting: vec![None; topo.num_nodes()],
            ejecting: vec![None; topo.num_nodes()],
            channel_owner: vec![None; topo.num_channels()],
            faulty: vec![false; topo.num_channels()],
            fault_events,
            fault_cursor: 0,
            prune_faulty,
            fault_repairs,
            channel_flits: vec![0; topo.num_channels()],
            in_flight: Vec::new(),
            stranded_count: 0,
            last_progress: 0,
            generation_enabled: true,
            window_start: 0,
            window_end: 0,
            flits_delivered: 0,
            messages_generated: 0,
            flits_generated: 0,
            latencies: Vec::new(),
            network_latencies: Vec::new(),
            hop_counts: Vec::new(),
            queue_samples: Vec::new(),
            total_delivered: 0,
            total_generated: 0,
        }
    }

    /// Runs warmup, the measurement window, then the drain phase, and
    /// reports — the same phases and early-exit rules as
    /// [`Simulation::run`](turnroute_sim::Simulation::run).
    pub fn run(mut self) -> OracleReport {
        self.window_start = self.config.warmup_cycles;
        self.window_end = self.config.warmup_cycles + self.config.measure_cycles;
        let drain_limit = self.window_end + self.config.measure_cycles;

        let mut deadlocked = false;
        while self.cycle < drain_limit {
            if self.cycle == self.window_end {
                self.generation_enabled = false;
            }
            if self.step() {
                deadlocked = true;
                break;
            }
            if self.cycle > self.window_end
                && self.in_flight.is_empty()
                && self.queued_messages() == 0
            {
                break;
            }
        }
        let channel_utilization = self.channel_utilization();
        OracleReport {
            offered_load: self.config.injection_rate_flits,
            cycle: self.cycle,
            deadlocked,
            window_start: self.window_start,
            window_end: self.window_end,
            flits_delivered: self.flits_delivered,
            messages_generated: self.messages_generated,
            flits_generated: self.flits_generated,
            latencies: self.latencies,
            network_latencies: self.network_latencies,
            hop_counts: self.hop_counts,
            queue_samples: self.queue_samples,
            stranded_packets: self.stranded_count,
            total_delivered: self.total_delivered,
            total_generated: self.total_generated,
            channel_utilization,
        }
    }

    /// One cycle: faults, generation, arbitration, advance, bookkeeping.
    /// Returns `true` if the deadlock watchdog fired.
    fn step(&mut self) -> bool {
        while let Some(&ev) = self.fault_events.get(self.fault_cursor) {
            if ev.cycle > self.cycle {
                break;
            }
            self.fault_cursor += 1;
            self.faulty[ev.channel.index()] = ev.fail;
        }
        self.generate();
        let grants = self.arbitrate();
        let progressed = self.advance(grants);
        if self.in_window(self.cycle) && self.cycle.is_multiple_of(256) {
            let queued = self.queued_messages();
            self.queue_samples.push(queued);
        }
        if progressed || self.stranded_count == self.in_flight.len() as u64 {
            self.last_progress = self.cycle;
        }
        self.cycle += 1;
        !self.in_flight.is_empty()
            && self.cycle - self.last_progress >= self.config.deadlock_threshold
    }

    fn in_window(&self, cycle: u64) -> bool {
        cycle >= self.window_start && cycle < self.window_end
    }

    fn queued_messages(&self) -> usize {
        self.queues.iter().map(Vec::len).sum()
    }

    fn generate(&mut self) {
        if !self.generation_enabled {
            return;
        }
        // Two passes, like the engine: all arrival/length draws first
        // (node order), then all destination draws (message order).
        let mut messages: Vec<(NodeId, u32)> = Vec::new();
        for node in 0..self.topo.num_nodes() {
            self.source.poll(node, self.cycle, &mut self.rng, |len| {
                messages.push((NodeId::new(node), len));
            });
        }
        for (src, len) in messages {
            if let Some(dst) = self.pattern.dest(self.topo, src, &mut self.rng) {
                self.inject_message(src, dst, len);
            }
        }
    }

    fn inject_message(&mut self, src: NodeId, dst: NodeId, length: u32) {
        assert!(length > 0, "packets have at least one flit");
        assert_ne!(src, dst, "self-addressed packets are consumed locally");
        let id = self.packets.len();
        self.packets.push(OraclePacket {
            src,
            dst,
            length,
            created_at: self.cycle,
            injected_at: None,
            delivered_at: None,
            worm: Vec::new(),
            stranded: false,
            flits_at_source: length,
            flits_consumed: 0,
            head_node: src,
            arrived: None,
            head_arrival: self.cycle,
            hops: 0,
        });
        self.queues[src.index()].push(id);
        self.total_generated += 1;
        if self.in_window(self.cycle) {
            self.messages_generated += 1;
            self.flits_generated += length as u64;
        }
    }

    /// The permitted direction set for packet `id`, pruned of failed
    /// channels when a fault plan is active (matching the engine's
    /// table-off path, which the table-on path is bit-identical to).
    fn permitted(&self, id: usize) -> turnroute_topology::DirSet {
        let p = &self.packets[id];
        let mut permitted = self.algo.route(self.topo, p.head_node, p.dst, p.arrived);
        if self.prune_faulty {
            for dir in permitted {
                match self.topo.channel_from(p.head_node, dir) {
                    Some(c) if !self.faulty[c.index()] => {}
                    _ => permitted.remove(dir),
                }
            }
        }
        permitted
    }

    /// Permitted directions in the output-selection policy's preference
    /// order. A fresh `Vec` per call; the Random policy draws the same
    /// Fisher-Yates sequence as the engine.
    fn ordered_directions(&mut self, id: usize) -> Vec<Direction> {
        let permitted = self.permitted(id);
        let arrived = self.packets[id].arrived;
        let mut dirs: Vec<Direction> = permitted.iter().collect();
        match self.config.output_selection {
            OutputSelection::LowestDimension => {}
            OutputSelection::HighestDimension => dirs.reverse(),
            OutputSelection::StraightFirst => {
                if let Some(fwd) = arrived {
                    if let Some(pos) = dirs.iter().position(|&d| d == fwd) {
                        dirs[..=pos].rotate_right(1);
                    }
                }
            }
            OutputSelection::Random => {
                for i in (1..dirs.len()).rev() {
                    let j = self.rng.random_range(0..=i);
                    dirs.swap(i, j);
                }
            }
        }
        dirs
    }

    /// One arbitration pass; returns the `(packet, channel)` grants.
    fn arbitrate(&mut self) -> Vec<(usize, ChannelId)> {
        let mut requesters: Vec<usize> = Vec::new();
        for &id in &self.in_flight {
            let p = &self.packets[id];
            if p.head_node != p.dst && !p.stranded {
                requesters.push(id);
            }
        }
        for node in 0..self.topo.num_nodes() {
            if self.injecting[node].is_none() {
                if let Some(&head) = self.queues[node].first() {
                    requesters.push(head);
                }
            }
        }

        match self.config.input_selection {
            InputSelection::FirstComeFirstServed => {
                requesters.sort_by_key(|&id| (self.packets[id].head_arrival, id));
            }
            InputSelection::FixedPriority => {
                requesters.sort_by_key(|&id| {
                    let rank = self.packets[id].arrived.map_or(0, |d| d.index() + 1);
                    (rank, id)
                });
            }
            InputSelection::Random => {
                for i in (1..requesters.len()).rev() {
                    let j = self.rng.random_range(0..=i);
                    requesters.swap(i, j);
                }
            }
        }

        let mut grants: Vec<(usize, ChannelId)> = Vec::new();
        let mut granted: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for id in requesters {
            let permitted = self.permitted(id);
            let dirs = self.ordered_directions(id);
            let head = self.packets[id].head_node;
            let candidates: Vec<ChannelId> = dirs
                .iter()
                .filter_map(|&dir| self.topo.channel_from(head, dir))
                .filter(|c| !self.faulty[c.index()] && self.channel_owner[c.index()].is_none())
                .collect();
            if candidates.is_empty() {
                if permitted.is_empty() {
                    // Under repairs an empty pruned set may heal; strand
                    // only if the raw relation itself offers nothing.
                    let permanent = !(self.prune_faulty && self.fault_repairs) || {
                        let p = &self.packets[id];
                        self.algo
                            .route(self.topo, p.head_node, p.dst, p.arrived)
                            .is_empty()
                    };
                    if permanent {
                        let in_flight = self.packets[id].injected_at.is_some()
                            && self.packets[id].delivered_at.is_none();
                        if in_flight && !self.packets[id].stranded {
                            self.packets[id].stranded = true;
                            self.stranded_count += 1;
                        }
                    }
                }
                continue;
            }
            if let Some(&channel) = candidates.iter().find(|c| !granted.contains(&c.index())) {
                granted.insert(channel.index());
                grants.push((id, channel));
            }
        }
        grants
    }

    /// Consumption at destinations, then granted moves. Returns whether
    /// anything progressed.
    fn advance(&mut self, grants: Vec<(usize, ChannelId)>) -> bool {
        let mut progressed = false;
        let mut at_dest: Vec<usize> = self
            .in_flight
            .iter()
            .copied()
            .filter(|&id| self.packets[id].head_node == self.packets[id].dst)
            .collect();
        at_dest.sort_by_key(|&id| (self.packets[id].head_arrival, id));
        for id in at_dest {
            let node = self.packets[id].dst.index();
            match self.ejecting[node] {
                None => self.ejecting[node] = Some(id),
                Some(holder) if holder == id => {}
                Some(_) => continue,
            }
            self.consume_one_flit(id);
            progressed = true;
        }
        for (id, channel) in grants {
            self.take_channel(id, channel);
            progressed = true;
        }
        progressed
    }

    fn take_channel(&mut self, id: usize, channel: ChannelId) {
        let ch = self.topo.channel(channel);
        if self.packets[id].injected_at.is_none() {
            let node = ch.src.index();
            let front = self.queues[node].remove(0);
            assert_eq!(front, id, "granted a non-head queued packet");
            self.injecting[node] = Some(id);
            self.packets[id].injected_at = Some(self.cycle);
            self.in_flight.push(id);
        }
        self.channel_owner[channel.index()] = Some(id);
        if self.in_window(self.cycle) {
            self.channel_flits[channel.index()] += self.packets[id].length as u64;
        }
        let p = &mut self.packets[id];
        p.worm.push(channel);
        p.head_node = ch.dst;
        p.arrived = Some(ch.dir);
        p.head_arrival = self.cycle + 1;
        p.hops += 1;
        self.shift_tail(id);
    }

    fn consume_one_flit(&mut self, id: usize) {
        if self.in_window(self.cycle) {
            self.flits_delivered += 1;
        }
        self.packets[id].flits_consumed += 1;
        let done = self.packets[id].flits_consumed == self.packets[id].length;
        self.shift_tail(id);
        if done {
            assert!(
                self.packets[id].worm.is_empty(),
                "delivered with flits in flight"
            );
            self.packets[id].delivered_at = Some(self.cycle);
            let dst = self.packets[id].dst.index();
            if self.ejecting[dst] == Some(id) {
                self.ejecting[dst] = None;
            }
            self.total_delivered += 1;
            self.in_flight.retain(|&q| q != id);
            let p = &self.packets[id];
            if p.created_at >= self.window_start && p.created_at < self.window_end {
                self.latencies.push(self.cycle - p.created_at);
                self.network_latencies
                    .push(self.cycle - p.injected_at.expect("delivered => injected"));
                self.hop_counts.push(p.hops);
            }
        }
    }

    /// Feed the tail after a head move: a fresh flit leaves the source,
    /// or the tail channel drains (`Vec::remove(0)` — the naive shift
    /// the engine replaced with a cursor).
    fn shift_tail(&mut self, id: usize) {
        if self.packets[id].flits_at_source > 0 {
            self.packets[id].flits_at_source -= 1;
            if self.packets[id].flits_at_source == 0 {
                let src = self.packets[id].src.index();
                if self.injecting[src] == Some(id) {
                    self.injecting[src] = None;
                }
            }
        } else if !self.packets[id].worm.is_empty() {
            let tail = self.packets[id].worm.remove(0);
            self.channel_owner[tail.index()] = None;
        }
    }

    fn channel_utilization(&self) -> Vec<f64> {
        let cycles = self
            .window_end
            .min(self.cycle)
            .saturating_sub(self.window_start);
        if cycles == 0 {
            return vec![0.0; self.channel_flits.len()];
        }
        let usec = cycles_to_usec(cycles);
        self.channel_flits
            .iter()
            .map(|&f| f as f64 / usec)
            .collect()
    }
}
