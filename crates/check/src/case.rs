//! Conformance cases: a self-contained, text-serializable description
//! of one generated scenario — topology, algorithm, traffic pattern,
//! load, message lengths, selection policies, seed, windows, thread
//! count and static fault set.
//!
//! Cases round-trip through a one-line `key=value` format so shrunk
//! counterexamples can be committed to
//! `crates/check/regressions/conformance.txt` and replayed forever (the
//! offline stand-in for `proptest-regressions/`).

use std::fmt;
use std::sync::Arc;

use turnroute_core::{
    Abonf, Abopl, DimensionOrder, FirstHopWraparound, NegativeFirst, NegativeFirstTorus, NorthLast,
    PCube, RoutingAlgorithm, TurnSet, WestFirst,
};
use turnroute_fault::FaultPlan;
use turnroute_rng::split_mix_64;
use turnroute_sim::patterns::{
    BitComplement, BitReversal, DiagonalTranspose, Hotspot, NearestNeighbor, ReverseFlip, Shuffle,
    Tornado, Trace, TrafficPattern, Transpose, Uniform,
};
use turnroute_sim::{InputSelection, LengthDistribution, OutputSelection, SimConfig, TrafficModel};
use turnroute_synth::{synthesize, GraphSpec, GraphTopology, SynthesisOptions};
use turnroute_topology::{ChannelId, Hypercube, Mesh, NodeId, Topology, Torus};

/// Topology of a case, within the suite's size bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopoSpec {
    /// An n-dimensional mesh with the given extents.
    Mesh(Vec<usize>),
    /// A k-ary n-cube torus.
    Torus {
        /// Radix (≥ 3; k = 2 is a hypercube).
        k: usize,
        /// Dimensions.
        n: usize,
    },
    /// An n-dimensional hypercube.
    Hypercube(usize),
    /// A fully connected graph on `n` nodes (a graph topology).
    FullMesh(usize),
    /// A bidirectional ring on `n` nodes (a graph topology).
    Ring(usize),
}

impl TopoSpec {
    /// Instantiates the topology.
    pub fn build(&self) -> Box<dyn Topology> {
        match self {
            TopoSpec::Mesh(dims) => Box::new(Mesh::new(dims.clone())),
            TopoSpec::Torus { k, n } => Box::new(Torus::new(*k, *n)),
            TopoSpec::Hypercube(n) => Box::new(Hypercube::new(*n)),
            TopoSpec::FullMesh(n) => Box::new(
                GraphTopology::new(&GraphSpec::full_mesh(*n)).expect("validated full mesh builds"),
            ),
            TopoSpec::Ring(n) => {
                Box::new(GraphTopology::new(&GraphSpec::ring(*n)).expect("validated ring builds"))
            }
        }
    }

    /// Node count without instantiating the topology (cases gate the
    /// trace pattern's referenced-node range on it).
    pub fn num_nodes(&self) -> usize {
        match self {
            TopoSpec::Mesh(dims) => dims.iter().product(),
            TopoSpec::Torus { k, n } => k.pow(*n as u32),
            TopoSpec::Hypercube(n) => 1 << n,
            TopoSpec::FullMesh(n) | TopoSpec::Ring(n) => *n,
        }
    }

    fn num_dims(&self) -> usize {
        match self {
            TopoSpec::Mesh(dims) => dims.len(),
            TopoSpec::Torus { n, .. } => *n,
            TopoSpec::Hypercube(n) => *n,
            // Graph topologies have direction-pair counts, not
            // geometric dimensions; no Cartesian algorithm supports
            // them, so the value is never load-bearing.
            TopoSpec::FullMesh(_) | TopoSpec::Ring(_) => 0,
        }
    }

    fn is_square_2d_mesh(&self) -> bool {
        matches!(self, TopoSpec::Mesh(dims) if dims.len() == 2 && dims[0] == dims[1])
    }
}

impl fmt::Display for TopoSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoSpec::Mesh(dims) => {
                write!(f, "mesh:")?;
                for (i, d) in dims.iter().enumerate() {
                    if i > 0 {
                        write!(f, "x")?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
            TopoSpec::Torus { k, n } => write!(f, "torus:{k},{n}"),
            TopoSpec::Hypercube(n) => write!(f, "hypercube:{n}"),
            TopoSpec::FullMesh(n) => write!(f, "fullmesh:{n}"),
            TopoSpec::Ring(n) => write!(f, "ring:{n}"),
        }
    }
}

/// Routing algorithm of a case. The `bool` on the two-phase algorithms
/// selects the minimal (`true`) or nonminimal variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoSpec {
    /// Dimension-order ("xy" / e-cube) routing.
    DimensionOrder,
    /// West-first (2D mesh).
    WestFirst(bool),
    /// North-last (2D mesh).
    NorthLast(bool),
    /// Negative-first (any mesh-like dimensionality).
    NegativeFirst(bool),
    /// Abbreviated negative-first, "abonf".
    Abonf(bool),
    /// Abbreviated positive-last, "abopl".
    Abopl(bool),
    /// The p-cube algorithm (hypercube).
    PCube(bool),
    /// Negative-first extended to tori.
    NegativeFirstTorus,
    /// First-hop-wraparound torus routing over minimal negative-first.
    FirstHopWrap,
    /// A synthesized turn model (graph topologies), from a fixed-seed
    /// bounded search so cases stay deterministic.
    Synth,
}

impl AlgoSpec {
    const NAMES: &'static [(AlgoSpec, &'static str)] = &[
        (AlgoSpec::DimensionOrder, "xy"),
        (AlgoSpec::WestFirst(true), "west-first"),
        (AlgoSpec::WestFirst(false), "west-first-nonmin"),
        (AlgoSpec::NorthLast(true), "north-last"),
        (AlgoSpec::NorthLast(false), "north-last-nonmin"),
        (AlgoSpec::NegativeFirst(true), "negative-first"),
        (AlgoSpec::NegativeFirst(false), "negative-first-nonmin"),
        (AlgoSpec::Abonf(true), "abonf"),
        (AlgoSpec::Abonf(false), "abonf-nonmin"),
        (AlgoSpec::Abopl(true), "abopl"),
        (AlgoSpec::Abopl(false), "abopl-nonmin"),
        (AlgoSpec::PCube(true), "p-cube"),
        (AlgoSpec::PCube(false), "p-cube-nonmin"),
        (AlgoSpec::NegativeFirstTorus, "negative-first-torus"),
        (AlgoSpec::FirstHopWrap, "first-hop-wrap"),
        (AlgoSpec::Synth, "synth"),
    ];

    fn name(self) -> &'static str {
        AlgoSpec::NAMES
            .iter()
            .find(|(a, _)| *a == self)
            .expect("every variant is named")
            .1
    }

    /// `true` if this algorithm is defined on `topo`.
    pub fn supports(self, topo: &TopoSpec) -> bool {
        let n = topo.num_dims();
        match self {
            AlgoSpec::DimensionOrder => {
                matches!(topo, TopoSpec::Mesh(_) | TopoSpec::Hypercube(_))
            }
            AlgoSpec::WestFirst(_) | AlgoSpec::NorthLast(_) => {
                matches!(topo, TopoSpec::Mesh(_)) && n == 2
            }
            AlgoSpec::NegativeFirst(_) | AlgoSpec::Abonf(_) | AlgoSpec::Abopl(_) => {
                matches!(topo, TopoSpec::Mesh(_) | TopoSpec::Hypercube(_))
            }
            AlgoSpec::PCube(_) => matches!(topo, TopoSpec::Hypercube(_)),
            AlgoSpec::NegativeFirstTorus | AlgoSpec::FirstHopWrap => {
                matches!(topo, TopoSpec::Torus { .. })
            }
            AlgoSpec::Synth => matches!(topo, TopoSpec::FullMesh(_) | TopoSpec::Ring(_)),
        }
    }

    /// Instantiates the algorithm for `topo`.
    pub fn build(self, topo: &TopoSpec) -> Box<dyn RoutingAlgorithm> {
        let n = topo.num_dims();
        match self {
            AlgoSpec::DimensionOrder => Box::new(DimensionOrder::new()),
            AlgoSpec::WestFirst(min) => Box::new(WestFirst::with_dims(n, min)),
            AlgoSpec::NorthLast(min) => Box::new(NorthLast::with_dims(n, min)),
            AlgoSpec::NegativeFirst(min) => Box::new(NegativeFirst::with_dims(n, min)),
            AlgoSpec::Abonf(min) => Box::new(Abonf::with_dims(n, min)),
            AlgoSpec::Abopl(min) => Box::new(Abopl::with_dims(n, min)),
            AlgoSpec::PCube(min) => {
                if min {
                    Box::new(PCube::minimal())
                } else {
                    Box::new(PCube::nonminimal())
                }
            }
            AlgoSpec::NegativeFirstTorus => {
                let TopoSpec::Torus { k, n } = *topo else {
                    panic!("negative-first-torus needs a torus");
                };
                Box::new(NegativeFirstTorus::new(&Torus::new(k, n)))
            }
            AlgoSpec::FirstHopWrap => {
                let TopoSpec::Torus { k, n } = *topo else {
                    panic!("first-hop-wrap needs a torus");
                };
                Box::new(FirstHopWraparound::new(
                    &Torus::new(k, n),
                    NegativeFirst::with_dims(n, true),
                ))
            }
            AlgoSpec::Synth => {
                // A fixed-seed bounded search keeps the case cheap and
                // reproducible; the suite's graph topologies are
                // bidirectional, so a viable relation always exists.
                let built = topo.build();
                let synthesis = synthesize(
                    built.as_ref(),
                    &SynthesisOptions {
                        seed: 1,
                        candidates: 8,
                        threads: 1,
                    },
                )
                .expect("bidirectional suite graphs synthesize");
                Box::new(synthesis.routing)
            }
        }
    }

    /// The mesh turn set this algorithm routes within, when it has one
    /// (torus wraparound algorithms are not turn-set classifiable).
    /// Feeds the prohibited-turn observer check.
    pub fn turn_set(self, topo: &TopoSpec) -> Option<TurnSet> {
        let n = topo.num_dims();
        match self {
            AlgoSpec::DimensionOrder => Some(TurnSet::dimension_order(n)),
            AlgoSpec::WestFirst(_) => Some(TurnSet::west_first()),
            AlgoSpec::NorthLast(_) => Some(TurnSet::north_last()),
            AlgoSpec::NegativeFirst(_) | AlgoSpec::PCube(_) => Some(TurnSet::negative_first(n)),
            AlgoSpec::Abonf(_) => Some(TurnSet::abonf(n)),
            AlgoSpec::Abopl(_) => Some(TurnSet::abopl(n)),
            AlgoSpec::NegativeFirstTorus | AlgoSpec::FirstHopWrap | AlgoSpec::Synth => None,
        }
    }
}

impl fmt::Display for AlgoSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Traffic pattern of a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternSpec {
    /// Uniform random destinations.
    Uniform,
    /// Matrix transpose (2D square mesh).
    Transpose,
    /// Diagonal transpose (2D square mesh).
    DiagonalTranspose,
    /// Coordinate reflection.
    BitComplement,
    /// Halfway around dimension 0.
    Tornado,
    /// A uniformly random neighbor.
    NearestNeighbor,
    /// 20% of traffic to node 0, the rest uniform.
    Hotspot,
    /// Reverse-flip (hypercube).
    ReverseFlip,
    /// Bit-reversal (hypercube).
    BitReversal,
    /// Perfect shuffle (hypercube).
    Shuffle,
    /// A trace-driven destination file over the first `nodes` nodes,
    /// generated deterministically from `seed` and written to a temp
    /// fixture at build time (exercising the file parser end to end).
    Trace {
        /// Nodes the fixture references (2..=topology size).
        nodes: u16,
        /// Content seed for the deterministic fixture generator.
        seed: u16,
    },
}

impl PatternSpec {
    const NAMES: &'static [(PatternSpec, &'static str)] = &[
        (PatternSpec::Uniform, "uniform"),
        (PatternSpec::Transpose, "transpose"),
        (PatternSpec::DiagonalTranspose, "diagonal-transpose"),
        (PatternSpec::BitComplement, "bit-complement"),
        (PatternSpec::Tornado, "tornado"),
        (PatternSpec::NearestNeighbor, "neighbor"),
        (PatternSpec::Hotspot, "hotspot"),
        (PatternSpec::ReverseFlip, "reverse-flip"),
        (PatternSpec::BitReversal, "bit-reversal"),
        (PatternSpec::Shuffle, "shuffle"),
    ];

    fn name(self) -> &'static str {
        PatternSpec::NAMES
            .iter()
            .find(|(p, _)| *p == self)
            .expect("every non-parameterized variant is named")
            .1
    }

    /// `true` if this pattern is defined on `topo`.
    pub fn supports(self, topo: &TopoSpec) -> bool {
        match self {
            PatternSpec::Uniform
            | PatternSpec::BitComplement
            | PatternSpec::Tornado
            | PatternSpec::NearestNeighbor
            | PatternSpec::Hotspot => true,
            PatternSpec::Transpose | PatternSpec::DiagonalTranspose => topo.is_square_2d_mesh(),
            PatternSpec::ReverseFlip | PatternSpec::BitReversal | PatternSpec::Shuffle => {
                matches!(topo, TopoSpec::Hypercube(_))
            }
            PatternSpec::Trace { nodes, .. } => usize::from(nodes) <= topo.num_nodes(),
        }
    }

    /// Instantiates the pattern.
    pub fn build(self) -> Box<dyn TrafficPattern> {
        match self {
            PatternSpec::Uniform => Box::new(Uniform),
            PatternSpec::Transpose => Box::new(Transpose),
            PatternSpec::DiagonalTranspose => Box::new(DiagonalTranspose),
            PatternSpec::BitComplement => Box::new(BitComplement),
            PatternSpec::Tornado => Box::new(Tornado),
            PatternSpec::NearestNeighbor => Box::new(NearestNeighbor),
            PatternSpec::Hotspot => Box::new(Hotspot::new(NodeId::new(0), 0.2)),
            PatternSpec::ReverseFlip => Box::new(ReverseFlip),
            PatternSpec::BitReversal => Box::new(BitReversal),
            PatternSpec::Shuffle => Box::new(Shuffle),
            PatternSpec::Trace { nodes, seed } => {
                // Round-trip through a real file so the case covers the
                // same path as `--pattern trace:FILE`, not just the
                // in-memory parser.
                let text = trace_fixture_text(nodes, seed);
                let path = std::env::temp_dir()
                    .join(format!("turnroute-check-trace-{nodes}-{seed}.trace"));
                std::fs::write(&path, &text).expect("trace fixture writes");
                let read = std::fs::read_to_string(&path).expect("trace fixture reads back");
                Box::new(
                    Trace::parse(&read, format!("trace:{nodes},{seed}"))
                        .expect("generated trace fixture parses"),
                )
            }
        }
    }
}

/// Deterministic trace-file content for [`PatternSpec::Trace`]: every
/// source gets 1-3 weighted destination entries from a splitmix walk,
/// so the one-line case serialization reproduces the whole fixture.
fn trace_fixture_text(nodes: u16, seed: u16) -> String {
    use fmt::Write as _;
    let mut s = 0x7472_6163_653A_0000u64 ^ (u64::from(seed) << 32) ^ u64::from(nodes);
    let mut out = format!("# conformance trace fixture nodes={nodes} seed={seed}\n");
    for src in 0..u64::from(nodes) {
        let entries = 1 + split_mix_64(&mut s) % 3;
        for _ in 0..entries {
            let dst = split_mix_64(&mut s) % u64::from(nodes);
            let weight = 1 + split_mix_64(&mut s) % 9;
            let _ = writeln!(out, "{src} {dst} {weight}");
        }
    }
    out
}

impl fmt::Display for PatternSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternSpec::Trace { nodes, seed } => write!(f, "trace:{nodes},{seed}"),
            other => f.write_str(other.name()),
        }
    }
}

/// Message length distribution of a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LengthSpec {
    /// Every message the same length.
    Fixed(u32),
    /// Two lengths, equally likely.
    Bimodal(u32, u32),
}

impl LengthSpec {
    fn to_distribution(self) -> LengthDistribution {
        match self {
            LengthSpec::Fixed(l) => LengthDistribution::Fixed(l),
            LengthSpec::Bimodal(short, long) => LengthDistribution::Bimodal { short, long },
        }
    }
}

impl fmt::Display for LengthSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LengthSpec::Fixed(l) => write!(f, "fixed:{l}"),
            LengthSpec::Bimodal(s, l) => write!(f, "bimodal:{s},{l}"),
        }
    }
}

/// One fully specified conformance scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceCase {
    /// Topology.
    pub topo: TopoSpec,
    /// Routing algorithm.
    pub algo: AlgoSpec,
    /// Traffic pattern.
    pub pattern: PatternSpec,
    /// Offered load per node in flits per cycle.
    pub load: f64,
    /// Arrival process delivering that load (Poisson or bursty MMPP).
    pub traffic: TrafficModel,
    /// Message lengths.
    pub lengths: LengthSpec,
    /// Input (arbitration) policy.
    pub input: InputSelection,
    /// Output (channel choice) policy.
    pub output: OutputSelection,
    /// RNG seed.
    pub seed: u64,
    /// Warmup cycles.
    pub warmup: u64,
    /// Measurement window cycles.
    pub measure: u64,
    /// Executor thread count for the thread-invariance check.
    pub threads: usize,
    /// Channel indices failed permanently from cycle 0 (static plan).
    pub faults: Vec<usize>,
}

/// A case instantiated into the simulator's types.
pub struct BuiltCase {
    /// The topology.
    pub topo: Box<dyn Topology>,
    /// The routing algorithm.
    pub algo: Box<dyn RoutingAlgorithm>,
    /// The traffic pattern.
    pub pattern: Box<dyn TrafficPattern>,
    /// The mesh turn set the algorithm routes within, if classifiable.
    pub turn_set: Option<TurnSet>,
    /// The base configuration (route-table mode left at the default;
    /// the invariant runner overrides it per run).
    pub config: SimConfig,
    /// Executor thread count for the thread-invariance check.
    pub threads: usize,
}

impl ConformanceCase {
    /// Checks the case is inside the suite's bounds and internally
    /// consistent (algorithm and pattern defined on the topology, fault
    /// indices in range). Generated cases always pass; shrink candidates
    /// and hand-written regression entries are filtered through this.
    pub fn validate(&self) -> Result<(), String> {
        match &self.topo {
            TopoSpec::Mesh(dims) => {
                if dims.is_empty() || dims.len() > 3 {
                    return Err(format!("mesh must have 1-3 dims, got {}", dims.len()));
                }
                if dims.iter().any(|&d| !(2..=8).contains(&d)) {
                    return Err(format!("mesh extents must be in 2..=8, got {dims:?}"));
                }
                if dims.iter().product::<usize>() > 64 {
                    return Err("mesh larger than 64 nodes".into());
                }
            }
            TopoSpec::Torus { k, n } => {
                if !(3..=5).contains(k) || !(1..=2).contains(n) {
                    return Err(format!("torus bounds: k in 3..=5, n in 1..=2, got {k},{n}"));
                }
            }
            TopoSpec::Hypercube(n) => {
                if !(1..=4).contains(n) {
                    return Err(format!("hypercube bounds: n in 1..=4, got {n}"));
                }
            }
            TopoSpec::FullMesh(n) => {
                if !(3..=6).contains(n) {
                    return Err(format!("fullmesh bounds: n in 3..=6, got {n}"));
                }
            }
            TopoSpec::Ring(n) => {
                if !(3..=8).contains(n) {
                    return Err(format!("ring bounds: n in 3..=8, got {n}"));
                }
            }
        }
        if !self.algo.supports(&self.topo) {
            return Err(format!("{} is not defined on {}", self.algo, self.topo));
        }
        if !self.pattern.supports(&self.topo) {
            return Err(format!("{} is not defined on {}", self.pattern, self.topo));
        }
        if !(self.load > 0.0 && self.load <= 0.5) {
            return Err(format!("load must be in (0, 0.5], got {}", self.load));
        }
        if let TrafficModel::Mmpp {
            burst_cycles,
            idle_cycles,
        } = self.traffic
        {
            for v in [burst_cycles, idle_cycles] {
                if !(1.0..=4096.0).contains(&v) {
                    return Err(format!("mmpp sojourns must be in 1..=4096 cycles, got {v}"));
                }
            }
        }
        if let PatternSpec::Trace { nodes, .. } = self.pattern {
            if nodes < 2 {
                return Err(format!("trace pattern needs at least 2 nodes, got {nodes}"));
            }
        }
        match self.lengths {
            LengthSpec::Fixed(l) if l == 0 || l > 256 => {
                return Err("fixed length must be in 1..=256".into());
            }
            LengthSpec::Bimodal(s, l) if s == 0 || l == 0 || s > 256 || l > 256 => {
                return Err("bimodal lengths must be in 1..=256".into());
            }
            _ => {}
        }
        if self.warmup > 1024 {
            return Err(format!("warmup must be <= 1024, got {}", self.warmup));
        }
        if !(128..=2048).contains(&self.measure) {
            return Err(format!(
                "measure must be in 128..=2048, got {}",
                self.measure
            ));
        }
        if !(1..=4).contains(&self.threads) {
            return Err(format!("threads must be in 1..=4, got {}", self.threads));
        }
        let channels = self.topo.build().num_channels();
        if self.faults.len() > 3 {
            return Err("at most 3 fault channels".into());
        }
        if self.faults.iter().any(|&c| c >= channels) {
            return Err(format!(
                "fault channel out of range (topology has {channels})"
            ));
        }
        let mut sorted = self.faults.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != self.faults.len() {
            return Err("duplicate fault channels".into());
        }
        Ok(())
    }

    /// Instantiates the case. Call [`ConformanceCase::validate`] first;
    /// building an invalid case may panic in a constructor.
    pub fn build(&self) -> BuiltCase {
        let topo = self.topo.build();
        let algo = self.algo.build(&self.topo);
        let pattern = self.pattern.build();
        let turn_set = self.algo.turn_set(&self.topo);
        let mut config = SimConfig::paper()
            .injection_rate(self.load)
            .traffic(self.traffic)
            .lengths(self.lengths.to_distribution())
            .input_selection(self.input)
            .output_selection(self.output)
            .seed(self.seed)
            .warmup_cycles(self.warmup)
            .measure_cycles(self.measure)
            .deadlock_threshold(1024);
        if !self.faults.is_empty() {
            let mut plan = FaultPlan::new();
            for &c in &self.faults {
                plan = plan.channel(ChannelId::new(c), 0);
            }
            let schedule = plan
                .compile(topo.as_ref())
                .expect("validated fault channels compile");
            config.faults = Some(Arc::new(schedule));
        }
        BuiltCase {
            topo,
            algo,
            pattern,
            turn_set,
            config,
            threads: self.threads,
        }
    }

    /// Parses the one-line `key=value` serialization produced by
    /// [`fmt::Display`].
    pub fn parse(line: &str) -> Result<ConformanceCase, String> {
        let mut topo = None;
        let mut algo = None;
        let mut pattern = None;
        let mut load = None;
        // Absent from pre-MMPP corpus lines; those keep the legacy
        // Poisson stream.
        let mut traffic = TrafficModel::Poisson;
        let mut lengths = None;
        let mut input = None;
        let mut output = None;
        let mut seed = None;
        let mut warmup = None;
        let mut measure = None;
        let mut threads = None;
        let mut faults = Vec::new();
        for field in line.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("field without '=': {field}"))?;
            match key {
                "topo" => topo = Some(parse_topo(value)?),
                "algo" => {
                    algo = Some(
                        AlgoSpec::NAMES
                            .iter()
                            .find(|(_, n)| *n == value)
                            .map(|(a, _)| *a)
                            .ok_or_else(|| format!("unknown algorithm {value}"))?,
                    );
                }
                "pattern" => {
                    pattern = Some(if let Some(rest) = value.strip_prefix("trace:") {
                        let (n, s) = rest
                            .split_once(',')
                            .ok_or_else(|| format!("bad trace pattern {value} (want trace:N,S)"))?;
                        PatternSpec::Trace {
                            nodes: parse_u64(n, "trace nodes")? as u16,
                            seed: parse_u64(s, "trace seed")? as u16,
                        }
                    } else {
                        PatternSpec::NAMES
                            .iter()
                            .find(|(_, n)| *n == value)
                            .map(|(p, _)| *p)
                            .ok_or_else(|| format!("unknown pattern {value}"))?
                    });
                }
                "load" => {
                    load = Some(
                        value
                            .parse::<f64>()
                            .map_err(|e| format!("bad load {value}: {e}"))?,
                    );
                }
                "traffic" => traffic = parse_traffic_model(value)?,
                "len" => lengths = Some(parse_lengths(value)?),
                "input" => {
                    input = Some(match value {
                        "fcfs" => InputSelection::FirstComeFirstServed,
                        "fixed" => InputSelection::FixedPriority,
                        "random" => InputSelection::Random,
                        other => return Err(format!("unknown input selection {other}")),
                    });
                }
                "output" => {
                    output = Some(match value {
                        "lowest" => OutputSelection::LowestDimension,
                        "highest" => OutputSelection::HighestDimension,
                        "straight" => OutputSelection::StraightFirst,
                        "random" => OutputSelection::Random,
                        other => return Err(format!("unknown output selection {other}")),
                    });
                }
                "seed" => seed = Some(parse_u64(value, "seed")?),
                "warmup" => warmup = Some(parse_u64(value, "warmup")?),
                "measure" => measure = Some(parse_u64(value, "measure")?),
                "threads" => threads = Some(parse_u64(value, "threads")? as usize),
                "faults" => {
                    for part in value.split(',') {
                        faults.push(parse_u64(part, "fault channel")? as usize);
                    }
                }
                other => return Err(format!("unknown field {other}")),
            }
        }
        Ok(ConformanceCase {
            topo: topo.ok_or("missing topo")?,
            algo: algo.ok_or("missing algo")?,
            pattern: pattern.ok_or("missing pattern")?,
            load: load.ok_or("missing load")?,
            traffic,
            lengths: lengths.ok_or("missing len")?,
            input: input.ok_or("missing input")?,
            output: output.ok_or("missing output")?,
            seed: seed.ok_or("missing seed")?,
            warmup: warmup.ok_or("missing warmup")?,
            measure: measure.ok_or("missing measure")?,
            threads: threads.ok_or("missing threads")?,
            faults,
        })
    }
}

impl fmt::Display for ConformanceCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let input = match self.input {
            InputSelection::FirstComeFirstServed => "fcfs",
            InputSelection::FixedPriority => "fixed",
            InputSelection::Random => "random",
        };
        let output = match self.output {
            OutputSelection::LowestDimension => "lowest",
            OutputSelection::HighestDimension => "highest",
            OutputSelection::StraightFirst => "straight",
            OutputSelection::Random => "random",
        };
        write!(
            f,
            "topo={} algo={} pattern={} load={} len={} input={input} output={output} \
             seed={} warmup={} measure={} threads={}",
            self.topo,
            self.algo,
            self.pattern,
            self.load,
            self.lengths,
            self.seed,
            self.warmup,
            self.measure,
            self.threads,
        )?;
        // Only emitted when non-default, so pre-MMPP corpus lines
        // round-trip byte-identically.
        if self.traffic != TrafficModel::Poisson {
            write!(f, " traffic={}", self.traffic.as_spec())?;
        }
        if !self.faults.is_empty() {
            write!(f, " faults=")?;
            for (i, c) in self.faults.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

fn parse_u64(value: &str, what: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|e| format!("bad {what} {value}: {e}"))
}

fn parse_topo(value: &str) -> Result<TopoSpec, String> {
    let (kind, rest) = value
        .split_once(':')
        .ok_or_else(|| format!("bad topology {value}"))?;
    match kind {
        "mesh" => {
            let dims = rest
                .split('x')
                .map(|d| {
                    d.parse::<usize>()
                        .map_err(|e| format!("bad mesh extent {d}: {e}"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(TopoSpec::Mesh(dims))
        }
        "torus" => {
            let (k, n) = rest
                .split_once(',')
                .ok_or_else(|| format!("bad torus {rest} (want k,n)"))?;
            Ok(TopoSpec::Torus {
                k: parse_u64(k, "torus radix")? as usize,
                n: parse_u64(n, "torus dims")? as usize,
            })
        }
        "hypercube" => Ok(TopoSpec::Hypercube(
            parse_u64(rest, "hypercube dims")? as usize
        )),
        "fullmesh" => Ok(TopoSpec::FullMesh(
            parse_u64(rest, "fullmesh nodes")? as usize
        )),
        "ring" => Ok(TopoSpec::Ring(parse_u64(rest, "ring nodes")? as usize)),
        other => Err(format!("unknown topology kind {other}")),
    }
}

fn parse_traffic_model(value: &str) -> Result<TrafficModel, String> {
    if value == "poisson" {
        return Ok(TrafficModel::Poisson);
    }
    let rest = value
        .strip_prefix("mmpp:")
        .ok_or_else(|| format!("unknown traffic model {value}"))?;
    let (b, i) = rest
        .split_once(',')
        .ok_or_else(|| format!("bad traffic {value} (want mmpp:B,I)"))?;
    Ok(TrafficModel::Mmpp {
        burst_cycles: b
            .parse::<f64>()
            .map_err(|e| format!("bad mmpp burst {b}: {e}"))?,
        idle_cycles: i
            .parse::<f64>()
            .map_err(|e| format!("bad mmpp idle {i}: {e}"))?,
    })
}

fn parse_lengths(value: &str) -> Result<LengthSpec, String> {
    let (kind, rest) = value
        .split_once(':')
        .ok_or_else(|| format!("bad lengths {value}"))?;
    match kind {
        "fixed" => Ok(LengthSpec::Fixed(parse_u64(rest, "length")? as u32)),
        "bimodal" => {
            let (s, l) = rest
                .split_once(',')
                .ok_or_else(|| format!("bad bimodal lengths {rest}"))?;
            Ok(LengthSpec::Bimodal(
                parse_u64(s, "short length")? as u32,
                parse_u64(l, "long length")? as u32,
            ))
        }
        other => Err(format!("unknown length kind {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConformanceCase {
        ConformanceCase {
            topo: TopoSpec::Mesh(vec![4, 3]),
            algo: AlgoSpec::WestFirst(true),
            pattern: PatternSpec::Uniform,
            load: 0.05,
            traffic: TrafficModel::Poisson,
            lengths: LengthSpec::Bimodal(4, 32),
            input: InputSelection::Random,
            output: OutputSelection::Random,
            seed: 0xDEAD_BEEF,
            warmup: 128,
            measure: 512,
            threads: 2,
            faults: vec![3, 17],
        }
    }

    #[test]
    fn display_parse_round_trip() {
        let case = sample();
        let line = case.to_string();
        let back = ConformanceCase::parse(&line).unwrap();
        assert_eq!(case, back);
        assert!(case.validate().is_ok(), "{:?}", case.validate());
    }

    #[test]
    fn parse_rejects_unknown_fields() {
        assert!(ConformanceCase::parse("topo=mesh:4x4 wat=1").is_err());
        assert!(ConformanceCase::parse("topo=blob:9").is_err());
    }

    #[test]
    fn graph_cases_round_trip_and_build() {
        let case = ConformanceCase {
            topo: TopoSpec::FullMesh(4),
            algo: AlgoSpec::Synth,
            pattern: PatternSpec::Uniform,
            load: 0.05,
            traffic: TrafficModel::Poisson,
            lengths: LengthSpec::Fixed(8),
            input: InputSelection::FirstComeFirstServed,
            output: OutputSelection::LowestDimension,
            seed: 11,
            warmup: 64,
            measure: 256,
            threads: 2,
            faults: Vec::new(),
        };
        assert!(case.validate().is_ok(), "{:?}", case.validate());
        let line = case.to_string();
        assert!(line.starts_with("topo=fullmesh:4 algo=synth"), "{line}");
        assert_eq!(ConformanceCase::parse(&line).unwrap(), case);
        let built = case.build();
        assert_eq!(built.topo.num_nodes(), 4);
        assert!(built.turn_set.is_none());
        assert!(!built.algo.is_minimal());
        // Cartesian algorithms refuse graph topologies.
        let mut bad = case.clone();
        bad.algo = AlgoSpec::DimensionOrder;
        assert!(bad.validate().is_err());
        // And synth refuses Cartesian ones.
        let mut bad = case;
        bad.topo = TopoSpec::Mesh(vec![4, 4]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn graph_bounds_are_enforced() {
        let mut case = sample();
        case.algo = AlgoSpec::Synth;
        case.faults = Vec::new();
        case.topo = TopoSpec::FullMesh(7);
        assert!(case.validate().is_err());
        case.topo = TopoSpec::Ring(9);
        assert!(case.validate().is_err());
        case.topo = TopoSpec::Ring(8);
        assert!(case.validate().is_ok(), "{:?}", case.validate());
    }

    #[test]
    fn validation_rejects_mismatches() {
        let mut case = sample();
        case.topo = TopoSpec::Hypercube(3);
        // West-first is a 2D mesh algorithm.
        assert!(case.validate().is_err());
        let mut case = sample();
        case.faults = vec![9999];
        assert!(case.validate().is_err());
        let mut case = sample();
        case.pattern = PatternSpec::Transpose; // 4x3 is not square
        assert!(case.validate().is_err());
    }

    #[test]
    fn build_produces_consistent_objects() {
        let case = sample();
        let built = case.build();
        assert_eq!(built.topo.num_nodes(), 12);
        assert_eq!(built.config.seed, 0xDEAD_BEEF);
        assert!(built.config.faults.is_some());
        assert!(built.turn_set.is_some());
    }
}
