//! Model-based conformance testing for the turnroute engine.
//!
//! The optimized wormhole engine in `turnroute-sim` has three fast
//! paths that must agree bit-for-bit: the scratch-buffer hot path, the
//! precomputed [`RouteTable`](turnroute_sim::RouteTable), and the
//! fault-pruned relation. This crate pins that agreement with a
//! differential net:
//!
//! * [`oracle`] — a deliberately naive reference engine (~300 lines,
//!   dyn-dispatched routing, fresh allocations everywhere) that is the
//!   executable specification of the simulation semantics;
//! * [`case`] — a text-serializable description of one scenario
//!   (topology × algorithm × pattern × policies × faults);
//! * [`gen`] — bounded random case generation on the vendored RNG
//!   (these would be proptest strategies; the offline build rolls its
//!   own);
//! * [`invariants`] — the per-case battery: oracle-vs-engine bit
//!   identity across route-table modes, prohibited-turn absence, flit
//!   conservation, fault-free deadlock freedom, zero-load minimality
//!   and executor thread invariance;
//! * [`shrink`] / [`runner`] — greedy counterexample shrinking and the
//!   regression-file replay that keeps shrunk cases alive forever.
//!
//! The `conformance` binary soaks the suite with a case budget and a
//! JSON report; `scripts/check.sh` runs it with a fixed seed on every
//! pre-merge check.

#![warn(missing_docs)]

pub mod case;
pub mod gen;
pub mod invariants;
pub mod oracle;
pub mod runner;
pub mod shrink;

pub use case::{AlgoSpec, BuiltCase, ConformanceCase, LengthSpec, PatternSpec, TopoSpec};
pub use invariants::check_case;
pub use oracle::{Oracle, OracleReport};
pub use runner::{default_regression_path, run, run_case, Failure, RunConfig, RunSummary};
