//! Random case generation.
//!
//! The suite was designed for `proptest`-style strategies, but the
//! offline build vendors its own RNG instead (`turnroute-rng`), so
//! generation is a plain seeded draw from bounded choice lists. The
//! bounds (topology sizes, windows, loads) keep a single case cheap
//! enough that CI can afford hundreds of them; see
//! [`ConformanceCase::validate`] for the exact envelope.

use crate::case::{AlgoSpec, ConformanceCase, LengthSpec, PatternSpec, TopoSpec};
use turnroute_rng::{Rng, RngCore, StdRng};
use turnroute_sim::{InputSelection, OutputSelection, TrafficModel};

fn choose<T: Copy>(rng: &mut StdRng, items: &[T]) -> T {
    items[rng.random_range(0..items.len())]
}

fn gen_topo(rng: &mut StdRng) -> TopoSpec {
    match rng.random_range(0..5u32) {
        // 2D meshes get double weight: most algorithms and patterns
        // live there.
        0 | 1 => {
            let dims = if rng.random_bool(0.25) {
                vec![
                    rng.random_range(2..=3usize),
                    rng.random_range(2..=3usize),
                    rng.random_range(2..=3usize),
                ]
            } else {
                let a = rng.random_range(2..=6usize);
                // Square half the time so transpose patterns apply.
                let b = if rng.random_bool(0.5) {
                    a
                } else {
                    rng.random_range(2..=6usize)
                };
                vec![a, b]
            };
            TopoSpec::Mesh(dims)
        }
        2 => TopoSpec::Torus {
            k: rng.random_range(3..=5usize),
            n: rng.random_range(1..=2usize),
        },
        3 => TopoSpec::Hypercube(rng.random_range(2..=4usize)),
        // Graph topologies exercise the synthesized turn models.
        _ => {
            if rng.random_bool(0.5) {
                TopoSpec::FullMesh(rng.random_range(3..=6usize))
            } else {
                TopoSpec::Ring(rng.random_range(3..=8usize))
            }
        }
    }
}

const ALGOS: &[AlgoSpec] = &[
    AlgoSpec::DimensionOrder,
    AlgoSpec::WestFirst(true),
    AlgoSpec::WestFirst(false),
    AlgoSpec::NorthLast(true),
    AlgoSpec::NorthLast(false),
    AlgoSpec::NegativeFirst(true),
    AlgoSpec::NegativeFirst(false),
    AlgoSpec::Abonf(true),
    AlgoSpec::Abonf(false),
    AlgoSpec::Abopl(true),
    AlgoSpec::Abopl(false),
    AlgoSpec::PCube(true),
    AlgoSpec::PCube(false),
    AlgoSpec::NegativeFirstTorus,
    AlgoSpec::FirstHopWrap,
    AlgoSpec::Synth,
];

const PATTERNS: &[PatternSpec] = &[
    PatternSpec::Uniform,
    PatternSpec::Transpose,
    PatternSpec::DiagonalTranspose,
    PatternSpec::BitComplement,
    PatternSpec::Tornado,
    PatternSpec::NearestNeighbor,
    PatternSpec::Hotspot,
    PatternSpec::ReverseFlip,
    PatternSpec::BitReversal,
    PatternSpec::Shuffle,
];

/// Draws one case from `rng`. Always returns a case that passes
/// [`ConformanceCase::validate`].
pub fn generate_case(rng: &mut StdRng) -> ConformanceCase {
    let topo = gen_topo(rng);
    let algos: Vec<AlgoSpec> = ALGOS
        .iter()
        .copied()
        .filter(|a| a.supports(&topo))
        .collect();
    let patterns: Vec<PatternSpec> = PATTERNS
        .iter()
        .copied()
        .filter(|p| p.supports(&topo))
        .collect();
    let algo = choose(rng, &algos);
    // A sixth of the cases drive destinations from a generated trace
    // fixture (which any topology supports); the rest draw from the
    // static pattern list.
    let pattern = if rng.random_bool(1.0 / 6.0) {
        PatternSpec::Trace {
            nodes: rng.random_range(2..=topo.num_nodes()) as u16,
            seed: (rng.next_u64() & 0xFFFF) as u16,
        }
    } else {
        choose(rng, &patterns)
    };
    let load = choose(rng, &[0.01, 0.02, 0.05, 0.08, 0.12]);
    // A quarter of the cases inject through the bursty on-off arrival
    // process instead of the legacy Poisson stream.
    let traffic = if rng.random_bool(0.25) {
        TrafficModel::Mmpp {
            burst_cycles: choose(rng, &[24.0, 96.0, 384.0]),
            idle_cycles: choose(rng, &[48.0, 192.0, 768.0]),
        }
    } else {
        TrafficModel::Poisson
    };
    let lengths = choose(
        rng,
        &[
            LengthSpec::Fixed(4),
            LengthSpec::Fixed(16),
            LengthSpec::Bimodal(2, 16),
            LengthSpec::Bimodal(10, 200),
        ],
    );
    let input = choose(
        rng,
        &[
            InputSelection::FirstComeFirstServed,
            InputSelection::FixedPriority,
            InputSelection::Random,
        ],
    );
    let output = choose(
        rng,
        &[
            OutputSelection::LowestDimension,
            OutputSelection::HighestDimension,
            OutputSelection::StraightFirst,
            OutputSelection::Random,
        ],
    );
    let seed = rng.next_u64();
    let warmup = choose(rng, &[0u64, 128, 512]);
    let measure = choose(rng, &[256u64, 512, 1024, 2048]);
    let threads = choose(rng, &[1usize, 2, 4]);
    // A quarter of the cases run under a small static fault plan.
    let mut faults = Vec::new();
    if rng.random_bool(0.25) {
        let channels = topo.build().num_channels();
        if channels > 0 {
            let want = rng.random_range(1..=3usize);
            for _ in 0..want {
                let c = rng.random_range(0..channels);
                if !faults.contains(&c) {
                    faults.push(c);
                }
            }
        }
    }
    let case = ConformanceCase {
        topo,
        algo,
        pattern,
        load,
        traffic,
        lengths,
        input,
        output,
        seed,
        warmup,
        measure,
        threads,
        faults,
    };
    debug_assert!(case.validate().is_ok(), "{:?}", case.validate());
    case
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_validate_and_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let case = generate_case(&mut rng);
            case.validate().unwrap_or_else(|e| panic!("{case}: {e}"));
            let back = ConformanceCase::parse(&case.to_string()).unwrap();
            assert_eq!(case, back);
        }
    }

    #[test]
    fn generation_is_deterministic_given_seed() {
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..50)
                .map(|_| generate_case(&mut rng).to_string())
                .collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..50)
                .map(|_| generate_case(&mut rng).to_string())
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn the_matrix_is_covered() {
        // Over a few hundred draws every topology family, every
        // route-table-relevant algorithm class and faults all appear.
        let mut rng = StdRng::seed_from_u64(11);
        let (mut mesh, mut torus, mut cube, mut graph, mut faulted) = (0, 0, 0, 0, 0);
        let (mut mmpp, mut traced) = (0, 0);
        for _ in 0..400 {
            let case = generate_case(&mut rng);
            match case.topo {
                TopoSpec::Mesh(_) => mesh += 1,
                TopoSpec::Torus { .. } => torus += 1,
                TopoSpec::Hypercube(_) => cube += 1,
                TopoSpec::FullMesh(_) | TopoSpec::Ring(_) => graph += 1,
            }
            if !case.faults.is_empty() {
                faulted += 1;
            }
            if matches!(case.traffic, TrafficModel::Mmpp { .. }) {
                mmpp += 1;
            }
            if matches!(case.pattern, PatternSpec::Trace { .. }) {
                traced += 1;
            }
        }
        assert!(
            mesh > 50 && torus > 30 && cube > 30 && graph > 30 && faulted > 30,
            "mesh {mesh} torus {torus} cube {cube} graph {graph} faulted {faulted}"
        );
        assert!(
            mmpp > 40 && traced > 25,
            "mmpp {mmpp} traced {traced}: the new traffic axes must be exercised"
        );
    }
}
