//! The conformance soak binary.
//!
//! Replays the committed regression file, then hammers the invariant
//! battery with generated cases:
//!
//! ```text
//! conformance [--cases N] [--seed S] [--json PATH] [--regressions PATH]
//!             [--persist]
//! ```
//!
//! Exits 0 when every case passes, 1 on the first (shrunk) failure,
//! 2 on usage errors. `--json` writes a machine-readable report either
//! way. `--persist` appends the shrunk counterexample to the regression
//! file so it replays forever.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use turnroute_check::runner::{self, RunConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: conformance [--cases N] [--seed S] [--json PATH] [--regressions PATH] [--persist]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config = RunConfig::default();
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cases" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                config.cases = v;
            }
            "--seed" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                config.seed = v;
            }
            "--json" => {
                let Some(v) = args.next() else {
                    return usage();
                };
                json_path = Some(PathBuf::from(v));
            }
            "--regressions" => {
                let Some(v) = args.next() else {
                    return usage();
                };
                config.regressions = Some(PathBuf::from(v));
            }
            "--persist" => config.persist = true,
            _ => return usage(),
        }
    }

    let started = Instant::now();
    let summary = runner::run(&config);
    let elapsed = started.elapsed().as_secs_f64();

    if let Some(path) = &json_path {
        let report = json_report(&config, &summary, elapsed);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, report) {
            eprintln!("conformance: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    match &summary.failure {
        None => {
            println!(
                "conformance: {} replayed + {} generated cases passed in {elapsed:.1}s \
                 (seed {})",
                summary.replayed, summary.executed, config.seed
            );
            ExitCode::SUCCESS
        }
        Some(failure) => {
            eprintln!(
                "conformance: FAILED after {} generated cases",
                summary.executed
            );
            eprintln!("  violation: {}", failure.message);
            eprintln!("  case:      {}", failure.case);
            if let Some(original) = &failure.shrunk_from {
                eprintln!("  shrunk from: {original}");
            }
            eprintln!("  replay:    add the case line to crates/check/regressions/conformance.txt");
            ExitCode::FAILURE
        }
    }
}

/// Renders the run as JSON (hand-rolled; the build is offline and the
/// schema is four fields deep).
fn json_report(config: &RunConfig, summary: &runner::RunSummary, elapsed: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"cases\": {},\n", config.cases));
    out.push_str(&format!("  \"seed\": {},\n", config.seed));
    out.push_str(&format!("  \"replayed\": {},\n", summary.replayed));
    out.push_str(&format!("  \"executed\": {},\n", summary.executed));
    out.push_str(&format!("  \"elapsed_secs\": {elapsed:.3},\n"));
    out.push_str(&format!("  \"passed\": {},\n", summary.passed()));
    match &summary.failure {
        None => out.push_str("  \"failure\": null\n"),
        Some(f) => {
            out.push_str("  \"failure\": {\n");
            out.push_str(&format!(
                "    \"case\": \"{}\",\n",
                escape(&f.case.to_string())
            ));
            out.push_str(&format!("    \"message\": \"{}\",\n", escape(&f.message)));
            match &f.shrunk_from {
                None => out.push_str("    \"shrunk_from\": null\n"),
                Some(orig) => out.push_str(&format!(
                    "    \"shrunk_from\": \"{}\"\n",
                    escape(&orig.to_string())
                )),
            }
            out.push_str("  }\n");
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
