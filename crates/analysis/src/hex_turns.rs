//! The turn model on hexagonal meshes — the paper's Section 7 future
//! work: "in such topologies, the turns are not necessarily 90-degrees
//! and the abstract cycles are not necessarily formed by four turns."
//!
//! A hex mesh has six directions on three axes (A, B and the derived
//! diagonal C = A + B). Its elementary abstract cycles are *triangles* —
//! three 120-degree turns through `{+A, +B, -C}` or `{-A, -B, +C}` —
//! alongside the four-turn axis-pair cycles meshes have. The
//! negative-first construction still works verbatim: prohibiting every
//! positive-to-negative turn breaks all of them, and the prohibition is
//! again exactly a quarter of the turns.

use turnroute_core::{ChannelDependencyGraph, Turn, TurnSet};
use turnroute_topology::{Direction, HexMesh};

/// The angular class of a hex turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HexTurnKind {
    /// Adjacent directions, e.g. `+A -> +C`.
    Sixty,
    /// e.g. `+A -> +B` (their sum is the `+C` diagonal) or `+A -> -C`.
    OneTwenty,
    /// Reversal along one axis.
    OneEighty,
}

/// Classifies a turn between hex directions by the angle between their
/// axial steps.
pub fn hex_turn_kind(turn: Turn) -> HexTurnKind {
    fn step(d: Direction) -> (i64, i64) {
        let s = d.sign().delta() as i64;
        match d.dim() {
            0 => (s, 0),
            1 => (0, s),
            2 => (s, s),
            _ => unreachable!("hex directions have three axes"),
        }
    }
    let (a, b) = (step(turn.from_dir()), step(turn.to_dir()));
    // Opposite steps: 180. Steps whose sum is another unit step: 60
    // (adjacent). Otherwise 120.
    if a.0 == -b.0 && a.1 == -b.1 {
        HexTurnKind::OneEighty
    } else {
        let sum = (a.0 + b.0, a.1 + b.1);
        let units = [(1, 0), (-1, 0), (0, 1), (0, -1), (1, 1), (-1, -1)];
        if units.contains(&sum) {
            HexTurnKind::OneTwenty
        } else {
            HexTurnKind::Sixty
        }
    }
}

/// One elementary abstract cycle of the hex direction graph.
#[derive(Debug, Clone)]
pub struct HexCycle {
    /// The turns, in cycle order (each `to` is the next `from`).
    pub turns: Vec<Turn>,
}

/// The elementary abstract cycles of a hexagonal network: the four
/// directed triangles (two zero-sum direction triples, two orientations
/// each) and the six directed axis-pair quadrilaterals.
pub fn hex_abstract_cycles() -> Vec<HexCycle> {
    let dir = |dim: usize, plus: bool| {
        if plus {
            Direction::plus(dim)
        } else {
            Direction::minus(dim)
        }
    };
    let mut cycles = Vec::new();
    let ring = |dirs: &[Direction]| HexCycle {
        turns: (0..dirs.len())
            .map(|i| Turn::new(dirs[i], dirs[(i + 1) % dirs.len()]))
            .collect(),
    };
    // Triangles: +A, +B, -C sums to zero (and its reverse orientation),
    // likewise -A, -B, +C.
    for (a, b, c) in [(true, true, false), (false, false, true)] {
        let t = [dir(0, a), dir(1, b), dir(2, c)];
        cycles.push(ring(&t));
        let rev = [t[0], t[2], t[1]];
        cycles.push(ring(&rev));
    }
    // Axis-pair quadrilaterals, both orientations.
    for (i, j) in [(0, 1), (0, 2), (1, 2)] {
        let q = [dir(i, true), dir(j, true), dir(i, false), dir(j, false)];
        cycles.push(ring(&q));
        let rev = [q[0], q[3], q[2], q[1]];
        cycles.push(ring(&rev));
    }
    cycles
}

/// The negative-first turn set on the three hex axes — the same
/// construction as Section 4.1, applied off the paper's page.
pub fn hex_negative_first() -> TurnSet {
    TurnSet::negative_first(3)
}

/// Axis-order routing's turn set on the hex axes (`A` before `B` before
/// `C`): the hex analog of xy routing.
pub fn hex_axis_order() -> TurnSet {
    TurnSet::dimension_order(3)
}

/// `true` if `set` prohibits at least one turn in every elementary hex
/// cycle (the step-4 necessary condition, hex edition).
pub fn breaks_all_hex_cycles(set: &TurnSet) -> bool {
    hex_abstract_cycles()
        .iter()
        .all(|cycle| cycle.turns.iter().any(|&t| !set.allows(t)))
}

/// `true` if `set` is deadlock free on the given hex mesh (full CDG
/// check).
pub fn hex_deadlock_free(hex: &HexMesh, set: &TurnSet) -> bool {
    ChannelDependencyGraph::from_turn_set(hex, set).is_acyclic()
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_topology::Topology;

    #[test]
    fn twenty_four_turns_partition_by_angle() {
        let turns: Vec<Turn> = Turn::all_ninety(3).collect();
        assert_eq!(turns.len(), 24);
        let sixty = turns
            .iter()
            .filter(|&&t| hex_turn_kind(t) == HexTurnKind::Sixty)
            .count();
        let onetwenty = turns
            .iter()
            .filter(|&&t| hex_turn_kind(t) == HexTurnKind::OneTwenty)
            .count();
        // Each direction has two 60-degree and two 120-degree turns.
        assert_eq!(sixty, 12);
        assert_eq!(onetwenty, 12);
    }

    #[test]
    fn cycles_are_triangles_and_quadrilaterals() {
        let cycles = hex_abstract_cycles();
        assert_eq!(cycles.len(), 10);
        let triangles = cycles.iter().filter(|c| c.turns.len() == 3).count();
        assert_eq!(triangles, 4, "the paper's 'not necessarily four turns'");
        // Cycle orders chain correctly.
        for c in &cycles {
            for k in 0..c.turns.len() {
                assert_eq!(
                    c.turns[k].to_dir(),
                    c.turns[(k + 1) % c.turns.len()].from_dir()
                );
            }
        }
    }

    #[test]
    fn negative_first_breaks_every_hex_cycle_with_a_quarter() {
        let nf = hex_negative_first();
        assert!(breaks_all_hex_cycles(&nf));
        // A quarter again: 6 of 24.
        assert_eq!(nf.prohibited_ninety().count(), 6);
    }

    #[test]
    fn axis_order_breaks_every_hex_cycle() {
        assert!(breaks_all_hex_cycles(&hex_axis_order()));
    }

    #[test]
    fn fully_adaptive_breaks_nothing() {
        assert!(!breaks_all_hex_cycles(&TurnSet::fully_adaptive(3)));
    }

    #[test]
    fn cdg_verdicts_on_a_real_hex_mesh() {
        let hex = HexMesh::new(5, 5);
        assert!(hex_deadlock_free(&hex, &hex_negative_first()));
        assert!(hex_deadlock_free(&hex, &hex_axis_order()));
        assert!(!hex_deadlock_free(&hex, &TurnSet::fully_adaptive(3)));
    }

    #[test]
    fn breaking_only_quadrilaterals_is_not_enough() {
        // Prohibit one turn per axis-pair quadrilateral but leave the
        // triangles whole: the hex-specific failure mode.
        let mut set = TurnSet::fully_adaptive(3);
        // Break the six quadrilaterals with turns chosen to avoid every
        // triangle turn.
        set.prohibit(Turn::new(Direction::plus(1), Direction::minus(0)));
        set.prohibit(Turn::new(Direction::plus(0), Direction::minus(1)));
        set.prohibit(Turn::new(Direction::plus(0), Direction::plus(2)));
        set.prohibit(Turn::new(Direction::plus(2), Direction::plus(0)));
        set.prohibit(Turn::new(Direction::plus(1), Direction::plus(2)));
        set.prohibit(Turn::new(Direction::plus(2), Direction::plus(1)));
        // Triangles {+A,+B,-C} orientations survive...
        assert!(!breaks_all_hex_cycles(&set));
        // ...and the mesh deadlocks.
        let hex = HexMesh::new(4, 4);
        assert!(!hex_deadlock_free(&hex, &set));
    }

    #[test]
    fn hex_mesh_has_consistent_channel_structure() {
        let hex = HexMesh::new(4, 4);
        assert!(hex.num_channels() > 0);
        for ch in hex.channels() {
            assert_eq!(hex.neighbor(ch.src, ch.dir), Some(ch.dst));
        }
    }
}
