//! Average path-length analytics for the Section 6 traffic patterns.
//!
//! The paper quotes mean hop counts to argue that the adaptive
//! algorithms' throughput wins are not an artifact of shorter paths:
//! 10.61 (uniform) vs 11.34 (transpose) hops in the 16x16 mesh, and 4.01
//! (uniform) vs 4.27 (reverse-flip) hops in the 8-cube. These functions
//! compute the same quantities exactly.

use turnroute_topology::{Hypercube, Mesh, NodeId, Topology};

/// Mean minimal hop count under uniform traffic (all ordered pairs of
/// distinct nodes).
pub fn mean_uniform_distance(topo: &dyn Topology) -> f64 {
    turnroute_topology::average_distance(topo)
}

/// Mean minimal hop count under a deterministic pattern, averaged over
/// the nodes the pattern maps away from themselves.
///
/// Returns `None` if the pattern sends every node to itself.
pub fn mean_pattern_distance(
    topo: &dyn Topology,
    pattern: impl Fn(NodeId) -> Option<NodeId>,
) -> Option<f64> {
    let mut total = 0usize;
    let mut senders = 0usize;
    for src in topo.nodes() {
        if let Some(dst) = pattern(src) {
            total += topo.distance(src, dst);
            senders += 1;
        }
    }
    (senders > 0).then(|| total as f64 / senders as f64)
}

/// Mean hops for matrix-transpose traffic in a square 2D mesh (the
/// paper's matrix convention: `(i, j) -> (k-1-j, k-1-i)` in Cartesian
/// coordinates; see `turnroute_sim::patterns::Transpose`).
pub fn mean_transpose_distance(mesh: &Mesh) -> f64 {
    assert_eq!(mesh.num_dims(), 2);
    let k = mesh.radix(0) as u16;
    mean_pattern_distance(mesh, |src| {
        let c = mesh.coord_of(src);
        let (i, j) = (c.get(0), c.get(1));
        (i + j != k - 1).then(|| mesh.node_at(&[k - 1 - j, k - 1 - i].into()))
    })
    .expect("some node is off the anti-diagonal")
}

/// Mean hops for reverse-flip traffic in a hypercube.
pub fn mean_reverse_flip_distance(cube: &Hypercube) -> f64 {
    let n = cube.num_dims();
    mean_pattern_distance(cube, |src| {
        let x = src.index();
        let mut d = 0usize;
        for i in 0..n {
            d |= ((x >> (n - 1 - i) & 1) ^ 1) << i;
        }
        (d != x).then(|| NodeId::new(d))
    })
    .expect("some node moves under reverse-flip")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_uniform_close_to_paper() {
        // Paper (measured): 10.61. Analytic all-pairs mean: 10.667.
        let mesh = Mesh::new_2d(16, 16);
        let mean = mean_uniform_distance(&mesh);
        assert!((mean - 10.6667).abs() < 1e-3, "{mean}");
        assert!((mean - 10.61).abs() < 0.1, "close to the paper's 10.61");
    }

    #[test]
    fn mesh_transpose_matches_paper() {
        // Paper: 11.34. Analytic: 11.333.
        let mean = mean_transpose_distance(&Mesh::new_2d(16, 16));
        assert!((mean - 11.3333).abs() < 1e-3, "{mean}");
        assert!((mean - 11.34).abs() < 0.01);
    }

    #[test]
    fn cube_uniform_matches_paper() {
        // Paper: 4.01. Analytic: 8 * 128/255 = 4.0157.
        let mean = mean_uniform_distance(&Hypercube::new(8));
        assert!((mean - 4.0157).abs() < 1e-3, "{mean}");
        assert!((mean - 4.01).abs() < 0.01);
    }

    #[test]
    fn cube_reverse_flip_matches_paper() {
        // Paper: 4.27. Analytic: 1024/240 = 4.2667.
        let mean = mean_reverse_flip_distance(&Hypercube::new(8));
        assert!((mean - 4.2667).abs() < 1e-3, "{mean}");
        assert!((mean - 4.27).abs() < 0.01);
    }

    #[test]
    fn transpose_is_longer_than_uniform_in_both_topologies() {
        // The paper's point: the adaptive win on nonuniform traffic is
        // despite *longer* average paths.
        let mesh = Mesh::new_2d(16, 16);
        assert!(mean_transpose_distance(&mesh) > mean_uniform_distance(&mesh));
        let cube = Hypercube::new(8);
        assert!(mean_reverse_flip_distance(&cube) > mean_uniform_distance(&cube));
    }

    #[test]
    fn pattern_with_all_self_maps_returns_none() {
        let mesh = Mesh::new_2d(4, 4);
        assert_eq!(mean_pattern_distance(&mesh, |_| None), None);
    }
}
