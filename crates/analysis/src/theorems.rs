//! Executable forms of the paper's counting theorems and the Section 3
//! prohibition-choice analysis.

use turnroute_core::{abstract_cycles, ChannelDependencyGraph, Turn, TurnSet};
use turnroute_topology::{Direction, Mesh, Sign};

/// The turn census of an n-dimensional mesh (Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TurnCensus {
    /// Dimensions.
    pub num_dims: usize,
    /// 90-degree turns: `4n(n-1)`.
    pub ninety_degree_turns: usize,
    /// Abstract cycles: `n(n-1)` (two per plane).
    pub abstract_cycles: usize,
    /// Minimum turns to prohibit (Theorem 1): `n(n-1)`, a quarter.
    pub min_prohibited: usize,
}

/// Counts turns and cycles for an n-dimensional mesh, verifying the
/// structural facts behind Theorem 1: the 90-degree turns partition into
/// `n(n-1)` four-turn cycles, so at least one quarter of the turns must
/// be prohibited.
///
/// # Example
///
/// ```
/// use turnroute_analysis::turn_census;
///
/// let census = turn_census(2);
/// assert_eq!(census.ninety_degree_turns, 8);
/// assert_eq!(census.min_prohibited, 2);
/// ```
pub fn turn_census(num_dims: usize) -> TurnCensus {
    let cycles = abstract_cycles(num_dims);
    let turns: Vec<Turn> = Turn::all_ninety(num_dims).collect();
    // Partition check: every turn lies in exactly one cycle.
    for &turn in &turns {
        let containing = cycles.iter().filter(|c| c.contains(turn)).count();
        assert_eq!(containing, 1, "turn {turn} must lie in exactly one cycle");
    }
    TurnCensus {
        num_dims,
        ninety_degree_turns: turns.len(),
        abstract_cycles: cycles.len(),
        min_prohibited: cycles.len(),
    }
}

/// One of the 16 ways to prohibit one turn per abstract cycle in a 2D
/// mesh, with its verdict.
#[derive(Debug, Clone)]
pub struct ProhibitionChoice {
    /// The resulting turn set.
    pub turns: TurnSet,
    /// The two prohibited 90-degree turns.
    pub prohibited: Vec<Turn>,
    /// `true` if the choice's channel dependency graph is acyclic.
    pub deadlock_free: bool,
}

/// Evaluates all 16 one-turn-per-cycle prohibition choices for a 2D mesh
/// against the full CDG check (Section 3: 12 prevent deadlock, 4 do
/// not).
pub fn classify_2d_prohibitions() -> Vec<ProhibitionChoice> {
    let mesh = Mesh::new_2d(4, 4);
    TurnSet::one_turn_per_cycle_prohibitions(2)
        .into_iter()
        .map(|turns| {
            let deadlock_free = ChannelDependencyGraph::from_turn_set(&mesh, &turns).is_acyclic();
            let prohibited = turns.prohibited_ninety().collect();
            ProhibitionChoice {
                turns,
                prohibited,
                deadlock_free,
            }
        })
        .collect()
}

/// The eight symmetries of the square (rotations and reflections),
/// represented as relabelings of the 2D directions.
pub fn square_symmetries() -> Vec<fn(Direction) -> Direction> {
    fn identity(d: Direction) -> Direction {
        d
    }
    fn rot90(d: Direction) -> Direction {
        // +x -> +y -> -x -> -y -> +x.
        match (d.dim(), d.sign()) {
            (0, Sign::Plus) => Direction::NORTH,
            (1, Sign::Plus) => Direction::WEST,
            (0, Sign::Minus) => Direction::SOUTH,
            (1, Sign::Minus) => Direction::EAST,
            _ => unreachable!("2D"),
        }
    }
    fn rot180(d: Direction) -> Direction {
        rot90(rot90(d))
    }
    fn rot270(d: Direction) -> Direction {
        rot90(rot180(d))
    }
    fn mirror_x(d: Direction) -> Direction {
        // Flip east/west.
        if d.dim() == 0 {
            d.opposite()
        } else {
            d
        }
    }
    fn m_rot90(d: Direction) -> Direction {
        rot90(mirror_x(d))
    }
    fn m_rot180(d: Direction) -> Direction {
        rot180(mirror_x(d))
    }
    fn m_rot270(d: Direction) -> Direction {
        rot270(mirror_x(d))
    }
    vec![
        identity, rot90, rot180, rot270, mirror_x, m_rot90, m_rot180, m_rot270,
    ]
}

/// Groups the deadlock-free 2D prohibition choices into equivalence
/// classes under the square's symmetries. The paper: "three are unique
/// if symmetry is taken into account."
pub fn symmetry_classes_of_valid_choices() -> Vec<Vec<TurnSet>> {
    let valid: Vec<TurnSet> = classify_2d_prohibitions()
        .into_iter()
        .filter(|c| c.deadlock_free)
        .map(|c| c.turns)
        .collect();
    let symmetries = square_symmetries();
    let mut classes: Vec<Vec<TurnSet>> = Vec::new();
    for set in valid {
        let known = classes
            .iter_mut()
            .find(|class| symmetries.iter().any(|&s| class[0].relabel(s) == set));
        match known {
            Some(class) => class.push(set),
            None => classes.push(vec![set]),
        }
    }
    classes
}

/// Extends the Section 3 analysis to 3D meshes: evaluates all
/// `4^6 = 4096` one-turn-per-cycle prohibition choices against the full
/// CDG check and returns `(deadlock_free, total)`.
///
/// The verdict mesh is 3x3x3 — large enough to host every complex
/// cycle (verdicts are identical on 4x4x4), whereas a 2x2x2 mesh
/// over-approves because extent-2 dimensions cannot realize some
/// cycles.
///
/// The result sharpens the paper's warning that step 4 "must be chosen
/// carefully ... including complex cycles not identified in Step 3": in
/// 2D, 75% of the candidate choices work (12 of 16); in 3D only ~4.3%
/// do (176 of 4096).
pub fn classify_3d_prohibitions() -> (usize, usize) {
    let mesh = Mesh::new(vec![3, 3, 3]);
    let sets = TurnSet::one_turn_per_cycle_prohibitions(3);
    let total = sets.len();
    let free = sets
        .iter()
        .filter(|s| ChannelDependencyGraph::from_turn_set(&mesh, s).is_acyclic())
        .count();
    (free, total)
}

/// The 48 symmetries of the cube (axis permutations with sign flips) as
/// direction relabelings.
pub fn cube_symmetries() -> Vec<impl Fn(Direction) -> Direction + Copy> {
    const PERMS: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    #[derive(Clone, Copy)]
    struct Symmetry {
        perm: [usize; 3],
        flips: u8,
    }
    impl Symmetry {
        fn apply(self, d: Direction) -> Direction {
            let dim = self.perm[d.dim()];
            let flip = self.flips >> d.dim() & 1 == 1;
            let sign = if flip { d.sign().opposite() } else { d.sign() };
            Direction::new(dim, sign)
        }
    }
    // `impl Fn` via closures capturing Copy data.
    let mut out: Vec<_> = Vec::with_capacity(48);
    for perm in PERMS {
        for flips in 0u8..8 {
            let s = Symmetry { perm, flips };
            out.push(move |d: Direction| s.apply(d));
        }
    }
    out
}

/// Groups the deadlock-free 3D prohibition choices into equivalence
/// classes under the cube's 48 symmetries. The 3D analog of the paper's
/// "three are unique if symmetry is taken into account": **nine** are.
pub fn symmetry_classes_of_valid_3d_choices() -> Vec<usize> {
    let mesh = Mesh::new(vec![3, 3, 3]);
    let valid: Vec<TurnSet> = TurnSet::one_turn_per_cycle_prohibitions(3)
        .into_iter()
        .filter(|s| ChannelDependencyGraph::from_turn_set(&mesh, s).is_acyclic())
        .collect();
    let symmetries = cube_symmetries();
    let key = |s: &TurnSet| -> Vec<Turn> {
        let mut v: Vec<Turn> = s.prohibited_ninety().collect();
        v.sort();
        v
    };
    let mut classes: Vec<(Vec<Turn>, usize)> = Vec::new();
    for set in &valid {
        // Canonicalize: the lexicographically smallest relabeled key.
        let mut canon = key(set);
        for sym in &symmetries {
            let rk = key(&set.relabel(*sym));
            if rk < canon {
                canon = rk;
            }
        }
        match classes.iter_mut().find(|(k, _)| *k == canon) {
            Some((_, count)) => *count += 1,
            None => classes.push((canon, 1)),
        }
    }
    let mut sizes: Vec<usize> = classes.into_iter().map(|(_, c)| c).collect();
    sizes.sort_unstable();
    sizes
}

/// Theorem 6, executable: prohibiting the `n(n-1)` positive-to-negative
/// turns (negative-first) is sufficient for deadlock freedom, and no
/// choice prohibiting fewer turns can even break all abstract cycles.
pub fn theorem6_holds(num_dims: usize, mesh: &Mesh) -> bool {
    let nf = TurnSet::negative_first(num_dims);
    let quarter = num_dims * (num_dims - 1);
    let sufficient = nf.prohibited_ninety().count() == quarter
        && ChannelDependencyGraph::from_turn_set(mesh, &nf).is_acyclic();
    // Necessity: the turns partition into n(n-1) disjoint cycles, so
    // fewer prohibitions leave a cycle untouched (pigeonhole over the
    // census's partition check).
    let necessary = turn_census(num_dims).min_prohibited == quarter;
    sufficient && necessary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_matches_formulas() {
        for n in 2..=6 {
            let c = turn_census(n);
            assert_eq!(c.ninety_degree_turns, 4 * n * (n - 1));
            assert_eq!(c.abstract_cycles, n * (n - 1));
            assert_eq!(c.min_prohibited, c.ninety_degree_turns / 4);
        }
    }

    #[test]
    fn twelve_of_sixteen_prevent_deadlock() {
        let choices = classify_2d_prohibitions();
        assert_eq!(choices.len(), 16);
        let free = choices.iter().filter(|c| c.deadlock_free).count();
        assert_eq!(free, 12);
        for c in &choices {
            assert_eq!(c.prohibited.len(), 2);
        }
    }

    #[test]
    fn failing_choices_prohibit_reversed_turn_pairs() {
        // The four deadlocking choices are exactly those whose two
        // prohibited turns are reverses of one another — Fig. 4's "three
        // allowed left turns compose into the prohibited right turn".
        for c in classify_2d_prohibitions() {
            let (a, b) = (c.prohibited[0], c.prohibited[1]);
            let reversed = a.from_dir() == b.to_dir() && a.to_dir() == b.from_dir();
            assert_eq!(
                !c.deadlock_free, reversed,
                "prohibited {:?} deadlock_free={}",
                c.prohibited, c.deadlock_free
            );
        }
    }

    #[test]
    fn exactly_three_symmetry_classes() {
        let classes = symmetry_classes_of_valid_choices();
        assert_eq!(classes.len(), 3, "Section 3: three unique up to symmetry");
        let sizes: Vec<usize> = classes.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 12);
        // The three named algorithms land in three different classes.
        let named = [
            TurnSet::west_first(),
            TurnSet::north_last(),
            TurnSet::negative_first(2),
        ];
        let symmetries = square_symmetries();
        // Compare on the 90-degree structure: the named constructors
        // additionally admit safe 180-degree turns (step 6), which the
        // raw prohibition enumeration does not.
        let key = |set: &TurnSet| {
            let mut turns: Vec<Turn> = set.prohibited_ninety().collect();
            turns.sort();
            turns
        };
        let class_of = |set: &TurnSet| {
            classes.iter().position(|class| {
                symmetries
                    .iter()
                    .any(|&s| key(&class[0].relabel(s)) == key(set))
            })
        };
        let mut found: Vec<usize> = named.iter().map(|s| class_of(s).unwrap()).collect();
        found.sort_unstable();
        found.dedup();
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn square_symmetries_form_a_group_of_eight() {
        let syms = square_symmetries();
        assert_eq!(syms.len(), 8);
        // Each symmetry permutes the four directions.
        for s in &syms {
            let mut images: Vec<Direction> = Direction::all(2).map(s).collect();
            images.sort();
            images.dedup();
            assert_eq!(images.len(), 4);
        }
        // All eight act differently on (EAST, NORTH).
        let mut signatures: Vec<(Direction, Direction)> = syms
            .iter()
            .map(|s| (s(Direction::EAST), s(Direction::NORTH)))
            .collect();
        signatures.sort();
        signatures.dedup();
        assert_eq!(signatures.len(), 8);
    }

    #[test]
    fn three_d_admits_176_of_4096() {
        let (free, total) = classify_3d_prohibitions();
        assert_eq!(total, 4096);
        assert_eq!(free, 176);
    }

    #[test]
    fn three_d_has_nine_symmetry_classes() {
        let sizes = symmetry_classes_of_valid_3d_choices();
        assert_eq!(sizes.iter().sum::<usize>(), 176);
        assert_eq!(sizes.len(), 9, "the 3D analog of 'three are unique'");
        assert_eq!(sizes, vec![8, 12, 12, 24, 24, 24, 24, 24, 24]);
        // The size-8 orbit is negative-first's: its stabilizer is the
        // full axis-permutation subgroup (order 6), so |orbit| = 48/6.
    }

    #[test]
    fn named_3d_sets_are_among_the_valid_choices() {
        let mesh = Mesh::new(vec![3, 3, 3]);
        for set in [
            TurnSet::negative_first(3),
            TurnSet::abonf(3),
            TurnSet::abopl(3),
        ] {
            assert!(ChannelDependencyGraph::from_turn_set(&mesh, &set).is_acyclic());
        }
        // Negative-first is invariant under every axis permutation.
        let nf = TurnSet::negative_first(3);
        let perm = |d: Direction| Direction::new((d.dim() + 1) % 3, d.sign());
        let key = |s: &TurnSet| {
            let mut v: Vec<Turn> = s.prohibited_ninety().collect();
            v.sort();
            v
        };
        assert_eq!(key(&nf.relabel(perm)), key(&nf));
    }

    #[test]
    fn cube_symmetries_are_48_distinct_bijections() {
        let syms = cube_symmetries();
        assert_eq!(syms.len(), 48);
        let mut signatures: Vec<Vec<Direction>> = syms
            .iter()
            .map(|s| Direction::all(3).map(*s).collect())
            .collect();
        signatures.sort();
        signatures.dedup();
        assert_eq!(signatures.len(), 48);
        for sym in &syms {
            let mut images: Vec<Direction> = Direction::all(3).map(*sym).collect();
            images.sort();
            images.dedup();
            assert_eq!(images.len(), 6, "each symmetry permutes the six directions");
        }
    }

    #[test]
    fn theorem6_for_2d_through_4d() {
        assert!(theorem6_holds(2, &Mesh::new_2d(4, 4)));
        assert!(theorem6_holds(3, &Mesh::new(vec![3, 3, 3])));
        assert!(theorem6_holds(4, &Mesh::new(vec![2, 2, 2, 2])));
    }
}
