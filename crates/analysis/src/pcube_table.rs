//! The Section 5 worked example: p-cube routing choices along a path in
//! a binary 10-cube.

use turnroute_core::{PCube, RoutingAlgorithm};
use turnroute_topology::{Hypercube, NodeId, Topology};

/// One row of the Section 5 table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PCubeTableRow {
    /// The node transmitting the message, as an n-bit address.
    pub address: usize,
    /// Minimal p-cube choices at this node.
    pub choices: usize,
    /// Additional choices available with nonminimal routing.
    pub extra_nonminimal: usize,
    /// The dimension the example path takes from this node.
    pub dimension_taken: usize,
}

/// Replays a path through a hypercube and reports, at each transmitting
/// node, the number of p-cube routing choices (minimal, plus the
/// nonminimal extras in parentheses in the paper's table).
///
/// # Panics
///
/// Panics if a step in `dims_taken` is not actually permitted by
/// (nonminimal) p-cube routing toward `dst`.
pub fn pcube_choice_table(
    cube: &Hypercube,
    src: NodeId,
    dst: NodeId,
    dims_taken: &[usize],
) -> Vec<PCubeTableRow> {
    let minimal = PCube::minimal();
    let nonminimal = PCube::nonminimal();
    let mut rows = Vec::new();
    let mut current = src;
    for &dim in dims_taken {
        let min_set = minimal.route(cube, current, dst, None);
        let full_set = nonminimal.route(cube, current, dst, None);
        let taken_dir = full_set
            .iter()
            .find(|d| d.dim() == dim)
            .unwrap_or_else(|| panic!("dimension {dim} not permitted at {current}"));
        rows.push(PCubeTableRow {
            address: current.index(),
            choices: min_set.len(),
            extra_nonminimal: full_set.len() - min_set.len(),
            dimension_taken: dim,
        });
        current = cube
            .neighbor(current, taken_dir)
            .expect("hypercube neighbors always exist along permitted directions");
    }
    assert_eq!(
        current, dst,
        "the replayed path must end at the destination"
    );
    rows
}

/// The paper's exact Section 5 example: source `1011010100`, destination
/// `0010111001` in a binary 10-cube, taking dimensions 2, 9, 6, 5, 0, 3.
pub fn section5_example() -> Vec<PCubeTableRow> {
    let cube = Hypercube::new(10);
    pcube_choice_table(
        &cube,
        NodeId::new(0b1011010100),
        NodeId::new(0b0010111001),
        &[2, 9, 6, 5, 0, 3],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section5_table_reproduces_exactly() {
        let rows = section5_example();
        assert_eq!(rows.len(), 6);

        // Addresses along the path, from the paper.
        let addresses = [
            0b1011010100,
            0b1011010000,
            0b0011010000,
            0b0010010000,
            0b0010110000,
            0b0010110001,
        ];
        // "choices" column: 3(+2), 2(+2), 1(+2), 3, 2, 1.
        let choices = [3, 2, 1, 3, 2, 1];
        let extras = [2, 2, 2, 0, 0, 0];
        let dims = [2, 9, 6, 5, 0, 3];

        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.address, addresses[i], "row {i} address");
            assert_eq!(row.choices, choices[i], "row {i} choices");
            assert_eq!(row.extra_nonminimal, extras[i], "row {i} extras");
            assert_eq!(row.dimension_taken, dims[i], "row {i} dim");
        }
    }

    #[test]
    fn total_shortest_paths_is_36() {
        // h1 = h0 = 3 gives 3! * 3! = 36 paths (Section 5).
        use turnroute_core::adaptiveness::pcube_shortest_paths;
        assert_eq!(pcube_shortest_paths(0b1011010100, 0b0010111001), 36);
    }

    #[test]
    #[should_panic(expected = "not permitted")]
    fn illegal_path_is_rejected() {
        // Dimension 0 is an upward (phase-two) correction; taking it
        // first violates p-cube.
        let cube = Hypercube::new(10);
        let _ = pcube_choice_table(
            &cube,
            NodeId::new(0b1011010100),
            NodeId::new(0b0010111001),
            &[0, 2, 9, 6, 5, 3],
        );
    }
}
