//! Executable theorems and analytic studies from *"The Turn Model for
//! Adaptive Routing"* (Glass & Ni, ISCA 1992).
//!
//! Everything the paper proves or tabulates with pencil and paper is
//! recomputed here and pinned by tests:
//!
//! * [`turn_census`], [`theorem6_holds`] — Theorems 1 and 6: exactly a
//!   quarter of the turns must and suffice to be prohibited.
//! * [`classify_2d_prohibitions`], [`symmetry_classes_of_valid_choices`]
//!   — Section 3's "of the 16 ways, 12 prevent deadlock and 3 are unique
//!   up to symmetry".
//! * [`study_2d_mesh`], [`study_nd_mesh`], [`study_hypercube`] — the
//!   degree-of-adaptiveness measures of Sections 3.4, 4.1 and 5.
//! * [`mean_uniform_distance`] and friends — the average path lengths
//!   quoted in Section 6 (10.61 / 11.34 / 4.01 / 4.27 hops).
//! * [`section5_example`] — the worked p-cube table, byte for byte.
//!
//! # Example
//!
//! ```
//! use turnroute_analysis::classify_2d_prohibitions;
//!
//! let ok = classify_2d_prohibitions()
//!     .iter()
//!     .filter(|c| c.deadlock_free)
//!     .count();
//! assert_eq!(ok, 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptiveness_study;
mod hex_turns;
mod path_length;
mod pcube_table;
mod theorems;

pub use adaptiveness_study::{
    adaptiveness_row, study_2d_mesh, study_hypercube, study_nd_mesh, AdaptivenessRow,
};
pub use hex_turns::{
    breaks_all_hex_cycles, hex_abstract_cycles, hex_axis_order, hex_deadlock_free,
    hex_negative_first, hex_turn_kind, HexCycle, HexTurnKind,
};
pub use path_length::{
    mean_pattern_distance, mean_reverse_flip_distance, mean_transpose_distance,
    mean_uniform_distance,
};
pub use pcube_table::{pcube_choice_table, section5_example, PCubeTableRow};
pub use theorems::{
    classify_2d_prohibitions, classify_3d_prohibitions, cube_symmetries, square_symmetries,
    symmetry_classes_of_valid_3d_choices, symmetry_classes_of_valid_choices, theorem6_holds,
    turn_census, ProhibitionChoice, TurnCensus,
};
