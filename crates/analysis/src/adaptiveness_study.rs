//! Degree-of-adaptiveness studies (Sections 3.4, 4.1 and 5).

use turnroute_core::adaptiveness::{
    abonf_shortest_paths, abopl_shortest_paths, fully_adaptive_shortest_paths,
    hypercube_fully_adaptive_shortest_paths, negative_first_shortest_paths,
    north_last_shortest_paths, pcube_shortest_paths, west_first_shortest_paths,
};
use turnroute_topology::{NodeId, Topology};

/// Summary adaptiveness statistics for one algorithm on one topology.
#[derive(Debug, Clone)]
pub struct AdaptivenessRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Mean of `S_p / S_f` over all ordered pairs of distinct nodes.
    pub avg_ratio: f64,
    /// Fraction of pairs with `S_p = 1` (a single allowed shortest
    /// path). The paper notes this is at least half for the 2D
    /// algorithms.
    pub single_path_fraction: f64,
    /// Mean `S_p` over all pairs.
    pub avg_paths: f64,
}

/// Computes an [`AdaptivenessRow`] from a per-pair `(S_p, S_f)` oracle.
pub fn adaptiveness_row(
    topo: &dyn Topology,
    algorithm: &str,
    ratio: impl Fn(NodeId, NodeId) -> (u128, u128),
) -> AdaptivenessRow {
    let mut sum_ratio = 0.0;
    let mut singles = 0u64;
    let mut sum_paths = 0.0;
    let mut pairs = 0u64;
    for s in topo.nodes() {
        for d in topo.nodes() {
            if s == d {
                continue;
            }
            let (sp, sf) = ratio(s, d);
            sum_ratio += sp as f64 / sf as f64;
            sum_paths += sp as f64;
            if sp == 1 {
                singles += 1;
            }
            pairs += 1;
        }
    }
    AdaptivenessRow {
        algorithm: algorithm.to_owned(),
        avg_ratio: sum_ratio / pairs as f64,
        single_path_fraction: singles as f64 / pairs as f64,
        avg_paths: sum_paths / pairs as f64,
    }
}

/// The Section 3.4 study for a 2D mesh: west-first, north-last and
/// negative-first against the fully adaptive baseline.
pub fn study_2d_mesh(mesh: &dyn Topology) -> Vec<AdaptivenessRow> {
    assert_eq!(mesh.num_dims(), 2);
    vec![
        adaptiveness_row(mesh, "west-first", |s, d| {
            (
                west_first_shortest_paths(mesh, s, d),
                fully_adaptive_shortest_paths(mesh, s, d),
            )
        }),
        adaptiveness_row(mesh, "north-last", |s, d| {
            (
                north_last_shortest_paths(mesh, s, d),
                fully_adaptive_shortest_paths(mesh, s, d),
            )
        }),
        adaptiveness_row(mesh, "negative-first", |s, d| {
            (
                negative_first_shortest_paths(mesh, s, d),
                fully_adaptive_shortest_paths(mesh, s, d),
            )
        }),
    ]
}

/// The Section 4.1 study for an n-dimensional mesh: ABONF, ABOPL and
/// negative-first.
pub fn study_nd_mesh(mesh: &dyn Topology) -> Vec<AdaptivenessRow> {
    vec![
        adaptiveness_row(mesh, "abonf", |s, d| {
            (
                abonf_shortest_paths(mesh, s, d),
                fully_adaptive_shortest_paths(mesh, s, d),
            )
        }),
        adaptiveness_row(mesh, "abopl", |s, d| {
            (
                abopl_shortest_paths(mesh, s, d),
                fully_adaptive_shortest_paths(mesh, s, d),
            )
        }),
        adaptiveness_row(mesh, "negative-first", |s, d| {
            (
                negative_first_shortest_paths(mesh, s, d),
                fully_adaptive_shortest_paths(mesh, s, d),
            )
        }),
    ]
}

/// The Section 5 study for a hypercube: p-cube against the fully
/// adaptive `h!` baseline.
pub fn study_hypercube(cube: &dyn Topology) -> AdaptivenessRow {
    adaptiveness_row(cube, "p-cube", |s, d| {
        (
            pcube_shortest_paths(s.index(), d.index()),
            hypercube_fully_adaptive_shortest_paths(s.index(), d.index()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_topology::{Hypercube, Mesh};

    #[test]
    fn paper_claims_hold_on_the_16x16_mesh() {
        let mesh = Mesh::new_2d(16, 16);
        for row in study_2d_mesh(&mesh) {
            // "averaged across all source-destination pairs, S_p/S_f > 1/2"
            assert!(row.avg_ratio > 0.5, "{}: {}", row.algorithm, row.avg_ratio);
            // "S_p = 1 for at least half of the source-destination pairs"
            assert!(
                row.single_path_fraction >= 0.5 - 1e-9,
                "{}: {}",
                row.algorithm,
                row.single_path_fraction
            );
        }
    }

    #[test]
    fn ratio_bound_decays_with_dimension() {
        // Section 4.1: S_p/S_f > 1/2^(n-1) on average.
        let mesh3 = Mesh::new(vec![4, 4, 4]);
        for row in study_nd_mesh(&mesh3) {
            assert!(row.avg_ratio > 0.25, "{}: {}", row.algorithm, row.avg_ratio);
        }
        let cube = Hypercube::new(8);
        let row = study_hypercube(&cube);
        assert!(row.avg_ratio > 1.0 / 128.0, "{}", row.avg_ratio);
        // And adaptiveness is far below fully adaptive for large n.
        assert!(row.avg_ratio < 0.5);
    }

    #[test]
    fn negative_first_single_path_fraction_2d() {
        // Exactly the mixed-sign pairs (minus aligned ones with a single
        // offset) have one path; for a square mesh this is more than
        // half of all pairs.
        let mesh = Mesh::new_2d(8, 8);
        let rows = study_2d_mesh(&mesh);
        let nf = rows
            .iter()
            .find(|r| r.algorithm == "negative-first")
            .unwrap();
        assert!(nf.single_path_fraction > 0.5);
        // West-first's single-path pairs are those strictly to the west
        // plus aligned pairs.
        let wf = rows.iter().find(|r| r.algorithm == "west-first").unwrap();
        assert!(wf.single_path_fraction > 0.4 && wf.single_path_fraction < 0.7);
    }

    #[test]
    fn avg_paths_exceed_one_for_adaptive_algorithms() {
        let mesh = Mesh::new_2d(8, 8);
        for row in study_2d_mesh(&mesh) {
            assert!(row.avg_paths > 1.0, "{}", row.algorithm);
        }
    }
}
