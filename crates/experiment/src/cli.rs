//! Command-line front end: parse topology, algorithm and pattern
//! specifications into trait objects.
//!
//! Used by the `turnroute` binary; exposed as a library module so the
//! parsing rules are unit-testable and reusable.

use std::fmt;
use turnroute_core::{
    Abonf, Abopl, DimensionOrder, FirstHopWraparound, NegativeFirst, NegativeFirstTorus, NorthLast,
    PCube, RoutingAlgorithm, WestFirst,
};
use turnroute_fault::{FaultPlan, FaultSchedule};
use turnroute_sim::patterns::{
    BitComplement, BitReversal, DiagonalTranspose, Hotspot, HypercubeTranspose, NearestNeighbor,
    ReverseFlip, Shuffle, Tornado, Trace, TrafficPattern, Transpose, Uniform, WeightedHotspot,
};
use turnroute_sim::TrafficModel;
use turnroute_synth::{synthesize, GraphSpec, GraphTopology, SynthesisOptions};
use turnroute_topology::{HexMesh, Hypercube, Mesh, NodeId, Topology, Torus};
use turnroute_vc::{DatelineDimensionOrder, MadY, SingleClass, VcRoutingAlgorithm};

/// A parse failure, with a human-oriented message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError(String);

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl ParseSpecError {
    /// A parse error carrying `msg` (for callers layered on the CLI
    /// parsers, e.g. experiment-spec validation).
    pub fn new(msg: impl Into<String>) -> Self {
        ParseSpecError(msg.into())
    }
}

impl std::error::Error for ParseSpecError {}

fn err(msg: impl Into<String>) -> ParseSpecError {
    ParseSpecError(msg.into())
}

/// The topology specifications the CLI accepts.
pub const TOPOLOGY_SPECS: &str = "\
  mesh:<k0>x<k1>[x<k2>...]   n-dimensional mesh, e.g. mesh:16x16
  torus:<k>,<n>              k-ary n-cube, e.g. torus:8,2
  hypercube:<n>              binary n-cube, e.g. hypercube:8
  hex:<m>x<n>                hexagonal mesh, e.g. hex:8x8
  graph:<file>               edge-list file (see DESIGN.md §12)
  fullmesh:<n>               fully connected n-node graph
  ring:<n>                   bidirectional n-node ring
  dragonfly:<r>,<g>          g groups of r all-to-all routers
  fattree:<l>,<s>            l leaves fully wired to s spines";

/// Parses a topology specification like `mesh:16x16`, `torus:8,2`,
/// `hypercube:8` or `hex:6x6`.
///
/// # Errors
///
/// Returns a message naming the accepted forms on any mismatch.
pub fn parse_topology(spec: &str) -> Result<Box<dyn Topology>, ParseSpecError> {
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| err(format!("topology '{spec}' needs a ':<shape>' suffix")))?;
    match kind {
        "mesh" => {
            let dims: Vec<usize> = rest
                .split('x')
                .map(|p| p.parse().map_err(|_| err(format!("bad mesh extent '{p}'"))))
                .collect::<Result<_, _>>()?;
            if dims.is_empty() || dims.iter().any(|&k| k < 1) {
                return Err(err("mesh extents must all be at least 1"));
            }
            Ok(Box::new(Mesh::new(dims)))
        }
        "torus" => {
            let (k, n) = rest
                .split_once(',')
                .ok_or_else(|| err("torus spec is torus:<k>,<n>"))?;
            let k: usize = k.parse().map_err(|_| err(format!("bad radix '{k}'")))?;
            let n: usize = n.parse().map_err(|_| err(format!("bad dimension '{n}'")))?;
            if k < 3 {
                return Err(err(
                    "torus radix must be at least 3 (use hypercube for k = 2)",
                ));
            }
            Ok(Box::new(Torus::new(k, n)))
        }
        "hypercube" => {
            let n: usize = rest
                .parse()
                .map_err(|_| err(format!("bad dimension '{rest}'")))?;
            if n == 0 || n > 16 {
                return Err(err("hypercube dimension must be 1..=16"));
            }
            Ok(Box::new(Hypercube::new(n)))
        }
        "hex" => {
            let (m, n) = rest
                .split_once('x')
                .ok_or_else(|| err("hex spec is hex:<m>x<n>"))?;
            let m: usize = m.parse().map_err(|_| err(format!("bad extent '{m}'")))?;
            let n: usize = n.parse().map_err(|_| err(format!("bad extent '{n}'")))?;
            if m < 2 || n < 2 {
                return Err(err("hex extents must be at least 2"));
            }
            Ok(Box::new(HexMesh::new(m, n)))
        }
        "graph" | "fullmesh" | "ring" | "dragonfly" | "fattree" => {
            let spec = parse_graph_spec(kind, rest)?;
            let topo = GraphTopology::new(&spec).map_err(|e| {
                err(format!(
                    "bad graph topology '{spec}': {e}",
                    spec = spec.label
                ))
            })?;
            Ok(Box::new(topo))
        }
        other => Err(err(format!("unknown topology kind '{other}'"))),
    }
}

/// Parses the graph-topology kinds into a [`GraphSpec`]: the generators
/// by their parameters, `graph:<file>` by reading the edge-list file.
fn parse_graph_spec(kind: &str, rest: &str) -> Result<GraphSpec, ParseSpecError> {
    match kind {
        "graph" => {
            let text = std::fs::read_to_string(rest)
                .map_err(|e| err(format!("cannot read graph file '{rest}': {e}")))?;
            GraphSpec::parse(&text, format!("graph:{rest}"))
                .map_err(|e| err(format!("bad graph file '{rest}': {e}")))
        }
        "fullmesh" => {
            let n: usize = rest
                .parse()
                .map_err(|_| err(format!("bad node count '{rest}'")))?;
            Ok(GraphSpec::full_mesh(n))
        }
        "ring" => {
            let n: usize = rest
                .parse()
                .map_err(|_| err(format!("bad node count '{rest}'")))?;
            Ok(GraphSpec::ring(n))
        }
        "dragonfly" => {
            let (r, g) = rest
                .split_once(',')
                .ok_or_else(|| err("dragonfly spec is dragonfly:<routers>,<groups>"))?;
            let r: usize = r.parse().map_err(|_| err(format!("bad routers '{r}'")))?;
            let g: usize = g.parse().map_err(|_| err(format!("bad groups '{g}'")))?;
            Ok(GraphSpec::dragonfly(r, g))
        }
        "fattree" => {
            let (l, s) = rest
                .split_once(',')
                .ok_or_else(|| err("fattree spec is fattree:<leaves>,<spines>"))?;
            let l: usize = l.parse().map_err(|_| err(format!("bad leaves '{l}'")))?;
            let s: usize = s.parse().map_err(|_| err(format!("bad spines '{s}'")))?;
            Ok(GraphSpec::fat_tree(l, s))
        }
        _ => unreachable!("caller matched the graph kinds"),
    }
}

/// The algorithm names the CLI accepts.
pub const ALGORITHM_NAMES: &str = "\
  xy | dimension-order | e-cube   nonadaptive baseline
  west-first[-nonminimal]         2D mesh (Section 3.1)
  north-last[-nonminimal]         2D mesh (Section 3.2)
  negative-first[-nonminimal]     any mesh/hypercube (Sections 3.3, 4.1)
  abonf | abopl                   n-dimensional analogs (Section 4.1)
  p-cube[-nonminimal]             hypercubes (Section 5)
  negative-first-torus            k-ary n-cubes (Section 4.2)
  first-hop-wrap                  k-ary n-cubes (Section 4.2)
  synth[:<seed>]                  synthesized turn model (any topology)";

/// Parses an algorithm name in the context of `topo` (dimension counts
/// and torus-specific constructions depend on the topology).
///
/// # Errors
///
/// Returns a message listing the accepted names on any mismatch.
pub fn parse_algorithm(
    name: &str,
    topo: &dyn Topology,
) -> Result<Box<dyn RoutingAlgorithm>, ParseSpecError> {
    let n = topo.num_dims();
    let is_torus = (0..n).all(|d| topo.wraps(d));
    Ok(match name {
        "xy" | "dimension-order" | "e-cube" => Box::new(DimensionOrder::new()),
        "west-first" => Box::new(WestFirst::with_dims(2, true)),
        "west-first-nonminimal" => Box::new(WestFirst::with_dims(2, false)),
        "north-last" => Box::new(NorthLast::with_dims(2, true)),
        "north-last-nonminimal" => Box::new(NorthLast::with_dims(2, false)),
        "negative-first" => Box::new(NegativeFirst::with_dims(n, true)),
        "negative-first-nonminimal" => Box::new(NegativeFirst::with_dims(n, false)),
        "abonf" => Box::new(Abonf::with_dims(n, true)),
        "abopl" => Box::new(Abopl::with_dims(n, true)),
        "p-cube" | "pcube" => Box::new(PCube::minimal()),
        "p-cube-nonminimal" => Box::new(PCube::nonminimal()),
        "negative-first-torus" if is_torus => {
            let k = topo.radix(0);
            Box::new(NegativeFirstTorus::new(&Torus::new(k, n)))
        }
        "first-hop-wrap" if is_torus => {
            let k = topo.radix(0);
            Box::new(FirstHopWraparound::new(
                &Torus::new(k, n),
                NegativeFirst::with_dims(n, true),
            ))
        }
        "negative-first-torus" | "first-hop-wrap" => {
            return Err(err(format!("'{name}' requires a torus topology")))
        }
        _ if name == "synth" || name.starts_with("synth:") => {
            let seed = match name.strip_prefix("synth:") {
                None => 0,
                Some(s) => s
                    .parse()
                    .map_err(|_| err(format!("bad synthesis seed '{s}'")))?,
            };
            let synthesis = synthesize(
                topo,
                &SynthesisOptions {
                    seed,
                    ..Default::default()
                },
            )
            .map_err(|e| err(format!("synthesis failed on {}: {e}", topo.label())))?;
            // Keep the spec string as the name so reports round-trip.
            let mut routing = synthesis.routing;
            routing.set_name(name);
            Box::new(routing)
        }
        other => {
            return Err(err(format!(
                "unknown algorithm '{other}'; accepted names:\n{ALGORITHM_NAMES}"
            )))
        }
    })
}

/// The extra algorithm names the virtual-channel engine accepts on top
/// of [`ALGORITHM_NAMES`] (plain algorithms run on class-0 lanes).
pub const VC_ALGORITHM_NAMES: &str = "\
  mad-y                           fully adaptive 2D mesh, 2 y-lanes [18]
  dateline                        minimal torus, 2 lanes per dimension";

/// Parses an algorithm name for the virtual-channel engine: the
/// lane-based constructions (`mad-y`, `dateline`) by name, and any name
/// accepted by [`parse_algorithm`] wrapped to run on class-0 lanes via
/// [`SingleClass`].
///
/// # Errors
///
/// Returns a message listing the accepted names on any mismatch.
pub fn parse_vc_algorithm(
    name: &str,
    topo: &dyn Topology,
) -> Result<Box<dyn VcRoutingAlgorithm>, ParseSpecError> {
    Ok(match name {
        "mad-y" | "mady" => Box::new(MadY::new()),
        "dateline" => Box::new(DatelineDimensionOrder::new()),
        other => Box::new(SingleClass::new(parse_algorithm(other, topo)?)),
    })
}

/// The pattern names the CLI accepts.
pub const PATTERN_NAMES: &str = "\
  uniform | transpose | diagonal-transpose | hypercube-transpose
  reverse-flip | bit-complement | bit-reversal | shuffle | tornado
  neighbor | hotspot:<node>[*<w>][+<node>[*<w>]...],<percent>
  trace:<file>  per-node weighted destination file: '<src> <dst> [weight]'
                lines, '#' comments (see README)";

/// Parses a traffic pattern name, e.g. `uniform`, `hotspot:120,10`,
/// `hotspot:12*3+40,20` or `trace:pairs.trace`.
///
/// # Errors
///
/// Returns a message listing the accepted names on any mismatch, and a
/// line-numbered message for unreadable or malformed trace files.
pub fn parse_pattern(name: &str) -> Result<Box<dyn TrafficPattern>, ParseSpecError> {
    if let Some(rest) = name.strip_prefix("hotspot:") {
        let (nodes, pct) = rest.rsplit_once(',').ok_or_else(|| {
            err("hotspot spec is hotspot:<node>[*<w>][+<node>[*<w>]...],<percent>")
        })?;
        let pct: f64 = pct
            .parse()
            .map_err(|_| err(format!("bad percent '{pct}'")))?;
        if !(0.0..=100.0).contains(&pct) {
            return Err(err("hotspot percent must be within 0..=100"));
        }
        let mut hotspots: Vec<(NodeId, f64)> = Vec::new();
        for part in nodes.split('+') {
            let (node, weight) = match part.split_once('*') {
                None => (part, 1.0),
                Some((n, w)) => {
                    let w: f64 = w
                        .parse()
                        .map_err(|_| err(format!("bad hotspot weight '{w}'")))?;
                    if !w.is_finite() || w <= 0.0 {
                        return Err(err(format!(
                            "hotspot weight must be a positive finite number, got {w}"
                        )));
                    }
                    (n, w)
                }
            };
            let node: usize = node
                .parse()
                .map_err(|_| err(format!("bad node '{node}'")))?;
            hotspots.push((NodeId::new(node), weight));
        }
        // A single unweighted hotspot keeps the original pattern (and
        // its original RNG draw sequence); any '+' or '*' form builds
        // the weighted generalization.
        return Ok(match hotspots.as_slice() {
            [(node, w)] if *w == 1.0 && !nodes.contains('*') => {
                Box::new(Hotspot::new(*node, pct / 100.0))
            }
            _ => Box::new(WeightedHotspot::new(hotspots, pct / 100.0)),
        });
    }
    if let Some(rest) = name.strip_prefix("trace:") {
        let text = std::fs::read_to_string(rest)
            .map_err(|e| err(format!("cannot read trace file '{rest}': {e}")))?;
        let trace = Trace::parse(&text, format!("trace:{rest}"))
            .map_err(|e| err(format!("bad trace file '{rest}': {e}")))?;
        return Ok(Box::new(trace));
    }
    Ok(match name {
        "uniform" => Box::new(Uniform),
        "transpose" => Box::new(Transpose),
        "diagonal-transpose" => Box::new(DiagonalTranspose),
        "hypercube-transpose" => Box::new(HypercubeTranspose),
        "reverse-flip" => Box::new(ReverseFlip),
        "bit-complement" => Box::new(BitComplement),
        "bit-reversal" => Box::new(BitReversal),
        "shuffle" => Box::new(Shuffle),
        "tornado" => Box::new(Tornado),
        "neighbor" => Box::new(NearestNeighbor),
        other => {
            return Err(err(format!(
                "unknown pattern '{other}'; accepted names:\n{PATTERN_NAMES}"
            )))
        }
    })
}

/// The traffic-model specifications the CLI accepts.
pub const TRAFFIC_SPECS: &str = "\
  poisson                    stationary Poisson arrivals (default)
  mmpp:<burst>,<idle>        bursty on-off arrivals: mean ON / OFF
                             sojourns in cycles, same long-run load";

/// Parses a traffic-model specification like `poisson` or
/// `mmpp:200,600`.
///
/// # Errors
///
/// Returns a message naming the accepted forms on any mismatch, and a
/// targeted message for non-positive or non-finite MMPP sojourns.
pub fn parse_traffic(spec: &str) -> Result<TrafficModel, ParseSpecError> {
    if spec == "poisson" {
        return Ok(TrafficModel::Poisson);
    }
    if let Some(rest) = spec.strip_prefix("mmpp:") {
        let (burst, idle) = rest
            .split_once(',')
            .ok_or_else(|| err("mmpp spec is mmpp:<burst_cycles>,<idle_cycles>"))?;
        let burst_cycles: f64 = burst
            .parse()
            .map_err(|_| err(format!("bad burst cycles '{burst}'")))?;
        let idle_cycles: f64 = idle
            .parse()
            .map_err(|_| err(format!("bad idle cycles '{idle}'")))?;
        let model = TrafficModel::Mmpp {
            burst_cycles,
            idle_cycles,
        };
        model.check().map_err(err)?;
        return Ok(model);
    }
    Err(err(format!(
        "unknown traffic model '{spec}'; accepted forms:\n{TRAFFIC_SPECS}"
    )))
}

/// Checks that `pattern` fits `topo`: patterns naming explicit nodes
/// (hotspots, trace files) must not reference a node the topology does
/// not have. Spec layers call this after parsing both, so the mismatch
/// surfaces as a typed error instead of an engine panic.
///
/// # Errors
///
/// Returns a message naming the out-of-range node and the topology's
/// node count.
pub fn check_pattern_fits(
    pattern: &dyn TrafficPattern,
    topo: &dyn Topology,
) -> Result<(), ParseSpecError> {
    let need = pattern.min_nodes();
    if need > topo.num_nodes() {
        return Err(err(format!(
            "pattern '{}' references node {} but {} has only {} nodes",
            pattern.name(),
            need - 1,
            topo.label(),
            topo.num_nodes()
        )));
    }
    Ok(())
}

/// The fault-plan specification forms the CLI accepts (joined with `+`
/// for compound plans).
pub const FAULT_SPECS: &str = "\
  chan:<id>[@<inject>[..<repair>]]   one channel, e.g. chan:17@5..9
  node:<id|x,y>[@...]                every channel at a node
  region:<x,y>-<x,y>[@...]           channels inside a coordinate box
  random:<count>:<seed>              seed-derived random channels
  (omitting @ means a permanent fault from cycle 0)";

/// Parses a fault-plan specification like `chan:17+random:4:99` and
/// compiles it against `topo` into a replayable schedule.
///
/// # Errors
///
/// Returns a message naming the accepted forms on any mismatch, or the
/// compile error if a target is out of range for `topo`.
pub fn parse_faults(spec: &str, topo: &dyn Topology) -> Result<FaultSchedule, ParseSpecError> {
    let plan = FaultPlan::parse(spec).map_err(|e| {
        err(format!(
            "bad fault spec: {e}; accepted forms:\n{FAULT_SPECS}"
        ))
    })?;
    plan.compile(topo)
        .map_err(|e| err(format!("bad fault spec: {e}")))
}

/// Parses a node given either as a dense id (`137`) or a coordinate
/// tuple (`9,4`).
///
/// # Errors
///
/// Returns a message on malformed or out-of-range input.
pub fn parse_node(spec: &str, topo: &dyn Topology) -> Result<NodeId, ParseSpecError> {
    if spec.contains(',') {
        let parts: Vec<u16> = spec
            .split(',')
            .map(|p| p.parse().map_err(|_| err(format!("bad coordinate '{p}'"))))
            .collect::<Result<_, _>>()?;
        let coord = turnroute_topology::Coord::new(parts);
        let expect = topo.coord_of(NodeId::new(0)).num_dims();
        if coord.num_dims() != expect {
            return Err(err(format!(
                "expected {expect} coordinates for {}",
                topo.label()
            )));
        }
        for (dim, c) in coord.iter() {
            let bound = if dim < topo.num_dims() {
                topo.radix(dim)
            } else {
                usize::MAX
            };
            if (c as usize) >= bound {
                return Err(err(format!(
                    "coordinate {c} out of range in dimension {dim}"
                )));
            }
        }
        Ok(topo.node_at(&coord))
    } else {
        let id: usize = spec
            .parse()
            .map_err(|_| err(format!("bad node id '{spec}'")))?;
        if id >= topo.num_nodes() {
            return Err(err(format!(
                "node {id} out of range (topology has {} nodes)",
                topo.num_nodes()
            )));
        }
        Ok(NodeId::new(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies_parse() {
        assert_eq!(parse_topology("mesh:16x16").unwrap().num_nodes(), 256);
        assert_eq!(parse_topology("mesh:3x4x5").unwrap().num_nodes(), 60);
        assert_eq!(parse_topology("torus:8,2").unwrap().num_nodes(), 64);
        assert_eq!(parse_topology("hypercube:8").unwrap().num_nodes(), 256);
        assert_eq!(parse_topology("hex:6x5").unwrap().num_nodes(), 30);
        // Degenerate meshes are legal: a 1xk mesh is a k-node line and
        // 1x1 a single node.
        assert_eq!(parse_topology("mesh:1x4").unwrap().num_nodes(), 4);
        assert_eq!(parse_topology("mesh:1x1").unwrap().num_nodes(), 1);
    }

    #[test]
    fn graph_topologies_parse() {
        assert_eq!(parse_topology("fullmesh:8").unwrap().num_nodes(), 8);
        assert_eq!(parse_topology("ring:9").unwrap().num_nodes(), 9);
        assert_eq!(parse_topology("dragonfly:4,4").unwrap().num_nodes(), 16);
        assert_eq!(parse_topology("fattree:4,2").unwrap().num_nodes(), 6);
        let dir = std::env::temp_dir().join("turnroute-cli-graph-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("tri.graph");
        std::fs::write(&file, "nodes 3\n0 <-> 1\n1 <-> 2\n2 <-> 0\n").unwrap();
        let topo = parse_topology(&format!("graph:{}", file.display())).unwrap();
        assert_eq!(topo.num_nodes(), 3);
        assert_eq!(topo.num_channels(), 6);
    }

    #[test]
    fn synth_parses_with_and_without_seed() {
        let topo = parse_topology("fullmesh:6").unwrap();
        let algo = parse_algorithm("synth", topo.as_ref()).unwrap();
        assert_eq!(algo.name(), "synth");
        let seeded = parse_algorithm("synth:7", topo.as_ref()).unwrap();
        assert_eq!(seeded.name(), "synth:7");
        assert!(parse_algorithm("synth:banana", topo.as_ref()).is_err());
        // Works on the paper's topologies too.
        let mesh = parse_topology("mesh:4x4").unwrap();
        assert!(parse_algorithm("synth:1", mesh.as_ref()).is_ok());
    }

    #[test]
    fn bad_topologies_are_rejected_with_messages() {
        for bad in [
            "mesh",
            "mesh:0x4",
            "torus:2,2",
            "hypercube:0",
            "hex:6",
            "ring:1",
            "fullmesh:zap",
            "dragonfly:4",
            "graph:/no/such/file",
            "blob:9",
        ] {
            match parse_topology(bad) {
                Err(e) => assert!(!e.to_string().is_empty(), "{bad}"),
                Ok(_) => panic!("'{bad}' should not parse"),
            }
        }
    }

    #[test]
    fn two_ary_torus_rejection_points_at_hypercube() {
        let Err(e) = parse_topology("torus:2,3") else {
            panic!("torus:2,3 should not parse");
        };
        assert!(e.to_string().contains("hypercube"), "{e}");
    }

    #[test]
    fn algorithms_parse_in_context() {
        let mesh = parse_topology("mesh:8x8").unwrap();
        for name in [
            "xy",
            "west-first",
            "north-last",
            "negative-first",
            "abonf",
            "abopl",
            "west-first-nonminimal",
        ] {
            assert!(parse_algorithm(name, mesh.as_ref()).is_ok(), "{name}");
        }
        let torus = parse_topology("torus:5,2").unwrap();
        assert!(parse_algorithm("negative-first-torus", torus.as_ref()).is_ok());
        assert!(parse_algorithm("first-hop-wrap", torus.as_ref()).is_ok());
        // Torus-only algorithms rejected on meshes.
        assert!(parse_algorithm("negative-first-torus", mesh.as_ref()).is_err());
        assert!(parse_algorithm("frobnicate", mesh.as_ref()).is_err());
    }

    #[test]
    fn vc_algorithms_parse() {
        let mesh = parse_topology("mesh:8x8").unwrap();
        let torus = parse_topology("torus:8,2").unwrap();
        assert_eq!(
            parse_vc_algorithm("mad-y", mesh.as_ref()).unwrap().name(),
            "mad-y"
        );
        assert!(parse_vc_algorithm("dateline", torus.as_ref()).is_ok());
        // Plain names wrap transparently: same name, class-0 lanes.
        let wrapped = parse_vc_algorithm("west-first", mesh.as_ref()).unwrap();
        assert_eq!(wrapped.name(), "west-first");
        assert!(parse_vc_algorithm("frobnicate", mesh.as_ref()).is_err());
    }

    #[test]
    fn patterns_parse() {
        for name in [
            "uniform",
            "transpose",
            "diagonal-transpose",
            "reverse-flip",
            "bit-complement",
            "tornado",
            "neighbor",
        ] {
            assert!(parse_pattern(name).is_ok(), "{name}");
        }
        assert!(parse_pattern("hotspot:12,10").is_ok());
        assert!(parse_pattern("hotspot:12").is_err());
        assert!(parse_pattern("hotspot:12,200").is_err());
        assert!(parse_pattern("noise").is_err());
    }

    #[test]
    fn weighted_hotspots_parse() {
        // Plain form still builds the legacy single-hotspot pattern.
        assert_eq!(parse_pattern("hotspot:12,10").unwrap().min_nodes(), 13);
        assert_eq!(
            parse_pattern("hotspot:12,10").unwrap().name(),
            "hotspot(10%)"
        );
        // Weighted / multi-node forms build the generalization.
        let multi = parse_pattern("hotspot:3*2+9,25").unwrap();
        assert_eq!(multi.name(), "hotspot(3*2+9;25%)");
        assert_eq!(multi.min_nodes(), 10);
        let weighted_single = parse_pattern("hotspot:7*0.5,50").unwrap();
        assert_eq!(weighted_single.min_nodes(), 8);
        for bad in [
            "hotspot:3*0,10",
            "hotspot:3*-1,10",
            "hotspot:3*inf,10",
            "hotspot:3*zap,10",
            "hotspot:+,10",
            "hotspot:3+4",
        ] {
            assert!(parse_pattern(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn trace_patterns_parse_from_files() {
        let dir = std::env::temp_dir().join("turnroute-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("pairs.trace");
        std::fs::write(&file, "# demo\n0 5\n0 9 3\n1 2\n").unwrap();
        let spec = format!("trace:{}", file.display());
        let pattern = parse_pattern(&spec).unwrap();
        assert_eq!(pattern.min_nodes(), 10);
        assert!(pattern.name().starts_with(&format!("{spec}@")));
        // Unreadable and malformed files surface as parse errors.
        assert!(parse_pattern("trace:/no/such/file.trace").is_err());
        let bad = dir.join("bad.trace");
        std::fs::write(&bad, "0 1 zap\n").unwrap();
        let e = parse_pattern(&format!("trace:{}", bad.display()))
            .err()
            .unwrap();
        assert!(e.to_string().contains("bad weight"), "{e}");
        let truncated = dir.join("truncated.trace");
        std::fs::write(&truncated, "0 5\n3\n").unwrap();
        let e = parse_pattern(&format!("trace:{}", truncated.display()))
            .err()
            .unwrap();
        assert!(e.to_string().contains("line 2"), "{e}");
    }

    #[test]
    fn traffic_models_parse() {
        assert_eq!(parse_traffic("poisson").unwrap(), TrafficModel::Poisson);
        let m = parse_traffic("mmpp:200,600").unwrap();
        assert_eq!(
            m,
            TrafficModel::Mmpp {
                burst_cycles: 200.0,
                idle_cycles: 600.0
            }
        );
        // The canonical spec string round-trips.
        assert_eq!(parse_traffic(&m.as_spec()).unwrap(), m);
        for bad in [
            "mmpp:200",
            "mmpp:0,600",
            "mmpp:200,0",
            "mmpp:-1,600",
            "mmpp:inf,600",
            "mmpp:zap,600",
            "bursty",
        ] {
            assert!(parse_traffic(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn pattern_fit_checks_node_bounds() {
        let mesh = parse_topology("mesh:4x4").unwrap();
        let ok = parse_pattern("hotspot:15,10").unwrap();
        assert!(check_pattern_fits(ok.as_ref(), mesh.as_ref()).is_ok());
        let oob = parse_pattern("hotspot:16,10").unwrap();
        let e = check_pattern_fits(oob.as_ref(), mesh.as_ref()).unwrap_err();
        assert!(e.to_string().contains("16 nodes"), "{e}");
        assert!(
            check_pattern_fits(parse_pattern("uniform").unwrap().as_ref(), mesh.as_ref()).is_ok()
        );
    }

    #[test]
    fn fault_specs_parse_and_compile() {
        let mesh = parse_topology("mesh:8x8").unwrap();
        let schedule = parse_faults("chan:17+random:4:99", mesh.as_ref()).unwrap();
        assert!(schedule.failed_count_at_start() >= 4);
        assert!(schedule.is_static());
        let transient = parse_faults("chan:3@100..200", mesh.as_ref()).unwrap();
        assert!(!transient.is_static());
        assert!(transient.has_repairs());
        assert!(parse_faults("laser:3", mesh.as_ref()).is_err());
        // Out-of-range targets fail at compile time.
        assert!(parse_faults("chan:99999", mesh.as_ref()).is_err());
    }

    #[test]
    fn nodes_parse_by_id_or_coordinates() {
        let mesh = parse_topology("mesh:8x8").unwrap();
        assert_eq!(parse_node("0", mesh.as_ref()).unwrap().index(), 0);
        assert_eq!(parse_node("3,2", mesh.as_ref()).unwrap().index(), 19);
        assert!(parse_node("64", mesh.as_ref()).is_err());
        assert!(parse_node("9,2", mesh.as_ref()).is_err());
        assert!(parse_node("1,2,3", mesh.as_ref()).is_err());
        // Hex coordinates are axial pairs even though there are 3 axes.
        let hex = parse_topology("hex:5x5").unwrap();
        assert!(parse_node("2,3", hex.as_ref()).is_ok());
    }
}
