//! A minimal, dependency-free JSON reader and writer.
//!
//! The workspace is deliberately std-only, so the experiment wire
//! format and the job server parse requests with this module instead of
//! serde. Two properties matter more than speed here:
//!
//! * **Objects preserve field order and duplicates are visible.**
//!   Fields are kept as a `Vec` of pairs, so deserializers can reject
//!   unknown or repeated fields instead of silently dropping them.
//! * **Numbers keep their source text.** [`Value::Num`] stores the raw
//!   literal; callers parse it as `u64` or `f64` on access, so 64-bit
//!   seeds survive without passing through an `f64` (which would
//!   silently lose precision above 2^53).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text (see the module docs).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered `(key, value)` pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `u64` (rejecting fractions and signs), if
    /// this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| -> Result<(), JsonError> {
            let before = p.pos;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.pos += 1;
            }
            if p.pos == before {
                Err(p.err("expected a digit"))
            } else {
                Ok(())
            }
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            digits(self)?;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number spans are ASCII")
            .to_owned();
        Ok(Value::Num(raw))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are out of scope for this
                            // format; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Escapes `s` as a JSON string literal, quotes included.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn numbers_keep_u64_precision() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        // Through f64 this would have collapsed to 2^64.
        assert_eq!(parse("0.25").unwrap().as_f64(), Some(0.25));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn object_field_order_and_duplicates_are_visible() {
        let v = parse(r#"{"x": 1, "y": 2, "x": 3}"#).unwrap();
        let fields = v.as_obj().unwrap();
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["x", "y", "x"]);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "nul",
            "{\"a\" 1}",
            "\"\\q\"",
            "01x",
            "1 2",
            "{'a': 1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}";
        assert_eq!(parse(&escape(s)).unwrap(), Value::Str(s.into()));
    }
}
