//! The experiment layer of the turnroute workspace: everything between
//! "a string description of an experiment" and "a running sweep".
//!
//! This crate owns three things:
//!
//! * [`cli`] — the specification parsers (`mesh:16x16`, `west-first`,
//!   `hotspot:120,10`, `chan:17@5..9`) shared by the `turnroute`
//!   command line, the experiment builder, and the job server;
//! * [`spec`] — the [`ExperimentSpec`] API: a validating builder, a
//!   typed [`SpecError`], a canonical JSON wire format that rejects
//!   unknown fields, and a content fingerprint used as the
//!   content-addressed result-store key by `turnroute-serve`;
//! * [`json`] — a minimal dependency-free JSON reader/writer backing
//!   the wire format (and reused by the server for request bodies).
//!
//! Both the CLI and the HTTP API route through [`ExperimentSpec`]'s
//! builder, so a malformed submission fails with a typed error at the
//! boundary instead of a panic deep in the engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod json;
pub mod spec;

pub use cli::ParseSpecError;
pub use spec::{
    AlgorithmSpec, Engine, Experiment, ExperimentSpec, ExperimentSpecBuilder, SpecError,
    DEFAULT_FAULT_SEED, SPEC_SCHEMA_VERSION,
};
