//! Declarative experiments: describe a (topology × algorithms × pattern
//! × load grid) sweep as data, then run it on any number of threads.
//!
//! Every figure and table regenerator used to hand-roll the same loop —
//! build a topology, build each algorithm, sweep the loads, relabel,
//! print. [`ExperimentSpec`] collapses that loop to a value: the
//! topology, pattern and algorithms are *names* (resolved through the
//! same parsers as the `turnroute` CLI, so specs read exactly like
//! command lines), and [`ExperimentSpec::run`] fans the whole grid out
//! through the deterministic parallel [`Executor`]. Results are
//! bit-identical for every thread count.
//!
//! Specs are built through a validating builder and never constructed
//! free-form: [`ExperimentSpec::builder`] collects the fields,
//! [`ExperimentSpecBuilder::build`] resolves every name and checks
//! every cross-field rule, and only a spec that passed comes out. The
//! same path backs the JSON wire format ([`ExperimentSpec::from_json`]
//! rejects unknown fields with a typed [`SpecError`]), so a malformed
//! HTTP submission to `turnroute-serve` fails at the API boundary
//! instead of panicking deep in the engine.
//!
//! # Example
//!
//! ```
//! use turnroute_experiment::ExperimentSpec;
//! use turnroute_sim::SimConfig;
//!
//! let spec = ExperimentSpec::builder("mesh:8x8", "transpose")
//!     .algorithm("xy")
//!     .algorithm("west-first")
//!     .loads(&[0.01, 0.05])
//!     .config(SimConfig::paper().warmup_cycles(500).measure_cycles(2_000))
//!     .build()
//!     .unwrap();
//! let series = spec.run(2).unwrap();
//! assert_eq!(series.len(), 2);
//! assert_eq!(series[0].algorithm, "dimension-order");
//! ```

use std::fmt;
use std::sync::Arc;

use crate::cli::{
    check_pattern_fits, parse_algorithm, parse_faults, parse_pattern, parse_topology,
    parse_traffic, parse_vc_algorithm, ParseSpecError,
};
use crate::json::{self, Value};
use turnroute_core::RoutingAlgorithm;
use turnroute_fault::{verify, FaultPlan, FaultSchedule};
use turnroute_rng::split_mix_64;
use turnroute_sim::{Executor, SeriesJob, SimConfig, SweepSeries};
use turnroute_vc::{vc_series_job, VcRoutingAlgorithm};

/// Default seed for [`ExperimentSpecBuilder::fault_axis`] random draws,
/// chosen once so every degradation figure fails the same channels.
pub const DEFAULT_FAULT_SEED: u64 = 0xFA17_5EED;

/// Version of the [`ExperimentSpec`] JSON wire format. Documents may
/// state it explicitly (`"spec_version": 1`); a mismatch is a typed
/// error.
pub const SPEC_SCHEMA_VERSION: u64 = 1;

/// Which simulation engine runs the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The single-flit-buffer wormhole engine of the paper's Section 6.
    #[default]
    Wormhole,
    /// The lane-aware engine (reference \[18\]); plain algorithms run on
    /// class-0 lanes, and `mad-y` / `dateline` become available.
    VirtualChannel,
}

impl Engine {
    /// The wire-format name (`"wormhole"` / `"vc"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Engine::Wormhole => "wormhole",
            Engine::VirtualChannel => "vc",
        }
    }

    /// Parses a wire-format or CLI engine name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "wormhole" => Some(Engine::Wormhole),
            "vc" | "virtual-channel" => Some(Engine::VirtualChannel),
            _ => None,
        }
    }
}

/// One algorithm of an experiment: the parse name plus an optional
/// display label for the emitted series (figures relabel, e.g., `p-cube`
/// as `negative-first` to match the paper's terminology).
///
/// The *parse name* is the series' identity: per-cell seeds and cache
/// keys derive from the resolved algorithm, so relabelling never changes
/// the simulated numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgorithmSpec {
    /// A name accepted by [`parse_algorithm`] (or, under
    /// [`Engine::VirtualChannel`], by [`parse_vc_algorithm`]).
    pub name: String,
    /// The label for the emitted [`SweepSeries`]; defaults to the
    /// resolved algorithm's own name.
    pub label: Option<String>,
}

/// Why a spec failed to build or deserialize.
///
/// The variants partition the failure surface so API layers can answer
/// with a machine-readable kind: names that did not resolve, structural
/// rule violations, unknown fields, and documents that are not valid
/// JSON at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A name in the spec did not resolve through the CLI parsers.
    Parse(ParseSpecError),
    /// A field (or combination of fields) violates a structural rule.
    Invalid {
        /// The offending field.
        field: &'static str,
        /// What rule it broke.
        message: String,
    },
    /// A document field no spec version defines (deserialization
    /// rejects unknown fields rather than silently dropping them).
    UnknownField(String),
    /// The document is not well-formed JSON, or a field has the wrong
    /// type.
    Malformed(String),
}

impl SpecError {
    /// A short machine-readable kind, used in HTTP error payloads.
    pub fn kind(&self) -> &'static str {
        match self {
            SpecError::Parse(_) => "parse",
            SpecError::Invalid { .. } => "invalid",
            SpecError::UnknownField(_) => "unknown_field",
            SpecError::Malformed(_) => "malformed",
        }
    }

    fn invalid(field: &'static str, message: impl Into<String>) -> Self {
        SpecError::Invalid {
            field,
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "{e}"),
            SpecError::Invalid { field, message } => write!(f, "{field}: {message}"),
            SpecError::UnknownField(name) => write!(f, "unknown field '{name}'"),
            SpecError::Malformed(message) => write!(f, "malformed spec: {message}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<ParseSpecError> for SpecError {
    fn from(e: ParseSpecError) -> Self {
        SpecError::Parse(e)
    }
}

/// Collects the fields of an [`ExperimentSpec`] before validation.
///
/// Obtain one with [`ExperimentSpec::builder`]; every setter chains;
/// [`ExperimentSpecBuilder::build`] validates the whole value and
/// returns the spec or a typed [`SpecError`].
#[derive(Debug, Clone)]
pub struct ExperimentSpecBuilder {
    topology: String,
    algorithms: Vec<AlgorithmSpec>,
    pattern: String,
    loads: Vec<f64>,
    config: SimConfig,
    engine: Engine,
    fault_axis: Vec<u64>,
    fault_seed: u64,
    faults_spec: Option<String>,
}

impl ExperimentSpecBuilder {
    /// Adds an algorithm by parse name.
    pub fn algorithm(mut self, name: impl Into<String>) -> Self {
        self.algorithms.push(AlgorithmSpec {
            name: name.into(),
            label: None,
        });
        self
    }

    /// Adds an algorithm by parse name, relabelled as `label` in the
    /// emitted series.
    pub fn algorithm_as(mut self, label: impl Into<String>, name: impl Into<String>) -> Self {
        self.algorithms.push(AlgorithmSpec {
            name: name.into(),
            label: Some(label.into()),
        });
        self
    }

    /// Sets the offered-load grid (strictly ascending, positive).
    pub fn loads(mut self, loads: &[f64]) -> Self {
        self.loads = loads.to_vec();
        self
    }

    /// Sets the base simulation configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the degradation-sweep axis: one series per algorithm per
    /// fault count, failing that many seed-derived random channels.
    pub fn fault_axis(mut self, counts: &[u64]) -> Self {
        self.fault_axis = counts.to_vec();
        self
    }

    /// Sets the seed for [`fault_axis`](Self::fault_axis) draws.
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Applies an explicit fault plan to every series (mutually
    /// exclusive with [`fault_axis`](Self::fault_axis)).
    pub fn faults(mut self, spec: impl Into<String>) -> Self {
        self.faults_spec = Some(spec.into());
        self
    }

    /// Validates the collected fields and returns the spec.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] if a topology, pattern, algorithm
    /// or fault name does not resolve, and [`SpecError::Invalid`] for
    /// structural violations: no algorithms, an empty / unsorted /
    /// non-positive load grid, a zero-length measurement window, fault
    /// settings on the virtual-channel engine, or both an explicit
    /// fault plan and a fault axis at once.
    pub fn build(self) -> Result<ExperimentSpec, SpecError> {
        let spec = ExperimentSpec {
            topology: self.topology,
            algorithms: self.algorithms,
            pattern: self.pattern,
            loads: self.loads,
            config: self.config,
            engine: self.engine,
            fault_axis: self.fault_axis,
            fault_seed: self.fault_seed,
            faults_spec: self.faults_spec,
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// A validated, declarative description of one sweep experiment.
///
/// Values only come out of [`ExperimentSpecBuilder::build`] (or
/// [`ExperimentSpec::from_json`], which routes through it): every name
/// resolves and every cross-field rule holds. Run with
/// [`ExperimentSpec::run`] / [`ExperimentSpec::run_on`]; serialize with
/// [`ExperimentSpec::to_json`]; content-address with
/// [`ExperimentSpec::fingerprint`]. Warmup/measure windows and the base
/// seed travel in [`SimConfig`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ExperimentSpec {
    /// Topology specification, e.g. `mesh:16x16` (see
    /// [`parse_topology`]).
    pub topology: String,
    /// The algorithms to sweep, one series each.
    pub algorithms: Vec<AlgorithmSpec>,
    /// Traffic pattern name, e.g. `transpose` (see [`parse_pattern`]).
    pub pattern: String,
    /// Offered loads (flits/cycle/node), ascending.
    pub loads: Vec<f64>,
    /// Base simulation configuration: warmup/measure windows, seed,
    /// selection policies. The injection rate is overridden per cell.
    pub config: SimConfig,
    /// Which engine runs the cells.
    pub engine: Engine,
    /// Degradation-sweep axis: numbers of seed-derived random channel
    /// faults. Each count becomes one series per algorithm, with the
    /// fault sets nested (the channels failed at count `k` are a subset
    /// of those at `k + 1`) and identical across algorithms. Empty
    /// means healthy-network only. [`Engine::Wormhole`] only.
    pub fault_axis: Vec<u64>,
    /// Seed for the [`fault_axis`](Self::fault_axis) random draws.
    pub fault_seed: u64,
    /// An explicit fault plan (see [`crate::cli::parse_faults`])
    /// applied to every series. Mutually exclusive with
    /// [`fault_axis`](Self::fault_axis). [`Engine::Wormhole`] only.
    pub faults_spec: Option<String>,
}

impl ExperimentSpec {
    /// Starts a builder on `topology` under `pattern`, with no
    /// algorithms or loads yet and the paper's default [`SimConfig`].
    pub fn builder(
        topology: impl Into<String>,
        pattern: impl Into<String>,
    ) -> ExperimentSpecBuilder {
        ExperimentSpecBuilder {
            topology: topology.into(),
            algorithms: Vec::new(),
            pattern: pattern.into(),
            loads: Vec::new(),
            config: SimConfig::paper(),
            engine: Engine::Wormhole,
            fault_axis: Vec::new(),
            fault_seed: DEFAULT_FAULT_SEED,
            faults_spec: None,
        }
    }

    /// Re-checks every rule [`ExperimentSpecBuilder::build`] enforces.
    fn validate(&self) -> Result<(), SpecError> {
        if self.algorithms.is_empty() {
            return Err(SpecError::invalid("algorithms", "at least one is required"));
        }
        if self.loads.is_empty() {
            return Err(SpecError::invalid("loads", "at least one is required"));
        }
        if self.loads.iter().any(|l| !l.is_finite() || *l <= 0.0) {
            return Err(SpecError::invalid(
                "loads",
                "every load must be a positive finite number",
            ));
        }
        if self.loads.windows(2).any(|w| w[0] >= w[1]) {
            return Err(SpecError::invalid(
                "loads",
                "loads must be strictly ascending",
            ));
        }
        if self.config.measure_cycles == 0 {
            return Err(SpecError::invalid(
                "config",
                "measure_cycles must be at least 1",
            ));
        }
        self.config
            .traffic
            .check()
            .map_err(|m| SpecError::invalid("config", m))?;
        let topo = parse_topology(&self.topology)?;
        let pattern = parse_pattern(&self.pattern)?;
        check_pattern_fits(pattern.as_ref(), topo.as_ref())?;
        for a in &self.algorithms {
            match self.engine {
                Engine::Wormhole => {
                    parse_algorithm(&a.name, topo.as_ref())?;
                }
                Engine::VirtualChannel => {
                    parse_vc_algorithm(&a.name, topo.as_ref())?;
                }
            }
        }
        let has_faults = self.faults_spec.is_some() || !self.fault_axis.is_empty();
        if has_faults && self.engine == Engine::VirtualChannel {
            return Err(SpecError::invalid(
                "faults",
                "fault plans are not supported by the virtual-channel engine",
            ));
        }
        if self.faults_spec.is_some() && !self.fault_axis.is_empty() {
            return Err(SpecError::invalid(
                "faults",
                "an explicit fault plan and a fault axis are mutually exclusive",
            ));
        }
        if let Some(fs) = &self.faults_spec {
            parse_faults(fs, topo.as_ref())?;
        }
        for &count in &self.fault_axis {
            if count == 0 {
                continue;
            }
            FaultPlan::new()
                .random_channels(count as usize, self.fault_seed)
                .compile(topo.as_ref())
                .map_err(|e| SpecError::invalid("fault_axis", e.to_string()))?;
        }
        Ok(())
    }

    /// Runs the experiment on `threads` workers.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if a name no longer resolves (cannot
    /// happen for a spec that came out of the builder unmodified).
    pub fn run(&self, threads: usize) -> Result<Vec<SweepSeries>, SpecError> {
        Experiment::run(self, threads)
    }

    /// Runs the experiment on an existing executor (to share a cell
    /// cache, progress surface, or statistics across several specs).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if a name no longer resolves (cannot
    /// happen for a spec that came out of the builder unmodified).
    pub fn run_on(&self, executor: &mut Executor) -> Result<Vec<SweepSeries>, SpecError> {
        Experiment::run_on(self, executor)
    }

    /// Total number of sweep cells the executor will schedule: one per
    /// (algorithm × fault setting × load).
    pub fn num_cells(&self) -> usize {
        let fault_settings = if self.faults_spec.is_some() {
            1
        } else {
            self.fault_axis.len().max(1)
        };
        self.algorithms.len() * fault_settings * self.loads.len()
    }

    /// Serializes the spec as one canonical JSON document: fixed field
    /// order, no whitespace, every API field explicit.
    ///
    /// Only the API-visible [`SimConfig`] fields (`seed`,
    /// `warmup_cycles`, `measure_cycles`, `shards`) appear in the
    /// document; non-API fields (length distribution, selection
    /// policies) are covered by [`ExperimentSpec::fingerprint`]
    /// instead. A round-trip through [`ExperimentSpec::from_json`]
    /// reproduces the document byte for byte.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        let _ = write!(out, "{{\"spec_version\":{SPEC_SCHEMA_VERSION}");
        let _ = write!(out, ",\"topology\":{}", json::escape(&self.topology));
        let _ = write!(out, ",\"pattern\":{}", json::escape(&self.pattern));
        out.push_str(",\"algorithms\":[");
        for (i, a) in self.algorithms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":{}", json::escape(&a.name));
            match &a.label {
                Some(label) => {
                    let _ = write!(out, ",\"label\":{}}}", json::escape(label));
                }
                None => out.push_str(",\"label\":null}"),
            }
        }
        out.push_str("],\"loads\":[");
        for (i, l) in self.loads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Shortest round-trip rendering: parses back to the same
            // f64 bits, so the canonical document is load-exact.
            let _ = write!(out, "{l}");
        }
        let _ = write!(out, "],\"engine\":\"{}\"", self.engine.as_str());
        let _ = write!(
            out,
            ",\"config\":{{\"seed\":{},\"warmup_cycles\":{},\"measure_cycles\":{},\"shards\":{},\
             \"traffic\":{}}}",
            self.config.seed,
            self.config.warmup_cycles,
            self.config.measure_cycles,
            self.config.shards,
            json::escape(&self.config.traffic.as_spec())
        );
        out.push_str(",\"fault_axis\":[");
        for (i, c) in self.fault_axis.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        let _ = write!(out, "],\"fault_seed\":{}", self.fault_seed);
        match &self.faults_spec {
            Some(fs) => {
                let _ = write!(out, ",\"faults\":{}}}", json::escape(fs));
            }
            None => out.push_str(",\"faults\":null}"),
        }
        out
    }

    /// Deserializes and validates a spec from its JSON wire format.
    ///
    /// Unknown fields — at the top level, inside `config`, or inside an
    /// algorithm entry — are rejected with [`SpecError::UnknownField`];
    /// duplicated fields and type mismatches with
    /// [`SpecError::Malformed`]; and the result goes through the same
    /// validation as [`ExperimentSpecBuilder::build`].
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let doc = json::parse(text).map_err(|e| SpecError::Malformed(e.to_string()))?;
        let fields = doc
            .as_obj()
            .ok_or_else(|| SpecError::Malformed("the spec must be a JSON object".into()))?;
        let mut topology: Option<String> = None;
        let mut pattern: Option<String> = None;
        let mut algorithms: Option<Vec<AlgorithmSpec>> = None;
        let mut loads: Option<Vec<f64>> = None;
        let mut engine = Engine::Wormhole;
        let mut config = SimConfig::paper();
        let mut fault_axis: Vec<u64> = Vec::new();
        let mut fault_seed = DEFAULT_FAULT_SEED;
        let mut faults_spec: Option<String> = None;
        let mut seen: Vec<&str> = Vec::new();
        for (key, value) in fields {
            if seen.contains(&key.as_str()) {
                return Err(SpecError::Malformed(format!("duplicate field '{key}'")));
            }
            match key.as_str() {
                "spec_version" => {
                    let v = value.as_u64().ok_or_else(|| malformed(key, "an integer"))?;
                    if v != SPEC_SCHEMA_VERSION {
                        return Err(SpecError::invalid(
                            "spec_version",
                            format!(
                                "version {v} is not supported \
                                 (this build speaks {SPEC_SCHEMA_VERSION})"
                            ),
                        ));
                    }
                }
                "topology" => topology = Some(require_str(key, value)?),
                "pattern" => pattern = Some(require_str(key, value)?),
                "algorithms" => {
                    let items = value.as_arr().ok_or_else(|| malformed(key, "an array"))?;
                    let mut list = Vec::with_capacity(items.len());
                    for item in items {
                        list.push(parse_algorithm_entry(item)?);
                    }
                    algorithms = Some(list);
                }
                "loads" => {
                    let items = value.as_arr().ok_or_else(|| malformed(key, "an array"))?;
                    let mut list = Vec::with_capacity(items.len());
                    for item in items {
                        list.push(
                            item.as_f64()
                                .ok_or_else(|| malformed("loads", "an array of numbers"))?,
                        );
                    }
                    loads = Some(list);
                }
                "engine" => {
                    let name = require_str(key, value)?;
                    engine = Engine::from_name(&name).ok_or_else(|| {
                        SpecError::invalid(
                            "engine",
                            format!("unknown engine '{name}' (wormhole | vc)"),
                        )
                    })?;
                }
                "config" => {
                    let entries = value.as_obj().ok_or_else(|| malformed(key, "an object"))?;
                    let mut cfg_seen: Vec<&str> = Vec::new();
                    for (ck, cv) in entries {
                        if cfg_seen.contains(&ck.as_str()) {
                            return Err(SpecError::Malformed(format!(
                                "duplicate field 'config.{ck}'"
                            )));
                        }
                        let int = |field: &'static str| {
                            cv.as_u64().ok_or_else(|| malformed(field, "an integer"))
                        };
                        match ck.as_str() {
                            "seed" => config = config.seed(int("config.seed")?),
                            "warmup_cycles" => {
                                config = config.warmup_cycles(int("config.warmup_cycles")?)
                            }
                            "measure_cycles" => {
                                config = config.measure_cycles(int("config.measure_cycles")?)
                            }
                            // Older documents simply omit this; the
                            // builder default (1, serial) applies.
                            "shards" => {
                                let shards = usize::try_from(int("config.shards")?)
                                    .map_err(|_| malformed("config.shards", "a shard count"))?;
                                config = config.shards(shards);
                            }
                            // Likewise absent from older documents;
                            // defaults to Poisson arrivals.
                            "traffic" => {
                                let spec = cv
                                    .as_str()
                                    .ok_or_else(|| malformed("config.traffic", "a string"))?;
                                config = config.traffic(parse_traffic(spec)?);
                            }
                            other => {
                                return Err(SpecError::UnknownField(format!("config.{other}")))
                            }
                        }
                        cfg_seen.push(ck.as_str());
                    }
                }
                "fault_axis" => {
                    let items = value.as_arr().ok_or_else(|| malformed(key, "an array"))?;
                    fault_axis = items
                        .iter()
                        .map(|v| {
                            v.as_u64()
                                .ok_or_else(|| malformed("fault_axis", "an array of counts"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "fault_seed" => {
                    fault_seed = value.as_u64().ok_or_else(|| malformed(key, "an integer"))?;
                }
                "faults" => {
                    if !value.is_null() {
                        faults_spec = Some(require_str(key, value)?);
                    }
                }
                other => return Err(SpecError::UnknownField(other.to_owned())),
            }
            seen.push(key.as_str());
        }
        let topology =
            topology.ok_or_else(|| SpecError::invalid("topology", "field is required"))?;
        let pattern = pattern.ok_or_else(|| SpecError::invalid("pattern", "field is required"))?;
        let mut builder = ExperimentSpec::builder(topology, pattern)
            .loads(&loads.unwrap_or_default())
            .config(config)
            .engine(engine)
            .fault_axis(&fault_axis)
            .fault_seed(fault_seed);
        for a in algorithms.unwrap_or_default() {
            builder = match a.label {
                Some(label) => builder.algorithm_as(label, a.name),
                None => builder.algorithm(a.name),
            };
        }
        if let Some(fs) = faults_spec {
            builder = builder.faults(fs);
        }
        builder.build()
    }

    /// A 128-bit content fingerprint of the spec, as 32 hex characters.
    ///
    /// Folds the canonical JSON document plus a canonicalized rendering
    /// of the *full* [`SimConfig`] (per-cell and route-table speed
    /// knobs zeroed, exactly like the executor's cell cache keys), so
    /// two specs share a fingerprint only if they produce byte-identical
    /// reports. This is the content-addressed result-store key in
    /// `turnroute-serve`. The shard count is canonicalized away in both
    /// inputs — reports are bit-identical at every value, so specs
    /// differing only in `shards` address the same stored result.
    pub fn fingerprint(&self) -> String {
        let mut wire = self.clone();
        wire.config.shards = 1;
        let canonical_config = format!(
            "{:?}",
            self.config
                .clone()
                .injection_rate(0.0)
                .route_table(turnroute_sim::RouteTableMode::Auto)
                .route_table_budget(turnroute_sim::DEFAULT_ROUTE_TABLE_BUDGET)
                .shards(1)
        );
        let mut lane_a = 0x5EED_50EC_0000_0001u64;
        let mut lane_b = 0x5EED_50EC_0000_0002u64;
        let mut feed = |bytes: &[u8]| {
            for chunk in bytes.chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                let w = u64::from_le_bytes(word);
                lane_a ^= w;
                split_mix_64(&mut lane_a);
                lane_b ^= w.rotate_left(17);
                split_mix_64(&mut lane_b);
            }
            lane_a ^= bytes.len() as u64;
            split_mix_64(&mut lane_a);
        };
        feed(wire.to_json().as_bytes());
        feed(canonical_config.as_bytes());
        format!("{lane_a:016x}{lane_b:016x}")
    }
}

fn require_str(key: &str, value: &Value) -> Result<String, SpecError> {
    value
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| malformed(key, "a string"))
}

fn malformed(key: &str, expected: &str) -> SpecError {
    SpecError::Malformed(format!("field '{key}' must be {expected}"))
}

/// Parses one `algorithms` entry: either a bare name string or an
/// object `{"name": ..., "label": ...}`.
fn parse_algorithm_entry(item: &Value) -> Result<AlgorithmSpec, SpecError> {
    if let Some(name) = item.as_str() {
        return Ok(AlgorithmSpec {
            name: name.to_owned(),
            label: None,
        });
    }
    let fields = item.as_obj().ok_or_else(|| {
        SpecError::Malformed("each algorithm must be a name string or an object".into())
    })?;
    let mut name: Option<String> = None;
    let mut label: Option<String> = None;
    for (key, value) in fields {
        match key.as_str() {
            "name" => name = Some(require_str("algorithms[].name", value)?),
            "label" => {
                if !value.is_null() {
                    label = Some(require_str("algorithms[].label", value)?);
                }
            }
            other => return Err(SpecError::UnknownField(format!("algorithms[].{other}"))),
        }
    }
    Ok(AlgorithmSpec {
        name: name.ok_or_else(|| SpecError::invalid("algorithms", "entry is missing 'name'"))?,
        label,
    })
}

/// The entry point that resolves an [`ExperimentSpec`] and executes it.
#[derive(Debug)]
pub struct Experiment;

impl Experiment {
    /// Resolves `spec` through the CLI parsers and runs the full
    /// (algorithm × load) grid on `threads` workers, returning one
    /// series per algorithm in spec order.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if any name in the spec does not resolve.
    pub fn run(spec: &ExperimentSpec, threads: usize) -> Result<Vec<SweepSeries>, SpecError> {
        Self::run_on(spec, &mut Executor::new(threads))
    }

    /// Like [`Experiment::run`], but on a caller-supplied executor so
    /// several experiments can share one [`turnroute_sim::CellCache`]
    /// and one set of [`turnroute_sim::ExecStats`].
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if any name in the spec does not resolve.
    pub fn run_on(
        spec: &ExperimentSpec,
        executor: &mut Executor,
    ) -> Result<Vec<SweepSeries>, SpecError> {
        spec.validate()?;
        let topo = parse_topology(&spec.topology)?;
        let pattern = parse_pattern(&spec.pattern)?;
        // The fault settings every algorithm is swept under: one entry
        // per series within each algorithm. Fault-axis draws use one
        // seed for every count, so the failed sets nest (count k is a
        // subset of count k + 1) and are identical across algorithms.
        let schedules: Vec<Option<Arc<FaultSchedule>>> = if let Some(fs) = &spec.faults_spec {
            vec![Some(Arc::new(parse_faults(fs, topo.as_ref())?))]
        } else if !spec.fault_axis.is_empty() {
            spec.fault_axis
                .iter()
                .map(|&count| {
                    if count == 0 {
                        return Ok(None);
                    }
                    FaultPlan::new()
                        .random_channels(count as usize, spec.fault_seed)
                        .compile(topo.as_ref())
                        .map(|s| Some(Arc::new(s)))
                        .map_err(|e| SpecError::invalid("fault_axis", e.to_string()))
                })
                .collect::<Result<_, _>>()?
        } else {
            vec![None]
        };
        let mut series = match spec.engine {
            Engine::Wormhole => {
                let algos: Vec<Box<dyn RoutingAlgorithm>> = spec
                    .algorithms
                    .iter()
                    .map(|a| parse_algorithm(&a.name, topo.as_ref()))
                    .collect::<Result<_, _>>()?;
                let mut jobs: Vec<SeriesJob<'_>> = Vec::new();
                for a in &algos {
                    for schedule in &schedules {
                        let cfg = spec
                            .config
                            .clone()
                            .fault_schedule(schedule.clone())
                            .shards(executor.cell_shards(spec.config.shards));
                        // Series-level fault columns: the cycle-0 fault
                        // count and how many (src, dst) pairs the
                        // verifier proves unroutable under it.
                        let (faults, disconnected) = match schedule.as_deref() {
                            Some(s) => {
                                let report =
                                    verify(topo.as_ref(), a.as_ref(), &s.failed_at_start());
                                (
                                    s.failed_count_at_start() as u64,
                                    report.disconnected.len() as u64,
                                )
                            }
                            None => (0, 0),
                        };
                        jobs.push(
                            SeriesJob::simulation(
                                topo.as_ref(),
                                a.as_ref(),
                                pattern.as_ref(),
                                &cfg,
                                &spec.loads,
                            )
                            .with_fault_info(faults, disconnected),
                        );
                    }
                }
                executor.run(jobs)
            }
            Engine::VirtualChannel => {
                let algos: Vec<Box<dyn VcRoutingAlgorithm>> = spec
                    .algorithms
                    .iter()
                    .map(|a| parse_vc_algorithm(&a.name, topo.as_ref()))
                    .collect::<Result<_, _>>()?;
                let jobs: Vec<SeriesJob<'_>> = algos
                    .iter()
                    .map(|a| {
                        vc_series_job(
                            topo.as_ref(),
                            a.as_ref(),
                            pattern.as_ref(),
                            &spec.config,
                            &spec.loads,
                        )
                    })
                    .collect();
                executor.run(jobs)
            }
        };
        // One algorithm spawns one series per fault setting; relabel
        // each whole block.
        let per_algo = series.len() / spec.algorithms.len().max(1);
        for (i, s) in series.iter_mut().enumerate() {
            if let Some(label) = &spec.algorithms[i / per_algo.max(1)].label {
                s.algorithm = label.clone();
            }
        }
        Ok(series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_sim::report::write_csv;

    fn quick() -> SimConfig {
        SimConfig::paper()
            .warmup_cycles(500)
            .measure_cycles(2_000)
            .seed(11)
    }

    fn mesh_spec() -> ExperimentSpec {
        ExperimentSpec::builder("mesh:6x6", "transpose")
            .algorithm("xy")
            .algorithm_as("wf", "west-first")
            .loads(&[0.01, 0.03])
            .config(quick())
            .build()
            .unwrap()
    }

    #[test]
    fn resolves_and_labels_series_in_spec_order() {
        let series = mesh_spec().run(1).unwrap();
        assert_eq!(series.len(), 2);
        // Unlabelled series carry the resolved algorithm's own name.
        assert_eq!(series[0].algorithm, "dimension-order");
        assert_eq!(series[1].algorithm, "wf");
        assert!(series.iter().all(|s| s.points.len() == 2));
        assert!(series.iter().all(|s| s.pattern == "matrix-transpose"));
    }

    #[test]
    fn thread_count_does_not_change_the_bytes() {
        let spec = mesh_spec();
        let mut csv1 = Vec::new();
        let mut csv4 = Vec::new();
        write_csv(&spec.run(1).unwrap(), &mut csv1).unwrap();
        write_csv(&spec.run(4).unwrap(), &mut csv4).unwrap();
        assert_eq!(csv1, csv4);
    }

    #[test]
    fn relabelling_does_not_change_the_numbers() {
        let plain = ExperimentSpec::builder("mesh:6x6", "uniform")
            .algorithm("negative-first")
            .loads(&[0.02])
            .config(quick())
            .build()
            .unwrap();
        let labelled = ExperimentSpec::builder("mesh:6x6", "uniform")
            .algorithm_as("nf (paper)", "negative-first")
            .loads(&[0.02])
            .config(quick())
            .build()
            .unwrap();
        let a = plain.run(1).unwrap().remove(0);
        let b = labelled.run(1).unwrap().remove(0);
        assert_eq!(b.algorithm, "nf (paper)");
        assert_eq!(a.points[0].throughput, b.points[0].throughput);
        assert_eq!(a.points[0].avg_latency_usec, b.points[0].avg_latency_usec);
    }

    #[test]
    fn vc_engine_accepts_lane_algorithms_and_plain_names() {
        let series = ExperimentSpec::builder("mesh:6x6", "uniform")
            .algorithm("mad-y")
            .algorithm("xy")
            .loads(&[0.02])
            .config(quick())
            .engine(Engine::VirtualChannel)
            .build()
            .unwrap()
            .run(2)
            .unwrap();
        assert_eq!(series.len(), 2);
        assert!(series.iter().all(|s| s.points[0].sustainable));
    }

    #[test]
    fn fault_axis_multiplies_series_and_labels_blocks() {
        let spec = ExperimentSpec::builder("mesh:6x6", "uniform")
            .algorithm("xy")
            .algorithm_as("wf", "west-first")
            .loads(&[0.02])
            .config(quick())
            .fault_axis(&[0, 2, 4])
            .build()
            .unwrap();
        assert_eq!(spec.num_cells(), 6);
        let series = spec.run(2).unwrap();
        // One series per (algorithm, fault count): algorithms outer,
        // counts inner, relabelling applied per block.
        assert_eq!(series.len(), 6);
        let names: Vec<&str> = series.iter().map(|s| s.algorithm.as_str()).collect();
        assert_eq!(
            names,
            [
                "dimension-order",
                "dimension-order",
                "dimension-order",
                "wf",
                "wf",
                "wf"
            ]
        );
        let faults: Vec<u64> = series.iter().map(|s| s.faults).collect();
        assert_eq!(faults, [0, 2, 4, 0, 2, 4]);
        // Deterministic xy loses pairs for any failed channel, and the
        // nested fault sets lose monotonically more.
        assert_eq!(series[0].disconnected, 0);
        assert!(series[1].disconnected > 0);
        assert!(series[2].disconnected >= series[1].disconnected);
        // One fault seed for the whole axis: the same channels fail
        // under every algorithm.
        assert_eq!(series[1].faults, series[4].faults);
        assert!(series[0].points[0].delivered > 0);
    }

    #[test]
    fn explicit_fault_plan_applies_to_every_series() {
        let series = ExperimentSpec::builder("mesh:6x6", "uniform")
            .algorithm("xy")
            .algorithm("west-first")
            .loads(&[0.02])
            .config(quick())
            .faults("random:3:7")
            .build()
            .unwrap()
            .run(1)
            .unwrap();
        assert_eq!(series.len(), 2);
        assert!(series.iter().all(|s| s.faults == 3));
    }

    #[test]
    fn fault_plan_conflicts_are_rejected_as_typed_errors() {
        // The VC engine has no fault support.
        let err = ExperimentSpec::builder("mesh:6x6", "uniform")
            .algorithm("mad-y")
            .loads(&[0.02])
            .config(quick())
            .engine(Engine::VirtualChannel)
            .fault_axis(&[2])
            .build()
            .unwrap_err();
        assert_eq!(err.kind(), "invalid");
        // An explicit plan and a fault axis are mutually exclusive.
        let err = ExperimentSpec::builder("mesh:6x6", "uniform")
            .algorithm("xy")
            .loads(&[0.02])
            .config(quick())
            .faults("chan:3")
            .fault_axis(&[2])
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SpecError::Invalid {
                field: "faults",
                ..
            }
        ));
        // A malformed plan surfaces as a parse error.
        let err = ExperimentSpec::builder("mesh:6x6", "uniform")
            .algorithm("xy")
            .loads(&[0.02])
            .config(quick())
            .faults("laser:3")
            .build()
            .unwrap_err();
        assert_eq!(err.kind(), "parse");
    }

    #[test]
    fn bad_names_surface_as_parse_errors() {
        for builder in [
            ExperimentSpec::builder("mesh:6x6", "uniform")
                .algorithm("frobnicate")
                .loads(&[0.02]),
            ExperimentSpec::builder("blob:9", "uniform")
                .algorithm("xy")
                .loads(&[0.02]),
            ExperimentSpec::builder("mesh:6x6", "noise")
                .algorithm("xy")
                .loads(&[0.02]),
            // Lane algorithms only exist in the VC engine.
            ExperimentSpec::builder("mesh:6x6", "uniform")
                .algorithm("mad-y")
                .loads(&[0.02]),
        ] {
            assert!(matches!(builder.build(), Err(SpecError::Parse(_))));
        }
    }

    #[test]
    fn structural_violations_are_typed() {
        let err = ExperimentSpec::builder("mesh:6x6", "uniform")
            .loads(&[0.02])
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SpecError::Invalid {
                field: "algorithms",
                ..
            }
        ));
        let err = ExperimentSpec::builder("mesh:6x6", "uniform")
            .algorithm("xy")
            .build()
            .unwrap_err();
        assert!(matches!(err, SpecError::Invalid { field: "loads", .. }));
        for bad_loads in [&[0.2, 0.1][..], &[0.1, 0.1], &[-0.5], &[f64::NAN]] {
            let err = ExperimentSpec::builder("mesh:6x6", "uniform")
                .algorithm("xy")
                .loads(bad_loads)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, SpecError::Invalid { field: "loads", .. }),
                "{bad_loads:?}"
            );
        }
        let err = ExperimentSpec::builder("mesh:6x6", "uniform")
            .algorithm("xy")
            .loads(&[0.02])
            .config(SimConfig::paper().measure_cycles(0))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SpecError::Invalid {
                field: "config",
                ..
            }
        ));
    }

    #[test]
    fn json_round_trips_canonically() {
        let spec = ExperimentSpec::builder("mesh:6x6", "uniform")
            .algorithm("xy")
            .algorithm_as("wf", "west-first")
            .loads(&[0.01, 0.025])
            .config(quick())
            .fault_axis(&[0, 2])
            .fault_seed(99)
            .build()
            .unwrap();
        let doc = spec.to_json();
        let back = ExperimentSpec::from_json(&doc).unwrap();
        assert_eq!(back.to_json(), doc);
        assert_eq!(back.fingerprint(), spec.fingerprint());
        // The document is valid JSON for the crate's own parser.
        assert!(crate::json::parse(&doc).is_ok());
    }

    #[test]
    fn from_json_accepts_bare_algorithm_names_and_defaults() {
        let spec = ExperimentSpec::from_json(
            r#"{"topology": "mesh:6x6", "pattern": "uniform",
                "algorithms": ["xy"], "loads": [0.02]}"#,
        )
        .unwrap();
        assert_eq!(spec.engine, Engine::Wormhole);
        assert_eq!(spec.fault_seed, DEFAULT_FAULT_SEED);
        assert_eq!(spec.config.seed, SimConfig::paper().seed);
        assert_eq!(spec.algorithms[0].name, "xy");
        assert_eq!(spec.algorithms[0].label, None);
    }

    #[test]
    fn from_json_rejects_unknown_and_duplicate_fields() {
        let err = ExperimentSpec::from_json(
            r#"{"topology": "mesh:6x6", "pattern": "uniform",
                "algorithms": ["xy"], "loads": [0.02], "turbo": true}"#,
        )
        .unwrap_err();
        assert_eq!(err, SpecError::UnknownField("turbo".into()));
        let err = ExperimentSpec::from_json(
            r#"{"topology": "mesh:6x6", "pattern": "uniform",
                "algorithms": ["xy"], "loads": [0.02],
                "config": {"seed": 1, "frobs": 2}}"#,
        )
        .unwrap_err();
        assert_eq!(err, SpecError::UnknownField("config.frobs".into()));
        let err = ExperimentSpec::from_json(
            r#"{"topology": "mesh:6x6", "topology": "mesh:8x8",
                "pattern": "uniform", "algorithms": ["xy"], "loads": [0.02]}"#,
        )
        .unwrap_err();
        assert_eq!(err.kind(), "malformed");
        let err = ExperimentSpec::from_json(
            r#"{"topology": "mesh:6x6", "pattern": "uniform",
                "algorithms": [{"name": "xy", "colour": "red"}], "loads": [0.02]}"#,
        )
        .unwrap_err();
        assert_eq!(err, SpecError::UnknownField("algorithms[].colour".into()));
    }

    #[test]
    fn from_json_rejects_bad_documents_with_typed_errors() {
        assert_eq!(
            ExperimentSpec::from_json("[1, 2").unwrap_err().kind(),
            "malformed"
        );
        assert_eq!(
            ExperimentSpec::from_json("[]").unwrap_err().kind(),
            "malformed"
        );
        let err = ExperimentSpec::from_json(
            r#"{"pattern": "uniform", "algorithms": ["xy"], "loads": [0.02]}"#,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SpecError::Invalid {
                field: "topology",
                ..
            }
        ));
        let err = ExperimentSpec::from_json(
            r#"{"topology": "mesh:6x6", "pattern": "uniform",
                "algorithms": ["xy"], "loads": [0.02], "spec_version": 99}"#,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SpecError::Invalid {
                field: "spec_version",
                ..
            }
        ));
        let err = ExperimentSpec::from_json(
            r#"{"topology": "mesh:6x6", "pattern": "uniform",
                "algorithms": ["frobnicate"], "loads": [0.02]}"#,
        )
        .unwrap_err();
        assert_eq!(err.kind(), "parse");
    }

    #[test]
    fn fingerprints_are_content_addressed() {
        let base = || {
            ExperimentSpec::builder("mesh:6x6", "uniform")
                .algorithm("xy")
                .loads(&[0.02])
                .config(quick())
        };
        let a = base().build().unwrap();
        assert_eq!(a.fingerprint(), base().build().unwrap().fingerprint());
        assert_eq!(a.fingerprint().len(), 32);
        let variants = [
            base().algorithm("west-first").build().unwrap(),
            base().loads(&[0.02, 0.03]).build().unwrap(),
            base().config(quick().seed(12)).build().unwrap(),
            base().fault_axis(&[0, 2]).build().unwrap(),
            ExperimentSpec::builder("mesh:8x8", "uniform")
                .algorithm("xy")
                .loads(&[0.02])
                .config(quick())
                .build()
                .unwrap(),
        ];
        for v in &variants {
            assert_ne!(a.fingerprint(), v.fingerprint());
        }
        // Non-API config fields change the fingerprint even though the
        // JSON document cannot express them.
        let exotic = base()
            .config(quick().deadlock_threshold(123_456))
            .build()
            .unwrap();
        assert_eq!(exotic.to_json(), a.to_json());
        assert_ne!(exotic.fingerprint(), a.fingerprint());
    }

    #[test]
    fn shards_round_trip_but_share_fingerprints() {
        let base = |shards: usize| {
            ExperimentSpec::builder("mesh:6x6", "uniform")
                .algorithm("xy")
                .loads(&[0.02])
                .config(quick().shards(shards))
                .build()
                .unwrap()
        };
        let serial = base(1);
        let sharded = base(8);
        // The wire format carries the knob (server jobs pick it up)...
        assert!(sharded.to_json().contains("\"shards\":8"));
        let round = ExperimentSpec::from_json(&sharded.to_json()).unwrap();
        assert_eq!(round.to_json(), sharded.to_json());
        assert_eq!(round.config.shards, 8);
        // ...but the fingerprint canonicalizes it away: reports are
        // bit-identical at every shard count, so both specs address the
        // same stored result.
        assert_eq!(serial.fingerprint(), sharded.fingerprint());
        // Older documents without the field default to serial.
        let old = ExperimentSpec::from_json(
            r#"{"topology": "mesh:6x6", "pattern": "uniform",
                "algorithms": ["xy"], "loads": [0.02],
                "config": {"seed": 5}}"#,
        )
        .unwrap();
        assert_eq!(old.config.shards, 1);
    }

    #[test]
    fn traffic_models_round_trip_and_address_distinct_results() {
        use turnroute_sim::TrafficModel;
        let base = |traffic: TrafficModel| {
            ExperimentSpec::builder("mesh:6x6", "uniform")
                .algorithm("xy")
                .loads(&[0.02])
                .config(quick().traffic(traffic))
                .build()
                .unwrap()
        };
        let poisson = base(TrafficModel::Poisson);
        let mmpp = base(TrafficModel::Mmpp {
            burst_cycles: 120.0,
            idle_cycles: 480.0,
        });
        assert!(poisson.to_json().contains("\"traffic\":\"poisson\""));
        assert!(mmpp.to_json().contains("\"traffic\":\"mmpp:120,480\""));
        let round = ExperimentSpec::from_json(&mmpp.to_json()).unwrap();
        assert_eq!(round.to_json(), mmpp.to_json());
        assert_eq!(round.config.traffic, mmpp.config.traffic);
        // Unlike shards, the model changes the arrival process, so it
        // participates in content addressing: a bursty run must not be
        // served from a Poisson run's stored report.
        assert_ne!(poisson.fingerprint(), mmpp.fingerprint());
        assert_ne!(
            mmpp.fingerprint(),
            base(TrafficModel::Mmpp {
                burst_cycles: 240.0,
                idle_cycles: 480.0,
            })
            .fingerprint()
        );
        // Older documents without the field default to Poisson arrivals.
        let old = ExperimentSpec::from_json(
            r#"{"topology": "mesh:6x6", "pattern": "uniform",
                "algorithms": ["xy"], "loads": [0.02],
                "config": {"seed": 5}}"#,
        )
        .unwrap();
        assert_eq!(old.config.traffic, TrafficModel::Poisson);
    }

    #[test]
    fn bad_traffic_documents_are_typed_errors() {
        let doc = |traffic: &str| {
            format!(
                r#"{{"topology": "mesh:6x6", "pattern": "uniform",
                    "algorithms": ["xy"], "loads": [0.02],
                    "config": {{"traffic": {traffic}}}}}"#
            )
        };
        for bad in ["\"mmpp:0,480\"", "\"mmpp:120\"", "\"voip\"", "\"mmpp:a,b\""] {
            let err = ExperimentSpec::from_json(&doc(bad)).unwrap_err();
            assert_eq!(err.kind(), "parse", "{bad}");
        }
        let err = ExperimentSpec::from_json(&doc("7")).unwrap_err();
        assert_eq!(err.kind(), "malformed");
        // A spec built with a bad model in code fails validation too.
        let err = ExperimentSpec::builder("mesh:6x6", "uniform")
            .algorithm("xy")
            .loads(&[0.02])
            .config(quick().traffic(turnroute_sim::TrafficModel::Mmpp {
                burst_cycles: f64::NAN,
                idle_cycles: 480.0,
            }))
            .build()
            .unwrap_err();
        assert_eq!(err.kind(), "invalid");
    }
}
