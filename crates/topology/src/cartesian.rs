//! Shared machinery for Cartesian (grid-shaped) topologies.

use crate::{Channel, ChannelId, Coord, DirSet, Direction, NodeId};

/// Common state for meshes, tori and hypercubes: per-dimension radixes and
/// wrap flags, plus precomputed channel tables.
#[derive(Debug, Clone)]
pub(crate) struct Cartesian {
    dims: Vec<usize>,
    wrap: Vec<bool>,
    strides: Vec<usize>,
    num_nodes: usize,
    channels: Vec<Channel>,
    /// `channel_from[node * 2n + dir.index()]`.
    channel_from: Vec<Option<ChannelId>>,
}

impl Cartesian {
    /// Builds the grid and enumerates its channels (ascending source node,
    /// then ascending direction index).
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty, any radix is 0, any wrapped radix is
    /// < 3 (a k < 3 ring degenerates to duplicate or self channels), or
    /// there are more than 16 dimensions (the [`DirSet`] limit). A
    /// radix-1 unwrapped dimension is legal and simply has no channels —
    /// it makes degenerate shapes like a 1×k mesh expressible.
    pub(crate) fn new(dims: Vec<usize>, wrap: Vec<bool>) -> Self {
        assert!(!dims.is_empty(), "topology needs at least one dimension");
        assert!(dims.len() <= 16, "at most 16 dimensions are supported");
        assert_eq!(dims.len(), wrap.len());
        assert!(
            dims.iter().all(|&k| k >= 1),
            "every radix must be at least 1"
        );
        assert!(
            dims.iter().zip(&wrap).all(|(&k, &w)| !w || k >= 3),
            "wrapped dimensions need radix at least 3"
        );
        assert!(
            dims.iter().all(|&k| k <= u16::MAX as usize),
            "radix must fit in u16"
        );

        let mut strides = Vec::with_capacity(dims.len());
        let mut num_nodes = 1usize;
        for &k in &dims {
            strides.push(num_nodes);
            num_nodes = num_nodes.checked_mul(k).expect("node count overflow");
        }

        let mut grid = Cartesian {
            dims,
            wrap,
            strides,
            num_nodes,
            channels: Vec::new(),
            channel_from: Vec::new(),
        };

        let n = grid.dims.len();
        grid.channel_from = vec![None; num_nodes * 2 * n];
        for node in 0..num_nodes {
            let node = NodeId::new(node);
            for dir in Direction::all(n) {
                if let Some((dst, wraparound)) = grid.step(node, dir) {
                    let id = ChannelId::new(grid.channels.len());
                    grid.channels.push(Channel {
                        src: node,
                        dst,
                        dir,
                        wraparound,
                    });
                    grid.channel_from[node.index() * 2 * n + dir.index()] = Some(id);
                }
            }
        }
        grid
    }

    pub(crate) fn dims(&self) -> &[usize] {
        &self.dims
    }

    pub(crate) fn num_dims(&self) -> usize {
        self.dims.len()
    }

    pub(crate) fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    pub(crate) fn coord_of(&self, node: NodeId) -> Coord {
        assert!(node.index() < self.num_nodes, "node out of range");
        let mut rest = node.index();
        let components = self
            .dims
            .iter()
            .map(|&k| {
                let c = (rest % k) as u16;
                rest /= k;
                c
            })
            .collect();
        Coord::new(components)
    }

    pub(crate) fn node_at(&self, coord: &Coord) -> NodeId {
        assert_eq!(coord.num_dims(), self.dims.len(), "dimension mismatch");
        let mut index = 0usize;
        for (dim, c) in coord.iter() {
            assert!((c as usize) < self.dims[dim], "coordinate out of range");
            index += c as usize * self.strides[dim];
        }
        NodeId::new(index)
    }

    /// The neighbor reached by one hop in `dir`, plus whether that hop
    /// uses a wraparound channel. `None` at a mesh edge.
    pub(crate) fn step(&self, node: NodeId, dir: Direction) -> Option<(NodeId, bool)> {
        let dim = dir.dim();
        if dim >= self.dims.len() {
            return None;
        }
        let k = self.dims[dim];
        let c = (node.index() / self.strides[dim]) % k;
        let next = c as i64 + dir.sign().delta() as i64;
        if next < 0 || next >= k as i64 {
            if !self.wrap[dim] {
                return None;
            }
            let wrapped = (next.rem_euclid(k as i64)) as usize;
            let base = node.index() - c * self.strides[dim];
            Some((NodeId::new(base + wrapped * self.strides[dim]), true))
        } else {
            let base = node.index() - c * self.strides[dim];
            Some((NodeId::new(base + next as usize * self.strides[dim]), false))
        }
    }

    pub(crate) fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        self.step(node, dir).map(|(n, _)| n)
    }

    pub(crate) fn channels(&self) -> &[Channel] {
        &self.channels
    }

    pub(crate) fn channel_from(&self, node: NodeId, dir: Direction) -> Option<ChannelId> {
        let n = self.dims.len();
        if dir.dim() >= n || node.index() >= self.num_nodes {
            return None;
        }
        self.channel_from[node.index() * 2 * n + dir.index()]
    }

    /// Minimal hop count between two nodes: per dimension, the direct
    /// distance, or (when the dimension wraps) the shorter way around.
    pub(crate) fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ca, cb) = (self.coord_of(a), self.coord_of(b));
        (0..self.dims.len())
            .map(|dim| self.dim_distance(ca.get(dim), cb.get(dim), dim))
            .sum()
    }

    fn dim_distance(&self, from: u16, to: u16, dim: usize) -> usize {
        let k = self.dims[dim];
        let direct = (from as i64 - to as i64).unsigned_abs() as usize;
        if self.wrap[dim] {
            direct.min(k - direct)
        } else {
            direct
        }
    }

    /// Directions that reduce the distance to `to` by one hop. When a
    /// wrapping dimension's two ways around are equally short, both signs
    /// are productive.
    pub(crate) fn minimal_directions(&self, from: NodeId, to: NodeId) -> DirSet {
        let (cf, ct) = (self.coord_of(from), self.coord_of(to));
        let mut set = DirSet::new();
        for dim in 0..self.dims.len() {
            let (f, t) = (cf.get(dim) as i64, ct.get(dim) as i64);
            if f == t {
                continue;
            }
            let k = self.dims[dim] as i64;
            if !self.wrap[dim] {
                set.insert(if t > f {
                    Direction::plus(dim)
                } else {
                    Direction::minus(dim)
                });
            } else {
                // Positive hops needed going up modulo k, vs. going down.
                let up = (t - f).rem_euclid(k);
                let down = (f - t).rem_euclid(k);
                if up <= down {
                    set.insert(Direction::plus(dim));
                }
                if down <= up {
                    set.insert(Direction::minus(dim));
                }
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh3x4() -> Cartesian {
        Cartesian::new(vec![3, 4], vec![false, false])
    }

    #[test]
    fn coord_node_round_trip() {
        let g = mesh3x4();
        for i in 0..g.num_nodes() {
            let node = NodeId::new(i);
            assert_eq!(g.node_at(&g.coord_of(node)), node);
        }
    }

    #[test]
    fn dimension_zero_varies_fastest() {
        let g = mesh3x4();
        assert_eq!(g.coord_of(NodeId::new(0)), [0, 0].into());
        assert_eq!(g.coord_of(NodeId::new(1)), [1, 0].into());
        assert_eq!(g.coord_of(NodeId::new(3)), [0, 1].into());
    }

    #[test]
    fn mesh_edges_have_no_neighbor() {
        let g = mesh3x4();
        let origin = g.node_at(&[0, 0].into());
        assert_eq!(g.neighbor(origin, Direction::WEST), None);
        assert_eq!(g.neighbor(origin, Direction::SOUTH), None);
        assert_eq!(
            g.neighbor(origin, Direction::EAST),
            Some(g.node_at(&[1, 0].into()))
        );
    }

    #[test]
    fn torus_wraps_and_flags_wraparound() {
        let g = Cartesian::new(vec![4], vec![true]);
        let last = g.node_at(&[3].into());
        let (dst, wrapped) = g.step(last, Direction::plus(0)).unwrap();
        assert_eq!(dst, g.node_at(&[0].into()));
        assert!(wrapped);
        let (dst, wrapped) = g.step(g.node_at(&[1].into()), Direction::plus(0)).unwrap();
        assert_eq!(dst, g.node_at(&[2].into()));
        assert!(!wrapped);
    }

    #[test]
    fn channel_count_mesh() {
        // m x n mesh: 2 * (n*(m-1) + m*(n-1)) unidirectional channels.
        let g = mesh3x4();
        assert_eq!(g.channels().len(), 2 * (4 * 2 + 3 * 3));
    }

    #[test]
    fn channel_count_torus() {
        // k-ary n-cube, k > 2: 2n * k^n unidirectional channels.
        let g = Cartesian::new(vec![4, 4], vec![true, true]);
        assert_eq!(g.channels().len(), 4 * 16);
    }

    #[test]
    fn channel_from_matches_channel_table() {
        let g = mesh3x4();
        for (i, ch) in g.channels().iter().enumerate() {
            assert_eq!(g.channel_from(ch.src, ch.dir), Some(ChannelId::new(i)));
            assert_eq!(g.neighbor(ch.src, ch.dir), Some(ch.dst));
        }
    }

    #[test]
    fn torus_distance_uses_shorter_way() {
        let g = Cartesian::new(vec![8], vec![true]);
        assert_eq!(g.distance(NodeId::new(0), NodeId::new(7)), 1);
        assert_eq!(g.distance(NodeId::new(0), NodeId::new(4)), 4);
        assert_eq!(g.distance(NodeId::new(1), NodeId::new(6)), 3);
    }

    #[test]
    fn minimal_directions_mesh() {
        let g = mesh3x4();
        let from = g.node_at(&[0, 3].into());
        let to = g.node_at(&[2, 1].into());
        let dirs = g.minimal_directions(from, to);
        assert_eq!(dirs.len(), 2);
        assert!(dirs.contains(Direction::EAST));
        assert!(dirs.contains(Direction::SOUTH));
        assert!(g.minimal_directions(from, from).is_empty());
    }

    #[test]
    fn minimal_directions_torus_tie_allows_both_signs() {
        let g = Cartesian::new(vec![8], vec![true]);
        let dirs = g.minimal_directions(NodeId::new(0), NodeId::new(4));
        assert_eq!(dirs.len(), 2);
        let dirs = g.minimal_directions(NodeId::new(0), NodeId::new(6));
        assert_eq!(dirs.len(), 1);
        assert!(dirs.contains(Direction::minus(0)));
    }

    #[test]
    #[should_panic(expected = "radix must be at least 1")]
    fn rejects_radix_zero() {
        let _ = Cartesian::new(vec![0, 4], vec![false, false]);
    }

    #[test]
    #[should_panic(expected = "wrapped dimensions need radix at least 3")]
    fn rejects_wrapped_radix_two() {
        let _ = Cartesian::new(vec![2], vec![true]);
    }

    #[test]
    fn radix_one_dimension_is_a_degenerate_line() {
        // A 1x4 "mesh" is a 4-node line: the extent-1 dimension
        // contributes no channels and no distance.
        let g = Cartesian::new(vec![1, 4], vec![false, false]);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.channels().len(), 6); // 2 * (4 - 1) along dim 1
        assert!(g
            .channels()
            .iter()
            .all(|c| c.dir.dim() == 1 && !c.wraparound));
        assert_eq!(g.distance(NodeId::new(0), NodeId::new(3)), 3);
        // The single-node degenerate case: no channels at all.
        let point = Cartesian::new(vec![1, 1], vec![false, false]);
        assert_eq!(point.num_nodes(), 1);
        assert!(point.channels().is_empty());
    }
}
