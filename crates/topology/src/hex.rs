//! Hexagonal meshes: the paper's Section 7 example of a topology where
//! the turn model still applies but turns are not 90 degrees and
//! abstract cycles are not four turns.

use crate::{Channel, ChannelId, Coord, DirSet, Direction, NodeId, Topology};

/// A hexagonal (triangular-lattice) mesh: nodes at axial coordinates
/// `(q, r)` with `q in 0..m`, `r in 0..n`, and up to six neighbors each.
///
/// The six directions come in three *axes*, represented as dimensions of
/// [`Direction`]:
///
/// | axis | plus step | minus step |
/// |---|---|---|
/// | 0 (A) | `(+1, 0)` | `(-1, 0)` |
/// | 1 (B) | `(0, +1)` | `(0, -1)` |
/// | 2 (C = A+B) | `(+1, +1)` | `(-1, -1)` |
///
/// **Contract notes.** `num_dims()` is 3 (three direction axes) while
/// coordinates have two components — axis C is the derived diagonal, so
/// `radix(2)` reports the nominal diagonal extent `min(m, n)`. All of
/// the [`Topology`] machinery the routing algorithms and the simulator
/// use (`neighbor`, `channels`, `distance`, `minimal_directions`) is
/// exact; only the "k_i nodes along dimension i" reading of `radix`
/// does not apply to the derived axis.
///
/// Distance is the hexagonal metric: with `d = (dq, dr)`,
/// `max(|dq|, |dr|)` when the offsets share a sign and `|dq| + |dr|`
/// otherwise.
///
/// # Example
///
/// ```
/// use turnroute_topology::{HexMesh, Topology};
///
/// let hex = HexMesh::new(6, 6);
/// assert_eq!(hex.num_nodes(), 36);
/// let a = hex.node_at(&[0, 0].into());
/// let b = hex.node_at(&[3, 2].into());
/// // Two diagonal (C) hops cover (2,2); one A hop covers the rest.
/// assert_eq!(hex.distance(a, b), 3);
/// ```
#[derive(Debug, Clone)]
pub struct HexMesh {
    m: usize,
    n: usize,
    channels: Vec<Channel>,
    /// `channel_from[node * 6 + dir.index()]`.
    channel_from: Vec<Option<ChannelId>>,
}

impl HexMesh {
    /// Creates an `m x n` hexagonal mesh.
    ///
    /// # Panics
    ///
    /// Panics unless both extents are at least 2.
    pub fn new(m: usize, n: usize) -> Self {
        assert!(m >= 2 && n >= 2, "hex mesh extents must be at least 2");
        assert!(m <= u16::MAX as usize && n <= u16::MAX as usize);
        let mut hex = HexMesh {
            m,
            n,
            channels: Vec::new(),
            channel_from: vec![None; m * n * 6],
        };
        for node in 0..m * n {
            let node = NodeId::new(node);
            for dir in Direction::all(3) {
                if let Some(dst) = hex.step(node, dir) {
                    let id = ChannelId::new(hex.channels.len());
                    hex.channels.push(Channel {
                        src: node,
                        dst,
                        dir,
                        wraparound: false,
                    });
                    hex.channel_from[node.index() * 6 + dir.index()] = Some(id);
                }
            }
        }
        hex
    }

    fn axial(&self, node: NodeId) -> (i64, i64) {
        let q = (node.index() % self.m) as i64;
        let r = (node.index() / self.m) as i64;
        (q, r)
    }

    /// The axial step of a direction.
    fn delta(dir: Direction) -> (i64, i64) {
        let s = dir.sign().delta() as i64;
        match dir.dim() {
            0 => (s, 0),
            1 => (0, s),
            2 => (s, s),
            _ => unreachable!("hex meshes have three axes"),
        }
    }

    fn step(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        if dir.dim() >= 3 {
            return None;
        }
        let (q, r) = self.axial(node);
        let (dq, dr) = Self::delta(dir);
        let (q, r) = (q + dq, r + dr);
        (q >= 0 && r >= 0 && (q as usize) < self.m && (r as usize) < self.n)
            .then(|| NodeId::new(r as usize * self.m + q as usize))
    }

    /// The hexagonal metric between axial offsets.
    fn hex_len(dq: i64, dr: i64) -> usize {
        if dq.signum() * dr.signum() >= 0 {
            dq.abs().max(dr.abs()) as usize
        } else {
            (dq.abs() + dr.abs()) as usize
        }
    }
}

impl Topology for HexMesh {
    fn num_dims(&self) -> usize {
        3
    }

    fn radix(&self, dim: usize) -> usize {
        match dim {
            0 => self.m,
            1 => self.n,
            2 => self.m.min(self.n),
            _ => panic!("dimension out of range"),
        }
    }

    fn num_nodes(&self) -> usize {
        self.m * self.n
    }

    fn wraps(&self, dim: usize) -> bool {
        assert!(dim < 3, "dimension out of range");
        false
    }

    fn coord_of(&self, node: NodeId) -> Coord {
        assert!(node.index() < self.num_nodes(), "node out of range");
        let (q, r) = self.axial(node);
        Coord::new(vec![q as u16, r as u16])
    }

    fn node_at(&self, coord: &Coord) -> NodeId {
        assert_eq!(coord.num_dims(), 2, "hex coordinates are axial (q, r)");
        let (q, r) = (coord.get(0) as usize, coord.get(1) as usize);
        assert!(q < self.m && r < self.n, "coordinate out of range");
        NodeId::new(r * self.m + q)
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        self.step(node, dir)
    }

    fn channels(&self) -> &[Channel] {
        &self.channels
    }

    fn channel_from(&self, node: NodeId, dir: Direction) -> Option<ChannelId> {
        if dir.dim() >= 3 || node.index() >= self.num_nodes() {
            return None;
        }
        self.channel_from[node.index() * 6 + dir.index()]
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let ((qa, ra), (qb, rb)) = (self.axial(a), self.axial(b));
        Self::hex_len(qb - qa, rb - ra)
    }

    fn minimal_directions(&self, from: NodeId, to: NodeId) -> DirSet {
        let here = self.distance(from, to);
        let mut set = DirSet::new();
        if here == 0 {
            return set;
        }
        for dir in Direction::all(3) {
            if let Some(next) = self.step(from, dir) {
                if self.distance(next, to) < here {
                    set.insert(dir);
                }
            }
        }
        set
    }

    fn label(&self) -> String {
        format!("{}x{} hex mesh", self.m, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs_distances;

    #[test]
    fn interior_nodes_have_six_neighbors() {
        let hex = HexMesh::new(5, 5);
        let center = hex.node_at(&[2, 2].into());
        let degree = Direction::all(3)
            .filter(|&d| hex.neighbor(center, d).is_some())
            .count();
        assert_eq!(degree, 6);
        // The (0,0) corner loses A-, B-, C-.
        let corner = hex.node_at(&[0, 0].into());
        let degree = Direction::all(3)
            .filter(|&d| hex.neighbor(corner, d).is_some())
            .count();
        assert_eq!(degree, 3);
    }

    #[test]
    fn channel_count() {
        let hex = HexMesh::new(4, 3);
        // A: (m-1)*n pairs, B: m*(n-1), C: (m-1)*(n-1); two channels each.
        assert_eq!(hex.num_channels(), 2 * (3 * 3 + 4 * 2 + 3 * 2));
    }

    #[test]
    fn hex_distance_matches_bfs() {
        let hex = HexMesh::new(5, 4);
        for a in hex.nodes() {
            let dist = bfs_distances(&hex, a);
            for b in hex.nodes() {
                assert_eq!(dist[b.index()], Some(hex.distance(a, b)), "{a}->{b}");
            }
        }
    }

    #[test]
    fn minimal_directions_always_exist_and_reduce() {
        let hex = HexMesh::new(6, 6);
        for a in hex.nodes() {
            for b in hex.nodes() {
                if a == b {
                    continue;
                }
                let dirs = hex.minimal_directions(a, b);
                assert!(!dirs.is_empty(), "{a}->{b} has no productive direction");
                for d in dirs {
                    let next = hex.neighbor(a, d).unwrap();
                    assert_eq!(hex.distance(next, b) + 1, hex.distance(a, b));
                }
            }
        }
    }

    #[test]
    fn same_sign_offsets_use_the_diagonal() {
        let hex = HexMesh::new(8, 8);
        let a = hex.node_at(&[1, 1].into());
        let b = hex.node_at(&[4, 3].into());
        // (3, 2): 2 diagonal hops + 1 A hop.
        assert_eq!(hex.distance(a, b), 3);
        let dirs = hex.minimal_directions(a, b);
        assert!(dirs.contains(Direction::plus(2)), "C+ is productive");
        assert!(dirs.contains(Direction::plus(0)), "A+ is productive");
        assert!(
            !dirs.contains(Direction::plus(1)),
            "B+ alone does not reduce"
        );
    }

    #[test]
    fn opposite_sign_offsets_avoid_the_diagonal() {
        let hex = HexMesh::new(8, 8);
        let a = hex.node_at(&[1, 5].into());
        let b = hex.node_at(&[4, 2].into());
        assert_eq!(hex.distance(a, b), 6);
        let dirs = hex.minimal_directions(a, b);
        assert!(dirs.contains(Direction::plus(0)));
        assert!(dirs.contains(Direction::minus(1)));
        assert!(!dirs.contains(Direction::plus(2)));
        assert!(!dirs.contains(Direction::minus(2)));
    }

    #[test]
    fn label_and_radix() {
        let hex = HexMesh::new(6, 4);
        assert_eq!(hex.label(), "6x4 hex mesh");
        assert_eq!(hex.radix(0), 6);
        assert_eq!(hex.radix(1), 4);
        assert_eq!(hex.radix(2), 4);
        assert_eq!(hex.num_dims(), 3);
    }
}
