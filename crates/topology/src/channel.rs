//! Unidirectional network channels.

use crate::{Direction, NodeId};
use std::fmt;

/// Identifies a unidirectional channel in a topology.
///
/// Channel ids are dense: a topology with `C` channels uses ids `0..C`.
/// The enumeration order is defined by each topology (ascending source
/// node, then ascending [`Direction::index`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChannelId(u32);

impl ChannelId {
    /// Creates a channel id from a dense index.
    pub fn new(index: usize) -> Self {
        ChannelId(u32::try_from(index).expect("channel index exceeds u32"))
    }

    /// Returns the dense index of this channel.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for ChannelId {
    fn from(index: usize) -> Self {
        ChannelId::new(index)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A unidirectional channel from one router to a neighboring router.
///
/// Every network channel routes packets in a single [`Direction`]; step 1
/// of the turn model partitions channels by this direction. Wraparound
/// channels of a [`Torus`](crate::Torus) are flagged so that step 5 of the
/// model (incorporating wraparound turns) can treat them separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Channel {
    /// The router this channel leaves.
    pub src: NodeId,
    /// The router this channel enters.
    pub dst: NodeId,
    /// The direction in which the channel routes packets.
    pub dir: Direction,
    /// `true` if this is a torus wraparound channel (connects coordinate
    /// `k-1` to `0` or vice versa).
    pub wraparound: bool,
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} [{}{}]",
            self.src,
            self.dst,
            self.dir,
            if self.wraparound { ", wrap" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_id_round_trip() {
        let id = ChannelId::new(9);
        assert_eq!(id.index(), 9);
        assert_eq!(ChannelId::from(9usize), id);
        assert_eq!(id.to_string(), "c9");
    }

    #[test]
    fn channel_display() {
        let ch = Channel {
            src: NodeId::new(0),
            dst: NodeId::new(1),
            dir: Direction::EAST,
            wraparound: false,
        };
        assert_eq!(ch.to_string(), "n0 -> n1 [+d0]");
        let wrap = Channel {
            wraparound: true,
            ..ch
        };
        assert_eq!(wrap.to_string(), "n0 -> n1 [+d0, wrap]");
    }
}
