//! n-dimensional meshes.

use crate::cartesian::Cartesian;
use crate::{Channel, ChannelId, Coord, DirSet, Direction, NodeId, Topology};

/// An n-dimensional mesh: `k_0 x k_1 x ... x k_{n-1}` nodes with no
/// wraparound channels.
///
/// Two nodes are neighbors iff their coordinates agree in all dimensions
/// except one, where they differ by exactly 1. Interior nodes have `2n`
/// neighbors; corner nodes have `n`.
///
/// # Example
///
/// ```
/// use turnroute_topology::{Mesh, Topology};
///
/// let mesh = Mesh::new(vec![4, 4, 4]);
/// assert_eq!(mesh.num_nodes(), 64);
/// assert_eq!(mesh.label(), "4x4x4 mesh");
/// ```
#[derive(Debug, Clone)]
pub struct Mesh {
    grid: Cartesian,
}

impl Mesh {
    /// Creates an n-dimensional mesh with the given per-dimension radixes.
    /// An extent-1 dimension is legal and degenerate (it contributes no
    /// channels), so shapes like `1×k` describe a k-node line and `1×1`
    /// a single node.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty, has more than 16 dimensions, or any
    /// radix is 0.
    pub fn new(dims: Vec<usize>) -> Self {
        let wrap = vec![false; dims.len()];
        Mesh {
            grid: Cartesian::new(dims, wrap),
        }
    }

    /// Creates the 2D `m x n` mesh of the paper's Section 3 (dimension 0
    /// is `x`/east-west, dimension 1 is `y`/north-south).
    pub fn new_2d(m: usize, n: usize) -> Self {
        Mesh::new(vec![m, n])
    }

    /// The per-dimension radixes.
    pub fn dims(&self) -> &[usize] {
        self.grid.dims()
    }
}

impl Topology for Mesh {
    fn num_dims(&self) -> usize {
        self.grid.num_dims()
    }

    fn radix(&self, dim: usize) -> usize {
        self.grid.dims()[dim]
    }

    fn num_nodes(&self) -> usize {
        self.grid.num_nodes()
    }

    fn wraps(&self, _dim: usize) -> bool {
        false
    }

    fn coord_of(&self, node: NodeId) -> Coord {
        self.grid.coord_of(node)
    }

    fn node_at(&self, coord: &Coord) -> NodeId {
        self.grid.node_at(coord)
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        self.grid.neighbor(node, dir)
    }

    fn channels(&self) -> &[Channel] {
        self.grid.channels()
    }

    fn channel_from(&self, node: NodeId, dir: Direction) -> Option<ChannelId> {
        self.grid.channel_from(node, dir)
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        self.grid.distance(a, b)
    }

    fn minimal_directions(&self, from: NodeId, to: NodeId) -> DirSet {
        self.grid.minimal_directions(from, to)
    }

    fn label(&self) -> String {
        let dims: Vec<String> = self.grid.dims().iter().map(|k| k.to_string()).collect();
        format!("{} mesh", dims.join("x"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mesh_has_256_nodes() {
        let mesh = Mesh::new_2d(16, 16);
        assert_eq!(mesh.num_nodes(), 256);
        assert_eq!(mesh.num_dims(), 2);
        assert_eq!(mesh.radix(0), 16);
        // 2 channels per interior edge: 2 * 2 * 16 * 15 = 960.
        assert_eq!(mesh.num_channels(), 960);
    }

    #[test]
    fn corner_nodes_have_n_neighbors() {
        let mesh = Mesh::new(vec![3, 3, 3]);
        let corner = mesh.node_at(&[0, 0, 0].into());
        let degree = Direction::all(3)
            .filter(|&d| mesh.neighbor(corner, d).is_some())
            .count();
        assert_eq!(degree, 3);
        let center = mesh.node_at(&[1, 1, 1].into());
        let degree = Direction::all(3)
            .filter(|&d| mesh.neighbor(center, d).is_some())
            .count();
        assert_eq!(degree, 6);
    }

    #[test]
    fn distance_is_manhattan() {
        let mesh = Mesh::new_2d(16, 16);
        let a = mesh.node_at(&[2, 3].into());
        let b = mesh.node_at(&[10, 1].into());
        assert_eq!(mesh.distance(a, b), 8 + 2);
        assert_eq!(mesh.distance(a, a), 0);
        assert_eq!(mesh.distance(a, b), mesh.distance(b, a));
    }

    #[test]
    fn never_wraps() {
        let mesh = Mesh::new(vec![4, 5]);
        assert!(!mesh.wraps(0));
        assert!(!mesh.wraps(1));
        assert!(mesh.channels().iter().all(|c| !c.wraparound));
    }

    #[test]
    fn label_mentions_radixes() {
        assert_eq!(Mesh::new_2d(16, 16).label(), "16x16 mesh");
        assert_eq!(Mesh::new(vec![2, 3, 4]).label(), "2x3x4 mesh");
    }

    #[test]
    fn minimal_directions_point_at_destination() {
        let mesh = Mesh::new_2d(8, 8);
        let from = mesh.node_at(&[4, 4].into());
        let to = mesh.node_at(&[2, 6].into());
        let dirs = mesh.minimal_directions(from, to);
        assert!(dirs.contains(Direction::WEST));
        assert!(dirs.contains(Direction::NORTH));
        assert_eq!(dirs.len(), 2);
    }
}
