//! Binary n-cubes (hypercubes).

use crate::cartesian::Cartesian;
use crate::{Channel, ChannelId, Coord, DirSet, Direction, NodeId, Topology};

/// A hypercube (binary n-cube): `2^n` nodes, where node addresses are
/// n-bit binary numbers and two nodes are neighbors iff their addresses
/// differ in exactly one bit.
///
/// Bit `i` of a node address is its coordinate along dimension `i`, so
/// `NodeId::index()` *is* the binary address the paper works with in
/// Section 5. Travelling from bit 0 to bit 1 along a dimension is the
/// positive direction.
///
/// # Example
///
/// ```
/// use turnroute_topology::{Hypercube, Topology, NodeId};
///
/// let cube = Hypercube::new(8); // the paper's binary 8-cube
/// assert_eq!(cube.num_nodes(), 256);
/// // Distance is Hamming distance.
/// assert_eq!(cube.distance(NodeId::new(0b1011), NodeId::new(0b0010)), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Hypercube {
    grid: Cartesian,
    n: usize,
}

impl Hypercube {
    /// Creates a binary n-cube.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 16`.
    pub fn new(n: usize) -> Self {
        Hypercube {
            grid: Cartesian::new(vec![2; n], vec![false; n]),
            n,
        }
    }

    /// Bit `dim` of `node`'s address.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `dim` is out of range.
    pub fn bit(&self, node: NodeId, dim: usize) -> bool {
        assert!(node.index() < self.grid.num_nodes(), "node out of range");
        assert!(dim < self.n, "dimension out of range");
        node.index() >> dim & 1 == 1
    }

    /// The Hamming distance between two node addresses.
    pub fn hamming(&self, a: NodeId, b: NodeId) -> usize {
        (a.index() ^ b.index()).count_ones() as usize
    }

    /// The neighbor across dimension `dim` (always exists in a hypercube).
    ///
    /// # Panics
    ///
    /// Panics if `node` or `dim` is out of range.
    pub fn neighbor_across(&self, node: NodeId, dim: usize) -> NodeId {
        assert!(node.index() < self.grid.num_nodes(), "node out of range");
        assert!(dim < self.n, "dimension out of range");
        NodeId::new(node.index() ^ (1 << dim))
    }
}

impl Topology for Hypercube {
    fn num_dims(&self) -> usize {
        self.n
    }

    fn radix(&self, dim: usize) -> usize {
        assert!(dim < self.n, "dimension out of range");
        2
    }

    fn num_nodes(&self) -> usize {
        self.grid.num_nodes()
    }

    fn wraps(&self, dim: usize) -> bool {
        assert!(dim < self.n, "dimension out of range");
        false
    }

    fn coord_of(&self, node: NodeId) -> Coord {
        self.grid.coord_of(node)
    }

    fn node_at(&self, coord: &Coord) -> NodeId {
        self.grid.node_at(coord)
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        self.grid.neighbor(node, dir)
    }

    fn channels(&self) -> &[Channel] {
        self.grid.channels()
    }

    fn channel_from(&self, node: NodeId, dir: Direction) -> Option<ChannelId> {
        self.grid.channel_from(node, dir)
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        self.hamming(a, b)
    }

    fn minimal_directions(&self, from: NodeId, to: NodeId) -> DirSet {
        self.grid.minimal_directions(from, to)
    }

    fn label(&self) -> String {
        format!("binary {}-cube", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_index_is_binary_address() {
        let cube = Hypercube::new(4);
        let node = NodeId::new(0b1010);
        let coord = cube.coord_of(node);
        assert_eq!(coord.components(), &[0, 1, 0, 1]);
        assert_eq!(cube.node_at(&coord), node);
        assert!(cube.bit(node, 1));
        assert!(!cube.bit(node, 0));
    }

    #[test]
    fn every_node_has_n_neighbors() {
        let cube = Hypercube::new(5);
        for node in cube.nodes() {
            let degree = Direction::all(5)
                .filter(|&d| cube.neighbor(node, d).is_some())
                .count();
            assert_eq!(degree, 5);
        }
    }

    #[test]
    fn neighbor_across_flips_one_bit() {
        let cube = Hypercube::new(8);
        let node = NodeId::new(0b1011_0101);
        assert_eq!(cube.neighbor_across(node, 3), NodeId::new(0b1011_1101));
        assert_eq!(cube.hamming(node, cube.neighbor_across(node, 3)), 1);
    }

    #[test]
    fn neighbor_direction_depends_on_bit() {
        let cube = Hypercube::new(3);
        let zero = NodeId::new(0);
        assert_eq!(
            cube.neighbor(zero, Direction::plus(0)),
            Some(NodeId::new(1))
        );
        assert_eq!(cube.neighbor(zero, Direction::minus(0)), None);
        let one = NodeId::new(1);
        assert_eq!(cube.neighbor(one, Direction::minus(0)), Some(zero));
        assert_eq!(cube.neighbor(one, Direction::plus(0)), None);
    }

    #[test]
    fn distance_is_hamming() {
        let cube = Hypercube::new(10);
        let s = NodeId::new(0b1011010100);
        let d = NodeId::new(0b0010111001);
        // The Section 5 example: h = 6.
        assert_eq!(cube.distance(s, d), 6);
    }

    #[test]
    fn channel_count_is_n_2n() {
        let cube = Hypercube::new(8);
        assert_eq!(cube.num_channels(), 8 * 256);
    }

    #[test]
    fn label_names_n() {
        assert_eq!(Hypercube::new(8).label(), "binary 8-cube");
    }
}
