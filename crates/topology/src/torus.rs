//! k-ary n-cubes (tori).

use crate::cartesian::Cartesian;
use crate::{Channel, ChannelId, Coord, DirSet, Direction, NodeId, Topology};

/// A k-ary n-cube: `k^n` nodes with modular (wraparound) neighbor
/// arithmetic in every dimension.
///
/// Two nodes are neighbors iff their coordinates agree in all dimensions
/// except one, where they differ by 1 modulo `k`. Every node has `2n`
/// neighbors when `k > 2` and `n` neighbors when `k = 2`; the topology is
/// node- and edge-symmetric.
///
/// For `k = 2` prefer [`Hypercube`](crate::Hypercube), which avoids the
/// doubled channels a literal 2-ary torus would have.
///
/// # Example
///
/// ```
/// use turnroute_topology::{Torus, Topology};
///
/// let torus = Torus::new(4, 2); // 4-ary 2-cube
/// assert_eq!(torus.num_nodes(), 16);
/// assert!(torus.wraps(0));
/// ```
#[derive(Debug, Clone)]
pub struct Torus {
    grid: Cartesian,
    k: usize,
}

impl Torus {
    /// Creates a k-ary n-cube.
    ///
    /// # Panics
    ///
    /// Panics if `k < 3` (use [`Hypercube`](crate::Hypercube) for `k = 2`),
    /// `n == 0`, or `n > 16`.
    pub fn new(k: usize, n: usize) -> Self {
        assert!(k >= 3, "use Hypercube for k = 2");
        Torus {
            grid: Cartesian::new(vec![k; n], vec![true; n]),
            k,
        }
    }

    /// The radix `k` (identical in every dimension).
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Topology for Torus {
    fn num_dims(&self) -> usize {
        self.grid.num_dims()
    }

    fn radix(&self, dim: usize) -> usize {
        assert!(dim < self.grid.num_dims(), "dimension out of range");
        self.k
    }

    fn num_nodes(&self) -> usize {
        self.grid.num_nodes()
    }

    fn wraps(&self, dim: usize) -> bool {
        assert!(dim < self.grid.num_dims(), "dimension out of range");
        true
    }

    fn coord_of(&self, node: NodeId) -> Coord {
        self.grid.coord_of(node)
    }

    fn node_at(&self, coord: &Coord) -> NodeId {
        self.grid.node_at(coord)
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        self.grid.neighbor(node, dir)
    }

    fn channels(&self) -> &[Channel] {
        self.grid.channels()
    }

    fn channel_from(&self, node: NodeId, dir: Direction) -> Option<ChannelId> {
        self.grid.channel_from(node, dir)
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        self.grid.distance(a, b)
    }

    fn minimal_directions(&self, from: NodeId, to: NodeId) -> DirSet {
        self.grid.minimal_directions(from, to)
    }

    fn label(&self) -> String {
        format!("{}-ary {}-cube", self.k, self.grid.num_dims())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_node_has_2n_neighbors() {
        let torus = Torus::new(4, 3);
        for node in torus.nodes() {
            let degree = Direction::all(3)
                .filter(|&d| torus.neighbor(node, d).is_some())
                .count();
            assert_eq!(degree, 6);
        }
    }

    #[test]
    fn channel_count_is_2n_kn() {
        let torus = Torus::new(5, 2);
        assert_eq!(torus.num_channels(), 4 * 25);
    }

    #[test]
    fn wraparound_channels_are_flagged() {
        let torus = Torus::new(4, 1);
        let wraps: Vec<_> = torus.channels().iter().filter(|c| c.wraparound).collect();
        assert_eq!(wraps.len(), 2);
        // One in each sign: 3 -> 0 (plus) and 0 -> 3 (minus).
        assert!(wraps
            .iter()
            .any(|c| c.src == NodeId::new(3) && c.dst == NodeId::new(0)));
        assert!(wraps
            .iter()
            .any(|c| c.src == NodeId::new(0) && c.dst == NodeId::new(3)));
    }

    #[test]
    fn diameter_is_half_k_times_n() {
        let torus = Torus::new(8, 2);
        let max = torus
            .nodes()
            .map(|b| torus.distance(NodeId::new(0), b))
            .max()
            .unwrap();
        assert_eq!(max, 8);
    }

    #[test]
    fn label_names_k_and_n() {
        assert_eq!(Torus::new(4, 3).label(), "4-ary 3-cube");
    }

    #[test]
    #[should_panic(expected = "use Hypercube")]
    fn rejects_k_two() {
        let _ = Torus::new(2, 3);
    }
}
