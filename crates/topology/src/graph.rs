//! Graph utilities over topologies: BFS distances, diameter, average
//! distance.
//!
//! These operate purely on the channel graph, so they double as an oracle
//! for checking each topology's closed-form [`Topology::distance`].
//! Unreachable nodes are represented explicitly — `None` from
//! [`bfs_distances`], [`Disconnected`] from [`diameter`] — rather than
//! as a sentinel `usize::MAX`, since disconnected inputs are reachable
//! through arbitrary graph-topology files and fault studies.

use crate::{NodeId, Topology};
use std::collections::VecDeque;
use std::fmt;

/// A witness that the channel graph is not strongly connected: no path
/// of channels leads from `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected {
    /// The source of the missing path.
    pub from: NodeId,
    /// The node unreachable from `from`.
    pub to: NodeId,
}

impl fmt::Display for Disconnected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "channel graph is disconnected: no path from {} to {}",
            self.from, self.to
        )
    }
}

impl std::error::Error for Disconnected {}

/// Hop distances from `source` to every node, computed by BFS over the
/// channel graph. Unreachable nodes get `None` (cannot happen in the
/// generated topologies of this crate, but graph files and fault
/// studies can produce them).
///
/// # Example
///
/// ```
/// use turnroute_topology::{bfs_distances, Mesh, NodeId, Topology};
///
/// let mesh = Mesh::new_2d(4, 4);
/// let dist = bfs_distances(&mesh, NodeId::new(0));
/// assert_eq!(dist[mesh.node_at(&[3, 3].into()).index()], Some(6));
/// ```
pub fn bfs_distances(topo: &dyn Topology, source: NodeId) -> Vec<Option<usize>> {
    let mut dist = vec![None; topo.num_nodes()];
    dist[source.index()] = Some(0);
    let mut queue = VecDeque::from([source]);
    // Adjacency from the channel table keeps this valid for any topology.
    let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); topo.num_nodes()];
    for ch in topo.channels() {
        out[ch.src.index()].push(ch.dst);
    }
    while let Some(node) = queue.pop_front() {
        let d = dist[node.index()].expect("queued nodes have distances");
        for &next in &out[node.index()] {
            if dist[next.index()].is_none() {
                dist[next.index()] = Some(d + 1);
                queue.push_back(next);
            }
        }
    }
    dist
}

/// The network diameter: the largest minimal hop count between any pair.
///
/// # Errors
///
/// Returns [`Disconnected`] naming an unreachable pair if any node
/// cannot reach any other.
pub fn diameter(topo: &dyn Topology) -> Result<usize, Disconnected> {
    let mut max = 0;
    for a in topo.nodes() {
        let dist = bfs_distances(topo, a);
        for b in topo.nodes() {
            match dist[b.index()] {
                Some(d) => max = max.max(d),
                None => return Err(Disconnected { from: a, to: b }),
            }
        }
    }
    Ok(max)
}

/// Mean minimal hop count over all ordered pairs of *distinct* nodes.
pub fn average_distance(topo: &dyn Topology) -> f64 {
    let n = topo.num_nodes();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0usize;
    for a in topo.nodes() {
        for b in topo.nodes() {
            if a != b {
                total += topo.distance(a, b);
            }
        }
    }
    total as f64 / (n * (n - 1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hypercube, Mesh, Torus};

    #[test]
    fn bfs_matches_closed_form_mesh() {
        let mesh = Mesh::new_2d(5, 4);
        for a in mesh.nodes() {
            let dist = bfs_distances(&mesh, a);
            for b in mesh.nodes() {
                assert_eq!(dist[b.index()], Some(mesh.distance(a, b)));
            }
        }
    }

    #[test]
    fn bfs_matches_closed_form_torus() {
        let torus = Torus::new(5, 2);
        for a in torus.nodes() {
            let dist = bfs_distances(&torus, a);
            for b in torus.nodes() {
                assert_eq!(dist[b.index()], Some(torus.distance(a, b)));
            }
        }
    }

    #[test]
    fn bfs_matches_closed_form_hypercube() {
        let cube = Hypercube::new(5);
        for a in cube.nodes() {
            let dist = bfs_distances(&cube, a);
            for b in cube.nodes() {
                assert_eq!(dist[b.index()], Some(cube.distance(a, b)));
            }
        }
    }

    #[test]
    fn diameters() {
        assert_eq!(diameter(&Mesh::new_2d(16, 16)), Ok(30));
        assert_eq!(diameter(&Hypercube::new(8)), Ok(8));
        assert_eq!(diameter(&Torus::new(8, 2)), Ok(8));
    }

    #[test]
    fn disconnection_is_a_typed_error() {
        /// Two nodes, no channels: every pair is a witness.
        struct NoWires;
        impl Topology for NoWires {
            fn num_dims(&self) -> usize {
                1
            }
            fn radix(&self, _dim: usize) -> usize {
                2
            }
            fn num_nodes(&self) -> usize {
                2
            }
            fn wraps(&self, _dim: usize) -> bool {
                false
            }
            fn coord_of(&self, node: NodeId) -> crate::Coord {
                crate::Coord::new(vec![node.index() as u16])
            }
            fn node_at(&self, coord: &crate::Coord) -> NodeId {
                NodeId::new(coord.get(0) as usize)
            }
            fn neighbor(&self, _node: NodeId, _dir: crate::Direction) -> Option<NodeId> {
                None
            }
            fn channels(&self) -> &[crate::Channel] {
                &[]
            }
            fn channel_from(
                &self,
                _node: NodeId,
                _dir: crate::Direction,
            ) -> Option<crate::ChannelId> {
                None
            }
            fn distance(&self, _a: NodeId, _b: NodeId) -> usize {
                0
            }
            fn minimal_directions(&self, _from: NodeId, _to: NodeId) -> crate::DirSet {
                crate::DirSet::new()
            }
            fn label(&self) -> String {
                "nowires".into()
            }
        }
        let err = diameter(&NoWires).unwrap_err();
        assert_eq!(
            err,
            Disconnected {
                from: NodeId::new(0),
                to: NodeId::new(1)
            }
        );
        assert!(err.to_string().contains("no path from n0 to n1"));
        let dist = bfs_distances(&NoWires, NodeId::new(0));
        assert_eq!(dist, vec![Some(0), None]);
    }

    #[test]
    fn average_distance_uniform_traffic_hypercube() {
        // Paper Section 6: 4.01 hops for uniform traffic in the 8-cube.
        let avg = average_distance(&Hypercube::new(8));
        assert!((avg - 4.0157).abs() < 1e-3, "got {avg}");
    }

    #[test]
    fn average_distance_uniform_traffic_mesh() {
        // Paper Section 6 reports 10.61 hops (measured); the analytic
        // all-pairs mean for a 16x16 mesh is 10.667.
        let avg = average_distance(&Mesh::new_2d(16, 16));
        assert!((avg - 10.6667).abs() < 1e-3, "got {avg}");
    }
}
