//! Graph utilities over topologies: BFS distances, diameter, average
//! distance.
//!
//! These operate purely on the channel graph, so they double as an oracle
//! for checking each topology's closed-form [`Topology::distance`].

use crate::{NodeId, Topology};
use std::collections::VecDeque;

/// Hop distances from `source` to every node, computed by BFS over the
/// channel graph. Unreachable nodes get `usize::MAX` (cannot happen in the
/// connected topologies of this crate, but kept for fault studies).
///
/// # Example
///
/// ```
/// use turnroute_topology::{bfs_distances, Mesh, NodeId, Topology};
///
/// let mesh = Mesh::new_2d(4, 4);
/// let dist = bfs_distances(&mesh, NodeId::new(0));
/// assert_eq!(dist[mesh.node_at(&[3, 3].into()).index()], 6);
/// ```
pub fn bfs_distances(topo: &dyn Topology, source: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; topo.num_nodes()];
    dist[source.index()] = 0;
    let mut queue = VecDeque::from([source]);
    // Adjacency from the channel table keeps this valid for any topology.
    let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); topo.num_nodes()];
    for ch in topo.channels() {
        out[ch.src.index()].push(ch.dst);
    }
    while let Some(node) = queue.pop_front() {
        let d = dist[node.index()];
        for &next in &out[node.index()] {
            if dist[next.index()] == usize::MAX {
                dist[next.index()] = d + 1;
                queue.push_back(next);
            }
        }
    }
    dist
}

/// The network diameter: the largest minimal hop count between any pair.
pub fn diameter(topo: &dyn Topology) -> usize {
    topo.nodes()
        .flat_map(|a| {
            let dist = bfs_distances(topo, a);
            dist.into_iter().filter(|&d| d != usize::MAX).max()
        })
        .max()
        .unwrap_or(0)
}

/// Mean minimal hop count over all ordered pairs of *distinct* nodes.
pub fn average_distance(topo: &dyn Topology) -> f64 {
    let n = topo.num_nodes();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0usize;
    for a in topo.nodes() {
        for b in topo.nodes() {
            if a != b {
                total += topo.distance(a, b);
            }
        }
    }
    total as f64 / (n * (n - 1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hypercube, Mesh, Torus};

    #[test]
    fn bfs_matches_closed_form_mesh() {
        let mesh = Mesh::new_2d(5, 4);
        for a in mesh.nodes() {
            let dist = bfs_distances(&mesh, a);
            for b in mesh.nodes() {
                assert_eq!(dist[b.index()], mesh.distance(a, b));
            }
        }
    }

    #[test]
    fn bfs_matches_closed_form_torus() {
        let torus = Torus::new(5, 2);
        for a in torus.nodes() {
            let dist = bfs_distances(&torus, a);
            for b in torus.nodes() {
                assert_eq!(dist[b.index()], torus.distance(a, b));
            }
        }
    }

    #[test]
    fn bfs_matches_closed_form_hypercube() {
        let cube = Hypercube::new(5);
        for a in cube.nodes() {
            let dist = bfs_distances(&cube, a);
            for b in cube.nodes() {
                assert_eq!(dist[b.index()], cube.distance(a, b));
            }
        }
    }

    #[test]
    fn diameters() {
        assert_eq!(diameter(&Mesh::new_2d(16, 16)), 30);
        assert_eq!(diameter(&Hypercube::new(8)), 8);
        assert_eq!(diameter(&Torus::new(8, 2)), 8);
    }

    #[test]
    fn average_distance_uniform_traffic_hypercube() {
        // Paper Section 6: 4.01 hops for uniform traffic in the 8-cube.
        let avg = average_distance(&Hypercube::new(8));
        assert!((avg - 4.0157).abs() < 1e-3, "got {avg}");
    }

    #[test]
    fn average_distance_uniform_traffic_mesh() {
        // Paper Section 6 reports 10.61 hops (measured); the analytic
        // all-pairs mean for a 16x16 mesh is 10.667.
        let avg = average_distance(&Mesh::new_2d(16, 16));
        assert!((avg - 10.6667).abs() < 1e-3, "got {avg}");
    }
}
