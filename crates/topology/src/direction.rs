//! Directions of travel and sets of directions.

use std::fmt;

/// The sign of a direction along a dimension.
///
/// In the paper's 2D terminology, `Minus` along dimension 0 is *west* and
/// `Plus` along dimension 1 is *north*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sign {
    /// Toward decreasing coordinates (`-x`, `-y`, ...).
    Minus,
    /// Toward increasing coordinates (`+x`, `+y`, ...).
    Plus,
}

impl Sign {
    /// The opposite sign.
    ///
    /// ```
    /// use turnroute_topology::Sign;
    /// assert_eq!(Sign::Minus.opposite(), Sign::Plus);
    /// ```
    pub fn opposite(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::Plus => Sign::Minus,
        }
    }

    /// `-1` for `Minus`, `+1` for `Plus`.
    pub fn delta(self) -> i32 {
        match self {
            Sign::Minus => -1,
            Sign::Plus => 1,
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sign::Minus => write!(f, "-"),
            Sign::Plus => write!(f, "+"),
        }
    }
}

/// A direction of travel: a dimension and a sign.
///
/// An n-dimensional Cartesian topology has `2n` directions. Step 1 of the
/// turn model partitions channels by their direction; all turn analysis is
/// done over values of this type.
///
/// # Example
///
/// ```
/// use turnroute_topology::Direction;
///
/// let west = Direction::WEST;
/// assert_eq!(west, Direction::minus(0));
/// assert_eq!(west.opposite(), Direction::EAST);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Direction {
    dim: u8,
    sign: Sign,
}

impl Direction {
    /// West: `-x`, i.e. minus along dimension 0 (2D naming).
    pub const WEST: Direction = Direction {
        dim: 0,
        sign: Sign::Minus,
    };
    /// East: `+x`, i.e. plus along dimension 0 (2D naming).
    pub const EAST: Direction = Direction {
        dim: 0,
        sign: Sign::Plus,
    };
    /// South: `-y`, i.e. minus along dimension 1 (2D naming).
    pub const SOUTH: Direction = Direction {
        dim: 1,
        sign: Sign::Minus,
    };
    /// North: `+y`, i.e. plus along dimension 1 (2D naming).
    pub const NORTH: Direction = Direction {
        dim: 1,
        sign: Sign::Plus,
    };

    /// Creates a direction.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= 16`; topologies in this workspace support at most
    /// 16 dimensions so that a [`DirSet`] fits in a `u32`.
    pub fn new(dim: usize, sign: Sign) -> Self {
        assert!(dim < 16, "at most 16 dimensions are supported");
        Direction {
            dim: dim as u8,
            sign,
        }
    }

    /// The negative direction along `dim`.
    pub fn minus(dim: usize) -> Self {
        Direction::new(dim, Sign::Minus)
    }

    /// The positive direction along `dim`.
    pub fn plus(dim: usize) -> Self {
        Direction::new(dim, Sign::Plus)
    }

    /// The dimension this direction travels along.
    pub fn dim(self) -> usize {
        self.dim as usize
    }

    /// The sign of travel.
    pub fn sign(self) -> Sign {
        self.sign
    }

    /// The 180-degree opposite direction.
    pub fn opposite(self) -> Direction {
        Direction {
            dim: self.dim,
            sign: self.sign.opposite(),
        }
    }

    /// Dense index in `0..2n`: `2 * dim + (sign == Plus)`.
    ///
    /// Iterating directions by index visits lower dimensions first, which
    /// is exactly the paper's "xy" output selection order.
    pub fn index(self) -> usize {
        self.dim as usize * 2 + matches!(self.sign, Sign::Plus) as usize
    }

    /// Inverse of [`Direction::index`].
    pub fn from_index(index: usize) -> Direction {
        let sign = if index.is_multiple_of(2) {
            Sign::Minus
        } else {
            Sign::Plus
        };
        Direction::new(index / 2, sign)
    }

    /// All `2n` directions of an n-dimensional topology, in index order.
    pub fn all(num_dims: usize) -> impl Iterator<Item = Direction> {
        (0..2 * num_dims).map(Direction::from_index)
    }

    /// `true` if this direction travels toward decreasing coordinates.
    pub fn is_negative(self) -> bool {
        self.sign == Sign::Minus
    }

    /// `true` if this direction travels toward increasing coordinates.
    pub fn is_positive(self) -> bool {
        self.sign == Sign::Plus
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}d{}", self.sign, self.dim)
    }
}

/// A set of directions, stored as a bitset over [`Direction::index`].
///
/// Supports topologies of up to 16 dimensions (32 directions). Iteration
/// yields directions in index order: lowest dimension first, minus before
/// plus — the paper's "xy" output-selection priority.
///
/// # Example
///
/// ```
/// use turnroute_topology::{DirSet, Direction};
///
/// let mut set = DirSet::new();
/// set.insert(Direction::NORTH);
/// set.insert(Direction::WEST);
/// assert_eq!(set.len(), 2);
/// // Lowest dimension iterates first:
/// assert_eq!(set.iter().next(), Some(Direction::WEST));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DirSet(u32);

impl DirSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        DirSet(0)
    }

    /// Creates a set containing every direction of an `n`-dimensional
    /// topology.
    pub fn all(num_dims: usize) -> Self {
        assert!(num_dims <= 16, "at most 16 dimensions are supported");
        if num_dims == 16 {
            DirSet(u32::MAX)
        } else {
            DirSet((1u32 << (2 * num_dims)) - 1)
        }
    }

    /// Adds a direction to the set.
    pub fn insert(&mut self, dir: Direction) {
        self.0 |= 1 << dir.index();
    }

    /// Removes a direction from the set.
    pub fn remove(&mut self, dir: Direction) {
        self.0 &= !(1 << dir.index());
    }

    /// `true` if `dir` is in the set.
    pub fn contains(self, dir: Direction) -> bool {
        self.0 & (1 << dir.index()) != 0
    }

    /// Number of directions in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` if the set contains no directions.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(self, other: DirSet) -> DirSet {
        DirSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: DirSet) -> DirSet {
        DirSet(self.0 & other.0)
    }

    /// Directions in `self` but not in `other`.
    pub fn difference(self, other: DirSet) -> DirSet {
        DirSet(self.0 & !other.0)
    }

    /// Iterates directions in index order (lowest dimension first).
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }

    /// The first direction in index order, if any — the "xy" output
    /// selection policy's preferred choice.
    pub fn first(self) -> Option<Direction> {
        if self.0 == 0 {
            None
        } else {
            Some(Direction::from_index(self.0.trailing_zeros() as usize))
        }
    }

    /// The raw bitset, one bit per [`Direction::index`]. Stable across
    /// runs, so dense route tables may store it directly.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Rebuilds a set from [`DirSet::bits`].
    pub fn from_bits(bits: u32) -> DirSet {
        DirSet(bits)
    }
}

impl FromIterator<Direction> for DirSet {
    fn from_iter<I: IntoIterator<Item = Direction>>(iter: I) -> Self {
        let mut set = DirSet::new();
        for dir in iter {
            set.insert(dir);
        }
        set
    }
}

impl Extend<Direction> for DirSet {
    fn extend<I: IntoIterator<Item = Direction>>(&mut self, iter: I) {
        for dir in iter {
            self.insert(dir);
        }
    }
}

impl IntoIterator for DirSet {
    type Item = Direction;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over the directions of a [`DirSet`], lowest index first.
#[derive(Debug, Clone)]
pub struct Iter(u32);

impl Iterator for Iter {
    type Item = Direction;

    fn next(&mut self) -> Option<Direction> {
        if self.0 == 0 {
            None
        } else {
            let index = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(Direction::from_index(index))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl fmt::Display for DirSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, dir) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{dir}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_directions_match_2d_convention() {
        assert_eq!(Direction::WEST, Direction::minus(0));
        assert_eq!(Direction::EAST, Direction::plus(0));
        assert_eq!(Direction::SOUTH, Direction::minus(1));
        assert_eq!(Direction::NORTH, Direction::plus(1));
    }

    #[test]
    fn opposite_is_involution() {
        for dir in Direction::all(4) {
            assert_eq!(dir.opposite().opposite(), dir);
            assert_ne!(dir.opposite(), dir);
            assert_eq!(dir.opposite().dim(), dir.dim());
        }
    }

    #[test]
    fn index_round_trip() {
        for dir in Direction::all(16) {
            assert_eq!(Direction::from_index(dir.index()), dir);
        }
    }

    #[test]
    fn all_yields_2n_distinct_directions() {
        let dirs: Vec<_> = Direction::all(3).collect();
        assert_eq!(dirs.len(), 6);
        let set: DirSet = dirs.iter().copied().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn sign_delta() {
        assert_eq!(Sign::Minus.delta(), -1);
        assert_eq!(Sign::Plus.delta(), 1);
    }

    #[test]
    #[should_panic(expected = "16 dimensions")]
    fn direction_rejects_dim_16() {
        let _ = Direction::new(16, Sign::Plus);
    }

    #[test]
    fn dirset_basic_operations() {
        let mut set = DirSet::new();
        assert!(set.is_empty());
        set.insert(Direction::NORTH);
        set.insert(Direction::NORTH);
        assert_eq!(set.len(), 1);
        assert!(set.contains(Direction::NORTH));
        assert!(!set.contains(Direction::SOUTH));
        set.remove(Direction::NORTH);
        assert!(set.is_empty());
    }

    #[test]
    fn dirset_all_contains_everything() {
        let set = DirSet::all(5);
        assert_eq!(set.len(), 10);
        for dir in Direction::all(5) {
            assert!(set.contains(dir));
        }
        assert_eq!(DirSet::all(16).len(), 32);
    }

    #[test]
    fn dirset_set_algebra() {
        let a: DirSet = [Direction::WEST, Direction::NORTH].into_iter().collect();
        let b: DirSet = [Direction::NORTH, Direction::EAST].into_iter().collect();
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b).len(), 1);
        assert!(a.intersection(b).contains(Direction::NORTH));
        assert_eq!(a.difference(b).len(), 1);
        assert!(a.difference(b).contains(Direction::WEST));
    }

    #[test]
    fn dirset_iterates_lowest_dimension_first() {
        let set: DirSet = [Direction::NORTH, Direction::EAST, Direction::SOUTH]
            .into_iter()
            .collect();
        let dirs: Vec<_> = set.iter().collect();
        assert_eq!(
            dirs,
            vec![Direction::EAST, Direction::SOUTH, Direction::NORTH]
        );
        assert_eq!(set.first(), Some(Direction::EAST));
    }

    #[test]
    fn dirset_exact_size_iterator() {
        let set = DirSet::all(3);
        let iter = set.iter();
        assert_eq!(iter.len(), 6);
        assert_eq!(iter.count(), 6);
    }

    #[test]
    fn dirset_bits_round_trip() {
        // Every subset of a 4D direction space survives the bits
        // round-trip (route tables store the raw bitset).
        for bits in 0u32..(1 << 8) {
            let set = DirSet::from_bits(bits);
            assert_eq!(set.bits(), bits);
            assert_eq!(DirSet::from_bits(set.bits()), set);
            let rebuilt: DirSet = set.iter().collect();
            assert_eq!(rebuilt, set, "iteration must preserve membership");
        }
        // The extremes of the full 16-dimension space.
        assert_eq!(DirSet::from_bits(0), DirSet::new());
        assert_eq!(DirSet::from_bits(u32::MAX), DirSet::all(16));
        assert_eq!(DirSet::all(16).bits(), u32::MAX);
    }

    #[test]
    fn dirset_bits_match_direction_indices() {
        for dir in Direction::all(16) {
            let mut set = DirSet::new();
            set.insert(dir);
            assert_eq!(set.bits(), 1 << dir.index());
        }
    }

    #[test]
    fn dirset_display() {
        let set: DirSet = [Direction::WEST, Direction::NORTH].into_iter().collect();
        assert_eq!(set.to_string(), "{-d0,+d1}");
        assert_eq!(DirSet::new().to_string(), "{}");
    }
}
