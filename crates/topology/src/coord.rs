//! Node identifiers and coordinates.

use std::fmt;

/// Identifies a node in a topology.
///
/// Node ids are dense: a topology with `N` nodes uses ids `0..N`. The
/// mapping between ids and [`Coord`]s is defined by each topology
/// (row-major, dimension 0 fastest).
///
/// # Example
///
/// ```
/// use turnroute_topology::NodeId;
///
/// let node = NodeId::new(42);
/// assert_eq!(node.index(), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }

    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The position of a node in a Cartesian topology: one component per
/// dimension, component `i` in `0..k_i`.
///
/// Components are stored with dimension 0 first, matching the paper's
/// convention where dimension 0 is the `x` axis of a 2D mesh.
///
/// # Example
///
/// ```
/// use turnroute_topology::Coord;
///
/// let c: Coord = [3, 7].into();
/// assert_eq!(c.get(0), 3);
/// assert_eq!(c.get(1), 7);
/// assert_eq!(c.num_dims(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Coord(Vec<u16>);

impl Coord {
    /// Creates a coordinate from per-dimension components.
    pub fn new(components: Vec<u16>) -> Self {
        Coord(components)
    }

    /// Creates the all-zero coordinate with `n` dimensions.
    pub fn zero(n: usize) -> Self {
        Coord(vec![0; n])
    }

    /// Number of dimensions.
    pub fn num_dims(&self) -> usize {
        self.0.len()
    }

    /// Component along dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn get(&self, dim: usize) -> u16 {
        self.0[dim]
    }

    /// Sets the component along dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn set(&mut self, dim: usize, value: u16) {
        self.0[dim] = value;
    }

    /// The components as a slice, dimension 0 first.
    pub fn components(&self) -> &[u16] {
        &self.0
    }

    /// Iterates over `(dimension, component)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u16)> + '_ {
        self.0.iter().copied().enumerate()
    }
}

impl From<Vec<u16>> for Coord {
    fn from(components: Vec<u16>) -> Self {
        Coord(components)
    }
}

impl<const N: usize> From<[u16; N]> for Coord {
    fn from(components: [u16; N]) -> Self {
        Coord(components.to_vec())
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let id = NodeId::new(123);
        assert_eq!(id.index(), 123);
        assert_eq!(NodeId::from(123usize), id);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::new(7).to_string(), "n7");
    }

    #[test]
    fn node_id_ordering_matches_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    fn coord_accessors() {
        let mut c = Coord::zero(3);
        assert_eq!(c.num_dims(), 3);
        assert_eq!(c.components(), &[0, 0, 0]);
        c.set(1, 5);
        assert_eq!(c.get(1), 5);
    }

    #[test]
    fn coord_from_array_and_vec() {
        let a: Coord = [1, 2, 3].into();
        let b = Coord::new(vec![1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn coord_display() {
        let c: Coord = [4, 9].into();
        assert_eq!(c.to_string(), "(4,9)");
    }

    #[test]
    fn coord_iter_yields_dim_component_pairs() {
        let c: Coord = [8, 6].into();
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs, vec![(0, 8), (1, 6)]);
    }
}
