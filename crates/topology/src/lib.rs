//! Direct-network topologies for wormhole routing.
//!
//! This crate provides the network substrates studied in Glass & Ni,
//! *"The Turn Model for Adaptive Routing"* (ISCA 1992): [`Mesh`]
//! (n-dimensional meshes), [`Torus`] (k-ary n-cubes with wraparound
//! channels) and [`Hypercube`] (binary n-cubes), all behind the common
//! object-safe [`Topology`] trait.
//!
//! A topology is a set of nodes identified by [`NodeId`], each located at a
//! [`Coord`], connected by unidirectional [`Channel`]s that each route
//! packets in a single [`Direction`] (a signed dimension). Routing
//! algorithms in `turnroute-core` are written against the [`Topology`]
//! trait so that every algorithm/topology pairing the paper discusses can
//! be expressed without duplication.
//!
//! # Example
//!
//! ```
//! use turnroute_topology::{Mesh, Topology, NodeId};
//!
//! // The 16x16 mesh used in the paper's Section 6 simulations.
//! let mesh = Mesh::new_2d(16, 16);
//! assert_eq!(mesh.num_nodes(), 256);
//!
//! let a = mesh.node_at(&[0, 0].into());
//! let b = mesh.node_at(&[15, 15].into());
//! assert_eq!(mesh.distance(a, b), 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cartesian;
mod channel;
mod coord;
mod direction;
mod graph;
mod hex;
mod hypercube;
mod mesh;
mod torus;
mod traits;

pub use channel::{Channel, ChannelId};
pub use coord::{Coord, NodeId};
pub use direction::{DirSet, Direction, Sign};
pub use graph::{average_distance, bfs_distances, diameter, Disconnected};
pub use hex::HexMesh;
pub use hypercube::Hypercube;
pub use mesh::Mesh;
pub use torus::Torus;
pub use traits::Topology;
