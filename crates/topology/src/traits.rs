//! The [`Topology`] trait.

use crate::{Channel, ChannelId, Coord, DirSet, Direction, NodeId};

/// A direct network: nodes at Cartesian coordinates connected by
/// unidirectional channels, each routing packets in a single
/// [`Direction`].
///
/// The trait is object-safe so that routing algorithms and the simulator
/// can be written once against `&dyn Topology` and applied to every
/// topology the paper studies.
///
/// # Example
///
/// ```
/// use turnroute_topology::{Hypercube, Topology};
///
/// let cube = Hypercube::new(8);
/// assert_eq!(cube.num_nodes(), 256);
/// assert_eq!(cube.num_channels(), 8 * 256);
/// ```
pub trait Topology: Send + Sync {
    /// Number of dimensions `n`.
    fn num_dims(&self) -> usize;

    /// Number of nodes `k_i` along dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= self.num_dims()`.
    fn radix(&self, dim: usize) -> usize;

    /// Total number of nodes.
    fn num_nodes(&self) -> usize;

    /// `true` if dimension `dim` has wraparound channels.
    fn wraps(&self, dim: usize) -> bool;

    /// The coordinate of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn coord_of(&self, node: NodeId) -> Coord;

    /// The node at `coord`.
    ///
    /// # Panics
    ///
    /// Panics if `coord` has the wrong dimensionality or is out of range.
    fn node_at(&self, coord: &Coord) -> NodeId;

    /// The neighbor reached by one hop in `dir`, or `None` at a mesh edge
    /// (or if `dir`'s dimension does not exist).
    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId>;

    /// All channels, indexed by [`ChannelId`].
    fn channels(&self) -> &[Channel];

    /// The channel leaving `node` in `dir`, if one exists.
    fn channel_from(&self, node: NodeId, dir: Direction) -> Option<ChannelId>;

    /// Minimal hop count from `a` to `b`.
    fn distance(&self, a: NodeId, b: NodeId) -> usize;

    /// The directions that reduce the distance from `from` to `to`
    /// (the *productive* directions of minimal routing).
    fn minimal_directions(&self, from: NodeId, to: NodeId) -> DirSet;

    /// A short human-readable description, e.g. `"16x16 mesh"`.
    fn label(&self) -> String;

    /// Total number of channels.
    fn num_channels(&self) -> usize {
        self.channels().len()
    }

    /// The channel with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    fn channel(&self, id: ChannelId) -> Channel {
        self.channels()[id.index()]
    }

    /// Iterates over every node id.
    fn nodes(&self) -> NodeIds {
        NodeIds {
            next: 0,
            end: self.num_nodes(),
        }
    }
}

/// Iterator over all node ids of a topology, in ascending order.
#[derive(Debug, Clone)]
pub struct NodeIds {
    next: usize,
    end: usize,
}

impl Iterator for NodeIds {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next < self.end {
            let id = NodeId::new(self.next);
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.next;
        (n, Some(n))
    }
}

impl ExactSizeIterator for NodeIds {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mesh;

    #[test]
    fn trait_is_object_safe() {
        let mesh = Mesh::new_2d(4, 4);
        let topo: &dyn Topology = &mesh;
        assert_eq!(topo.num_nodes(), 16);
        assert_eq!(topo.nodes().len(), 16);
    }

    #[test]
    fn default_channel_accessor() {
        let mesh = Mesh::new_2d(3, 3);
        let topo: &dyn Topology = &mesh;
        let ch = topo.channel(ChannelId::new(0));
        assert_eq!(topo.channel_from(ch.src, ch.dir), Some(ChannelId::new(0)));
    }

    #[test]
    fn nodes_iterates_in_order() {
        let mesh = Mesh::new_2d(2, 2);
        let ids: Vec<usize> = mesh.nodes().map(NodeId::index).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
