//! Randomized invariants of the topology substrate.
//!
//! These were proptest properties; the offline build vendors its own
//! RNG instead, so each property is now a seeded loop over randomly
//! drawn shapes. Failures print the drawn shape, which is reproducible
//! from the fixed seed.

use turnroute_rng::{Rng, StdRng};
use turnroute_topology::{
    bfs_distances, Direction, HexMesh, Hypercube, Mesh, NodeId, Topology, Torus,
};

const CASES: usize = 24;

fn check_roundtrip(topo: &dyn Topology) {
    for node in topo.nodes() {
        assert_eq!(topo.node_at(&topo.coord_of(node)), node);
    }
}

fn check_neighbor_symmetry(topo: &dyn Topology) {
    for node in topo.nodes() {
        for dir in Direction::all(topo.num_dims()) {
            if let Some(next) = topo.neighbor(node, dir) {
                assert_eq!(
                    topo.neighbor(next, dir.opposite()),
                    Some(node),
                    "neighbor must be symmetric"
                );
            }
        }
    }
}

fn check_channel_table(topo: &dyn Topology) {
    for (i, ch) in topo.channels().iter().enumerate() {
        assert_eq!(topo.neighbor(ch.src, ch.dir), Some(ch.dst));
        assert_eq!(
            topo.channel_from(ch.src, ch.dir).map(|c| c.index()),
            Some(i)
        );
    }
}

fn check_metric(topo: &dyn Topology) {
    let nodes: Vec<NodeId> = topo.nodes().collect();
    for &a in nodes.iter().step_by(3) {
        let bfs = bfs_distances(topo, a);
        for &b in nodes.iter().step_by(2) {
            assert_eq!(Some(topo.distance(a, b)), bfs[b.index()]);
            assert_eq!(topo.distance(a, b), topo.distance(b, a));
        }
    }
}

fn check_minimal_directions(topo: &dyn Topology) {
    let nodes: Vec<NodeId> = topo.nodes().collect();
    for &a in nodes.iter().step_by(2) {
        for &b in nodes.iter().step_by(3) {
            let dirs = topo.minimal_directions(a, b);
            assert_eq!(dirs.is_empty(), a == b);
            for d in dirs {
                let next = topo.neighbor(a, d).expect("productive implies channel");
                assert_eq!(topo.distance(next, b) + 1, topo.distance(a, b));
            }
        }
    }
}

fn check_all(topo: &dyn Topology) {
    check_roundtrip(topo);
    check_neighbor_symmetry(topo);
    check_channel_table(topo);
    check_metric(topo);
    check_minimal_directions(topo);
}

#[test]
fn mesh_invariants() {
    let mut rng = StdRng::seed_from_u64(0xA001);
    for _ in 0..CASES {
        let ndims = rng.random_range(1..4usize);
        let dims: Vec<usize> = (0..ndims).map(|_| rng.random_range(2..6usize)).collect();
        check_all(&Mesh::new(dims.clone()));
    }
}

#[test]
fn torus_invariants() {
    let mut rng = StdRng::seed_from_u64(0xA002);
    for _ in 0..CASES {
        let k = rng.random_range(3..7usize);
        let n = rng.random_range(1..3usize);
        check_all(&Torus::new(k, n));
    }
}

#[test]
fn hypercube_invariants() {
    for n in 1..7usize {
        check_all(&Hypercube::new(n));
    }
}

#[test]
fn hex_invariants() {
    let mut rng = StdRng::seed_from_u64(0xA003);
    for _ in 0..CASES {
        let m = rng.random_range(2..7usize);
        let n = rng.random_range(2..7usize);
        check_all(&HexMesh::new(m, n));
    }
}

/// In every topology here, a channel exists iff its reverse does.
#[test]
fn channels_come_in_antiparallel_pairs() {
    let mut rng = StdRng::seed_from_u64(0xA004);
    for _ in 0..CASES {
        let m = rng.random_range(2..6usize);
        let n = rng.random_range(2..6usize);
        for topo in [&Mesh::new_2d(m, n) as &dyn Topology, &HexMesh::new(m, n)] {
            for ch in topo.channels() {
                assert!(
                    topo.channel_from(ch.dst, ch.dir.opposite()).is_some(),
                    "missing reverse of {ch}"
                );
            }
        }
    }
}

/// Hypercube distance is the Hamming distance of ids.
#[test]
fn hypercube_distance_is_hamming() {
    let mut rng = StdRng::seed_from_u64(0xA005);
    for _ in 0..CASES {
        let n = rng.random_range(1..8usize);
        let cube = Hypercube::new(n);
        let a = rng.random_range(0..256usize) % cube.num_nodes();
        let b = rng.random_range(0..256usize) % cube.num_nodes();
        assert_eq!(
            cube.distance(NodeId::new(a), NodeId::new(b)),
            (a ^ b).count_ones() as usize
        );
    }
}

/// Torus distance never exceeds mesh distance on the same coords.
#[test]
fn wraparound_never_hurts() {
    let mut rng = StdRng::seed_from_u64(0xA006);
    for _ in 0..CASES {
        let k = rng.random_range(3..8usize);
        let torus = Torus::new(k, 2);
        let mesh = Mesh::new_2d(k, k);
        let a = rng.random_range(0..64usize) % (k * k);
        let b = rng.random_range(0..64usize) % (k * k);
        assert!(
            torus.distance(NodeId::new(a), NodeId::new(b))
                <= mesh.distance(NodeId::new(a), NodeId::new(b)),
            "k={k} a={a} b={b}"
        );
    }
}
