//! Property-based invariants of the topology substrate.

use proptest::prelude::*;
use turnroute_topology::{
    bfs_distances, Direction, HexMesh, Hypercube, Mesh, NodeId, Topology, Torus,
};

fn check_roundtrip(topo: &dyn Topology) {
    for node in topo.nodes() {
        assert_eq!(topo.node_at(&topo.coord_of(node)), node);
    }
}

fn check_neighbor_symmetry(topo: &dyn Topology) {
    for node in topo.nodes() {
        for dir in Direction::all(topo.num_dims()) {
            if let Some(next) = topo.neighbor(node, dir) {
                assert_eq!(
                    topo.neighbor(next, dir.opposite()),
                    Some(node),
                    "neighbor must be symmetric"
                );
            }
        }
    }
}

fn check_channel_table(topo: &dyn Topology) {
    for (i, ch) in topo.channels().iter().enumerate() {
        assert_eq!(topo.neighbor(ch.src, ch.dir), Some(ch.dst));
        assert_eq!(
            topo.channel_from(ch.src, ch.dir).map(|c| c.index()),
            Some(i)
        );
    }
}

fn check_metric(topo: &dyn Topology) {
    let nodes: Vec<NodeId> = topo.nodes().collect();
    for &a in nodes.iter().step_by(3) {
        let bfs = bfs_distances(topo, a);
        for &b in nodes.iter().step_by(2) {
            assert_eq!(topo.distance(a, b), bfs[b.index()]);
            assert_eq!(topo.distance(a, b), topo.distance(b, a));
        }
    }
}

fn check_minimal_directions(topo: &dyn Topology) {
    let nodes: Vec<NodeId> = topo.nodes().collect();
    for &a in nodes.iter().step_by(2) {
        for &b in nodes.iter().step_by(3) {
            let dirs = topo.minimal_directions(a, b);
            assert_eq!(dirs.is_empty(), a == b);
            for d in dirs {
                let next = topo.neighbor(a, d).expect("productive implies channel");
                assert_eq!(topo.distance(next, b) + 1, topo.distance(a, b));
            }
        }
    }
}

fn check_all(topo: &dyn Topology) {
    check_roundtrip(topo);
    check_neighbor_symmetry(topo);
    check_channel_table(topo);
    check_metric(topo);
    check_minimal_directions(topo);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mesh_invariants(dims in proptest::collection::vec(2usize..6, 1..4)) {
        check_all(&Mesh::new(dims));
    }

    #[test]
    fn torus_invariants(k in 3usize..7, n in 1usize..3) {
        check_all(&Torus::new(k, n));
    }

    #[test]
    fn hypercube_invariants(n in 1usize..7) {
        check_all(&Hypercube::new(n));
    }

    #[test]
    fn hex_invariants(m in 2usize..7, n in 2usize..7) {
        check_all(&HexMesh::new(m, n));
    }

    /// In every topology here, a channel exists iff its reverse does.
    #[test]
    fn channels_come_in_antiparallel_pairs(m in 2usize..6, n in 2usize..6) {
        for topo in [&Mesh::new_2d(m, n) as &dyn Topology, &HexMesh::new(m, n)] {
            for ch in topo.channels() {
                assert!(
                    topo.channel_from(ch.dst, ch.dir.opposite()).is_some(),
                    "missing reverse of {ch}"
                );
            }
        }
    }

    /// Hypercube distance is the Hamming distance of ids.
    #[test]
    fn hypercube_distance_is_hamming(n in 1usize..8, a in 0usize..256, b in 0usize..256) {
        let cube = Hypercube::new(n);
        let (a, b) = (a % cube.num_nodes(), b % cube.num_nodes());
        prop_assert_eq!(
            cube.distance(NodeId::new(a), NodeId::new(b)),
            (a ^ b).count_ones() as usize
        );
    }

    /// Torus distance never exceeds mesh distance on the same coords.
    #[test]
    fn wraparound_never_hurts(k in 3usize..8, a in 0usize..64, b in 0usize..64) {
        let torus = Torus::new(k, 2);
        let mesh = Mesh::new_2d(k, k);
        let (a, b) = (a % (k * k), b % (k * k));
        prop_assert!(
            torus.distance(NodeId::new(a), NodeId::new(b))
                <= mesh.distance(NodeId::new(a), NodeId::new(b))
        );
    }
}
