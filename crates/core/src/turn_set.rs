//! Sets of allowed turns (step 4 of the turn model).

use crate::turn::{abstract_cycles, Turn};
use std::fmt;
use turnroute_topology::{DirSet, Direction};

/// The set of turns a routing algorithm permits.
///
/// A `TurnSet` records, for every ordered pair of directions, whether a
/// packet travelling in the first direction may leave a router in the
/// second. Step 4 of the turn model prohibits just enough 90-degree turns
/// to break every abstract cycle; [`TurnSet::breaks_all_abstract_cycles`]
/// checks the necessary condition and
/// [`ChannelDependencyGraph`](crate::ChannelDependencyGraph) checks the
/// full (sufficient) condition on a concrete topology.
///
/// 180-degree turns are prohibited by default (step 6 may re-admit them);
/// 0-degree "turns" (continuing straight) are always permitted, since
/// without extra virtual channels they are plain forward travel.
///
/// # Example
///
/// ```
/// use turnroute_core::TurnSet;
///
/// let west_first = TurnSet::west_first();
/// // Six of the eight 90-degree turns are allowed (Fig. 5a)...
/// assert_eq!(west_first.allowed_ninety().count(), 6);
/// // ...and both abstract cycles are broken.
/// assert!(west_first.breaks_all_abstract_cycles());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TurnSet {
    num_dims: usize,
    /// Bit `from.index() * 2n + to.index()` set iff the turn is allowed.
    bits: Vec<u64>,
}

impl TurnSet {
    fn bit_index(&self, turn: Turn) -> usize {
        turn.from_dir().index() * 2 * self.num_dims + turn.to_dir().index()
    }

    fn empty(num_dims: usize) -> Self {
        assert!((1..=16).contains(&num_dims), "1..=16 dimensions supported");
        let n_bits = (2 * num_dims) * (2 * num_dims);
        TurnSet {
            num_dims,
            bits: vec![0; n_bits.div_ceil(64)],
        }
    }

    /// A turn set allowing every 90- and 0-degree turn (and no
    /// 180-degree turns) in `num_dims` dimensions. This is *not* deadlock
    /// free for `num_dims >= 2`; it models unrestricted fully adaptive
    /// routing without extra channels.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= num_dims <= 16`.
    pub fn fully_adaptive(num_dims: usize) -> Self {
        let mut set = TurnSet::empty(num_dims);
        for turn in Turn::all_ninety(num_dims) {
            set.allow(turn);
        }
        for dir in Direction::all(num_dims) {
            set.allow(Turn::new(dir, dir));
        }
        set
    }

    /// The dimension-order turn set (`xy` routing in 2D, `e-cube` in
    /// hypercubes): turns are allowed only from a lower dimension to a
    /// higher one, plus straight travel (Fig. 3).
    pub fn dimension_order(num_dims: usize) -> Self {
        let mut set = TurnSet::empty(num_dims);
        for dir in Direction::all(num_dims) {
            set.allow(Turn::new(dir, dir));
        }
        for turn in Turn::all_ninety(num_dims) {
            if turn.from_dir().dim() < turn.to_dir().dim() {
                set.allow(turn);
            }
        }
        set
    }

    /// Builds the turn set of a multi-phase routing algorithm: a turn is
    /// allowed within a phase and from an earlier phase to a later phase,
    /// never backwards.
    ///
    /// All the paper's named algorithms are two-phase instances:
    /// west-first is `[{west}, {south, east, north}]`, negative-first is
    /// `[negative dirs, positive dirs]`, and so on. Dimension-order
    /// routing is the n-phase instance `[{±d0}, {±d1}, ...]`.
    ///
    /// # Panics
    ///
    /// Panics if the phases do not partition the `2 * num_dims`
    /// directions (empty phases are allowed).
    pub fn from_phases(num_dims: usize, phases: &[DirSet]) -> Self {
        let mut seen = DirSet::new();
        for phase in phases {
            assert!(
                phase.intersection(seen).is_empty(),
                "phases must be disjoint"
            );
            seen = seen.union(*phase);
        }
        assert_eq!(
            seen,
            DirSet::all(num_dims),
            "phases must cover all directions"
        );

        let mut set = TurnSet::empty(num_dims);
        for dir in Direction::all(num_dims) {
            set.allow(Turn::new(dir, dir));
        }
        for (i, from_phase) in phases.iter().enumerate() {
            for from in from_phase.iter() {
                for later_phase in &phases[i..] {
                    for to in later_phase.iter() {
                        if from.dim() != to.dim() {
                            set.allow(Turn::new(from, to));
                        }
                    }
                }
                // Step 6: incorporate the safe 180-degree turns — a
                // reversal is a strict phase *advance*, so it cannot
                // close a cycle (Fig. 8c's nonminimal turn).
                if phases[i + 1..]
                    .iter()
                    .any(|later| later.contains(from.opposite()))
                {
                    set.allow(Turn::new(from, from.opposite()));
                }
            }
        }
        set
    }

    /// The west-first turn set for 2D meshes (Fig. 5a): the two turns *to*
    /// the west are prohibited.
    pub fn west_first() -> Self {
        TurnSet::abonf(2)
    }

    /// The north-last turn set for 2D meshes (Fig. 9a): the two turns
    /// *while travelling north* are prohibited.
    pub fn north_last() -> Self {
        TurnSet::abopl(2)
    }

    /// The negative-first turn set (Fig. 10a in 2D, Section 4.1 in
    /// general): every turn from a positive to a negative direction is
    /// prohibited.
    pub fn negative_first(num_dims: usize) -> Self {
        let negatives: DirSet = (0..num_dims).map(Direction::minus).collect();
        let positives: DirSet = (0..num_dims).map(Direction::plus).collect();
        TurnSet::from_phases(num_dims, &[negatives, positives])
    }

    /// The all-but-one-negative-first turn set (Section 4.1): phase one
    /// routes adaptively in the negative directions of every dimension
    /// but the last, phase two in the remaining directions. The 2D case
    /// is west-first.
    pub fn abonf(num_dims: usize) -> Self {
        let phase1: DirSet = (0..num_dims.saturating_sub(1))
            .map(Direction::minus)
            .collect();
        let phase2 = DirSet::all(num_dims).difference(phase1);
        TurnSet::from_phases(num_dims, &[phase1, phase2])
    }

    /// The all-but-one-positive-last turn set (Section 4.1): phase one
    /// routes adaptively in the negative directions plus the positive
    /// direction of dimension 0, phase two in the remaining positive
    /// directions. The 2D case is north-last.
    pub fn abopl(num_dims: usize) -> Self {
        let mut phase1: DirSet = (0..num_dims).map(Direction::minus).collect();
        phase1.insert(Direction::plus(0));
        let phase2 = DirSet::all(num_dims).difference(phase1);
        TurnSet::from_phases(num_dims, &[phase1, phase2])
    }

    /// A deliberately *unsafe* 2D turn set in the spirit of Fig. 4: one
    /// turn is prohibited from each abstract cycle, yet the remaining six
    /// turns still allow deadlock (the three allowed left turns compose
    /// into the prohibited right turn and vice versa).
    ///
    /// Used to demonstrate that breaking each abstract cycle once is
    /// necessary but not sufficient, and to exercise deadlock detection.
    pub fn deadlocky_six_turns() -> Self {
        let mut set = TurnSet::fully_adaptive(2);
        // Prohibit north->east (clockwise cycle) and east->north
        // (counterclockwise cycle): reversed copies of one another, which
        // Section 3 shows leaves both cycles intact.
        set.prohibit(Turn::new(Direction::NORTH, Direction::EAST));
        set.prohibit(Turn::new(Direction::EAST, Direction::NORTH));
        set
    }

    /// Number of dimensions this turn set is defined over.
    pub fn num_dims(&self) -> usize {
        self.num_dims
    }

    /// `true` if `turn` is allowed.
    ///
    /// # Panics
    ///
    /// Panics if the turn's dimensions exceed [`TurnSet::num_dims`].
    pub fn allows(&self, turn: Turn) -> bool {
        assert!(
            turn.from_dir().dim() < self.num_dims && turn.to_dir().dim() < self.num_dims,
            "turn outside this turn set's dimensions"
        );
        let i = self.bit_index(turn);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// Allows `turn`.
    pub fn allow(&mut self, turn: Turn) {
        let i = self.bit_index(turn);
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// Prohibits `turn`.
    pub fn prohibit(&mut self, turn: Turn) {
        let i = self.bit_index(turn);
        self.bits[i / 64] &= !(1 << (i % 64));
    }

    /// The allowed 90-degree turns.
    pub fn allowed_ninety(&self) -> impl Iterator<Item = Turn> + '_ {
        Turn::all_ninety(self.num_dims).filter(|&t| self.allows(t))
    }

    /// The prohibited 90-degree turns.
    pub fn prohibited_ninety(&self) -> impl Iterator<Item = Turn> + '_ {
        Turn::all_ninety(self.num_dims).filter(|&t| !self.allows(t))
    }

    /// The directions a packet travelling in `arrived` may turn to,
    /// including straight travel if the 0-degree turn is allowed.
    pub fn turnable(&self, arrived: Direction) -> DirSet {
        Direction::all(self.num_dims)
            .filter(|&to| self.allows(Turn::new(arrived, to)))
            .collect()
    }

    /// `true` if every abstract cycle contains at least one prohibited
    /// turn (step 4's necessary condition for deadlock freedom).
    ///
    /// This is *not* sufficient: Fig. 4 exhibits a set that breaks both
    /// abstract cycles yet deadlocks. Use
    /// [`ChannelDependencyGraph`](crate::ChannelDependencyGraph) for the
    /// full check on a concrete topology.
    pub fn breaks_all_abstract_cycles(&self) -> bool {
        abstract_cycles(self.num_dims)
            .iter()
            .all(|cycle| cycle.turns.iter().any(|&t| !self.allows(t)))
    }

    /// Enumerates every turn set obtained from `fully_adaptive(num_dims)`
    /// by prohibiting exactly one turn in each abstract cycle — the
    /// candidate space of step 4. In 2D this yields the 16 combinations of
    /// Section 3, of which 12 prevent deadlock.
    ///
    /// The number of candidates is `4^(n(n-1))`; only call this for small
    /// `n`.
    pub fn one_turn_per_cycle_prohibitions(num_dims: usize) -> Vec<TurnSet> {
        let cycles = abstract_cycles(num_dims);
        let mut result = Vec::new();
        let mut choice = vec![0usize; cycles.len()];
        loop {
            let mut set = TurnSet::fully_adaptive(num_dims);
            for (cycle, &pick) in cycles.iter().zip(&choice) {
                set.prohibit(cycle.turns[pick]);
            }
            result.push(set);
            // Odometer increment over base-4 digits.
            let mut i = 0;
            loop {
                if i == choice.len() {
                    return result;
                }
                choice[i] += 1;
                if choice[i] < 4 {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
        }
    }

    /// Applies a relabeling of directions, producing the turn set in
    /// which `map(from) -> map(to)` is allowed iff `from -> to` was. Used
    /// to quotient turn sets by mesh symmetries (Section 3's "three are
    /// unique if symmetry is taken into account").
    pub fn relabel(&self, map: impl Fn(Direction) -> Direction) -> TurnSet {
        let mut out = TurnSet::empty(self.num_dims);
        for from in Direction::all(self.num_dims) {
            for to in Direction::all(self.num_dims) {
                if self.allows(Turn::new(from, to)) {
                    out.allow(Turn::new(map(from), map(to)));
                }
            }
        }
        out
    }
}

impl fmt::Debug for TurnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prohibited: Vec<String> = self.prohibited_ninety().map(|t| t.to_string()).collect();
        f.debug_struct("TurnSet")
            .field("num_dims", &self.num_dims)
            .field("prohibited_ninety", &prohibited)
            .finish()
    }
}

impl fmt::Display for TurnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "turn set ({}D, prohibits", self.num_dims)?;
        for t in self.prohibited_ninety() {
            write!(f, " {t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_adaptive_allows_everything_but_180() {
        let set = TurnSet::fully_adaptive(2);
        assert_eq!(set.allowed_ninety().count(), 8);
        assert!(set.allows(Turn::new(Direction::EAST, Direction::EAST)));
        assert!(!set.allows(Turn::new(Direction::EAST, Direction::WEST)));
        assert!(!set.breaks_all_abstract_cycles());
    }

    #[test]
    fn dimension_order_matches_fig3() {
        // xy routing allows exactly W->N, W->S, E->N, E->S (Fig. 3).
        let set = TurnSet::dimension_order(2);
        let allowed: Vec<Turn> = set.allowed_ninety().collect();
        assert_eq!(allowed.len(), 4);
        for t in &allowed {
            assert_eq!(t.from_dir().dim(), 0);
            assert_eq!(t.to_dir().dim(), 1);
        }
        assert!(set.breaks_all_abstract_cycles());
    }

    #[test]
    fn west_first_prohibits_turns_to_west() {
        let set = TurnSet::west_first();
        assert_eq!(set.prohibited_ninety().count(), 2);
        assert!(!set.allows(Turn::new(Direction::NORTH, Direction::WEST)));
        assert!(!set.allows(Turn::new(Direction::SOUTH, Direction::WEST)));
        assert!(set.allows(Turn::new(Direction::WEST, Direction::NORTH)));
        assert!(set.breaks_all_abstract_cycles());
    }

    #[test]
    fn north_last_prohibits_turns_while_north() {
        let set = TurnSet::north_last();
        assert_eq!(set.prohibited_ninety().count(), 2);
        assert!(!set.allows(Turn::new(Direction::NORTH, Direction::WEST)));
        assert!(!set.allows(Turn::new(Direction::NORTH, Direction::EAST)));
        assert!(set.breaks_all_abstract_cycles());
    }

    #[test]
    fn negative_first_prohibits_positive_to_negative() {
        let set = TurnSet::negative_first(2);
        assert!(!set.allows(Turn::new(Direction::EAST, Direction::SOUTH)));
        assert!(!set.allows(Turn::new(Direction::NORTH, Direction::WEST)));
        assert!(set.allows(Turn::new(Direction::WEST, Direction::NORTH)));
        assert!(set.breaks_all_abstract_cycles());

        // In n dimensions exactly n(n-1) turns are prohibited: a quarter.
        for n in 2..=5 {
            let set = TurnSet::negative_first(n);
            assert_eq!(set.prohibited_ninety().count(), n * (n - 1));
            assert!(set.breaks_all_abstract_cycles());
        }
    }

    #[test]
    fn abonf_and_abopl_prohibit_a_quarter() {
        for n in 2..=5 {
            for set in [TurnSet::abonf(n), TurnSet::abopl(n)] {
                assert_eq!(set.prohibited_ninety().count(), n * (n - 1));
                assert!(set.breaks_all_abstract_cycles());
            }
        }
    }

    #[test]
    fn abonf_2d_is_west_first_and_abopl_2d_is_north_last() {
        assert_eq!(TurnSet::abonf(2), TurnSet::west_first());
        assert_eq!(TurnSet::abopl(2), TurnSet::north_last());
    }

    #[test]
    fn deadlocky_set_breaks_no_abstract_cycle_fully() {
        let set = TurnSet::deadlocky_six_turns();
        assert_eq!(set.prohibited_ninety().count(), 2);
        // One turn is prohibited per abstract cycle...
        assert!(set.breaks_all_abstract_cycles());
        // ...yet (as the CDG tests show) it still deadlocks.
    }

    #[test]
    fn one_turn_per_cycle_enumeration_2d_has_16() {
        let sets = TurnSet::one_turn_per_cycle_prohibitions(2);
        assert_eq!(sets.len(), 16);
        for set in &sets {
            assert_eq!(set.prohibited_ninety().count(), 2);
            assert!(set.breaks_all_abstract_cycles());
        }
        // All distinct.
        for (i, a) in sets.iter().enumerate() {
            for b in &sets[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn turnable_reflects_allowed_turns() {
        let set = TurnSet::west_first();
        let from_north = set.turnable(Direction::NORTH);
        assert!(from_north.contains(Direction::NORTH)); // straight
        assert!(from_north.contains(Direction::EAST));
        assert!(!from_north.contains(Direction::WEST));
        assert!(!from_north.contains(Direction::SOUTH)); // 180
    }

    #[test]
    fn relabel_rotates_west_first_into_a_valid_set() {
        // Rotate 90 degrees: W->S, S->E, E->N, N->W.
        let rot = |d: Direction| -> Direction {
            match d {
                Direction::WEST => Direction::SOUTH,
                Direction::SOUTH => Direction::EAST,
                Direction::EAST => Direction::NORTH,
                Direction::NORTH => Direction::WEST,
                _ => unreachable!(),
            }
        };
        let rotated = TurnSet::west_first().relabel(rot);
        assert_eq!(rotated.prohibited_ninety().count(), 2);
        // "South-first": prohibits turns to the south.
        assert!(!rotated.allows(Turn::new(Direction::EAST, Direction::SOUTH)));
        assert!(!rotated.allows(Turn::new(Direction::WEST, Direction::SOUTH)));
    }

    #[test]
    #[should_panic(expected = "phases must cover")]
    fn from_phases_requires_cover() {
        let phase1: DirSet = [Direction::WEST].into_iter().collect();
        let _ = TurnSet::from_phases(2, &[phase1]);
    }

    #[test]
    fn from_phases_three_phases() {
        // Dimension-order as phases [{±d0}, {±d1}].
        let p0: DirSet = [Direction::WEST, Direction::EAST].into_iter().collect();
        let p1: DirSet = [Direction::SOUTH, Direction::NORTH].into_iter().collect();
        let set = TurnSet::from_phases(2, &[p0, p1]);
        assert_eq!(set, TurnSet::dimension_order(2));
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        let set = TurnSet::west_first();
        assert!(format!("{set:?}").contains("prohibited"));
        assert!(set.to_string().contains("prohibits"));
    }
}
