//! The turn model for adaptive wormhole routing.
//!
//! This crate implements the central contribution of Glass & Ni, *"The
//! Turn Model for Adaptive Routing"* (ISCA 1992): design wormhole routing
//! algorithms that are deadlock free, livelock free, minimal or
//! nonminimal, and maximally adaptive — without adding physical or
//! virtual channels — by analyzing the turns packets can make and
//! prohibiting just enough of them to break every cycle.
//!
//! # Layout
//!
//! * [`Turn`], [`AbstractCycle`], [`abstract_cycles`] — steps 2–3 of the
//!   model: the turn algebra.
//! * [`TurnSet`] — step 4: which turns an algorithm allows, with
//!   constructors for every named algorithm in the paper and an
//!   enumerator for the full space of one-turn-per-cycle prohibitions.
//! * [`ChannelDependencyGraph`] — the Dally–Seitz deadlock-freedom
//!   check: a routing relation is deadlock free iff its CDG is acyclic.
//! * [`numbering`] — the concrete channel numberings from the paper's
//!   proofs (Theorems 2 and 5), verified monotone.
//! * [`RoutingAlgorithm`] and implementations — `xy`/`e-cube`
//!   ([`DimensionOrder`]), [`WestFirst`], [`NorthLast`],
//!   [`NegativeFirst`], [`Abonf`], [`Abopl`], [`PCube`], plus the torus
//!   extensions [`FirstHopWraparound`] and [`NegativeFirstTorus`] and the
//!   generic [`TurnSetRouting`].
//! * [`adaptiveness`] and [`count_paths`] — Section 3.4/4.1/5's
//!   degree-of-adaptiveness formulas and their exhaustive oracle.
//!
//! # Example
//!
//! ```
//! use turnroute_core::{ChannelDependencyGraph, TurnSet, WestFirst, walk, RoutingAlgorithm};
//! use turnroute_topology::{Mesh, Topology};
//!
//! let mesh = Mesh::new_2d(8, 8);
//!
//! // West-first breaks both abstract cycles of the 2D mesh...
//! let turns = TurnSet::west_first();
//! assert!(turns.breaks_all_abstract_cycles());
//! // ...and its channel dependency graph is acyclic: deadlock free.
//! assert!(ChannelDependencyGraph::from_turn_set(&mesh, &turns).is_acyclic());
//!
//! // Route a packet with it.
//! let path = walk(
//!     &WestFirst::minimal(),
//!     &mesh,
//!     mesh.node_at(&[6, 1].into()),
//!     mesh.node_at(&[1, 6].into()),
//! );
//! assert_eq!(path.len(), 11); // a shortest path: 5 + 5 hops
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptiveness;
mod algorithms;
mod cdg;
pub mod numbering;
mod path_count;
mod turn;
mod turn_set;

pub use algorithms::{
    check_routing_contract, walk, Abonf, Abopl, DimensionOrder, FirstHopWraparound, NegativeFirst,
    NegativeFirstTorus, NorthLast, PCube, RoutingAlgorithm, TurnSetRouting, TwoPhase, WestFirst,
};
pub use cdg::ChannelDependencyGraph;
pub use path_count::{count_paths, enumerate_paths};
pub use turn::{abstract_cycles, AbstractCycle, Rotation, Turn, TurnKind};
pub use turn_set::TurnSet;
