//! Concrete channel numberings: the executable form of the paper's
//! deadlock-freedom proofs (Theorems 2–5).
//!
//! A routing relation is deadlock free iff the channels can be numbered
//! so every packet follows strictly monotone numbers (Dally & Seitz).
//! This module implements:
//!
//! * [`west_first_numbering`] — a two-digit base-`r` numbering in the
//!   spirit of the paper's Fig. 6/7 under which west-first routes follow
//!   strictly *decreasing* numbers. (The figure's exact digit assignments
//!   are not reproduced in the retrospective text, so we derive an
//!   equivalent scheme and verify it exhaustively in tests.)
//! * [`negative_first_numbering`] — the Theorem 5 scheme, verbatim:
//!   channels leaving a node with coordinate sum `X` are numbered
//!   `K - n + X` (positive directions) and `K - n - X` (negative
//!   directions), where `K` is the sum of the radixes; negative-first
//!   routes follow strictly *increasing* numbers.
//!
//! [`verify_monotone`] checks a numbering against every dependency of a
//! routing relation, turning each theorem into a unit test.

use crate::ChannelDependencyGraph;
use turnroute_topology::{Direction, Mesh, Sign, Topology};

/// A west-first channel numbering for an `m x n` 2D mesh.
///
/// Returns one number per channel (indexed by
/// [`ChannelId::index`](turnroute_topology::ChannelId)), encoded as the
/// two-digit base-`r` value `a * r + b` with `r = max(2m, n + 1)`:
///
/// * westward channel leaving column `x`: `a = m - 1 + x`, `b = 0` —
///   lower the farther west, and above every adaptive-phase channel it
///   can hand over to;
/// * eastward channel leaving column `x`: `a = m - 1 - x`, `b = 0` —
///   lower the farther east;
/// * northward channel leaving `(x, y)`: `a = m - 1 - x`,
///   `b = n - 1 - y` — lower the farther north;
/// * southward channel leaving `(x, y)`: `a = m - 1 - x`, `b = y` —
///   lower the farther south.
///
/// Every turn west-first allows strictly decreases the number: west
/// travel decreases `a` within the west phase; leaving the west phase
/// drops `a` below `m`; east travel decreases `a`; north/south travel
/// keeps `a` and decreases `b`; and a north/south channel hands over to
/// an east channel of the *next* column, whose `a` is smaller.
pub fn west_first_numbering(mesh: &Mesh) -> Vec<u64> {
    assert_eq!(mesh.num_dims(), 2, "west-first numbering is for 2D meshes");
    let (m, n) = (mesh.radix(0) as u64, mesh.radix(1) as u64);
    let r = (2 * m).max(n + 1);
    mesh.channels()
        .iter()
        .map(|ch| {
            let c = mesh.coord_of(ch.src);
            let (x, y) = (c.get(0) as u64, c.get(1) as u64);
            let (a, b) = match (ch.dir.dim(), ch.dir.sign()) {
                (0, Sign::Minus) => (m - 1 + x, 0),        // west
                (0, Sign::Plus) => (m - 1 - x, 0),         // east
                (1, Sign::Plus) => (m - 1 - x, n - 1 - y), // north
                (1, Sign::Minus) => (m - 1 - x, y),        // south
                _ => unreachable!("2D mesh"),
            };
            a * r + b
        })
        .collect()
}

/// The Theorem 5 numbering for an n-dimensional mesh: channels leaving a
/// node with coordinate sum `X` get `K - n + X` (positive directions) or
/// `K - n - X` (negative directions), with `K` the sum of the radixes.
///
/// Negative-first routes follow strictly increasing numbers. The offset
/// `K - n` keeps all numbers non-negative (`X <= K - n`), exactly as in
/// the paper; it is immaterial to monotonicity.
pub fn negative_first_numbering(mesh: &Mesh) -> Vec<u64> {
    let n = mesh.num_dims() as u64;
    let k: u64 = (0..mesh.num_dims()).map(|d| mesh.radix(d) as u64).sum();
    mesh.channels()
        .iter()
        .map(|ch| {
            let coord = mesh.coord_of(ch.src);
            let x: u64 = coord.components().iter().map(|&c| c as u64).sum();
            match ch.dir.sign() {
                Sign::Plus => k - n + x,
                Sign::Minus => k - n - x,
            }
        })
        .collect()
}

/// The order a numbering claims routes follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Monotonic {
    /// Every dependency goes from a higher to a lower number.
    Decreasing,
    /// Every dependency goes from a lower to a higher number.
    Increasing,
}

/// Checks that `numbers` is strictly monotone along every dependency of
/// `cdg`, i.e. that the numbering proves the relation deadlock free.
///
/// Returns the first violating dependency `(holder, requested)` if any.
///
/// # Panics
///
/// Panics if `numbers.len()` differs from the graph's channel count.
pub fn verify_monotone(
    cdg: &ChannelDependencyGraph,
    numbers: &[u64],
    order: Monotonic,
) -> Result<(), (usize, usize)> {
    assert_eq!(numbers.len(), cdg.num_channels(), "one number per channel");
    for c in 0..cdg.num_channels() {
        for s in cdg.successors(turnroute_topology::ChannelId::new(c)) {
            let ok = match order {
                Monotonic::Decreasing => numbers[s.index()] < numbers[c],
                Monotonic::Increasing => numbers[s.index()] > numbers[c],
            };
            if !ok {
                return Err((c, s.index()));
            }
        }
    }
    Ok(())
}

/// Convenience: the direction a 2D-mesh channel routes packets, as the
/// paper's compass name.
pub fn compass(dir: Direction) -> &'static str {
    match (dir.dim(), dir.sign()) {
        (0, Sign::Minus) => "west",
        (0, Sign::Plus) => "east",
        (1, Sign::Minus) => "south",
        (1, Sign::Plus) => "north",
        _ => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TurnSet;

    #[test]
    fn theorem_2_west_first_numbers_decrease() {
        // Exhaustive check over every west-first dependency in several
        // mesh sizes, including non-square ones.
        for (m, n) in [(4, 4), (8, 8), (3, 7), (7, 3), (2, 2), (16, 16)] {
            let mesh = Mesh::new_2d(m, n);
            let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &TurnSet::west_first());
            let numbers = west_first_numbering(&mesh);
            assert_eq!(
                verify_monotone(&cdg, &numbers, Monotonic::Decreasing),
                Ok(()),
                "{m}x{n} mesh"
            );
        }
    }

    #[test]
    fn theorem_5_negative_first_numbers_increase_2d() {
        for (m, n) in [(4, 4), (5, 9), (16, 16)] {
            let mesh = Mesh::new_2d(m, n);
            let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &TurnSet::negative_first(2));
            let numbers = negative_first_numbering(&mesh);
            assert_eq!(
                verify_monotone(&cdg, &numbers, Monotonic::Increasing),
                Ok(()),
                "{m}x{n} mesh"
            );
        }
    }

    #[test]
    fn theorem_5_negative_first_numbers_increase_nd() {
        for dims in [vec![3, 3, 3], vec![2, 4, 3], vec![2, 2, 2, 2]] {
            let n = dims.len();
            let mesh = Mesh::new(dims.clone());
            let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &TurnSet::negative_first(n));
            let numbers = negative_first_numbering(&mesh);
            assert_eq!(
                verify_monotone(&cdg, &numbers, Monotonic::Increasing),
                Ok(()),
                "{dims:?} mesh"
            );
        }
    }

    #[test]
    fn theorem_3_north_last_by_rotation() {
        // The paper proves north-last by rotating the west-first figures;
        // here we simply verify the rotated numbering exists via the
        // topological construction.
        let mesh = Mesh::new_2d(8, 8);
        let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &TurnSet::north_last());
        let numbers: Vec<u64> = cdg
            .topological_numbering()
            .expect("north-last is acyclic")
            .into_iter()
            .map(|v| v as u64)
            .collect();
        assert_eq!(
            verify_monotone(&cdg, &numbers, Monotonic::Decreasing),
            Ok(())
        );
    }

    #[test]
    fn numbering_rejects_bad_relation() {
        // The deadlocky set has a cycle, so no monotone numbering exists;
        // in particular ours must fail on it.
        let mesh = Mesh::new_2d(4, 4);
        let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &TurnSet::deadlocky_six_turns());
        let numbers = west_first_numbering(&mesh);
        assert!(verify_monotone(&cdg, &numbers, Monotonic::Decreasing).is_err());
    }

    #[test]
    fn negative_first_numbers_match_paper_formula() {
        // Spot-check the K - n +/- X values on a 4x4 mesh: K = 8, n = 2.
        let mesh = Mesh::new_2d(4, 4);
        let numbers = negative_first_numbering(&mesh);
        for (i, ch) in mesh.channels().iter().enumerate() {
            let coord = mesh.coord_of(ch.src);
            let x = (coord.get(0) + coord.get(1)) as u64;
            let expected = match ch.dir.sign() {
                Sign::Plus => 6 + x,
                Sign::Minus => 6 - x,
            };
            assert_eq!(numbers[i], expected);
        }
    }

    #[test]
    fn compass_names() {
        assert_eq!(compass(Direction::WEST), "west");
        assert_eq!(compass(Direction::EAST), "east");
        assert_eq!(compass(Direction::NORTH), "north");
        assert_eq!(compass(Direction::SOUTH), "south");
    }
}
