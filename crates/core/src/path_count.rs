//! Exhaustive counting of the paths a routing algorithm allows.
//!
//! This is the oracle for the closed forms in [`crate::adaptiveness`]:
//! dynamic programming over `(node, arrival direction)` states counts
//! exactly the distinct paths the routing relation admits from a source
//! to a destination.

use crate::RoutingAlgorithm;
use std::collections::HashMap;
use turnroute_topology::{Direction, NodeId, Topology};

/// Counts the distinct paths `algorithm` allows from `src` to `dst`.
///
/// For a minimal algorithm this is the paper's `S_algorithm`. The count
/// distinguishes paths by their node sequences; the arrival-direction
/// state only serves turn-constrained algorithms. Counts saturate at
/// `u128::MAX` — dense nonminimal relations (e.g. synthesized turn
/// models on high-degree graphs) can admit more paths than fit.
///
/// # Panics
///
/// Panics if the routing relation admits a cyclic state sequence (the
/// path count would be infinite) — cannot happen for minimal algorithms.
///
/// # Example
///
/// ```
/// use turnroute_core::{count_paths, WestFirst};
/// use turnroute_topology::{Mesh, Topology};
///
/// let mesh = Mesh::new_2d(8, 8);
/// let wf = WestFirst::minimal();
/// let s = mesh.node_at(&[2, 2].into());
/// let d = mesh.node_at(&[4, 4].into());
/// assert_eq!(count_paths(&wf, &mesh, s, d), 6); // fully adaptive here
/// ```
pub fn count_paths(
    algorithm: &dyn RoutingAlgorithm,
    topo: &dyn Topology,
    src: NodeId,
    dst: NodeId,
) -> u128 {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        OnStack,
        Done(u128),
    }
    type State = (NodeId, Option<Direction>);

    fn visit(
        algorithm: &dyn RoutingAlgorithm,
        topo: &dyn Topology,
        dst: NodeId,
        state: State,
        memo: &mut HashMap<State, Mark>,
    ) -> u128 {
        let (node, arrived) = state;
        if node == dst {
            return 1;
        }
        match memo.get(&state) {
            Some(Mark::Done(count)) => return *count,
            Some(Mark::OnStack) => {
                panic!("routing relation admits unboundedly many paths")
            }
            None => {}
        }
        memo.insert(state, Mark::OnStack);
        let mut total: u128 = 0;
        for dir in algorithm.route(topo, node, dst, arrived) {
            let next = topo
                .neighbor(node, dir)
                .expect("routing algorithm returned a direction without a channel");
            total = total.saturating_add(visit(algorithm, topo, dst, (next, Some(dir)), memo));
        }
        memo.insert(state, Mark::Done(total));
        total
    }

    let mut memo = HashMap::new();
    visit(algorithm, topo, dst, (src, None), &mut memo)
}

/// Enumerates (rather than counts) every allowed path as node sequences.
/// Intended for small cases — tests, examples, figures.
///
/// # Panics
///
/// Panics if more than `limit` paths exist, to guard against explosion.
pub fn enumerate_paths(
    algorithm: &dyn RoutingAlgorithm,
    topo: &dyn Topology,
    src: NodeId,
    dst: NodeId,
    limit: usize,
) -> Vec<Vec<NodeId>> {
    let mut paths = Vec::new();
    let mut current = vec![src];

    fn dfs(
        algorithm: &dyn RoutingAlgorithm,
        topo: &dyn Topology,
        dst: NodeId,
        arrived: Option<Direction>,
        current: &mut Vec<NodeId>,
        paths: &mut Vec<Vec<NodeId>>,
        limit: usize,
    ) {
        let node = *current.last().expect("path never empty");
        if node == dst {
            assert!(paths.len() < limit, "more than {limit} paths");
            paths.push(current.clone());
            return;
        }
        for dir in algorithm.route(topo, node, dst, arrived) {
            let next = topo
                .neighbor(node, dir)
                .expect("routing algorithm returned a direction without a channel");
            current.push(next);
            dfs(algorithm, topo, dst, Some(dir), current, paths, limit);
            current.pop();
        }
    }

    dfs(algorithm, topo, dst, None, &mut current, &mut paths, limit);
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptiveness::{
        abonf_shortest_paths, abopl_shortest_paths, fully_adaptive_shortest_paths,
        negative_first_shortest_paths, north_last_shortest_paths, pcube_shortest_paths,
        west_first_shortest_paths,
    };
    use crate::{Abonf, Abopl, DimensionOrder, NegativeFirst, NorthLast, PCube, WestFirst};
    use turnroute_topology::{Hypercube, Mesh};

    #[test]
    fn dimension_order_always_counts_one() {
        let mesh = Mesh::new_2d(5, 5);
        let xy = DimensionOrder::new();
        for s in mesh.nodes() {
            for d in mesh.nodes() {
                assert_eq!(count_paths(&xy, &mesh, s, d), 1);
            }
        }
    }

    #[test]
    fn west_first_counts_match_formula() {
        let mesh = Mesh::new_2d(6, 6);
        let wf = WestFirst::minimal();
        for s in mesh.nodes() {
            for d in mesh.nodes() {
                assert_eq!(
                    count_paths(&wf, &mesh, s, d),
                    west_first_shortest_paths(&mesh, s, d).max(
                        // S = 1 includes the trivial path when s == d.
                        u128::from(s == d)
                    ),
                    "s={s} d={d}"
                );
            }
        }
    }

    #[test]
    fn north_last_counts_match_formula() {
        let mesh = Mesh::new_2d(6, 6);
        let nl = NorthLast::minimal();
        for s in mesh.nodes() {
            for d in mesh.nodes() {
                if s != d {
                    assert_eq!(
                        count_paths(&nl, &mesh, s, d),
                        north_last_shortest_paths(&mesh, s, d)
                    );
                }
            }
        }
    }

    #[test]
    fn negative_first_counts_match_formula_2d_and_3d() {
        let mesh = Mesh::new_2d(6, 6);
        let nf = NegativeFirst::minimal();
        for s in mesh.nodes() {
            for d in mesh.nodes() {
                if s != d {
                    assert_eq!(
                        count_paths(&nf, &mesh, s, d),
                        negative_first_shortest_paths(&mesh, s, d)
                    );
                }
            }
        }
        let mesh3 = Mesh::new(vec![3, 4, 3]);
        let nf3 = NegativeFirst::with_dims(3, true);
        for s in mesh3.nodes() {
            for d in mesh3.nodes() {
                if s != d {
                    assert_eq!(
                        count_paths(&nf3, &mesh3, s, d),
                        negative_first_shortest_paths(&mesh3, s, d)
                    );
                }
            }
        }
    }

    #[test]
    fn abonf_and_abopl_counts_match_formulas() {
        let mesh = Mesh::new(vec![3, 3, 4]);
        let abonf = Abonf::with_dims(3, true);
        let abopl = Abopl::with_dims(3, true);
        for s in mesh.nodes() {
            for d in mesh.nodes() {
                if s != d {
                    assert_eq!(
                        count_paths(&abonf, &mesh, s, d),
                        abonf_shortest_paths(&mesh, s, d),
                        "abonf s={s} d={d}"
                    );
                    assert_eq!(
                        count_paths(&abopl, &mesh, s, d),
                        abopl_shortest_paths(&mesh, s, d),
                        "abopl s={s} d={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn pcube_counts_match_h1_h0_factorials() {
        let cube = Hypercube::new(6);
        let pcube = PCube::minimal();
        for s in cube.nodes().step_by(5) {
            for d in cube.nodes().step_by(3) {
                if s != d {
                    assert_eq!(
                        count_paths(&pcube, &cube, s, d),
                        pcube_shortest_paths(s.index(), d.index())
                    );
                }
            }
        }
    }

    #[test]
    fn fully_adaptive_count_is_the_multinomial() {
        // Sanity for the oracle itself: an unrestricted minimal router
        // must count the multinomial.
        use crate::{TurnSet, TurnSetRouting};
        let mesh = Mesh::new_2d(5, 5);
        let free = TurnSetRouting::new(TurnSet::fully_adaptive(2));
        for s in mesh.nodes() {
            for d in mesh.nodes() {
                if s != d {
                    assert_eq!(
                        count_paths(&free, &mesh, s, d),
                        fully_adaptive_shortest_paths(&mesh, s, d)
                    );
                }
            }
        }
    }

    #[test]
    fn enumerate_lists_exactly_the_counted_paths() {
        let mesh = Mesh::new_2d(5, 5);
        let wf = WestFirst::minimal();
        let s = mesh.node_at(&[1, 1].into());
        let d = mesh.node_at(&[3, 4].into());
        let paths = enumerate_paths(&wf, &mesh, s, d, 1000);
        assert_eq!(paths.len() as u128, count_paths(&wf, &mesh, s, d));
        // All distinct, all minimal, all end at d.
        for p in &paths {
            assert_eq!(p.len(), mesh.distance(s, d) + 1);
            assert_eq!(*p.last().unwrap(), d);
        }
        let mut sorted = paths.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), paths.len());
    }

    #[test]
    #[should_panic(expected = "more than")]
    fn enumerate_respects_limit() {
        let mesh = Mesh::new_2d(8, 8);
        let wf = WestFirst::minimal();
        let s = mesh.node_at(&[0, 0].into());
        let d = mesh.node_at(&[7, 7].into());
        let _ = enumerate_paths(&wf, &mesh, s, d, 10);
    }
}
