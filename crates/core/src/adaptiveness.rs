//! Degree-of-adaptiveness formulas (Sections 3.4, 4.1 and 5).
//!
//! `S_algorithm` is the number of distinct shortest paths a minimal
//! algorithm allows between a source and a destination. The paper gives
//! closed forms for the fully adaptive baseline and each partially
//! adaptive algorithm; this module implements them (cross-checked against
//! exhaustive path counting in `path_count`).

use turnroute_topology::{NodeId, Topology};

/// `(Σ deltas)! / Π (delta_i!)` — the number of shortest paths in a mesh
/// with the given per-dimension offsets, i.e. `S_f` for a fully adaptive
/// minimal algorithm.
///
/// Computed multiplicatively as a product of binomial coefficients so it
/// fits in `u128` far beyond the sizes the paper considers.
///
/// # Panics
///
/// Panics on overflow (offsets totalling beyond ~128 hops in a square
/// mesh).
///
/// # Example
///
/// ```
/// use turnroute_core::adaptiveness::multinomial;
///
/// assert_eq!(multinomial(&[2, 2]), 6);   // 4!/2!2!
/// assert_eq!(multinomial(&[1, 1, 1]), 6); // 3!
/// assert_eq!(multinomial(&[5, 0]), 1);
/// ```
pub fn multinomial(deltas: &[u64]) -> u128 {
    let mut result: u128 = 1;
    let mut placed: u64 = 0;
    for &d in deltas {
        for i in 1..=d {
            placed += 1;
            // result *= C(placed, i) incrementally: result * placed / i
            // stays integral because it is a product of binomials.
            result = result
                .checked_mul(placed as u128)
                .expect("multinomial overflow")
                / i as u128;
        }
    }
    result
}

/// The per-dimension absolute offsets between two nodes of a mesh.
fn offsets(topo: &dyn Topology, src: NodeId, dst: NodeId) -> Vec<u64> {
    let (s, d) = (topo.coord_of(src), topo.coord_of(dst));
    (0..topo.num_dims())
        .map(|i| (s.get(i) as i64 - d.get(i) as i64).unsigned_abs())
        .collect()
}

/// Splits the offsets into (negative-going, positive-going) per
/// dimension: `negative[i]` is the offset if the packet must travel minus
/// along dimension `i`, else 0, and symmetrically for `positive`.
fn signed_offsets(topo: &dyn Topology, src: NodeId, dst: NodeId) -> (Vec<u64>, Vec<u64>) {
    let (s, d) = (topo.coord_of(src), topo.coord_of(dst));
    let mut neg = Vec::with_capacity(topo.num_dims());
    let mut pos = Vec::with_capacity(topo.num_dims());
    for i in 0..topo.num_dims() {
        let delta = d.get(i) as i64 - s.get(i) as i64;
        neg.push(if delta < 0 { (-delta) as u64 } else { 0 });
        pos.push(if delta > 0 { delta as u64 } else { 0 });
    }
    (neg, pos)
}

/// `S_f`: shortest paths available to a fully adaptive minimal algorithm
/// in a mesh.
pub fn fully_adaptive_shortest_paths(topo: &dyn Topology, src: NodeId, dst: NodeId) -> u128 {
    multinomial(&offsets(topo, src, dst))
}

/// `S_west-first` (Section 3.4): the full multinomial when the
/// destination is not to the west, otherwise exactly one path.
pub fn west_first_shortest_paths(topo: &dyn Topology, src: NodeId, dst: NodeId) -> u128 {
    assert_eq!(topo.num_dims(), 2, "west-first is a 2D algorithm");
    let (s, d) = (topo.coord_of(src), topo.coord_of(dst));
    if d.get(0) >= s.get(0) {
        fully_adaptive_shortest_paths(topo, src, dst)
    } else {
        1
    }
}

/// `S_north-last` (Section 3.4): the full multinomial when the
/// destination is not to the north, otherwise exactly one path.
pub fn north_last_shortest_paths(topo: &dyn Topology, src: NodeId, dst: NodeId) -> u128 {
    assert_eq!(topo.num_dims(), 2, "north-last is a 2D algorithm");
    let (s, d) = (topo.coord_of(src), topo.coord_of(dst));
    if d.get(1) <= s.get(1) {
        fully_adaptive_shortest_paths(topo, src, dst)
    } else {
        1
    }
}

/// `S_negative-first` for n-dimensional meshes: the negative-going and
/// positive-going corrections are each fully adaptive among themselves
/// but may not interleave, so the count is the product of their
/// multinomials. In 2D this reduces to Section 3.4's case split (full
/// multinomial when both offsets have the same sign, one path otherwise).
pub fn negative_first_shortest_paths(topo: &dyn Topology, src: NodeId, dst: NodeId) -> u128 {
    let (neg, pos) = signed_offsets(topo, src, dst);
    multinomial(&neg) * multinomial(&pos)
}

/// `S_abonf` for n-dimensional meshes: phase one is the negative
/// corrections of all but the last dimension, phase two everything else.
pub fn abonf_shortest_paths(topo: &dyn Topology, src: NodeId, dst: NodeId) -> u128 {
    let (mut neg, mut pos) = signed_offsets(topo, src, dst);
    let n = topo.num_dims();
    // The last dimension's negative correction belongs to phase two.
    pos[n - 1] += neg[n - 1];
    neg[n - 1] = 0;
    multinomial(&neg) * multinomial(&pos)
}

/// `S_abopl` for n-dimensional meshes: phase one is the negative
/// corrections plus the positive correction of dimension 0, phase two the
/// remaining positive corrections.
pub fn abopl_shortest_paths(topo: &dyn Topology, src: NodeId, dst: NodeId) -> u128 {
    let (mut neg, mut pos) = signed_offsets(topo, src, dst);
    // Dimension 0's positive correction belongs to phase one.
    neg[0] += pos[0];
    pos[0] = 0;
    multinomial(&neg) * multinomial(&pos)
}

/// `S_p-cube` (Section 5): `h1! * h0!`, where `h1` counts the 1->0
/// corrections and `h0` the 0->1 corrections between the addresses.
///
/// # Example
///
/// ```
/// use turnroute_core::adaptiveness::pcube_shortest_paths;
///
/// // The Section 5 worked example: h1 = h0 = 3, so 3! * 3! = 36 paths.
/// assert_eq!(pcube_shortest_paths(0b1011010100, 0b0010111001), 36);
/// ```
pub fn pcube_shortest_paths(src: usize, dst: usize) -> u128 {
    let h1 = (src & !dst).count_ones() as u64;
    let h0 = (!src & dst).count_ones() as u64;
    factorial(h1) * factorial(h0)
}

/// `S_f` in a hypercube: `h!` over the Hamming distance `h`.
pub fn hypercube_fully_adaptive_shortest_paths(src: usize, dst: usize) -> u128 {
    factorial((src ^ dst).count_ones() as u64)
}

/// `n!` as a `u128`.
///
/// # Panics
///
/// Panics for `n > 33` (overflow).
pub fn factorial(n: u64) -> u128 {
    (1..=n as u128).product()
}

/// The mean of `S_p / S_f` over all ordered pairs of distinct nodes — the
/// paper's summary measure of partial adaptiveness. `ratio` receives
/// `(src, dst)` and returns `(S_p, S_f)`.
pub fn average_adaptiveness_ratio(
    topo: &dyn Topology,
    ratio: impl Fn(NodeId, NodeId) -> (u128, u128),
) -> f64 {
    let mut total = 0.0;
    let mut pairs = 0u64;
    for s in topo.nodes() {
        for d in topo.nodes() {
            if s == d {
                continue;
            }
            let (sp, sf) = ratio(s, d);
            total += sp as f64 / sf as f64;
            pairs += 1;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_topology::{Hypercube, Mesh};

    #[test]
    fn multinomial_basics() {
        assert_eq!(multinomial(&[]), 1);
        assert_eq!(multinomial(&[0, 0]), 1);
        assert_eq!(multinomial(&[3, 2]), 10);
        assert_eq!(multinomial(&[15, 15]), 155117520); // 30!/(15!)^2
        assert_eq!(multinomial(&[1; 6]), 720);
    }

    #[test]
    fn factorial_values() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(3), 6);
        assert_eq!(factorial(10), 3628800);
    }

    #[test]
    fn west_first_case_split() {
        let mesh = Mesh::new_2d(8, 8);
        let s = mesh.node_at(&[4, 4].into());
        // Destination east: fully adaptive.
        let east = mesh.node_at(&[6, 6].into());
        assert_eq!(west_first_shortest_paths(&mesh, s, east), 6);
        // Destination west: a single path.
        let west = mesh.node_at(&[2, 6].into());
        assert_eq!(west_first_shortest_paths(&mesh, s, west), 1);
    }

    #[test]
    fn north_last_case_split() {
        let mesh = Mesh::new_2d(8, 8);
        let s = mesh.node_at(&[4, 4].into());
        let south = mesh.node_at(&[6, 2].into());
        assert_eq!(north_last_shortest_paths(&mesh, s, south), 6);
        let north = mesh.node_at(&[6, 6].into());
        assert_eq!(north_last_shortest_paths(&mesh, s, north), 1);
    }

    #[test]
    fn negative_first_case_split_2d() {
        let mesh = Mesh::new_2d(8, 8);
        let s = mesh.node_at(&[4, 4].into());
        // Both offsets negative: fully adaptive.
        assert_eq!(
            negative_first_shortest_paths(&mesh, s, mesh.node_at(&[2, 2].into())),
            6
        );
        // Both positive: fully adaptive.
        assert_eq!(
            negative_first_shortest_paths(&mesh, s, mesh.node_at(&[6, 6].into())),
            6
        );
        // Mixed: exactly one shortest path.
        assert_eq!(
            negative_first_shortest_paths(&mesh, s, mesh.node_at(&[2, 6].into())),
            1
        );
    }

    #[test]
    fn negative_first_product_form_3d() {
        let mesh = Mesh::new(vec![5, 5, 5]);
        let s = mesh.node_at(&[4, 0, 4].into());
        let d = mesh.node_at(&[1, 2, 2].into());
        // Negative offsets (3, 0, 2), positive (0, 2, 0):
        // 5!/(3!2!) * 1 = 10.
        assert_eq!(negative_first_shortest_paths(&mesh, s, d), 10);
    }

    #[test]
    fn pcube_matches_section5_example() {
        assert_eq!(pcube_shortest_paths(0b1011010100, 0b0010111001), 36);
        assert_eq!(
            hypercube_fully_adaptive_shortest_paths(0b1011010100, 0b0010111001),
            720
        );
    }

    #[test]
    fn average_ratio_exceeds_half_in_2d() {
        // Section 3.4: averaged across all pairs, S_p / S_f > 1/2.
        let mesh = Mesh::new_2d(8, 8);
        for f in [
            west_first_shortest_paths,
            north_last_shortest_paths,
            negative_first_shortest_paths,
        ] as [fn(&dyn Topology, NodeId, NodeId) -> u128; 3]
        {
            let avg = average_adaptiveness_ratio(&mesh, |s, d| {
                (f(&mesh, s, d), fully_adaptive_shortest_paths(&mesh, s, d))
            });
            assert!(avg > 0.5, "average ratio {avg} should exceed 1/2");
        }
    }

    #[test]
    fn average_ratio_exceeds_bound_in_higher_dims() {
        // Section 4.1: averaged across all pairs, S_p/S_f > 1/2^(n-1).
        let mesh = Mesh::new(vec![4, 4, 4]);
        let avg = average_adaptiveness_ratio(&mesh, |s, d| {
            (
                negative_first_shortest_paths(&mesh, s, d),
                fully_adaptive_shortest_paths(&mesh, s, d),
            )
        });
        assert!(avg > 0.25, "3D bound is 1/4, got {avg}");

        let cube = Hypercube::new(6);
        let avg = average_adaptiveness_ratio(&cube, |s, d| {
            (
                pcube_shortest_paths(s.index(), d.index()),
                hypercube_fully_adaptive_shortest_paths(s.index(), d.index()),
            )
        });
        assert!(avg > 1.0 / 32.0, "6-cube bound is 1/32, got {avg}");
    }

    #[test]
    fn pcube_is_negative_first_on_the_hypercube() {
        let cube = Hypercube::new(5);
        for s in cube.nodes() {
            for d in cube.nodes() {
                assert_eq!(
                    pcube_shortest_paths(s.index(), d.index()),
                    negative_first_shortest_paths(&cube, s, d)
                );
            }
        }
    }
}
