//! Channel dependency graphs and the Dally–Seitz acyclicity check.

use crate::{Turn, TurnSet};
use turnroute_topology::{Channel, ChannelId, Topology};

/// The channel dependency graph (CDG) of a routing relation on a
/// topology.
///
/// Vertices are the topology's channels; there is an edge `c1 -> c2` when
/// a packet holding `c1` may request `c2` next. Dally and Seitz showed a
/// wormhole routing algorithm is deadlock free iff this graph is acyclic
/// (equivalently, iff the channels can be numbered so every route follows
/// strictly decreasing numbers).
///
/// # Example
///
/// ```
/// use turnroute_core::{ChannelDependencyGraph, TurnSet};
/// use turnroute_topology::Mesh;
///
/// let mesh = Mesh::new_2d(4, 4);
/// let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &TurnSet::west_first());
/// assert!(cdg.find_cycle().is_none()); // Theorem 2: deadlock free
///
/// let bad = ChannelDependencyGraph::from_turn_set(&mesh, &TurnSet::fully_adaptive(2));
/// assert!(bad.find_cycle().is_some()); // unrestricted turns deadlock
/// ```
#[derive(Debug, Clone)]
pub struct ChannelDependencyGraph {
    /// `succ[c.index()]` lists the channels a holder of `c` may request.
    succ: Vec<Vec<ChannelId>>,
}

impl ChannelDependencyGraph {
    /// Builds the CDG of turn-set routing: `c1 -> c2` iff `c2` leaves the
    /// router `c1` enters and the turn from `c1`'s direction to `c2`'s is
    /// allowed.
    ///
    /// This models *nonminimal* routing with the given turns — the most
    /// permissive relation — so acyclicity here implies deadlock freedom
    /// for every restriction (e.g. the minimal variants the paper
    /// simulates).
    pub fn from_turn_set(topo: &dyn Topology, turns: &TurnSet) -> Self {
        Self::from_relation(topo, |c1, c2| turns.allows(Turn::new(c1.dir, c2.dir)))
    }

    /// Builds a dependency graph directly from successor lists. Index
    /// `i` of `successors` lists the channels a holder of channel `i`
    /// may request.
    ///
    /// This is the escape hatch for resource graphs beyond a plain
    /// topology's channels — e.g. *virtual* channels, where several
    /// buffered lanes share each physical link (the `turnroute-vc`
    /// crate builds its graphs this way).
    ///
    /// # Panics
    ///
    /// Panics if any successor index is out of range.
    pub fn from_successors(successors: Vec<Vec<ChannelId>>) -> Self {
        let n = successors.len();
        for succs in &successors {
            for s in succs {
                assert!(s.index() < n, "successor index out of range");
            }
        }
        ChannelDependencyGraph { succ: successors }
    }

    /// Builds the CDG of an arbitrary relation: for each pair of channels
    /// with `c1.dst == c2.src`, `may_follow(c1, c2)` decides whether the
    /// dependency exists.
    ///
    /// Use this for rules that are not pure turn sets, such as the torus
    /// extension that admits wraparound channels only as a packet's first
    /// hop (no network channel may then depend *into* a wraparound
    /// channel).
    pub fn from_relation(
        topo: &dyn Topology,
        may_follow: impl Fn(&Channel, &Channel) -> bool,
    ) -> Self {
        let channels = topo.channels();
        let mut succ = vec![Vec::new(); channels.len()];
        // Group candidate successors by source router for O(C * degree).
        let mut leaving: Vec<Vec<ChannelId>> = vec![Vec::new(); topo.num_nodes()];
        for (i, ch) in channels.iter().enumerate() {
            leaving[ch.src.index()].push(ChannelId::new(i));
        }
        for (i, c1) in channels.iter().enumerate() {
            for &next in &leaving[c1.dst.index()] {
                let c2 = &channels[next.index()];
                if may_follow(c1, c2) {
                    succ[i].push(next);
                }
            }
        }
        ChannelDependencyGraph { succ }
    }

    /// Number of channels (vertices).
    pub fn num_channels(&self) -> usize {
        self.succ.len()
    }

    /// Number of dependencies (edges).
    pub fn num_dependencies(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// The channels a holder of `c` may request.
    pub fn successors(&self, c: ChannelId) -> &[ChannelId] {
        &self.succ[c.index()]
    }

    /// `true` if the graph is acyclic, i.e. the routing relation is
    /// deadlock free.
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// Finds a dependency cycle, if any, returned as a channel sequence
    /// `c0 -> c1 -> ... -> c0` (the first channel is not repeated).
    ///
    /// A returned cycle is a concrete circular-wait witness: packets
    /// holding these channels and each requesting the next would deadlock.
    pub fn find_cycle(&self) -> Option<Vec<ChannelId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.succ.len();
        let mut color = vec![Color::White; n];
        let mut parent_edge: Vec<usize> = vec![usize::MAX; n];

        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            // Iterative DFS: stack of (node, next successor index).
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = Color::Gray;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                if *next < self.succ[node].len() {
                    let succ = self.succ[node][*next].index();
                    *next += 1;
                    match color[succ] {
                        Color::White => {
                            color[succ] = Color::Gray;
                            parent_edge[succ] = node;
                            stack.push((succ, 0));
                        }
                        Color::Gray => {
                            // Back edge: unwind the cycle succ -> ... -> node.
                            let mut cycle = vec![ChannelId::new(node)];
                            let mut cur = node;
                            while cur != succ {
                                cur = parent_edge[cur];
                                cycle.push(ChannelId::new(cur));
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Color::Black => {}
                    }
                } else {
                    color[node] = Color::Black;
                    stack.pop();
                }
            }
        }
        None
    }

    /// A topological numbering of the channels (highest number first in
    /// route order), or `None` if the graph has a cycle.
    ///
    /// This is the constructive side of the Dally–Seitz argument: any
    /// route following the relation traverses strictly decreasing
    /// numbers.
    pub fn topological_numbering(&self) -> Option<Vec<usize>> {
        let n = self.succ.len();
        let mut indegree = vec![0usize; n];
        for succs in &self.succ {
            for s in succs {
                indegree[s.index()] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut number = vec![0usize; n];
        let mut next_number = n;
        let mut processed = 0;
        while let Some(node) = queue.pop() {
            next_number -= 1;
            number[node] = next_number;
            processed += 1;
            for s in &self.succ[node] {
                indegree[s.index()] -= 1;
                if indegree[s.index()] == 0 {
                    queue.push(s.index());
                }
            }
        }
        (processed == n).then_some(number)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_topology::{Hypercube, Mesh, Torus};

    #[test]
    fn all_named_2d_turn_sets_are_deadlock_free() {
        let mesh = Mesh::new_2d(6, 6);
        for set in [
            TurnSet::dimension_order(2),
            TurnSet::west_first(),
            TurnSet::north_last(),
            TurnSet::negative_first(2),
        ] {
            let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &set);
            assert!(cdg.is_acyclic(), "{set} should be deadlock free");
        }
    }

    #[test]
    fn fully_adaptive_2d_deadlocks() {
        let mesh = Mesh::new_2d(3, 3);
        let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &TurnSet::fully_adaptive(2));
        let cycle = cdg.find_cycle().expect("must contain a cycle");
        assert!(cycle.len() >= 4);
        // Validate the witness: each channel's successor set contains the
        // next channel in the cycle.
        for k in 0..cycle.len() {
            let next = cycle[(k + 1) % cycle.len()];
            assert!(cdg.successors(cycle[k]).contains(&next));
        }
    }

    #[test]
    fn deadlocky_six_turns_has_cycle_despite_breaking_abstract_cycles() {
        // Fig. 4's point: one prohibited turn per abstract cycle is not
        // sufficient.
        let set = TurnSet::deadlocky_six_turns();
        assert!(set.breaks_all_abstract_cycles());
        let mesh = Mesh::new_2d(3, 3);
        let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &set);
        assert!(!cdg.is_acyclic());
    }

    #[test]
    fn exactly_12_of_16_prohibition_choices_are_deadlock_free() {
        // Section 3: "Of the 16 different ways to prohibit these two
        // turns, 12 prevent deadlock".
        let mesh = Mesh::new_2d(4, 4);
        let ok = TurnSet::one_turn_per_cycle_prohibitions(2)
            .iter()
            .filter(|set| ChannelDependencyGraph::from_turn_set(&mesh, set).is_acyclic())
            .count();
        assert_eq!(ok, 12);
    }

    #[test]
    fn n_dimensional_turn_sets_are_deadlock_free() {
        let mesh = Mesh::new(vec![3, 3, 3]);
        for set in [
            TurnSet::dimension_order(3),
            TurnSet::negative_first(3),
            TurnSet::abonf(3),
            TurnSet::abopl(3),
        ] {
            let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &set);
            assert!(cdg.is_acyclic(), "{set} should be deadlock free");
        }
    }

    #[test]
    fn hypercube_turn_sets_are_deadlock_free() {
        let cube = Hypercube::new(4);
        for set in [
            TurnSet::dimension_order(4), // e-cube
            TurnSet::negative_first(4),  // p-cube's turn structure
            TurnSet::abonf(4),
            TurnSet::abopl(4),
        ] {
            let cdg = ChannelDependencyGraph::from_turn_set(&cube, &set);
            assert!(cdg.is_acyclic(), "{set} should be deadlock free");
        }
    }

    #[test]
    fn torus_negative_first_on_mesh_channels_only_is_acyclic() {
        // Wraparound channels admitted only as first hops: no dependency
        // may enter a wraparound channel.
        let torus = Torus::new(4, 2);
        let set = TurnSet::negative_first(2);
        let cdg = ChannelDependencyGraph::from_relation(&torus, |c1, c2| {
            !c2.wraparound && set.allows(Turn::new(c1.dir, c2.dir))
        });
        assert!(cdg.is_acyclic());
    }

    #[test]
    fn plain_turn_set_on_torus_deadlocks_around_the_ring() {
        // Without special wraparound treatment even negative-first
        // deadlocks on a torus: rings need no turns to cycle.
        let torus = Torus::new(4, 2);
        let cdg = ChannelDependencyGraph::from_turn_set(&torus, &TurnSet::negative_first(2));
        assert!(!cdg.is_acyclic());
    }

    #[test]
    fn topological_numbering_decreases_along_dependencies() {
        let mesh = Mesh::new_2d(5, 5);
        let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &TurnSet::west_first());
        let numbers = cdg.topological_numbering().expect("acyclic");
        for c in 0..cdg.num_channels() {
            for s in cdg.successors(ChannelId::new(c)) {
                assert!(
                    numbers[s.index()] < numbers[c],
                    "numbering must decrease along dependencies"
                );
            }
        }
    }

    #[test]
    fn cyclic_graph_has_no_numbering() {
        let mesh = Mesh::new_2d(3, 3);
        let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &TurnSet::fully_adaptive(2));
        assert!(cdg.topological_numbering().is_none());
    }

    #[test]
    fn edge_counts_are_plausible() {
        let mesh = Mesh::new_2d(4, 4);
        let all = ChannelDependencyGraph::from_turn_set(&mesh, &TurnSet::fully_adaptive(2));
        let xy = ChannelDependencyGraph::from_turn_set(&mesh, &TurnSet::dimension_order(2));
        assert_eq!(all.num_channels(), mesh.num_channels());
        assert!(xy.num_dependencies() < all.num_dependencies());
        assert!(xy.num_dependencies() > 0);
    }

    #[test]
    fn empty_relation_is_trivially_acyclic() {
        let cdg = ChannelDependencyGraph::from_successors(Vec::new());
        assert_eq!(cdg.num_channels(), 0);
        assert_eq!(cdg.num_dependencies(), 0);
        assert!(cdg.is_acyclic());
        assert_eq!(cdg.find_cycle(), None);
        assert_eq!(cdg.topological_numbering(), Some(Vec::new()));
    }

    #[test]
    fn single_channel_without_self_dependence_is_acyclic() {
        let cdg = ChannelDependencyGraph::from_successors(vec![Vec::new()]);
        assert!(cdg.is_acyclic());
        assert_eq!(cdg.topological_numbering(), Some(vec![0]));
        // A self-dependence is the smallest possible cycle.
        let selfie = ChannelDependencyGraph::from_successors(vec![vec![ChannelId::new(0)]]);
        assert!(!selfie.is_acyclic());
        assert_eq!(selfie.find_cycle(), Some(vec![ChannelId::new(0)]));
        assert_eq!(selfie.topological_numbering(), None);
    }

    #[test]
    fn find_cycle_reports_a_two_cycle_exactly() {
        // c0 -> c1 -> c0: the cycle must come back closed and minimal.
        let cdg = ChannelDependencyGraph::from_successors(vec![
            vec![ChannelId::new(1)],
            vec![ChannelId::new(0)],
        ]);
        assert!(!cdg.is_acyclic());
        let cycle = cdg.find_cycle().expect("a 2-cycle exists");
        assert_eq!(cycle.len(), 2);
        // Every reported channel depends on the next, cyclically.
        for (i, &c) in cycle.iter().enumerate() {
            let next = cycle[(i + 1) % cycle.len()];
            assert!(
                cdg.successors(c).contains(&next),
                "{c} must depend on {next}"
            );
        }
    }

    #[test]
    fn numbering_is_stable_on_disconnected_dependence_graphs() {
        // Two independent chains (c0 -> c1, c2 -> c3) and an isolated
        // channel: the numbering must cover all components, decrease
        // along every dependency, and be deterministic across calls.
        let successors = vec![
            vec![ChannelId::new(1)],
            Vec::new(),
            vec![ChannelId::new(3)],
            Vec::new(),
            Vec::new(),
        ];
        let cdg = ChannelDependencyGraph::from_successors(successors);
        assert!(cdg.is_acyclic());
        let numbers = cdg.topological_numbering().expect("acyclic");
        assert_eq!(numbers.len(), 5);
        let mut sorted = numbers.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "numbers must be distinct: {numbers:?}");
        assert!(numbers[1] < numbers[0]);
        assert!(numbers[3] < numbers[2]);
        let again = cdg.topological_numbering().expect("acyclic");
        assert_eq!(numbers, again, "numbering must be deterministic");
    }
}
