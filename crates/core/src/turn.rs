//! Turns and abstract turn cycles (steps 2 and 3 of the turn model).

use std::fmt;
use turnroute_topology::Direction;

/// A change of travel direction at a router: arriving in `from`, leaving
/// in `to`.
///
/// Step 2 of the turn model identifies the possible turns between the
/// direction classes of a topology. In an n-dimensional mesh there are
/// `2n` directions and `4n(n-1)` 90-degree turns.
///
/// # Example
///
/// ```
/// use turnroute_core::{Turn, TurnKind};
/// use turnroute_topology::Direction;
///
/// let turn = Turn::new(Direction::NORTH, Direction::WEST);
/// assert_eq!(turn.kind(), TurnKind::Ninety);
/// assert_eq!(turn.plane(), Some((0, 1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Turn {
    from: Direction,
    to: Direction,
}

/// Classification of a [`Turn`] by the angle between its directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TurnKind {
    /// A turn into a different dimension.
    Ninety,
    /// A reversal within one dimension.
    OneEighty,
    /// Continuing in the same direction. Only a genuine *turn* when a
    /// physical direction is split into several virtual directions
    /// (paper step 2); without extra channels it is plain forward travel.
    Zero,
}

/// The rotation sense of a 90-degree turn within its plane.
///
/// Using the mathematical convention in plane `(i, j)` with `i < j`:
/// counterclockwise follows `+i -> +j -> -i -> -j -> +i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rotation {
    /// With the cycle `+i -> +j -> -i -> -j`.
    CounterClockwise,
    /// Against it.
    Clockwise,
}

impl Turn {
    /// Creates a turn from one direction to another.
    pub fn new(from: Direction, to: Direction) -> Self {
        Turn { from, to }
    }

    /// The arrival direction.
    pub fn from_dir(self) -> Direction {
        self.from
    }

    /// The departure direction.
    pub fn to_dir(self) -> Direction {
        self.to
    }

    /// The angle class of this turn.
    pub fn kind(self) -> TurnKind {
        if self.from.dim() != self.to.dim() {
            TurnKind::Ninety
        } else if self.from.sign() != self.to.sign() {
            TurnKind::OneEighty
        } else {
            TurnKind::Zero
        }
    }

    /// The plane `(lower dim, higher dim)` of a 90-degree turn, or `None`
    /// for 0- and 180-degree turns.
    pub fn plane(self) -> Option<(usize, usize)> {
        match self.kind() {
            TurnKind::Ninety => {
                let (a, b) = (self.from.dim(), self.to.dim());
                Some((a.min(b), a.max(b)))
            }
            _ => None,
        }
    }

    /// The rotation sense of a 90-degree turn, or `None` otherwise.
    pub fn rotation(self) -> Option<Rotation> {
        let (i, _j) = self.plane()?;
        // Positions around the CCW cycle +i, +j, -i, -j.
        let pos = |d: Direction| -> u8 {
            match (d.dim() == i, d.is_positive()) {
                (true, true) => 0,
                (false, true) => 1,
                (true, false) => 2,
                (false, false) => 3,
            }
        };
        match (pos(self.to) + 4 - pos(self.from)) % 4 {
            1 => Some(Rotation::CounterClockwise),
            3 => Some(Rotation::Clockwise),
            _ => unreachable!("90-degree turns differ by an odd step"),
        }
    }

    /// All 90-degree turns of an n-dimensional topology, `4n(n-1)` of
    /// them, in a deterministic order.
    pub fn all_ninety(num_dims: usize) -> impl Iterator<Item = Turn> {
        Direction::all(num_dims).flat_map(move |from| {
            Direction::all(num_dims)
                .filter(move |to| to.dim() != from.dim())
                .map(move |to| Turn::new(from, to))
        })
    }
}

impl fmt::Display for Turn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

/// One abstract cycle of four 90-degree turns in a plane (step 3 of the
/// turn model).
///
/// Every plane `(i, j)` of an n-dimensional mesh contributes two cycles,
/// one per [`Rotation`]; an n-dimensional mesh therefore has `n(n-1)`
/// abstract cycles in total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AbstractCycle {
    /// The plane `(lower dim, higher dim)` the cycle lies in.
    pub plane: (usize, usize),
    /// The rotation sense shared by the cycle's four turns.
    pub rotation: Rotation,
    /// The four turns, in cycle order.
    pub turns: [Turn; 4],
}

impl AbstractCycle {
    /// The cycle with the given sense in plane `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics unless `i < j`.
    pub fn new(i: usize, j: usize, rotation: Rotation) -> Self {
        assert!(i < j, "plane must be given as (lower, higher)");
        let ring = match rotation {
            Rotation::CounterClockwise => [
                Direction::plus(i),
                Direction::plus(j),
                Direction::minus(i),
                Direction::minus(j),
            ],
            Rotation::Clockwise => [
                Direction::plus(j),
                Direction::plus(i),
                Direction::minus(j),
                Direction::minus(i),
            ],
        };
        let turns = [
            Turn::new(ring[0], ring[1]),
            Turn::new(ring[1], ring[2]),
            Turn::new(ring[2], ring[3]),
            Turn::new(ring[3], ring[0]),
        ];
        AbstractCycle {
            plane: (i, j),
            rotation,
            turns,
        }
    }

    /// `true` if `turn` is one of this cycle's four turns.
    pub fn contains(&self, turn: Turn) -> bool {
        self.turns.contains(&turn)
    }
}

/// All `n(n-1)` abstract cycles of an n-dimensional mesh (step 3 of the
/// turn model): two per plane.
///
/// # Example
///
/// ```
/// use turnroute_core::abstract_cycles;
///
/// assert_eq!(abstract_cycles(2).len(), 2);  // the two cycles of Fig. 2
/// assert_eq!(abstract_cycles(4).len(), 12); // n(n-1) = 12
/// ```
pub fn abstract_cycles(num_dims: usize) -> Vec<AbstractCycle> {
    let mut cycles = Vec::new();
    for i in 0..num_dims {
        for j in i + 1..num_dims {
            cycles.push(AbstractCycle::new(i, j, Rotation::CounterClockwise));
            cycles.push(AbstractCycle::new(i, j, Rotation::Clockwise));
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        assert_eq!(
            Turn::new(Direction::NORTH, Direction::WEST).kind(),
            TurnKind::Ninety
        );
        assert_eq!(
            Turn::new(Direction::NORTH, Direction::SOUTH).kind(),
            TurnKind::OneEighty
        );
        assert_eq!(
            Turn::new(Direction::NORTH, Direction::NORTH).kind(),
            TurnKind::Zero
        );
    }

    #[test]
    fn ninety_turn_count_is_4n_n_minus_1() {
        for n in 1..=5 {
            assert_eq!(Turn::all_ninety(n).count(), 4 * n * (n - 1));
        }
    }

    #[test]
    fn plane_of_non_ninety_is_none() {
        assert_eq!(Turn::new(Direction::EAST, Direction::WEST).plane(), None);
        assert_eq!(Turn::new(Direction::EAST, Direction::EAST).plane(), None);
        assert_eq!(
            Turn::new(Direction::EAST, Direction::NORTH).plane(),
            Some((0, 1))
        );
    }

    #[test]
    fn rotation_sense_2d() {
        // East (+x) to north (+y) follows +i -> +j: counterclockwise.
        let t = Turn::new(Direction::EAST, Direction::NORTH);
        assert_eq!(t.rotation(), Some(Rotation::CounterClockwise));
        // North to east is the reverse: a clockwise (right) turn.
        let t = Turn::new(Direction::NORTH, Direction::EAST);
        assert_eq!(t.rotation(), Some(Rotation::Clockwise));
        // West (-x) to south (-y) follows -i -> -j: counterclockwise.
        let t = Turn::new(Direction::WEST, Direction::SOUTH);
        assert_eq!(t.rotation(), Some(Rotation::CounterClockwise));
    }

    #[test]
    fn each_ninety_turn_is_in_exactly_one_cycle() {
        for n in 2..=4 {
            let cycles = abstract_cycles(n);
            for turn in Turn::all_ninety(n) {
                let count = cycles.iter().filter(|c| c.contains(turn)).count();
                assert_eq!(count, 1, "turn {turn} in {count} cycles");
            }
        }
    }

    #[test]
    fn cycles_have_consistent_rotation() {
        for cycle in abstract_cycles(4) {
            for turn in cycle.turns {
                assert_eq!(turn.rotation(), Some(cycle.rotation));
                assert_eq!(turn.plane(), Some(cycle.plane));
            }
        }
    }

    #[test]
    fn cycle_turns_chain() {
        // Each turn's departure direction is the next turn's arrival.
        for cycle in abstract_cycles(3) {
            for k in 0..4 {
                assert_eq!(cycle.turns[k].to_dir(), cycle.turns[(k + 1) % 4].from_dir());
            }
        }
    }

    #[test]
    fn n_dimensional_cycle_count() {
        assert_eq!(abstract_cycles(2).len(), 2);
        assert_eq!(abstract_cycles(3).len(), 6);
        assert_eq!(abstract_cycles(8).len(), 56);
    }

    #[test]
    fn turn_display() {
        let t = Turn::new(Direction::NORTH, Direction::WEST);
        assert_eq!(t.to_string(), "+d1->-d0");
    }
}
