//! Two-phase partially adaptive algorithms: west-first, north-last,
//! negative-first, and their n-dimensional analogs ABONF and ABOPL.

use crate::algorithms::RoutingAlgorithm;
use crate::TurnSet;
use turnroute_topology::{DirSet, Direction, NodeId, Topology};

/// A two-phase routing algorithm: route first adaptively among the
/// *phase-one* directions, then adaptively among the remaining
/// (*phase-two*) directions, never returning to phase one.
///
/// All of Section 3's and Section 4.1's algorithms are instances (see
/// [`WestFirst`], [`NorthLast`], [`NegativeFirst`], [`Abonf`],
/// [`Abopl`]); this type also lets you build your own split, e.g. to
/// explore other of the "12 of 16" valid prohibition choices.
///
/// In **minimal** mode the permitted set is: the productive phase-one
/// directions if any exist, otherwise the productive phase-two
/// directions.
///
/// In **nonminimal** mode the permitted set contains every direction
/// reachable by an allowed turn from the arrival direction *and* from
/// which the destination is still reachable (once a phase-two hop is
/// taken, every remaining offset must be correctable with phase-two
/// directions). Nonminimal routes terminate because the algorithm's turn
/// set is acyclic: any legal walk follows strictly monotone channel
/// numbers and cannot revisit a channel.
///
/// # Example
///
/// ```
/// use turnroute_core::{RoutingAlgorithm, TwoPhase};
/// use turnroute_topology::{DirSet, Direction, Mesh, Topology};
///
/// // Negative-first, built by hand.
/// let phase1: DirSet = [Direction::WEST, Direction::SOUTH].into_iter().collect();
/// let nf = TwoPhase::new("negative-first", 2, phase1, true);
/// let mesh = Mesh::new_2d(8, 8);
/// let from = mesh.node_at(&[4, 4].into());
/// let to = mesh.node_at(&[2, 2].into());
/// // Both negative moves are on offer: adaptive.
/// assert_eq!(nf.route(&mesh, from, to, None).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TwoPhase {
    name: String,
    num_dims: usize,
    phase1: DirSet,
    phase2: DirSet,
    minimal: bool,
}

impl TwoPhase {
    /// Creates a two-phase algorithm over `num_dims` dimensions whose
    /// first phase uses `phase1`; phase two is the complement.
    ///
    /// # Panics
    ///
    /// Panics if `phase1` contains directions outside `num_dims`
    /// dimensions.
    pub fn new(name: &str, num_dims: usize, phase1: DirSet, minimal: bool) -> Self {
        let all = DirSet::all(num_dims);
        assert!(
            phase1.difference(all).is_empty(),
            "phase-one directions outside the topology's dimensions"
        );
        TwoPhase {
            name: name.to_owned(),
            num_dims,
            phase1,
            phase2: all.difference(phase1),
            minimal,
        }
    }

    /// The phase-one directions.
    pub fn phase1(&self) -> DirSet {
        self.phase1
    }

    /// The phase-two directions.
    pub fn phase2(&self) -> DirSet {
        self.phase2
    }

    /// The turn set this algorithm routes within: all turns except those
    /// from a phase-two direction back to a phase-one direction.
    pub fn turn_set(&self) -> TurnSet {
        TurnSet::from_phases(self.num_dims, &[self.phase1, self.phase2])
    }

    /// The directions an allowed turn can reach from `arrived`: any
    /// direction at the source; within phase one, everything except a
    /// reversal back into phase one; within phase two, the phase-two
    /// directions except the reversal.
    fn legal_from(&self, arrived: Option<Direction>) -> DirSet {
        match arrived {
            None => DirSet::all(self.num_dims),
            Some(from) if self.phase1.contains(from) => {
                let mut set = DirSet::all(self.num_dims);
                if self.phase1.contains(from.opposite()) {
                    set.remove(from.opposite());
                }
                set
            }
            Some(from) => {
                let mut set = self.phase2;
                set.remove(from.opposite());
                set
            }
        }
    }

    /// `true` if, standing at `node` having taken a phase-two hop, every
    /// remaining offset toward `dest` can be corrected with phase-two
    /// directions only.
    fn phase2_can_finish(&self, topo: &dyn Topology, node: NodeId, dest: NodeId) -> bool {
        topo.minimal_directions(node, dest)
            .difference(self.phase2)
            .is_empty()
    }
}

impl RoutingAlgorithm for TwoPhase {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        if current == dest {
            return DirSet::new();
        }
        let productive = topo.minimal_directions(current, dest);
        if self.minimal {
            let first = productive.intersection(self.phase1);
            return if first.is_empty() {
                productive.intersection(self.phase2)
            } else {
                first
            };
        }

        // Nonminimal: turn-legal moves that keep the destination
        // reachable. Legality follows the algorithm's turn set,
        // including the safe phase-advancing 180-degree reversals
        // (Fig. 8c); reachability needs two guards: a phase-two hop must
        // leave only phase-two corrections (sign feasibility), and a
        // misroute must leave a productive follow-up at the next router
        // (otherwise boundaries plus the 180-degree prohibition could
        // strand the packet facing its destination).
        self.legal_from(arrived)
            .iter()
            .filter(|&dir| {
                let Some(next) = topo.neighbor(current, dir) else {
                    return false;
                };
                if self.phase2.contains(dir) && !self.phase2_can_finish(topo, next, dest) {
                    return false;
                }
                if productive.contains(dir) {
                    return true;
                }
                // Misroute: a productive, legal, feasible continuation
                // must remain after taking it.
                let next_legal = self.legal_from(Some(dir));
                topo.minimal_directions(next, dest)
                    .intersection(next_legal)
                    .iter()
                    .any(|q| {
                        self.phase1.contains(q)
                            || topo
                                .neighbor(next, q)
                                .is_some_and(|n2| self.phase2_can_finish(topo, n2, dest))
                    })
            })
            .collect()
    }

    fn is_adaptive(&self) -> bool {
        // Adaptive unless each phase is a single direction and the split
        // is a strict ordering (dimension-order style splits are not
        // expressible as TwoPhase, so any multi-direction phase adapts).
        self.phase1.len() > 1 || self.phase2.len() > 1
    }

    fn is_minimal(&self) -> bool {
        self.minimal
    }
}

macro_rules! two_phase_wrapper {
    ($(#[$doc:meta])* $name:ident, $label:expr, |$n:ident| $phase1:expr, $dims:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name(TwoPhase);

        impl $name {
            /// The minimal variant (used in the paper's simulations).
            pub fn minimal() -> Self {
                Self::with_dims($dims, true)
            }

            /// The nonminimal variant (more adaptive and fault tolerant).
            pub fn nonminimal() -> Self {
                Self::with_dims($dims, false)
            }

            /// The variant for an `n`-dimensional topology.
            ///
            /// # Panics
            ///
            /// Panics if `num_dims` is 0 or exceeds 16.
            pub fn with_dims(num_dims: usize, minimal: bool) -> Self {
                let $n = num_dims;
                $name(TwoPhase::new($label, num_dims, $phase1, minimal))
            }

            /// The turn set this algorithm routes within.
            pub fn turn_set(&self) -> TurnSet {
                self.0.turn_set()
            }
        }

        impl RoutingAlgorithm for $name {
            fn name(&self) -> String {
                self.0.name()
            }

            fn route(
                &self,
                topo: &dyn Topology,
                current: NodeId,
                dest: NodeId,
                arrived: Option<Direction>,
            ) -> DirSet {
                self.0.route(topo, current, dest, arrived)
            }

            fn is_adaptive(&self) -> bool {
                self.0.is_adaptive()
            }

            fn is_minimal(&self) -> bool {
                self.0.is_minimal()
            }
        }
    };
}

two_phase_wrapper!(
    /// The west-first routing algorithm for 2D meshes (Section 3.1):
    /// route a packet first west, if necessary, and then adaptively
    /// south, east and north. Deadlock free by Theorem 2.
    WestFirst,
    "west-first",
    |_n| [Direction::WEST].into_iter().collect(),
    2
);

two_phase_wrapper!(
    /// The north-last routing algorithm for 2D meshes (Section 3.2):
    /// route a packet first adaptively west, south and east, and then
    /// north. Deadlock free by Theorem 3.
    NorthLast,
    "north-last",
    |_n| [Direction::WEST, Direction::SOUTH, Direction::EAST]
        .into_iter()
        .collect(),
    2
);

two_phase_wrapper!(
    /// The negative-first routing algorithm (Sections 3.3 and 4.1): route
    /// a packet first adaptively in the negative directions, then
    /// adaptively in the positive directions. Deadlock free by
    /// Theorems 4 and 5. Use `with_dims` for n-dimensional meshes.
    NegativeFirst,
    "negative-first",
    |n| (0..n).map(Direction::minus).collect(),
    2
);

two_phase_wrapper!(
    /// The all-but-one-negative-first algorithm for n-dimensional meshes
    /// (Section 4.1), the analog of west-first: route first adaptively in
    /// the negative directions of all but the last dimension, then
    /// adaptively in the other directions.
    Abonf,
    "abonf",
    |n| (0..n.saturating_sub(1)).map(Direction::minus).collect(),
    2
);

two_phase_wrapper!(
    /// The all-but-one-positive-last algorithm for n-dimensional meshes
    /// (Section 4.1), the analog of north-last: route first adaptively in
    /// the negative directions and the positive direction of dimension 0,
    /// then adaptively in the other directions.
    Abopl,
    "abopl",
    |n| {
        let mut set: DirSet = (0..n).map(Direction::minus).collect();
        set.insert(Direction::plus(0));
        set
    },
    2
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{check_routing_contract, walk};
    use turnroute_topology::Mesh;

    #[test]
    fn west_first_goes_west_first() {
        let mesh = Mesh::new_2d(8, 8);
        let wf = WestFirst::minimal();
        let from = mesh.node_at(&[5, 2].into());
        let to = mesh.node_at(&[1, 6].into());
        // While the destination is west, only west is permitted.
        let dirs = wf.route(&mesh, from, to, None);
        assert_eq!(dirs.len(), 1);
        assert!(dirs.contains(Direction::WEST));
        // Once aligned, the remaining directions are adaptive.
        let aligned = mesh.node_at(&[1, 2].into());
        let dirs = wf.route(&mesh, aligned, to, Some(Direction::WEST));
        assert!(dirs.contains(Direction::NORTH));
        assert_eq!(dirs.len(), 1); // only north is productive here
    }

    #[test]
    fn west_first_is_fully_adaptive_when_heading_east() {
        let mesh = Mesh::new_2d(8, 8);
        let wf = WestFirst::minimal();
        let from = mesh.node_at(&[1, 1].into());
        let to = mesh.node_at(&[5, 5].into());
        let dirs = wf.route(&mesh, from, to, None);
        assert_eq!(dirs.len(), 2);
        assert!(dirs.contains(Direction::EAST));
        assert!(dirs.contains(Direction::NORTH));
    }

    #[test]
    fn north_last_saves_north_for_last() {
        let mesh = Mesh::new_2d(8, 8);
        let nl = NorthLast::minimal();
        let from = mesh.node_at(&[3, 3].into());
        let to = mesh.node_at(&[5, 6].into());
        // East is productive and phase one: north must wait.
        let dirs = nl.route(&mesh, from, to, None);
        assert_eq!(dirs.iter().collect::<Vec<_>>(), vec![Direction::EAST]);
        // Aligned in x: north at last.
        let aligned = mesh.node_at(&[5, 3].into());
        let dirs = nl.route(&mesh, aligned, to, Some(Direction::EAST));
        assert_eq!(dirs.iter().collect::<Vec<_>>(), vec![Direction::NORTH]);
    }

    #[test]
    fn negative_first_orders_phases() {
        let mesh = Mesh::new_2d(8, 8);
        let nf = NegativeFirst::minimal();
        let from = mesh.node_at(&[4, 4].into());
        // Mixed offsets: negative part first, exactly one path shape.
        let to = mesh.node_at(&[2, 6].into());
        let dirs = nf.route(&mesh, from, to, None);
        assert_eq!(dirs.iter().collect::<Vec<_>>(), vec![Direction::WEST]);
        // Both negative: fully adaptive.
        let to = mesh.node_at(&[2, 2].into());
        assert_eq!(nf.route(&mesh, from, to, None).len(), 2);
        // Both positive: fully adaptive.
        let to = mesh.node_at(&[6, 6].into());
        assert_eq!(nf.route(&mesh, from, to, None).len(), 2);
    }

    #[test]
    fn minimal_walks_have_minimal_length() {
        let mesh = Mesh::new_2d(6, 6);
        for algo in [
            WestFirst::minimal().0,
            NorthLast::minimal().0,
            NegativeFirst::minimal().0,
        ] {
            for s in [0usize, 7, 35] {
                for d in [0usize, 5, 30, 35] {
                    let (s, d) = (NodeId::new(s), NodeId::new(d));
                    let path = walk(&algo, &mesh, s, d);
                    assert_eq!(path.len(), mesh.distance(s, d) + 1);
                }
            }
        }
    }

    #[test]
    fn contract_holds_on_2d_mesh() {
        let mesh = Mesh::new_2d(5, 5);
        for algo in [
            WestFirst::minimal().0,
            NorthLast::minimal().0,
            NegativeFirst::minimal().0,
        ] {
            check_routing_contract(&algo, &mesh);
        }
    }

    #[test]
    fn contract_holds_nonminimal_2d() {
        let mesh = Mesh::new_2d(4, 4);
        for algo in [
            WestFirst::nonminimal().0,
            NorthLast::nonminimal().0,
            NegativeFirst::nonminimal().0,
        ] {
            check_routing_contract(&algo, &mesh);
        }
    }

    #[test]
    fn contract_holds_on_3d_mesh() {
        let mesh = Mesh::new(vec![3, 3, 3]);
        for algo in [
            Abonf::with_dims(3, true).0,
            Abopl::with_dims(3, true).0,
            NegativeFirst::with_dims(3, true).0,
        ] {
            check_routing_contract(&algo, &mesh);
        }
    }

    #[test]
    fn abonf_2d_matches_west_first_and_abopl_matches_north_last() {
        let mesh = Mesh::new_2d(5, 5);
        let (wf, ab) = (WestFirst::minimal(), Abonf::with_dims(2, true));
        let (nl, ap) = (NorthLast::minimal(), Abopl::with_dims(2, true));
        for s in mesh.nodes() {
            for d in mesh.nodes() {
                assert_eq!(wf.route(&mesh, s, d, None), ab.route(&mesh, s, d, None));
                assert_eq!(nl.route(&mesh, s, d, None), ap.route(&mesh, s, d, None));
            }
        }
    }

    #[test]
    fn nonminimal_allows_misrouting_but_respects_turns() {
        let mesh = Mesh::new_2d(8, 8);
        let wf = WestFirst::nonminimal();
        let from = mesh.node_at(&[4, 4].into());
        let to = mesh.node_at(&[6, 4].into());
        // Traveling north (phase two), west is never on offer.
        let dirs = wf.route(&mesh, from, to, Some(Direction::NORTH));
        assert!(!dirs.contains(Direction::WEST));
        assert!(!dirs.contains(Direction::SOUTH)); // 180-degree
        assert!(dirs.contains(Direction::EAST));
        assert!(dirs.contains(Direction::NORTH)); // misroute allowed
    }

    #[test]
    fn nonminimal_filters_unreachable_phase2_moves() {
        let mesh = Mesh::new_2d(8, 8);
        let wf = WestFirst::nonminimal();
        let from = mesh.node_at(&[4, 4].into());
        let to = mesh.node_at(&[2, 4].into()); // west of here
                                               // At the source the packet may only go west: any other hop is a
                                               // phase-two hop after which west is unreachable.
        let dirs = wf.route(&mesh, from, to, None);
        assert_eq!(dirs.iter().collect::<Vec<_>>(), vec![Direction::WEST]);
    }

    #[test]
    fn turn_sets_match_named_constructors() {
        assert_eq!(WestFirst::minimal().turn_set(), TurnSet::west_first());
        assert_eq!(NorthLast::minimal().turn_set(), TurnSet::north_last());
        assert_eq!(
            NegativeFirst::with_dims(3, true).turn_set(),
            TurnSet::negative_first(3)
        );
        assert_eq!(Abonf::with_dims(4, true).turn_set(), TurnSet::abonf(4));
        assert_eq!(Abopl::with_dims(4, true).turn_set(), TurnSet::abopl(4));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(WestFirst::minimal().name(), "west-first");
        assert_eq!(NorthLast::minimal().name(), "north-last");
        assert_eq!(NegativeFirst::minimal().name(), "negative-first");
    }
}
