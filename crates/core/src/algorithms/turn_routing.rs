//! Routing directly from a turn set.

use crate::algorithms::RoutingAlgorithm;
use crate::TurnSet;
use turnroute_topology::{DirSet, Direction, NodeId, Topology};

/// Minimal routing constrained only by a [`TurnSet`]: the permitted
/// directions are the productive ones reachable by an allowed turn from
/// the arrival direction.
///
/// This is the raw step-4 artifact of the turn model: plug in any turn
/// set — including ones that do *not* prevent deadlock, like
/// [`TurnSet::deadlocky_six_turns`], or that do not even guarantee a path
/// exists — and observe the consequences. Unlike the named algorithms it
/// makes **no progress guarantee**: a poorly chosen turn set can strand a
/// packet ([`route`](RoutingAlgorithm::route) then returns an empty set
/// away from the destination). The simulator treats that as a routing
/// failure, and `examples/deadlock_demo.rs` uses exactly this type to
/// reproduce Fig. 4's deadlock.
///
/// # Example
///
/// ```
/// use turnroute_core::{TurnSet, TurnSetRouting, RoutingAlgorithm};
/// use turnroute_topology::{Mesh, Topology};
///
/// let mesh = Mesh::new_2d(8, 8);
/// let wf = TurnSetRouting::new(TurnSet::west_first());
/// let from = mesh.node_at(&[1, 1].into());
/// let to = mesh.node_at(&[5, 5].into());
/// assert_eq!(wf.route(&mesh, from, to, None).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TurnSetRouting {
    turns: TurnSet,
}

impl TurnSetRouting {
    /// Creates minimal turn-set routing.
    pub fn new(turns: TurnSet) -> Self {
        TurnSetRouting { turns }
    }

    /// The turn set being routed within.
    pub fn turn_set(&self) -> &TurnSet {
        &self.turns
    }
}

impl RoutingAlgorithm for TurnSetRouting {
    fn name(&self) -> String {
        format!("turn-set({})", self.turns)
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        let productive = topo.minimal_directions(current, dest);
        match arrived {
            None => productive,
            Some(from) => productive.intersection(self.turns.turnable(from)),
        }
    }

    fn is_adaptive(&self) -> bool {
        true
    }

    fn is_minimal(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::walk;
    use crate::Turn;
    use turnroute_topology::Mesh;

    #[test]
    fn west_first_turn_set_routes_like_west_first_along_allowed_turns() {
        let mesh = Mesh::new_2d(6, 6);
        let algo = TurnSetRouting::new(TurnSet::west_first());
        // Eastbound traffic is unrestricted and minimal.
        let s = mesh.node_at(&[0, 0].into());
        let d = mesh.node_at(&[5, 5].into());
        let path = walk(&algo, &mesh, s, d);
        assert_eq!(path.len(), mesh.distance(s, d) + 1);
    }

    #[test]
    fn bad_turn_set_can_strand_a_packet() {
        // With north->east prohibited, a packet that goes north first can
        // no longer correct east: the permitted set goes empty.
        let mesh = Mesh::new_2d(4, 4);
        let mut set = TurnSet::fully_adaptive(2);
        set.prohibit(Turn::new(Direction::NORTH, Direction::EAST));
        let algo = TurnSetRouting::new(set);
        let at = mesh.node_at(&[2, 2].into());
        let dest = mesh.node_at(&[3, 2].into()); // due east
        let dirs = algo.route(&mesh, at, dest, Some(Direction::NORTH));
        assert!(dirs.is_empty());
    }

    #[test]
    fn first_hop_is_unrestricted() {
        let mesh = Mesh::new_2d(4, 4);
        let algo = TurnSetRouting::new(TurnSet::dimension_order(2));
        let s = mesh.node_at(&[1, 1].into());
        let d = mesh.node_at(&[2, 2].into());
        let dirs = algo.route(&mesh, s, d, None);
        assert_eq!(dirs.len(), 2);
    }
}
