//! Nonadaptive dimension-order routing: `xy` in meshes, `e-cube` in
//! hypercubes.

use crate::algorithms::RoutingAlgorithm;
use turnroute_topology::{DirSet, Direction, NodeId, Topology};

/// Dimension-order routing: correct the offset in dimension 0 completely,
/// then dimension 1, and so on.
///
/// This is the `xy` routing algorithm for 2D meshes and the `e-cube`
/// algorithm for hypercubes — the nonadaptive, deadlock-free baselines
/// the paper compares against. Exactly one direction is ever permitted,
/// so routing is deterministic.
///
/// # Example
///
/// ```
/// use turnroute_core::{DimensionOrder, RoutingAlgorithm};
/// use turnroute_topology::{Direction, Mesh, Topology};
///
/// let mesh = Mesh::new_2d(8, 8);
/// let xy = DimensionOrder::new();
/// let from = mesh.node_at(&[2, 2].into());
/// let to = mesh.node_at(&[5, 7].into());
/// // x before y, always.
/// let dirs = xy.route(&mesh, from, to, None);
/// assert_eq!(dirs.iter().collect::<Vec<_>>(), vec![Direction::EAST]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DimensionOrder {
    _private: (),
}

impl DimensionOrder {
    /// Creates the dimension-order router.
    pub fn new() -> Self {
        DimensionOrder { _private: () }
    }

    /// The conventional name on the given topology: `"xy"` on 2D meshes,
    /// `"e-cube"` on hypercubes, `"dimension-order"` otherwise.
    pub fn conventional_name(topo: &dyn Topology) -> &'static str {
        if topo.num_dims() == 2 && !topo.wraps(0) {
            "xy"
        } else if (0..topo.num_dims()).all(|d| topo.radix(d) == 2) {
            "e-cube"
        } else {
            "dimension-order"
        }
    }
}

impl RoutingAlgorithm for DimensionOrder {
    fn name(&self) -> String {
        "dimension-order".to_owned()
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        _arrived: Option<Direction>,
    ) -> DirSet {
        // The productive direction in the lowest unresolved dimension.
        // `DirSet::first` iterates lowest dimension first, which is
        // exactly dimension order.
        let mut set = DirSet::new();
        if let Some(dir) = topo.minimal_directions(current, dest).first() {
            set.insert(dir);
        }
        set
    }

    fn is_adaptive(&self) -> bool {
        false
    }

    fn is_minimal(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{check_routing_contract, walk};
    use turnroute_topology::{Hypercube, Mesh};

    #[test]
    fn xy_resolves_x_before_y() {
        let mesh = Mesh::new_2d(8, 8);
        let xy = DimensionOrder::new();
        let from = mesh.node_at(&[2, 6].into());
        let to = mesh.node_at(&[6, 1].into());
        let path = walk(&xy, &mesh, from, to);
        // First 4 hops east, then 5 hops south.
        let coords: Vec<_> = path.iter().map(|&n| mesh.coord_of(n)).collect();
        for w in coords.windows(2).take(4) {
            assert_eq!(w[1].get(0), w[0].get(0) + 1, "x leg first");
            assert_eq!(w[1].get(1), w[0].get(1));
        }
        for w in coords.windows(2).skip(4) {
            assert_eq!(w[1].get(0), w[0].get(0));
            assert_eq!(w[1].get(1), w[0].get(1) - 1, "y leg second");
        }
    }

    #[test]
    fn ecube_resolves_lowest_dimension_first() {
        let cube = Hypercube::new(6);
        let ecube = DimensionOrder::new();
        let from = NodeId::new(0b101101);
        let to = NodeId::new(0b010110);
        let path = walk(&ecube, &cube, from, to);
        assert_eq!(path.len(), cube.distance(from, to) + 1);
        // Dimensions are corrected in ascending order.
        let dims: Vec<usize> = path
            .windows(2)
            .map(|w| (w[0].index() ^ w[1].index()).trailing_zeros() as usize)
            .collect();
        let mut sorted = dims.clone();
        sorted.sort_unstable();
        assert_eq!(dims, sorted);
    }

    #[test]
    fn exactly_one_direction_is_permitted() {
        let mesh = Mesh::new(vec![3, 3, 3]);
        let algo = DimensionOrder::new();
        for s in mesh.nodes() {
            for d in mesh.nodes() {
                let dirs = algo.route(&mesh, s, d, None);
                assert_eq!(dirs.len(), usize::from(s != d));
            }
        }
    }

    #[test]
    fn contract_holds() {
        let algo = DimensionOrder::new();
        check_routing_contract(&algo, &Mesh::new_2d(5, 4));
        check_routing_contract(&algo, &Hypercube::new(4));
    }

    #[test]
    fn conventional_names() {
        assert_eq!(DimensionOrder::conventional_name(&Mesh::new_2d(4, 4)), "xy");
        assert_eq!(
            DimensionOrder::conventional_name(&Hypercube::new(4)),
            "e-cube"
        );
        assert_eq!(
            DimensionOrder::conventional_name(&Mesh::new(vec![4, 4, 4])),
            "dimension-order"
        );
    }
}
