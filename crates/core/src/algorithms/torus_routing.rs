//! Turn-model routing on k-ary n-cubes (Section 4.2).
//!
//! Tori have cycles that involve no turns at all (the rings), so a mesh
//! turn set alone cannot prevent deadlock — see
//! `ChannelDependencyGraph::plain_turn_set_on_torus_deadlocks` in the CDG
//! tests. The paper extends the mesh algorithms two ways, both
//! implemented here:
//!
//! 1. [`FirstHopWraparound`] — wraparound channels may be used only as a
//!    packet's very first hop; afterwards the packet routes on the mesh
//!    sub-network with any mesh algorithm.
//! 2. [`NegativeFirstTorus`] — classify every wraparound channel by the
//!    coordinate direction it routes packets (the `(k-1) -> 0` channel is
//!    a *negative* channel, the `0 -> (k-1)` channel a *positive* one)
//!    and apply negative-first over the classification. Strictly
//!    nonminimal, as the paper notes all deadlock-free torus algorithms
//!    without extra channels must be for `k > 4`.

use crate::algorithms::RoutingAlgorithm;
use turnroute_topology::{DirSet, Direction, Mesh, NodeId, Sign, Topology, Torus};

/// Torus routing that admits wraparound channels only on a packet's
/// first hop, then runs a mesh algorithm on the mesh sub-network.
///
/// Deadlock free whenever the base algorithm is: no network channel ever
/// depends *into* a wraparound channel, so wraparound channels cannot lie
/// on a dependency cycle.
///
/// # Example
///
/// ```
/// use turnroute_core::{FirstHopWraparound, NegativeFirst, RoutingAlgorithm};
/// use turnroute_topology::{NodeId, Topology, Torus};
///
/// let torus = Torus::new(8, 1);
/// let algo = FirstHopWraparound::new(&torus, NegativeFirst::with_dims(1, true));
/// // 1 -> 7 can take the 1 -> 0 mesh hop... but better, the first hop may
/// // be the wraparound jump toward 7's side of the mesh.
/// let dirs = algo.route(&torus, NodeId::new(0), NodeId::new(7), None);
/// assert!(!dirs.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct FirstHopWraparound<A> {
    base: A,
    /// The torus's mesh sub-network: identical node numbering, only the
    /// non-wraparound channels.
    mesh: Mesh,
}

impl<A: RoutingAlgorithm> FirstHopWraparound<A> {
    /// Wraps `base` (a mesh algorithm) for use on `torus`.
    pub fn new(torus: &Torus, base: A) -> Self {
        let dims = vec![torus.k(); torus.num_dims()];
        FirstHopWraparound {
            base,
            mesh: Mesh::new(dims),
        }
    }

    /// The base mesh algorithm.
    pub fn base(&self) -> &A {
        &self.base
    }
}

impl<A: RoutingAlgorithm> RoutingAlgorithm for FirstHopWraparound<A> {
    fn name(&self) -> String {
        format!("{}+first-hop-wrap", self.base.name())
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        assert_eq!(
            topo.num_nodes(),
            self.mesh.num_nodes(),
            "constructed for a different torus"
        );
        if current == dest {
            return DirSet::new();
        }
        // After the first hop: pure mesh routing (node ids are shared
        // between the torus and its mesh sub-network).
        let mut dirs = self.base.route(&self.mesh, current, dest, arrived);
        if arrived.is_none() {
            // The first hop may also be a wraparound channel, if it
            // strictly shortens the remaining mesh route.
            let here = self.mesh.distance(current, dest);
            for dir in Direction::all(topo.num_dims()) {
                if let Some(id) = topo.channel_from(current, dir) {
                    let ch = topo.channel(id);
                    if ch.wraparound && self.mesh.distance(ch.dst, dest) < here {
                        dirs.insert(dir);
                    }
                }
            }
        }
        dirs
    }

    fn is_adaptive(&self) -> bool {
        true
    }

    fn is_minimal(&self) -> bool {
        // Minimal on the mesh sub-network, but not with respect to torus
        // distance.
        false
    }
}

/// Which of negative-first's phases a torus packet is in, derived from
/// the coordinate-direction class of its last hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// No positive-class hop taken yet: negative channels still usable.
    NegOk,
    /// A positive-class hop has been taken: positive channels only.
    PosOnly,
}

/// The negative-first algorithm extended to k-ary n-cubes by classifying
/// wraparound channels by the coordinate direction they route packets
/// (Section 4.2).
///
/// A mesh `x -> x-1` channel and the wraparound `(k-1) -> 0` channel are
/// *negative class*; a mesh `x -> x+1` channel and the wraparound
/// `0 -> (k-1)` channel are *positive class*. A packet makes all its
/// negative-class hops before any positive-class hop. Within that
/// constraint this implementation offers every hop that lies on a
/// shortest remaining legal route (computed from per-dimension distance
/// tables), so routes are as short as the phase discipline permits —
/// which for `k > 4` is sometimes longer than the torus distance: the
/// algorithm is strictly nonminimal, exactly as the paper observes.
///
/// # Example
///
/// ```
/// use turnroute_core::{NegativeFirstTorus, RoutingAlgorithm};
/// use turnroute_topology::{NodeId, Topology, Torus};
///
/// let torus = Torus::new(8, 2);
/// let algo = NegativeFirstTorus::new(&torus);
/// let path_len = turnroute_core::walk(&algo, &torus, NodeId::new(0), NodeId::new(63)).len() - 1;
/// assert!(path_len >= torus.distance(NodeId::new(0), NodeId::new(63)));
/// ```
#[derive(Debug, Clone)]
pub struct NegativeFirstTorus {
    k: usize,
    num_dims: usize,
    /// `cost[phase][x * k + d]`: hops to correct one dimension from
    /// coordinate `x` to `d`, given the phase.
    cost: [Vec<u32>; 2],
}

impl NegativeFirstTorus {
    /// Builds the per-dimension distance tables for `torus`.
    pub fn new(torus: &Torus) -> Self {
        let k = torus.k();
        // Dynamic programming over the per-dimension state graph:
        //   (x, NegOk)  -neg->  (x-1, NegOk)      for x > 0
        //   (k-1, NegOk) -neg-> (0, NegOk)        (negative-class wrap)
        //   (x, p)      -pos->  (x+1, PosOnly)    for x < k-1
        //   (0, p)      -pos->  (k-1, PosOnly)    (positive-class wrap)
        // PosOnly distances first (they do not depend on NegOk ones).
        let mut pos_only = vec![u32::MAX; k * k];
        for d in 0..k {
            // From x, positive-class reachability: x..=k-1 by mesh hops,
            // plus the 0 -> k-1 jump.
            for x in 0..k {
                let direct = if d >= x { (d - x) as u32 } else { u32::MAX };
                let via_jump = if x == 0 && d == k - 1 { 1 } else { u32::MAX };
                pos_only[x * k + d] = direct.min(via_jump);
            }
        }
        let mut neg_ok = vec![u32::MAX; k * k];
        for d in 0..k {
            for x in 0..k {
                // Choose the negative segment's endpoint y, then finish
                // positive-only from y.
                let mut best = u32::MAX;
                for y in 0..=x {
                    let neg = (x - y) as u32;
                    let pos = pos_only[y * k + d];
                    if pos != u32::MAX {
                        best = best.min(neg + pos);
                    }
                }
                // The negative-class wraparound: k-1 -> 0 in one hop.
                if x == k - 1 && pos_only[d] != u32::MAX {
                    best = best.min(1 + pos_only[d]);
                }
                neg_ok[x * k + d] = best;
            }
        }
        NegativeFirstTorus {
            k,
            num_dims: torus.num_dims(),
            cost: [neg_ok, pos_only],
        }
    }

    fn cost_dim(&self, phase: Phase, x: usize, d: usize) -> u32 {
        let table = match phase {
            Phase::NegOk => &self.cost[0],
            Phase::PosOnly => &self.cost[1],
        };
        table[x * self.k + d]
    }

    fn total_cost(
        &self,
        topo: &dyn Topology,
        node: NodeId,
        dest: NodeId,
        phase: Phase,
    ) -> Option<u32> {
        let (c, d) = (topo.coord_of(node), topo.coord_of(dest));
        let mut total = 0u32;
        for dim in 0..self.num_dims {
            let cost = self.cost_dim(phase, c.get(dim) as usize, d.get(dim) as usize);
            if cost == u32::MAX {
                return None;
            }
            total += cost;
        }
        Some(total)
    }

    /// The coordinate-direction class of arriving at `node` travelling
    /// `dir`: positive if the hop increased the coordinate.
    fn arrival_class(&self, topo: &dyn Topology, node: NodeId, dir: Direction) -> Phase {
        let x = topo.coord_of(node).get(dir.dim()) as usize;
        match dir.sign() {
            // A plus hop into coordinate 0 was the (k-1) -> 0 wraparound:
            // negative class.
            Sign::Plus if x == 0 => Phase::NegOk,
            Sign::Plus => Phase::PosOnly,
            // A minus hop into coordinate k-1 was the 0 -> (k-1)
            // wraparound: positive class.
            Sign::Minus if x == self.k - 1 => Phase::PosOnly,
            Sign::Minus => Phase::NegOk,
        }
    }

    /// The class of leaving `node` along `dir`.
    fn departure_class(&self, topo: &dyn Topology, node: NodeId, dir: Direction) -> Phase {
        let x = topo.coord_of(node).get(dir.dim()) as usize;
        match dir.sign() {
            // k-1 -> 0 wraparound: negative class.
            Sign::Plus if x == self.k - 1 => Phase::NegOk,
            Sign::Plus => Phase::PosOnly,
            // 0 -> k-1 wraparound: positive class.
            Sign::Minus if x == 0 => Phase::PosOnly,
            Sign::Minus => Phase::NegOk,
        }
    }
}

impl RoutingAlgorithm for NegativeFirstTorus {
    fn name(&self) -> String {
        "negative-first-torus".to_owned()
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        if current == dest {
            return DirSet::new();
        }
        let phase = match arrived {
            None => Phase::NegOk,
            Some(dir) => self.arrival_class(topo, current, dir),
        };
        let total = self
            .total_cost(topo, current, dest, phase)
            .expect("destination always reachable before any hop is taken");
        let mut set = DirSet::new();
        for dir in Direction::all(self.num_dims) {
            let class = self.departure_class(topo, current, dir);
            if phase == Phase::PosOnly && class == Phase::NegOk {
                continue; // negative hops are spent
            }
            let Some(next) = topo.neighbor(current, dir) else {
                continue;
            };
            if self.total_cost(topo, next, dest, class) == Some(total - 1) {
                set.insert(dir);
            }
        }
        set
    }

    fn is_adaptive(&self) -> bool {
        true
    }

    fn is_minimal(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{check_routing_contract, walk, NegativeFirst};
    use crate::ChannelDependencyGraph;
    use crate::Turn;
    use crate::TurnSet;

    #[test]
    fn first_hop_wraparound_reaches_everyone() {
        let torus = Torus::new(5, 2);
        let algo = FirstHopWraparound::new(&torus, NegativeFirst::with_dims(2, true));
        check_routing_contract(&algo, &torus);
    }

    #[test]
    fn first_hop_wraparound_uses_the_shortcut() {
        let torus = Torus::new(8, 1);
        let algo = FirstHopWraparound::new(&torus, NegativeFirst::with_dims(1, true));
        // 1 -> 7: mesh route is 6 hops east; wrap route is 1 -> 0 -> 7?
        // No: the only useful wraparound from 1 doesn't exist; from 0 the
        // 0 -> 7 wraparound makes it 2 hops.
        let path = walk(&algo, &torus, NodeId::new(1), NodeId::new(7));
        assert!(path.len() - 1 <= 6);
        // 0 -> 7 directly: the first hop may be the wraparound.
        let dirs = algo.route(&torus, NodeId::new(0), NodeId::new(7), None);
        assert!(dirs.contains(Direction::minus(0)));
    }

    #[test]
    fn negative_first_torus_contract() {
        for (k, n) in [(4, 2), (5, 2), (8, 1)] {
            let torus = Torus::new(k, n);
            let algo = NegativeFirstTorus::new(&torus);
            check_routing_contract(&algo, &torus);
        }
    }

    #[test]
    fn negative_first_torus_is_strictly_nonminimal_for_large_k() {
        // Section 4.2: for k > 4 no deadlock-free minimal algorithm
        // exists without extra channels; this algorithm takes the
        // phase-legal shortest route, which is sometimes longer.
        let torus = Torus::new(8, 1);
        let algo = NegativeFirstTorus::new(&torus);
        let mut stretched = 0;
        for s in torus.nodes() {
            for d in torus.nodes() {
                if s == d {
                    continue;
                }
                let path = walk(&algo, &torus, s, d);
                let hops = path.len() - 1;
                assert!(hops >= torus.distance(s, d));
                if hops > torus.distance(s, d) {
                    stretched += 1;
                }
            }
        }
        assert!(stretched > 0, "some pairs must be routed nonminimally");
    }

    #[test]
    fn negative_first_torus_uses_negative_wraparound() {
        let torus = Torus::new(8, 1);
        let algo = NegativeFirstTorus::new(&torus);
        // 7 -> 2: the (7 -> 0) wraparound is negative class; 7 -> 0 -> 1
        // -> 2 is 3 hops versus 5 mesh hops down.
        let path = walk(&algo, &torus, NodeId::new(7), NodeId::new(2));
        assert_eq!(path.len() - 1, 3);
        assert_eq!(path[1], NodeId::new(0));
    }

    #[test]
    fn negative_first_torus_cdg_is_acyclic() {
        // Dependency relation: hops follow the phase discipline; a
        // positive-class channel may never be followed by a
        // negative-class one.
        let torus = Torus::new(5, 2);
        let algo = NegativeFirstTorus::new(&torus);
        let cdg = ChannelDependencyGraph::from_relation(&torus, |c1, c2| {
            if c1.dst != c2.src {
                return false;
            }
            // No 180-degree reversals within a dimension.
            if c1.dir.dim() == c2.dir.dim() && c1.dir.sign() != c2.dir.sign() {
                return false;
            }
            let cls1 = algo.arrival_class(&torus, c1.dst, c1.dir);
            let cls2 = algo.departure_class(&torus, c2.src, c2.dir);
            !(cls1 == Phase::PosOnly && cls2 == Phase::NegOk)
        });
        assert!(cdg.is_acyclic());
    }

    #[test]
    fn first_hop_wraparound_cdg_is_acyclic() {
        let torus = Torus::new(4, 2);
        let set = TurnSet::west_first();
        let cdg = ChannelDependencyGraph::from_relation(&torus, |c1, c2| {
            !c2.wraparound && set.allows(Turn::new(c1.dir, c2.dir))
        });
        assert!(cdg.is_acyclic());
    }
}
