//! The p-cube routing algorithm for hypercubes (Section 5).

use crate::algorithms::RoutingAlgorithm;
use turnroute_topology::{DirSet, Direction, NodeId, Sign, Topology};

/// The p-cube routing algorithm: the hypercube special case of
/// negative-first, computed with the paper's bitwise steps (Figs. 11
/// and 12).
///
/// Let `C` be the current node's address and `D` the destination's. In
/// the minimal variant, phase one routes along any dimension `i` with
/// `c_i = 1, d_i = 0` (computed as `R = C & !D`); when `R = 0`, phase two
/// routes along any dimension with `c_i = 0, d_i = 1` (`R = !C & D`).
/// The nonminimal variant's phase one may additionally route along any
/// dimension with `c_i = 1, d_i = 1` — a misroute that clears a bit that
/// will have to be set again — as long as the packet has not yet made a
/// phase-two (upward) hop.
///
/// The number of shortest paths offered is `h1! * h0!` where `h1` and
/// `h0` count the 1->0 and 0->1 corrections (Section 5); see
/// [`crate::adaptiveness::pcube_shortest_paths`].
///
/// # Example
///
/// ```
/// use turnroute_core::{PCube, RoutingAlgorithm};
/// use turnroute_topology::{Hypercube, NodeId};
///
/// let cube = Hypercube::new(4);
/// let pcube = PCube::minimal();
/// // From 0b1100 to 0b0101: clear bit 3 first (bit 2 stays), then set bit 0.
/// let dirs = pcube.route(&cube, NodeId::new(0b1100), NodeId::new(0b0101), None);
/// assert_eq!(dirs.len(), 1); // only one 1->0 correction: dimension 3
/// ```
#[derive(Debug, Clone)]
pub struct PCube {
    minimal: bool,
}

impl PCube {
    /// The minimal p-cube algorithm (Fig. 11).
    pub fn minimal() -> Self {
        PCube { minimal: true }
    }

    /// The nonminimal p-cube algorithm (Fig. 12), which is more adaptive
    /// and fault tolerant.
    pub fn nonminimal() -> Self {
        PCube { minimal: false }
    }

    fn assert_hypercube(topo: &dyn Topology) {
        assert!(
            (0..topo.num_dims()).all(|d| topo.radix(d) == 2 && !topo.wraps(d)),
            "p-cube routing requires a hypercube"
        );
    }
}

impl RoutingAlgorithm for PCube {
    fn name(&self) -> String {
        "p-cube".to_owned()
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        Self::assert_hypercube(topo);
        let (c, d) = (current.index(), dest.index());
        if c == d {
            return DirSet::new();
        }
        let mut set = DirSet::new();
        // Phase one: dimensions with c_i = 1 and d_i = 0.
        let down = c & !d;
        if self.minimal {
            let r = if down != 0 { down } else { !c & d };
            for i in 0..topo.num_dims() {
                if r >> i & 1 == 1 {
                    // 1 -> 0 hops travel minus; 0 -> 1 hops travel plus.
                    let sign = if c >> i & 1 == 1 {
                        Sign::Minus
                    } else {
                        Sign::Plus
                    };
                    set.insert(Direction::new(i, sign));
                }
            }
            return set;
        }

        // Nonminimal (Fig. 12): while productive 1->0 corrections remain,
        // phase one may clear *any* set bit — the shared bits (c_i = 1,
        // d_i = 1) are the extra nonminimal choices of the Section 5
        // table. Once `down` is empty the packet is in phase two and only
        // sets missing bits (clearing a shared bit then would add two
        // hops with no remaining adaptivity to buy).
        let _ = arrived; // phase is derivable from the addresses alone
        if down != 0 {
            for i in 0..topo.num_dims() {
                if c >> i & 1 == 1 {
                    set.insert(Direction::minus(i));
                }
            }
        } else {
            for i in 0..topo.num_dims() {
                if (!c & d) >> i & 1 == 1 {
                    set.insert(Direction::plus(i));
                }
            }
        }
        set
    }

    fn is_adaptive(&self) -> bool {
        true
    }

    fn is_minimal(&self) -> bool {
        self.minimal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{check_routing_contract, walk, NegativeFirst};
    use turnroute_topology::Hypercube;

    #[test]
    fn phase_one_clears_bits_phase_two_sets_them() {
        let cube = Hypercube::new(6);
        let pcube = PCube::minimal();
        let c = NodeId::new(0b110100);
        let d = NodeId::new(0b001101);
        // c & !d = 0b110000: dimensions 4 and 5 may be cleared.
        let dirs = pcube.route(&cube, c, d, None);
        let got: Vec<_> = dirs.iter().collect();
        assert_eq!(got, vec![Direction::minus(4), Direction::minus(5)]);
        // Once only upward corrections remain: !c & d = 0b001001.
        let c2 = NodeId::new(0b000100);
        let dirs = pcube.route(&cube, c2, d, Some(Direction::minus(4)));
        let got: Vec<_> = dirs.iter().collect();
        assert_eq!(got, vec![Direction::plus(0), Direction::plus(3)]);
    }

    #[test]
    fn minimal_pcube_equals_negative_first_on_hypercube() {
        let cube = Hypercube::new(5);
        let pcube = PCube::minimal();
        let nf = NegativeFirst::with_dims(5, true);
        for s in cube.nodes() {
            for d in cube.nodes() {
                assert_eq!(
                    pcube.route(&cube, s, d, None),
                    nf.route(&cube, s, d, None),
                    "s={s} d={d}"
                );
            }
        }
    }

    #[test]
    fn contract_holds_minimal_and_nonminimal() {
        let cube = Hypercube::new(4);
        check_routing_contract(&PCube::minimal(), &cube);
        check_routing_contract(&PCube::nonminimal(), &cube);
    }

    #[test]
    fn walks_are_minimal() {
        let cube = Hypercube::new(8);
        let pcube = PCube::minimal();
        let s = NodeId::new(0b1011_0101);
        let d = NodeId::new(0b0010_1110);
        let path = walk(&pcube, &cube, s, d);
        assert_eq!(path.len(), cube.distance(s, d) + 1);
    }

    #[test]
    fn nonminimal_offers_extra_downward_choices() {
        // The Section 5 table's "(+2)" entries: at the source of the
        // worked example, minimal p-cube offers 3 choices and nonminimal
        // adds 2 more (the set bits shared with the destination).
        let cube = Hypercube::new(10);
        let s = NodeId::new(0b1011010100);
        let d = NodeId::new(0b0010111001);
        let minimal = PCube::minimal().route(&cube, s, d, None);
        let nonminimal = PCube::nonminimal().route(&cube, s, d, None);
        assert_eq!(minimal.len(), 3);
        assert_eq!(nonminimal.len(), 5);
        assert!(minimal.difference(nonminimal).is_empty());
    }

    #[test]
    #[should_panic(expected = "requires a hypercube")]
    fn rejects_non_hypercubes() {
        let mesh = turnroute_topology::Mesh::new_2d(4, 4);
        let _ = PCube::minimal().route(&mesh, NodeId::new(0), NodeId::new(5), None);
    }
}
