//! The routing algorithms of the paper, behind one trait.
//!
//! Every algorithm answers the single question a wormhole router asks:
//! *given where this header is, where it is going, and which direction it
//! arrived from, which output directions may it take?* The answer is a
//! [`DirSet`]; arbitration among the permitted directions is the
//! simulator's output-selection policy, not the algorithm's business.

mod dimension_order;
mod pcube;
mod torus_routing;
mod turn_routing;
mod two_phase;

pub use dimension_order::DimensionOrder;
pub use pcube::PCube;
pub use torus_routing::{FirstHopWraparound, NegativeFirstTorus};
pub use turn_routing::TurnSetRouting;
pub use two_phase::{Abonf, Abopl, NegativeFirst, NorthLast, TwoPhase, WestFirst};

use turnroute_topology::{DirSet, Direction, NodeId, Topology};

/// A wormhole routing algorithm: a *routing relation* from (current node,
/// destination, arrival direction) to the set of output directions the
/// header may request.
///
/// Implementations must guarantee:
///
/// * **progress** — if `current != dest`, the returned set is non-empty
///   whenever the packet is in a state the algorithm can produce (for
///   minimal algorithms: always);
/// * **termination** — repeatedly following any permitted direction
///   reaches `dest` in finitely many hops (livelock freedom);
/// * the set only contains directions with an existing output channel.
///
/// Deadlock freedom is a property of the relation as a whole and is
/// checked separately via
/// [`ChannelDependencyGraph`](crate::ChannelDependencyGraph).
///
/// # Example
///
/// ```
/// use turnroute_core::{RoutingAlgorithm, WestFirst};
/// use turnroute_topology::{Direction, Mesh, Topology};
///
/// let mesh = Mesh::new_2d(8, 8);
/// let wf = WestFirst::minimal();
/// let from = mesh.node_at(&[4, 4].into());
/// let to = mesh.node_at(&[1, 6].into());
/// // Destination is to the west: the packet must travel west first.
/// let dirs = wf.route(&mesh, from, to, None);
/// assert_eq!(dirs.iter().collect::<Vec<_>>(), vec![Direction::WEST]);
/// ```
pub trait RoutingAlgorithm: Send + Sync {
    /// A short name for tables and plots, e.g. `"west-first"`.
    fn name(&self) -> String;

    /// The output directions the header may request next.
    ///
    /// `arrived` is the direction of the channel the header occupies
    /// (`None` if the packet is still at its source). Minimal stateless
    /// algorithms may ignore it; turn-constrained nonminimal ones need
    /// it.
    ///
    /// Must return the empty set iff `current == dest`.
    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet;

    /// `true` if the algorithm ever offers more than one direction.
    fn is_adaptive(&self) -> bool;

    /// `true` if the algorithm only uses shortest paths.
    fn is_minimal(&self) -> bool;

    /// `true` if [`RoutingAlgorithm::route`] is a pure function of
    /// `(current, dest, arrived)` for a fixed topology, so its results
    /// may be precomputed into a dense lookup table and replayed in any
    /// order. Every algorithm in this crate is; an implementation that
    /// consults mutable state (adaptive congestion estimates, fault
    /// epochs) must override this to `false` to keep table-driven
    /// simulators honest.
    fn is_tabulable(&self) -> bool {
        true
    }
}

/// Boxed algorithms route like the algorithm they hold, so dynamically
/// chosen algorithms (e.g. parsed from a CLI name) compose with any
/// wrapper that is generic over `RoutingAlgorithm`.
impl<A: RoutingAlgorithm + ?Sized> RoutingAlgorithm for Box<A> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        (**self).route(topo, current, dest, arrived)
    }

    fn is_adaptive(&self) -> bool {
        (**self).is_adaptive()
    }

    fn is_minimal(&self) -> bool {
        (**self).is_minimal()
    }

    fn is_tabulable(&self) -> bool {
        (**self).is_tabulable()
    }
}

/// Follows `algorithm` from `source` to `dest`, always taking the first
/// permitted direction in index order (the paper's "xy" output-selection
/// policy), and returns the node sequence including both endpoints.
///
/// Useful for tests, examples and path visualisation.
///
/// # Panics
///
/// Panics if the algorithm returns an empty set away from the
/// destination, returns a direction without a channel, or fails to reach
/// `dest` within `4 * (diameter-bound)` hops — all violations of the
/// [`RoutingAlgorithm`] contract.
pub fn walk(
    algorithm: &dyn RoutingAlgorithm,
    topo: &dyn Topology,
    source: NodeId,
    dest: NodeId,
) -> Vec<NodeId> {
    let mut path = vec![source];
    let mut current = source;
    let mut arrived = None;
    let hop_limit = 4 * (topo.num_nodes() + 1);
    while current != dest {
        assert!(
            path.len() <= hop_limit,
            "walk exceeded hop limit: livelock?"
        );
        let dirs = algorithm.route(topo, current, dest, arrived);
        let dir = dirs
            .first()
            .expect("routing algorithm returned no direction away from dest");
        current = topo
            .neighbor(current, dir)
            .expect("routing algorithm returned a direction without a channel");
        arrived = Some(dir);
        path.push(current);
    }
    path
}

/// Checks the [`RoutingAlgorithm`] contract for every source/destination
/// pair by exhaustive depth-first traversal of the relation: every
/// reachable `(node, arrived)` state away from the destination offers at
/// least one direction, every offered direction has a channel, and (for
/// minimal algorithms) every offered direction reduces the distance.
///
/// Returns the number of `(source, dest)` pairs checked.
///
/// # Panics
///
/// Panics on the first contract violation.
pub fn check_routing_contract(algorithm: &dyn RoutingAlgorithm, topo: &dyn Topology) -> usize {
    let mut pairs = 0;
    for source in topo.nodes() {
        for dest in topo.nodes() {
            if source == dest {
                continue;
            }
            pairs += 1;
            // DFS over (node, arrived) states.
            let mut seen = std::collections::HashSet::new();
            let mut stack = vec![(source, None::<Direction>)];
            while let Some((node, arrived)) = stack.pop() {
                if node == dest || !seen.insert((node, arrived)) {
                    continue;
                }
                let dirs = algorithm.route(topo, node, dest, arrived);
                assert!(
                    !dirs.is_empty(),
                    "{} offers no direction at {} toward {} (arrived {:?})",
                    algorithm.name(),
                    node,
                    dest,
                    arrived
                );
                for dir in dirs {
                    let next = topo.neighbor(node, dir).unwrap_or_else(|| {
                        panic!(
                            "{} offers {} at {} with no channel",
                            algorithm.name(),
                            dir,
                            node
                        )
                    });
                    if algorithm.is_minimal() {
                        assert!(
                            topo.distance(next, dest) < topo.distance(node, dest),
                            "{} offers unproductive {} at {} toward {}",
                            algorithm.name(),
                            dir,
                            node,
                            dest
                        );
                    }
                    stack.push((next, Some(dir)));
                }
            }
        }
    }
    pairs
}
