//! Randomized invariants of the turn model machinery.
//!
//! Formerly proptest properties; now seeded loops over the vendored
//! RNG so the suite builds offline. Every 2D case draws a random turn
//! set from all 256 eight-turn subsets.

use turnroute_core::{
    abstract_cycles, walk, Abonf, Abopl, ChannelDependencyGraph, NegativeFirst, RoutingAlgorithm,
    Turn, TurnSet,
};
use turnroute_rng::{Rng, StdRng};
use turnroute_topology::{Direction, Mesh, NodeId, Topology};

const CASES: usize = 64;

/// A random 2D turn set: each of the eight 90-degree turns allowed with
/// probability 1/2 (straight travel always allowed).
fn turn_set_2d_from_bits(bits: u8) -> TurnSet {
    let mut set = TurnSet::fully_adaptive(2);
    for (i, turn) in Turn::all_ninety(2).enumerate() {
        if bits >> i & 1 == 0 {
            set.prohibit(turn);
        }
    }
    set
}

fn arbitrary_turn_set_2d(rng: &mut StdRng) -> TurnSet {
    turn_set_2d_from_bits(rng.random_range(0..256usize) as u8)
}

/// Prohibiting more turns can only remove dependency edges, so it
/// preserves acyclicity.
#[test]
fn prohibition_is_monotone() {
    let mut rng = StdRng::seed_from_u64(0xC001);
    for _ in 0..CASES {
        let set = arbitrary_turn_set_2d(&mut rng);
        let extra = rng.random_range(0..8usize);
        let mesh = Mesh::new_2d(4, 4);
        let acyclic = ChannelDependencyGraph::from_turn_set(&mesh, &set).is_acyclic();
        let mut stricter = set.clone();
        let turn = Turn::all_ninety(2).nth(extra).expect("eight turns");
        stricter.prohibit(turn);
        let still = ChannelDependencyGraph::from_turn_set(&mesh, &stricter).is_acyclic();
        if acyclic {
            assert!(still, "prohibiting {turn} broke acyclicity of {set}");
        }
    }
}

/// A monotone numbering exists exactly when the graph is acyclic
/// (the Dally–Seitz equivalence, both directions).
#[test]
fn numbering_exists_iff_acyclic() {
    let mesh = Mesh::new_2d(4, 4);
    // Small enough space to check exhaustively rather than sample.
    for bits in 0..=255u8 {
        let set = turn_set_2d_from_bits(bits);
        let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &set);
        assert_eq!(cdg.topological_numbering().is_some(), cdg.is_acyclic());
    }
}

/// The CDG verdict is invariant under the square's symmetries: a
/// relabeled turn set is deadlock free iff the original is.
#[test]
fn verdict_is_symmetry_invariant() {
    let mesh = Mesh::new_2d(4, 4);
    for bits in 0..=255u8 {
        let set = turn_set_2d_from_bits(bits);
        let original = ChannelDependencyGraph::from_turn_set(&mesh, &set).is_acyclic();
        // Rotate by 90 degrees: +x -> +y -> -x -> -y.
        let rot = |d: Direction| -> Direction {
            match (d.dim(), d.is_positive()) {
                (0, true) => Direction::NORTH,
                (1, true) => Direction::WEST,
                (0, false) => Direction::SOUTH,
                (1, false) => Direction::EAST,
                _ => unreachable!(),
            }
        };
        let rotated = set.relabel(rot);
        let verdict = ChannelDependencyGraph::from_turn_set(&mesh, &rotated).is_acyclic();
        assert_eq!(original, verdict);
    }
}

/// Breaking all abstract cycles is necessary: any acyclic set breaks
/// them all.
#[test]
fn acyclic_implies_abstract_cycles_broken() {
    let mesh = Mesh::new_2d(4, 4);
    for bits in 0..=255u8 {
        let set = turn_set_2d_from_bits(bits);
        if ChannelDependencyGraph::from_turn_set(&mesh, &set).is_acyclic() {
            assert!(set.breaks_all_abstract_cycles());
        }
    }
}

/// Verdicts are stable across mesh sizes (3x3 already contains every
/// cycle shape a turn set can drive).
#[test]
fn verdict_is_size_invariant() {
    for bits in 0..=255u8 {
        let set = turn_set_2d_from_bits(bits);
        let small = ChannelDependencyGraph::from_turn_set(&Mesh::new_2d(3, 3), &set).is_acyclic();
        let large = ChannelDependencyGraph::from_turn_set(&Mesh::new_2d(7, 5), &set).is_acyclic();
        assert_eq!(small, large);
    }
}

/// Every turn lies in exactly one abstract cycle, for any dimension.
#[test]
fn turn_cycle_partition() {
    for n in 2..7usize {
        let cycles = abstract_cycles(n);
        for turn in Turn::all_ninety(n) {
            let count = cycles.iter().filter(|c| c.contains(turn)).count();
            assert_eq!(count, 1);
        }
    }
}

/// The n-dimensional two-phase algorithms route minimally on random
/// box shapes.
#[test]
fn nd_algorithms_walk_minimally() {
    let mut rng = StdRng::seed_from_u64(0xC002);
    let mut checked = 0usize;
    while checked < CASES {
        let n = rng.random_range(2..5usize);
        let dims: Vec<usize> = (0..n).map(|_| rng.random_range(2..5usize)).collect();
        let mesh = Mesh::new(dims);
        let a = rng.random_range(0..256usize) % mesh.num_nodes();
        let b = rng.random_range(0..256usize) % mesh.num_nodes();
        if a == b {
            continue;
        }
        let which = rng.random_range(0..3usize);
        let algo: Box<dyn RoutingAlgorithm> = match which {
            0 => Box::new(NegativeFirst::with_dims(n, true)),
            1 => Box::new(Abonf::with_dims(n, true)),
            _ => Box::new(Abopl::with_dims(n, true)),
        };
        let (s, d) = (NodeId::new(a), NodeId::new(b));
        let path = walk(algo.as_ref(), &mesh, s, d);
        assert_eq!(path.len() - 1, mesh.distance(s, d));
        checked += 1;
    }
}

/// Turn sets round-trip through allow/prohibit.
#[test]
fn allow_prohibit_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xC003);
    for _ in 0..CASES {
        let set = arbitrary_turn_set_2d(&mut rng);
        let pick = rng.random_range(0..8usize);
        let mut modified = set.clone();
        let turn = Turn::all_ninety(2).nth(pick).expect("eight turns");
        let was = set.allows(turn);
        modified.prohibit(turn);
        assert!(!modified.allows(turn));
        modified.allow(turn);
        assert!(modified.allows(turn));
        if was {
            assert_eq!(&modified, &set);
        }
    }
}
