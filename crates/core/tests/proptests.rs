//! Property-based invariants of the turn model machinery.

use proptest::prelude::*;
use turnroute_core::{
    abstract_cycles, walk, Abonf, Abopl, ChannelDependencyGraph, NegativeFirst,
    RoutingAlgorithm, Turn, TurnSet,
};
use turnroute_topology::{Direction, Mesh, NodeId, Topology};

/// A random 2D turn set: each of the eight 90-degree turns allowed with
/// probability 1/2 (straight travel always allowed).
fn arbitrary_turn_set_2d() -> impl Strategy<Value = TurnSet> {
    proptest::bits::u8::ANY.prop_map(|bits| {
        let mut set = TurnSet::fully_adaptive(2);
        for (i, turn) in Turn::all_ninety(2).enumerate() {
            if bits >> i & 1 == 0 {
                set.prohibit(turn);
            }
        }
        set
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Prohibiting more turns can only remove dependency edges, so it
    /// preserves acyclicity.
    #[test]
    fn prohibition_is_monotone(set in arbitrary_turn_set_2d(), extra in 0usize..8) {
        let mesh = Mesh::new_2d(4, 4);
        let acyclic = ChannelDependencyGraph::from_turn_set(&mesh, &set).is_acyclic();
        let mut stricter = set.clone();
        let turn = Turn::all_ninety(2).nth(extra).expect("eight turns");
        stricter.prohibit(turn);
        let still =
            ChannelDependencyGraph::from_turn_set(&mesh, &stricter).is_acyclic();
        if acyclic {
            prop_assert!(still, "prohibiting {turn} broke acyclicity of {set}");
        }
    }

    /// A monotone numbering exists exactly when the graph is acyclic
    /// (the Dally–Seitz equivalence, both directions).
    #[test]
    fn numbering_exists_iff_acyclic(set in arbitrary_turn_set_2d()) {
        let mesh = Mesh::new_2d(4, 4);
        let cdg = ChannelDependencyGraph::from_turn_set(&mesh, &set);
        prop_assert_eq!(cdg.topological_numbering().is_some(), cdg.is_acyclic());
    }

    /// The CDG verdict is invariant under the square's symmetries: a
    /// relabeled turn set is deadlock free iff the original is.
    #[test]
    fn verdict_is_symmetry_invariant(set in arbitrary_turn_set_2d()) {
        let mesh = Mesh::new_2d(4, 4);
        let original = ChannelDependencyGraph::from_turn_set(&mesh, &set).is_acyclic();
        // Rotate by 90 degrees: +x -> +y -> -x -> -y.
        let rot = |d: Direction| -> Direction {
            match (d.dim(), d.is_positive()) {
                (0, true) => Direction::NORTH,
                (1, true) => Direction::WEST,
                (0, false) => Direction::SOUTH,
                (1, false) => Direction::EAST,
                _ => unreachable!(),
            }
        };
        let rotated = set.relabel(rot);
        let verdict = ChannelDependencyGraph::from_turn_set(&mesh, &rotated).is_acyclic();
        prop_assert_eq!(original, verdict);
    }

    /// Breaking all abstract cycles is necessary: any acyclic set breaks
    /// them all.
    #[test]
    fn acyclic_implies_abstract_cycles_broken(set in arbitrary_turn_set_2d()) {
        let mesh = Mesh::new_2d(4, 4);
        if ChannelDependencyGraph::from_turn_set(&mesh, &set).is_acyclic() {
            prop_assert!(set.breaks_all_abstract_cycles());
        }
    }

    /// Verdicts are stable across mesh sizes (3x3 already contains every
    /// cycle shape a turn set can drive).
    #[test]
    fn verdict_is_size_invariant(set in arbitrary_turn_set_2d()) {
        let small = ChannelDependencyGraph::from_turn_set(&Mesh::new_2d(3, 3), &set)
            .is_acyclic();
        let large = ChannelDependencyGraph::from_turn_set(&Mesh::new_2d(7, 5), &set)
            .is_acyclic();
        prop_assert_eq!(small, large);
    }

    /// Every turn lies in exactly one abstract cycle, for any dimension.
    #[test]
    fn turn_cycle_partition(n in 2usize..7) {
        let cycles = abstract_cycles(n);
        for turn in Turn::all_ninety(n) {
            let count = cycles.iter().filter(|c| c.contains(turn)).count();
            prop_assert_eq!(count, 1);
        }
    }

    /// The n-dimensional two-phase algorithms route minimally on random
    /// box shapes.
    #[test]
    fn nd_algorithms_walk_minimally(
        dims in proptest::collection::vec(2usize..5, 2..5),
        a in 0usize..256,
        b in 0usize..256,
        which in 0u8..3,
    ) {
        let n = dims.len();
        let mesh = Mesh::new(dims);
        let (a, b) = (a % mesh.num_nodes(), b % mesh.num_nodes());
        prop_assume!(a != b);
        let algo: Box<dyn RoutingAlgorithm> = match which {
            0 => Box::new(NegativeFirst::with_dims(n, true)),
            1 => Box::new(Abonf::with_dims(n, true)),
            _ => Box::new(Abopl::with_dims(n, true)),
        };
        let (s, d) = (NodeId::new(a), NodeId::new(b));
        let path = walk(algo.as_ref(), &mesh, s, d);
        prop_assert_eq!(path.len() - 1, mesh.distance(s, d));
    }

    /// Turn sets round-trip through allow/prohibit.
    #[test]
    fn allow_prohibit_roundtrip(set in arbitrary_turn_set_2d(), pick in 0usize..8) {
        let mut modified = set.clone();
        let turn = Turn::all_ninety(2).nth(pick).expect("eight turns");
        let was = set.allows(turn);
        modified.prohibit(turn);
        prop_assert!(!modified.allows(turn));
        modified.allow(turn);
        prop_assert!(modified.allows(turn));
        if was {
            prop_assert_eq!(&modified, &set);
        }
    }
}
