//! Channel-utilization accounting, and the load-distribution mechanism
//! behind the figures: on the paper's transpose pattern, adaptive
//! routing spreads the funnels that dimension-order routing creates.

use turnroute_core::{DimensionOrder, NegativeFirst};
use turnroute_sim::patterns::{DiagonalTranspose, Transpose, Uniform};
use turnroute_sim::{SimConfig, Simulation, FLITS_PER_USEC};
use turnroute_topology::Mesh;

fn run_utilization(
    algo: &dyn turnroute_core::RoutingAlgorithm,
    pattern: &dyn turnroute_sim::patterns::TrafficPattern,
    load: f64,
) -> Vec<f64> {
    let mesh = Mesh::new_2d(16, 16);
    let config = SimConfig::paper()
        .injection_rate(load)
        .warmup_cycles(2_000)
        .measure_cycles(12_000)
        .seed(8);
    let mut sim = Simulation::new(&mesh, algo, pattern, config);
    sim.run();
    sim.channel_utilization()
}

fn max_avg(util: &[f64]) -> (f64, f64) {
    let max = util.iter().cloned().fold(0.0, f64::max);
    let avg = util.iter().sum::<f64>() / util.len() as f64;
    (max, avg)
}

#[test]
fn utilization_respects_channel_capacity() {
    let xy = DimensionOrder::new();
    let util = run_utilization(&xy, &Uniform, 0.06);
    let (max, avg) = max_avg(&util);
    assert!(avg > 0.0);
    // Acquisition-credited load can overshoot slightly at the window
    // edge but must stay near the physical 20 flits/usec.
    assert!(max <= FLITS_PER_USEC * 1.2, "max {max}");
}

#[test]
fn uniform_traffic_is_balanced_under_xy() {
    let xy = DimensionOrder::new();
    let util = run_utilization(&xy, &Uniform, 0.05);
    let (max, avg) = max_avg(&util);
    // The center channels carry more than the edge, but no funnels.
    assert!(max < avg * 4.0, "max {max}, avg {avg}");
}

#[test]
fn transpose_funnels_under_xy_spread_under_negative_first() {
    // The mechanism behind Figure 14: at the same offered load, the
    // hottest channel under negative-first carries significantly less
    // than under xy.
    let xy = DimensionOrder::new();
    let nf = NegativeFirst::minimal();
    let (xy_max, xy_avg) = max_avg(&run_utilization(&xy, &Transpose, 0.05));
    let (nf_max, nf_avg) = max_avg(&run_utilization(&nf, &Transpose, 0.05));
    // Same traffic, same total work.
    assert!((xy_avg - nf_avg).abs() < xy_avg * 0.1);
    assert!(
        nf_max < xy_max * 0.8,
        "nf max {nf_max:.1} should be well below xy max {xy_max:.1}"
    );
}

#[test]
fn diagonal_transpose_funnels_for_both() {
    // On the mixed-sign transpose both algorithms have S_p = 1 and the
    // same single paths per pair family: the funnels match.
    let xy = DimensionOrder::new();
    let nf = NegativeFirst::minimal();
    let (xy_max, _) = max_avg(&run_utilization(&xy, &DiagonalTranspose, 0.05));
    let (nf_max, _) = max_avg(&run_utilization(&nf, &DiagonalTranspose, 0.05));
    assert!(
        (nf_max - xy_max).abs() < xy_max * 0.35,
        "nf {nf_max:.1} vs xy {xy_max:.1}"
    );
}

#[test]
fn zero_window_reports_zero_utilization() {
    let mesh = Mesh::new_2d(4, 4);
    let xy = DimensionOrder::new();
    let sim = Simulation::new(
        &mesh,
        &xy,
        &Uniform,
        SimConfig::paper().warmup_cycles(0).measure_cycles(0),
    );
    assert!(sim.channel_utilization().iter().all(|&u| u == 0.0));
}
