//! Fault tolerance under live traffic: the paper's argument for
//! nonminimal adaptive routing (Sections 1 and 7), exercised in the
//! simulator rather than on paper.

use turnroute_core::{DimensionOrder, WestFirst};
use turnroute_fault::FaultPlan;
use turnroute_sim::patterns::{TrafficPattern, Uniform};
use turnroute_sim::{
    FaultObserver, InputSelection, OutputSelection, RouteTableMode, RunOutcome, SimConfig,
    Simulation,
};
use turnroute_topology::{Direction, Mesh, NodeId, Topology};

fn config() -> SimConfig {
    SimConfig::paper()
        .injection_rate(0.02)
        .warmup_cycles(500)
        .measure_cycles(8_000)
        .deadlock_threshold(3_000)
        .seed(77)
}

/// Kills the eastward channel out of `(3, 3)`.
fn fail_one_link(sim: &mut Simulation<'_>, mesh: &Mesh) {
    let from = mesh.node_at(&[3, 3].into());
    sim.fail_channel(mesh.channel_from(from, Direction::EAST).expect("interior"));
}

/// Traffic that crosses the faulty column: west-side sources at row 3,
/// east-side destinations spread over nearby rows (so xy always crosses
/// at the dead link, while adaptive detours stay short).
struct CrossTraffic;

impl TrafficPattern for CrossTraffic {
    fn name(&self) -> String {
        "cross-the-fault".to_owned()
    }

    fn dest(
        &self,
        topo: &dyn Topology,
        src: NodeId,
        rng: &mut dyn turnroute_rng::RngCore,
    ) -> Option<NodeId> {
        use turnroute_rng::Rng;
        let c = topo.coord_of(src);
        if c.get(0) > 2 || c.get(1) != 3 {
            return None; // west-side row-3 sources only
        }
        let x = rng.random_range(5..topo.radix(0)) as u16;
        let y = rng.random_range(3..6usize) as u16;
        Some(topo.node_at(&[x, y].into()))
    }
}

#[test]
fn nonminimal_west_first_routes_around_a_dead_link() {
    let mesh = Mesh::new_2d(8, 8);
    let algo = WestFirst::nonminimal();
    // Only three row-3 west-side nodes generate: give them a high rate.
    let mut sim = Simulation::new(
        &mesh,
        &algo,
        &CrossTraffic,
        config().injection_rate(0.15).measure_cycles(16_000),
    );
    fail_one_link(&mut sim, &mesh);
    let report = sim.run();
    assert!(
        matches!(report.outcome, RunOutcome::Completed),
        "nonminimal west-first must keep delivering"
    );
    assert!(report.total_delivered > 20, "{}", report.total_delivered);
    // Packets bound for row 3 cannot cross minimally: they detour one
    // row and come back, exceeding the minimal hop count.
    let detours = sim
        .packets()
        .iter()
        .filter(|p| p.delivered_at.is_some())
        .filter(|p| p.hops() > mesh.distance(p.src, p.dst) as u32)
        .count();
    assert!(detours > 0, "some routes must be nonminimal");
}

#[test]
fn minimal_xy_blocks_permanently_at_a_dead_link() {
    // xy crosses at the source row — always row 3, always the dead
    // link. Every generated packet eventually wedges there.
    let mesh = Mesh::new_2d(8, 8);
    let algo = DimensionOrder::new();
    let mut sim = Simulation::new(&mesh, &algo, &CrossTraffic, config());
    fail_one_link(&mut sim, &mesh);
    let report = sim.run();
    match report.outcome {
        RunOutcome::Deadlocked(d) => {
            // Not a circular wait: a permanent roadblock at the failed
            // link.
            assert!(d.cycle.is_empty());
            assert!(
                !d.stranded.is_empty(),
                "fault-blocked packets are roadblocks"
            );
        }
        RunOutcome::Completed => {
            panic!("xy cannot route around a dead link on its only path")
        }
    }
}

#[test]
fn repair_restores_service() {
    let mesh = Mesh::new_2d(8, 8);
    let algo = DimensionOrder::new();
    let mut sim = Simulation::new(
        &mesh,
        &algo,
        &Uniform,
        config().deadlock_threshold(1_000_000),
    );
    // Fail then repair one link; traffic flows normally afterwards.
    let ch = mesh
        .channel_from(mesh.node_at(&[3, 3].into()), Direction::EAST)
        .unwrap();
    sim.fail_channel(ch);
    assert!(sim.is_faulty(ch));
    for _ in 0..2_000 {
        sim.step();
    }
    sim.repair_channel(ch);
    assert!(!sim.is_faulty(ch));
    for _ in 0..20_000 {
        sim.step();
    }
    let delivered = sim
        .packets()
        .iter()
        .filter(|p| p.delivered_at.is_some())
        .count();
    assert!(delivered > 50, "{delivered}");
}

#[test]
fn scheduled_faults_apply_on_cycle_and_feed_the_observer() {
    let mesh = Mesh::new_2d(6, 6);
    let algo = WestFirst::nonminimal();
    let ch = mesh
        .channel_from(mesh.node_at(&[2, 2].into()), Direction::EAST)
        .unwrap();
    let schedule = FaultPlan::new()
        .channel_transient(ch, 100, 400)
        .compile(&mesh)
        .unwrap();
    let mut sim = Simulation::with_observer(
        &mesh,
        &algo,
        &Uniform,
        config().faults(schedule),
        FaultObserver::new(),
    );
    // A schedule with events after cycle 0 disables the route table.
    assert!(sim.route_table_fallback_reason().is_some());
    while sim.cycle() < 100 {
        sim.step();
    }
    assert!(!sim.is_faulty(ch), "fault applied early");
    sim.step();
    assert!(sim.is_faulty(ch), "fault not applied on its cycle");
    while sim.cycle() < 400 {
        sim.step();
    }
    sim.step();
    assert!(!sim.is_faulty(ch), "repair not applied on its cycle");
    let obs = sim.into_observer();
    assert_eq!(obs.events(), &[(100, ch, true), (400, ch, false)]);
    assert_eq!(obs.failures(), 1);
    assert_eq!(obs.repairs(), 1);
    assert_eq!(obs.downtime_cycles(ch), 300);
    assert_eq!(obs.currently_failed(), 0);
    assert_eq!(obs.peak_failed(), 1);
}

#[test]
fn static_plan_reports_match_with_and_without_route_table() {
    // Satellite regression: a cycle-0 fault plan must not change the
    // numbers depending on whether routing goes through the (pruned)
    // precomputed table or live pruned `route()` calls — even under the
    // RNG-consuming Random selection policies, whose draws depend on
    // the permitted-set size.
    let mesh = Mesh::new_2d(6, 6);
    let algo = WestFirst::nonminimal();
    let run = |mode: RouteTableMode| {
        let cfg = config()
            .injection_rate(0.05)
            .input_selection(InputSelection::Random)
            .output_selection(OutputSelection::Random)
            .route_table(mode)
            .faults(
                FaultPlan::new()
                    .random_channels(3, 99)
                    .compile(&mesh)
                    .unwrap(),
            );
        let mut sim = Simulation::new(&mesh, &algo, &Uniform, cfg);
        (
            sim.route_table_fallback_reason(),
            format!("{:?}", sim.run()),
        )
    };
    let (on_reason, on) = run(RouteTableMode::On);
    let (off_reason, off) = run(RouteTableMode::Off);
    // Static plans keep the table: it is rebuilt against the pruned
    // relation, not disabled.
    assert_eq!(on_reason, None);
    assert_eq!(off_reason, None);
    assert_eq!(on, off, "route table changed a faulted run's report");
}

#[test]
fn isolating_a_node_strands_and_repairing_drains() {
    // Fail every outgoing channel of the node all cross-traffic must
    // transit: the watchdog must report a permanent roadblock (stranded
    // packets, no circular wait), and repairing the channels must let
    // the run drain the blocked packets.
    let mesh = Mesh::new_2d(8, 8);
    let algo = DimensionOrder::new();
    let mut sim = Simulation::new(
        &mesh,
        &algo,
        &CrossTraffic,
        config().injection_rate(0.15).deadlock_threshold(1_500),
    );
    let center = mesh.node_at(&[3, 3].into());
    let out: Vec<_> = [
        Direction::EAST,
        Direction::WEST,
        Direction::NORTH,
        Direction::SOUTH,
    ]
    .iter()
    .filter_map(|&d| mesh.channel_from(center, d))
    .collect();
    assert_eq!(out.len(), 4, "center node must be interior");
    for _ in 0..1_000 {
        assert!(sim.step().is_none(), "healthy warmup deadlocked");
    }
    for &c in &out {
        sim.fail_channel(c);
    }
    let report = loop {
        if let Some(d) = sim.step() {
            break d;
        }
        assert!(sim.cycle() < 60_000, "watchdog never fired");
    };
    assert!(report.cycle.is_empty(), "a roadblock, not a circular wait");
    assert!(!report.stranded.is_empty(), "no stranded packets reported");
    let text = report.to_string();
    assert!(text.contains("permanent blockage"), "{text}");
    for &c in &out {
        sim.repair_channel(c);
    }
    for _ in 0..30_000 {
        sim.step();
    }
    for id in &report.stranded {
        assert!(
            sim.packets()[id.index() as usize].delivered_at.is_some(),
            "packet {} still undelivered after repair",
            id.index()
        );
    }
}

#[test]
fn faulty_channels_are_never_granted() {
    let mesh = Mesh::new_2d(6, 6);
    let algo = WestFirst::nonminimal();
    let mut sim = Simulation::new(
        &mesh,
        &algo,
        &Uniform,
        config().injection_rate(0.1).deadlock_threshold(1_000_000),
    );
    // Fail a scattering of channels.
    let failed: Vec<_> = (0..mesh.num_channels()).step_by(7).collect();
    for c in &failed {
        sim.fail_channel((*c).into());
    }
    for _ in 0..5_000 {
        sim.step();
        for &c in &failed {
            assert_eq!(sim.channel_owner(c.into()), None, "faulty channel granted");
        }
    }
}
