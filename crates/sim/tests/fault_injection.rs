//! Fault tolerance under live traffic: the paper's argument for
//! nonminimal adaptive routing (Sections 1 and 7), exercised in the
//! simulator rather than on paper.

use turnroute_core::{DimensionOrder, WestFirst};
use turnroute_sim::patterns::{TrafficPattern, Uniform};
use turnroute_sim::{RunOutcome, SimConfig, Simulation};
use turnroute_topology::{Direction, Mesh, NodeId, Topology};

fn config() -> SimConfig {
    SimConfig::paper()
        .injection_rate(0.02)
        .warmup_cycles(500)
        .measure_cycles(8_000)
        .deadlock_threshold(3_000)
        .seed(77)
}

/// Kills the eastward channel out of `(3, 3)`.
fn fail_one_link(sim: &mut Simulation<'_>, mesh: &Mesh) {
    let from = mesh.node_at(&[3, 3].into());
    sim.fail_channel(mesh.channel_from(from, Direction::EAST).expect("interior"));
}

/// Traffic that crosses the faulty column: west-side sources at row 3,
/// east-side destinations spread over nearby rows (so xy always crosses
/// at the dead link, while adaptive detours stay short).
struct CrossTraffic;

impl TrafficPattern for CrossTraffic {
    fn name(&self) -> String {
        "cross-the-fault".to_owned()
    }

    fn dest(
        &self,
        topo: &dyn Topology,
        src: NodeId,
        rng: &mut dyn turnroute_rng::RngCore,
    ) -> Option<NodeId> {
        use turnroute_rng::Rng;
        let c = topo.coord_of(src);
        if c.get(0) > 2 || c.get(1) != 3 {
            return None; // west-side row-3 sources only
        }
        let x = rng.random_range(5..topo.radix(0)) as u16;
        let y = rng.random_range(3..6usize) as u16;
        Some(topo.node_at(&[x, y].into()))
    }
}

#[test]
fn nonminimal_west_first_routes_around_a_dead_link() {
    let mesh = Mesh::new_2d(8, 8);
    let algo = WestFirst::nonminimal();
    // Only three row-3 west-side nodes generate: give them a high rate.
    let mut sim = Simulation::new(
        &mesh,
        &algo,
        &CrossTraffic,
        config().injection_rate(0.15).measure_cycles(16_000),
    );
    fail_one_link(&mut sim, &mesh);
    let report = sim.run();
    assert!(
        matches!(report.outcome, RunOutcome::Completed),
        "nonminimal west-first must keep delivering"
    );
    assert!(report.total_delivered > 20, "{}", report.total_delivered);
    // Packets bound for row 3 cannot cross minimally: they detour one
    // row and come back, exceeding the minimal hop count.
    let detours = sim
        .packets()
        .iter()
        .filter(|p| p.delivered_at.is_some())
        .filter(|p| p.hops() > mesh.distance(p.src, p.dst) as u32)
        .count();
    assert!(detours > 0, "some routes must be nonminimal");
}

#[test]
fn minimal_xy_blocks_permanently_at_a_dead_link() {
    // xy crosses at the source row — always row 3, always the dead
    // link. Every generated packet eventually wedges there.
    let mesh = Mesh::new_2d(8, 8);
    let algo = DimensionOrder::new();
    let mut sim = Simulation::new(&mesh, &algo, &CrossTraffic, config());
    fail_one_link(&mut sim, &mesh);
    let report = sim.run();
    match report.outcome {
        RunOutcome::Deadlocked(d) => {
            // Not a circular wait: a permanent roadblock at the failed
            // link.
            assert!(d.cycle.is_empty());
            assert!(
                !d.stranded.is_empty(),
                "fault-blocked packets are roadblocks"
            );
        }
        RunOutcome::Completed => {
            panic!("xy cannot route around a dead link on its only path")
        }
    }
}

#[test]
fn repair_restores_service() {
    let mesh = Mesh::new_2d(8, 8);
    let algo = DimensionOrder::new();
    let mut sim = Simulation::new(
        &mesh,
        &algo,
        &Uniform,
        config().deadlock_threshold(1_000_000),
    );
    // Fail then repair one link; traffic flows normally afterwards.
    let ch = mesh
        .channel_from(mesh.node_at(&[3, 3].into()), Direction::EAST)
        .unwrap();
    sim.fail_channel(ch);
    assert!(sim.is_faulty(ch));
    for _ in 0..2_000 {
        sim.step();
    }
    sim.repair_channel(ch);
    assert!(!sim.is_faulty(ch));
    for _ in 0..20_000 {
        sim.step();
    }
    let delivered = sim
        .packets()
        .iter()
        .filter(|p| p.delivered_at.is_some())
        .count();
    assert!(delivered > 50, "{delivered}");
}

#[test]
fn faulty_channels_are_never_granted() {
    let mesh = Mesh::new_2d(6, 6);
    let algo = WestFirst::nonminimal();
    let mut sim = Simulation::new(
        &mesh,
        &algo,
        &Uniform,
        config().injection_rate(0.1).deadlock_threshold(1_000_000),
    );
    // Fail a scattering of channels.
    let failed: Vec<_> = (0..mesh.num_channels()).step_by(7).collect();
    for c in &failed {
        sim.fail_channel((*c).into());
    }
    for _ in 0..5_000 {
        sim.step();
        for &c in &failed {
            assert_eq!(sim.channel_owner(c.into()), None, "faulty channel granted");
        }
    }
}
