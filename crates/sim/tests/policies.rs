//! Selection-policy behavior and engine edge cases.

use turnroute_core::{DimensionOrder, NegativeFirst, WestFirst};
use turnroute_sim::patterns::{Transpose, Uniform};
use turnroute_sim::{
    InputSelection, LengthDistribution, OutputSelection, PacketState, SimConfig, Simulation,
};
use turnroute_topology::{Mesh, Topology};

fn base() -> SimConfig {
    SimConfig::paper()
        .injection_rate(0.05)
        .warmup_cycles(500)
        .measure_cycles(4_000)
        .seed(21)
}

#[test]
fn every_policy_combination_delivers() {
    let mesh = Mesh::new_2d(5, 5);
    let algo = WestFirst::minimal();
    for input in [
        InputSelection::FirstComeFirstServed,
        InputSelection::FixedPriority,
        InputSelection::Random,
    ] {
        for output in [
            OutputSelection::LowestDimension,
            OutputSelection::HighestDimension,
            OutputSelection::StraightFirst,
            OutputSelection::Random,
        ] {
            let config = base().input_selection(input).output_selection(output);
            let report = Simulation::new(&mesh, &algo, &Uniform, config).run();
            assert!(
                report.total_delivered > 50,
                "{input:?}/{output:?}: {}",
                report.total_delivered
            );
            assert_eq!(report.stranded_packets, 0, "{input:?}/{output:?}");
        }
    }
}

#[test]
fn random_policies_are_deterministic_given_the_seed() {
    let mesh = Mesh::new_2d(5, 5);
    let algo = NegativeFirst::minimal();
    let config = base()
        .input_selection(InputSelection::Random)
        .output_selection(OutputSelection::Random)
        .seed(99);
    let r1 = Simulation::new(&mesh, &algo, &Transpose, config.clone()).run();
    let r2 = Simulation::new(&mesh, &algo, &Transpose, config).run();
    assert_eq!(r1.metrics.latencies, r2.metrics.latencies);
    assert_eq!(r1.total_delivered, r2.total_delivered);
}

#[test]
fn single_flit_packets_behave() {
    let mesh = Mesh::new_2d(6, 6);
    let algo = DimensionOrder::new();
    let config = base()
        .lengths(LengthDistribution::Fixed(1))
        .injection_rate(0.02);
    let mut sim = Simulation::new(&mesh, &algo, &Uniform, config);
    let report = sim.run();
    assert!(report.total_delivered > 20);
    for p in sim.packets() {
        if p.state() == PacketState::Delivered {
            // A 1-flit packet's latency is exactly hops + 1 consume
            // cycle - 1 (the header cycle count), all queueing aside.
            assert!(p.network_latency_cycles().unwrap() >= p.hops() as u64);
        }
    }
}

#[test]
fn burst_of_messages_from_one_node_serializes() {
    let mesh = Mesh::new_2d(4, 4);
    let algo = DimensionOrder::new();
    let mut sim = Simulation::new(
        &mesh,
        &algo,
        &Uniform,
        base().injection_rate(0.0).deadlock_threshold(1_000_000),
    );
    let src = mesh.node_at(&[0, 0].into());
    let ids: Vec<_> = (0..5)
        .map(|i| sim.inject_message(src, mesh.node_at(&[3, (i % 3) as u16].into()), 20))
        .collect();
    for _ in 0..1_000 {
        sim.step();
    }
    let mut deliveries: Vec<u64> = ids
        .iter()
        .map(|&id| sim.packet(id).delivered_at.expect("all delivered"))
        .collect();
    // Injection order is preserved: one injection channel, FIFO queue.
    let sorted = {
        let mut s = deliveries.clone();
        s.sort_unstable();
        s
    };
    assert_eq!(deliveries, sorted);
    // Spacing of at least the packet length between consecutive
    // injections translates into spaced deliveries.
    deliveries.dedup();
    assert_eq!(deliveries.len(), 5);
}

#[test]
fn straight_first_prefers_the_current_direction() {
    // With straight-first output selection, a packet with both
    // directions productive continues straight when possible: routes
    // have at most one turn more often than with lowest-dimension.
    let mesh = Mesh::new_2d(8, 8);
    let algo = NegativeFirst::minimal();
    let count_single_turn = |output: OutputSelection| {
        let config = base().output_selection(output).injection_rate(0.01).seed(5);
        let mut sim = Simulation::new(&mesh, &algo, &Uniform, config);
        sim.run();
        sim.packets()
            .iter()
            .filter(|p| p.delivered_at.is_some())
            .count()
    };
    // Both deliver plenty; this is a smoke check that the policy wiring
    // reaches the router (behavioral differences are asserted in the
    // ablation harness).
    assert!(count_single_turn(OutputSelection::StraightFirst) > 20);
    assert!(count_single_turn(OutputSelection::LowestDimension) > 20);
}

#[test]
fn queue_growth_marks_saturation() {
    let mesh = Mesh::new_2d(4, 4);
    let algo = DimensionOrder::new();
    let config = base().injection_rate(1.5).measure_cycles(8_000);
    let report = Simulation::new(&mesh, &algo, &Uniform, config).run();
    assert!(
        !report.sustainable(),
        "1.5 flits/cycle/node is far past capacity"
    );
    // But it still delivers at the network's own rate.
    assert!(report.metrics.throughput_flits_per_usec() > 0.0);
}
