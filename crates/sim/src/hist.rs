//! A log-bucketed, mergeable latency histogram.
//!
//! The engines used to accumulate every measured latency in a `Vec<u64>`
//! and clone + sort the whole vector on every quantile query. This
//! module replaces that with a fixed-layout histogram in the spirit of
//! HDR histograms: values below [`LINEAR_LIMIT`] land in exact unit-wide
//! buckets; above it, each power-of-two octave is split into
//! [`SUB_BUCKETS`] equal sub-buckets, bounding the relative bucket width
//! at `1 / SUB_BUCKETS`. Recording is O(1), quantiles are one O(buckets)
//! scan, and two histograms merge by element-wise addition — which is
//! what lets the parallel [`Executor`](crate::exec::Executor) cheaply
//! aggregate p50/p95/p99 across worker threads.
//!
//! The count and sum are tracked exactly, so means are exact; only
//! quantiles are approximated, and every quantile query returns the
//! upper bound of the bucket holding the requested rank, i.e. within one
//! bucket width of the exact order statistic.

/// Values strictly below this limit are recorded exactly (one bucket per
/// value).
pub const LINEAR_LIMIT: u64 = 64;

/// Sub-buckets per power-of-two octave above the linear range. The
/// relative error of a quantile is at most `1 / SUB_BUCKETS`.
pub const SUB_BUCKETS: usize = 32;

/// log2 of [`LINEAR_LIMIT`].
const LINEAR_BITS: u32 = LINEAR_LIMIT.trailing_zeros();

/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// Octaves `[2^k, 2^(k+1))` for `k` in `LINEAR_BITS..64`.
const NUM_OCTAVES: usize = 64 - LINEAR_BITS as usize;

/// Total number of buckets in the fixed layout.
const NUM_BUCKETS: usize = LINEAR_LIMIT as usize + NUM_OCTAVES * SUB_BUCKETS;

/// The bucket index of `value`.
fn bucket_of(value: u64) -> usize {
    if value < LINEAR_LIMIT {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let sub = ((value >> (msb - SUB_BITS)) as usize) & (SUB_BUCKETS - 1);
    LINEAR_LIMIT as usize + (msb - LINEAR_BITS) as usize * SUB_BUCKETS + sub
}

/// The inclusive `(low, high)` value range of bucket `index`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < LINEAR_LIMIT as usize {
        return (index as u64, index as u64);
    }
    let rest = index - LINEAR_LIMIT as usize;
    let msb = LINEAR_BITS + (rest / SUB_BUCKETS) as u32;
    let sub = (rest % SUB_BUCKETS) as u64;
    let width = 1u64 << (msb - SUB_BITS);
    let low = (1u64 << msb) + sub * width;
    (low, low + (width - 1))
}

/// A mergeable histogram of `u64` samples (latencies in cycles).
///
/// Count, sum, min and max are exact; quantiles are exact below
/// [`LINEAR_LIMIT`] and within one log bucket (relative width
/// `1 / SUB_BUCKETS`) above it.
///
/// # Example
///
/// ```
/// use turnroute_sim::LatencyHistogram;
///
/// let mut h = LatencyHistogram::default();
/// for v in [10, 20, 30, 40] {
///     h.record(v);
/// }
/// assert_eq!(h.len(), 4);
/// assert_eq!(h.mean(), Some(25.0));
/// assert_eq!(h.quantile(0.0), Some(10));
/// assert_eq!(h.quantile(1.0), Some(40));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; NUM_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram (same as `default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// A histogram with every value of `values` recorded — the
    /// replacement for building a latency `Vec` by hand in tests.
    pub fn from_values(values: &[u64]) -> Self {
        let mut h = Self::default();
        for &v in values {
            h.record(v);
        }
        h
    }

    /// Records one sample. O(1).
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] += 1;
    }

    /// Adds every sample of `other` into `self`. Merging is exact for
    /// counts, sums and extrema, and bucket-exact for quantiles, so
    /// per-thread histograms aggregate without loss of resolution.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean of the recorded samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile (`0..=1`) of the recorded samples.
    ///
    /// Ranks match the classic sorted-vector rule
    /// `sorted[round((n - 1) * q)]`; the returned value is the upper
    /// bound of the bucket holding that rank, clamped to the observed
    /// maximum — exact below [`LINEAR_LIMIT`], within one bucket width
    /// above it.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum > rank {
                let (low, high) = bucket_bounds(i);
                return Some(high.min(self.max).max(low.min(self.max)));
            }
        }
        Some(self.max)
    }

    /// The inclusive `(low, high)` bounds of the bucket `value` falls
    /// into — the resolution guarantee quantile queries are accurate to.
    pub fn bucket_bounds_of(value: u64) -> (u64, u64) {
        bucket_bounds(bucket_of(value))
    }

    /// Number of recorded samples in buckets lying entirely at or below
    /// `bound` — the cumulative count a Prometheus histogram `le`
    /// bucket needs. Exact below [`LINEAR_LIMIT`]; above it, samples in
    /// the bucket straddling `bound` are excluded, so the result may
    /// undercount by at most one bucket's population (relative width
    /// `1 / SUB_BUCKETS`). Monotone in `bound`, and
    /// `count_le(u64::MAX) == len()`.
    pub fn count_le(&self, bound: u64) -> u64 {
        let mut cum = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            let (low, high) = bucket_bounds(i);
            if high <= bound {
                cum += c;
            } else if low > bound {
                break;
            }
        }
        cum
    }

    /// The occupied buckets as `(low, high, count)` triples, in
    /// ascending value order (for compact reporting).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (low, high) = bucket_bounds(i);
                (low, high, c)
            })
    }
}

impl std::fmt::Debug for LatencyHistogram {
    /// Compact rendering: the full bucket array is almost entirely
    /// zeros, so only summary statistics and occupied buckets print.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max())
            .field("occupied_buckets", &self.nonzero_buckets().count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_statistics() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn small_values_are_exact() {
        let h = LatencyHistogram::from_values(&[0, 1, 5, 63, 63]);
        assert_eq!(h.len(), 5);
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(5));
        assert_eq!(h.quantile(1.0), Some(63));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(63));
    }

    #[test]
    fn mean_is_exact_for_any_magnitude() {
        let h = LatencyHistogram::from_values(&[1_000_000, 3_000_000]);
        assert_eq!(h.mean(), Some(2_000_000.0));
        assert_eq!(h.sum(), 4_000_000);
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        for v in (0..1_000_000u64).step_by(997) {
            let (low, high) = LatencyHistogram::bucket_bounds_of(v);
            assert!(low <= v && v <= high, "{v} outside [{low}, {high}]");
            if v >= LINEAR_LIMIT {
                // Bounded relative width.
                assert!(
                    (high - low + 1) as f64 / v as f64 <= 1.0 / SUB_BUCKETS as f64 + f64::EPSILON,
                    "bucket [{low}, {high}] too wide for {v}"
                );
            } else {
                assert_eq!(low, high);
            }
        }
    }

    #[test]
    fn quantiles_match_exact_within_one_bucket() {
        // A deterministic pseudo-random sample over several octaves.
        let mut state = 0x1234_5678u64;
        let mut values: Vec<u64> = (0..5_000)
            .map(|_| {
                turnroute_rng::split_mix_64(&mut state);
                state % 300_000
            })
            .collect();
        let h = LatencyHistogram::from_values(&values);
        values.sort_unstable();
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = values[((values.len() - 1) as f64 * q).round() as usize];
            let approx = h.quantile(q).unwrap();
            let (low, high) = LatencyHistogram::bucket_bounds_of(exact);
            assert!(
                approx >= low && approx <= high,
                "q={q}: approx {approx} outside exact bucket [{low}, {high}]"
            );
        }
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let a_vals: Vec<u64> = (0..500).map(|i| i * 7 % 10_000).collect();
        let b_vals: Vec<u64> = (0..700).map(|i| i * 13 % 90_000).collect();
        let a = LatencyHistogram::from_values(&a_vals);
        let b = LatencyHistogram::from_values(&b_vals);
        let mut merged = a.clone();
        merged.merge(&b);
        let mut all = a_vals;
        all.extend(b_vals);
        let direct = LatencyHistogram::from_values(&all);
        assert_eq!(merged, direct);
        assert_eq!(merged.len(), 1_200);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let a = LatencyHistogram::from_values(&[1, 64, 4_096]);
        let b = LatencyHistogram::from_values(&[2, 128, 1_000_000]);
        let c = LatencyHistogram::from_values(&[0, 63, 65_537]);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must be associative");
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut state = 0xFEED_FACEu64;
        let values: Vec<u64> = (0..2_000)
            .map(|_| {
                turnroute_rng::split_mix_64(&mut state);
                state % 1_000_000
            })
            .collect();
        let h = LatencyHistogram::from_values(&values);
        let mut prev = 0u64;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile(q).unwrap();
            assert!(
                v >= prev,
                "quantile({q}) = {v} < quantile of smaller q = {prev}"
            );
            prev = v;
        }
        // The extremes are exact to within their buckets: q = 1 clamps
        // to the observed max, q = 0 returns the min's bucket bound.
        assert_eq!(h.quantile(1.0), h.max());
        let (low, high) = LatencyHistogram::bucket_bounds_of(h.min().unwrap());
        let q0 = h.quantile(0.0).unwrap();
        assert!(q0 >= low && q0 <= high, "q0 {q0} outside [{low}, {high}]");
    }

    #[test]
    fn merged_quantiles_match_concatenated_within_bucket_error() {
        let a_vals: Vec<u64> = (0..800).map(|i| i * 31 % 200_000).collect();
        let b_vals: Vec<u64> = (0..600).map(|i| i * 17 % 5_000).collect();
        let mut merged = LatencyHistogram::from_values(&a_vals);
        merged.merge(&LatencyHistogram::from_values(&b_vals));

        let mut all = a_vals;
        all.extend(b_vals);
        all.sort_unstable();
        for q in [0.01, 0.1, 0.5, 0.9, 0.99] {
            let exact = all[((all.len() - 1) as f64 * q).round() as usize];
            let approx = merged.quantile(q).unwrap();
            let (low, high) = LatencyHistogram::bucket_bounds_of(exact);
            assert!(
                approx >= low && approx <= high,
                "q={q}: merged quantile {approx} outside exact bucket [{low}, {high}]"
            );
        }
    }

    #[test]
    fn count_le_is_monotone_and_bucket_exact() {
        let h = LatencyHistogram::from_values(&[0, 1, 5, 63, 100, 10_000, 1_000_000]);
        // Exact in the linear range.
        assert_eq!(h.count_le(0), 1);
        assert_eq!(h.count_le(4), 2);
        assert_eq!(h.count_le(63), 4);
        // Above the linear range, within one bucket of exact.
        let (_, high_100) = LatencyHistogram::bucket_bounds_of(100);
        assert_eq!(h.count_le(high_100), 5);
        assert_eq!(h.count_le(u64::MAX), h.len());
        // Monotone in the bound.
        let mut prev = 0;
        for bound in [0u64, 10, 63, 64, 1_000, 100_000, 10_000_000] {
            let c = h.count_le(bound);
            assert!(c >= prev, "count_le({bound}) regressed");
            prev = c;
        }
        assert_eq!(LatencyHistogram::new().count_le(u64::MAX), 0);
    }

    #[test]
    fn equality_tracks_recorded_values() {
        let a = LatencyHistogram::from_values(&[1, 2, 3]);
        let b = LatencyHistogram::from_values(&[1, 2, 3]);
        let c = LatencyHistogram::from_values(&[1, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn out_of_range_quantile_panics() {
        let _ = LatencyHistogram::from_values(&[1]).quantile(1.5);
    }

    #[test]
    fn debug_is_compact() {
        let h = LatencyHistogram::from_values(&[5, 500, 50_000]);
        let text = format!("{h:?}");
        assert!(text.contains("count: 3"));
        assert!(text.len() < 200, "debug should not dump the bucket array");
    }
}
