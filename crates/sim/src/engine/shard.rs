//! The sharded (multi-threaded) run path: one simulation partitioned
//! into contiguous node ranges whose arbitration runs on worker threads
//! between cycle barriers.
//!
//! Determinism is by construction, not by luck (full argument in
//! `DESIGN.md` §11): every channel a requester can ask for exits its
//! head node, so grant conflicts only ever occur between requesters
//! sharing a head node — and the partition assigns all of those to the
//! same shard. Each shard therefore computes exactly the serial greedy
//! grant sequence restricted to its nodes, and a single merge sort by
//! the global input-selection key reproduces the serial grant list
//! verbatim. All RNG draws stay in the serial phases (traffic
//! generation, in node order), so the stream is untouched. Reports are
//! bit-identical at every shard count; the conformance suite and the
//! `shard_determinism` integration test enforce this.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex, RwLock};

use super::{RunOutcome, SimReport, Simulation, MAX_DIRS};
use crate::config::{InputSelection, OutputSelection};
use crate::obs::SimObserver;
use crate::packet::PacketId;
use turnroute_topology::ChannelId;

/// Hard cap on worker threads per run, far above any sensible core
/// count; keeps a corrupt `--shards` value from exhausting the OS.
const MAX_SHARDS: usize = 256;

/// Per-shard arbitration output and scratch, double-buffered behind a
/// `Mutex` only for ownership (each is touched by exactly one worker at
/// a time, then the coordinator — never concurrently).
struct ShardScratch {
    /// Requester buffer, kept across cycles to avoid reallocation.
    requesters: Vec<PacketId>,
    /// This shard's grants, in global-key order within the shard.
    grants: Vec<(PacketId, ChannelId)>,
    /// Headers whose pruned direction set came up permanently empty.
    newly_stranded: Vec<PacketId>,
    /// Shard-local epoch-stamped "granted this cycle" marks (see
    /// [`super::Scratch::granted_epoch`]).
    granted_epoch: Vec<u64>,
}

/// Splits `nodes` into `shards` contiguous ranges whose sizes differ by
/// at most one.
fn partition(nodes: usize, shards: usize) -> Vec<(usize, usize)> {
    let base = nodes / shards;
    let extra = nodes % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut lo = 0;
    for k in 0..shards {
        let hi = lo + base + usize::from(k < extra);
        ranges.push((lo, hi));
        lo = hi;
    }
    ranges
}

impl<'a, O: SimObserver + Send + Sync> Simulation<'a, O> {
    /// Runs warmup, the measurement window, then a drain phase (with
    /// generation disabled) so that measured messages can finish.
    ///
    /// When [`SimConfig::shards`](crate::SimConfig::shards) asks for
    /// more than one shard, arbitration is partitioned across worker
    /// threads at a cycle barrier; the report is bit-identical to the
    /// serial engine's at every shard count. Configurations the sharded
    /// arbitrator cannot split deterministically fall back to serial
    /// with the reason recorded in
    /// [`Simulation::shard_fallback_reason`].
    pub fn run(&mut self) -> SimReport {
        self.metrics.window_start = self.config.warmup_cycles;
        self.metrics.window_end = self.config.warmup_cycles + self.config.measure_cycles;
        let shards = self.effective_shards();
        if shards <= 1 {
            self.run_serial()
        } else {
            self.run_sharded(shards)
        }
    }

    /// Resolves the configured shard count against the host and this
    /// run's configuration; `1` means "use the serial path" (recording
    /// why in `shard_fallback` when sharding was requested but refused).
    fn effective_shards(&mut self) -> usize {
        let requested = match self.config.shards {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            n => n,
        };
        let requested = requested.min(MAX_SHARDS).min(self.topo.num_nodes());
        if requested <= 1 {
            return 1;
        }
        if O::ENABLED {
            // `packet_blocked` fires per requester *during* arbitration,
            // in global priority order; splitting that stream would
            // reorder observed runs.
            self.shard_fallback = Some("observer attached");
            return 1;
        }
        if self.config.input_selection == InputSelection::Random {
            self.shard_fallback = Some("Random input selection draws RNG during arbitration");
            return 1;
        }
        if self.config.output_selection == OutputSelection::Random {
            self.shard_fallback = Some("Random output selection draws RNG during arbitration");
            return 1;
        }
        requested
    }

    /// The multi-threaded run loop: persistent workers arbitrate their
    /// node ranges between two barriers per cycle; everything else
    /// (fault replay, generation, grant commit, metrics, the watchdog)
    /// stays serial in the coordinator, preserving the exact serial
    /// order of every mutation and RNG draw.
    fn run_sharded(&mut self, shards: usize) -> SimReport {
        let drain_limit = self.metrics.window_end + self.config.measure_cycles;
        let ranges = partition(self.topo.num_nodes(), shards);
        let num_channels = self.topo.num_channels();
        let outs: Vec<Mutex<ShardScratch>> = (0..shards)
            .map(|_| {
                Mutex::new(ShardScratch {
                    requesters: Vec::new(),
                    grants: Vec::new(),
                    newly_stranded: Vec::new(),
                    granted_epoch: vec![0; num_channels],
                })
            })
            .collect();
        let done = AtomicBool::new(false);
        let barrier = Barrier::new(shards + 1);
        let mut outcome = RunOutcome::Completed;
        {
            // Scoped so the lock's `&mut *self` reborrow ends before
            // `build_report` borrows `self` again below.
            let lock = RwLock::new(&mut *self);
            std::thread::scope(|scope| {
                for (k, &(lo, hi)) in ranges.iter().enumerate() {
                    let (lock, barrier, done, out) = (&lock, &barrier, &done, &outs[k]);
                    scope.spawn(move || loop {
                        barrier.wait();
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        let sim = lock.read().unwrap();
                        sim.arbitrate_shard(lo, hi, &mut out.lock().unwrap());
                        drop(sim);
                        barrier.wait();
                    });
                }
                loop {
                    // Serial head of the cycle, under the write lock (all
                    // workers are parked at the cycle-start barrier).
                    let stop = {
                        let mut guard = lock.write().unwrap();
                        let sim = &mut **guard;
                        if sim.cycle >= drain_limit {
                            true
                        } else {
                            if sim.cycle == sim.metrics.window_end {
                                sim.disable_generation();
                            }
                            sim.begin_cycle();
                            false
                        }
                    };
                    if stop {
                        done.store(true, Ordering::Release);
                        barrier.wait();
                        break;
                    }
                    barrier.wait(); // release workers into arbitration
                    barrier.wait(); // all shards done; read locks dropped
                    let finished = {
                        let mut guard = lock.write().unwrap();
                        let sim = &mut **guard;
                        sim.merge_shards(&outs);
                        if let Some(report) = sim.finish_cycle() {
                            outcome = RunOutcome::Deadlocked(report);
                            true
                        } else {
                            // Stop draining early once the network is empty.
                            sim.cycle > sim.metrics.window_end
                                && sim.in_flight.is_empty()
                                && sim.queued_messages() == 0
                        }
                    };
                    if finished {
                        done.store(true, Ordering::Release);
                        barrier.wait();
                        break;
                    }
                }
            });
        }
        self.build_report(outcome)
    }

    /// One shard's arbitration: the serial grant loop restricted to
    /// requesters whose head node lies in `[lo, hi)`, writing grants
    /// and stranding candidates to `out` instead of mutating the
    /// simulation. Read-only on `self`, so every shard runs
    /// concurrently under the read lock.
    fn arbitrate_shard(&self, lo: usize, hi: usize, out: &mut ShardScratch) {
        out.requesters.clear();
        self.collect_requesters(lo, hi, &mut out.requesters);
        // Disjoint subsets sorted by the same total order: each shard's
        // sequence is the serial sequence restricted to its nodes.
        self.sort_requesters(&mut out.requesters);
        out.grants.clear();
        out.newly_stranded.clear();
        let epoch = self.cycle + 1;
        let mut candidates = [ChannelId::new(0); MAX_DIRS];
        for &id in &out.requesters {
            let (count, permitted) = self.candidates_deterministic(id, &mut candidates);
            if count == 0 {
                // Candidate channels all exit the head node, so "free"
                // here can only be invalidated by an earlier grant in
                // *this* shard — which the epoch marks below record.
                if permitted.is_empty() && self.strands_permanently(id) {
                    out.newly_stranded.push(id);
                }
                continue;
            }
            if let Some(&channel) = candidates[..count]
                .iter()
                .find(|c| out.granted_epoch[c.index()] != epoch)
            {
                out.granted_epoch[channel.index()] = epoch;
                out.grants.push((id, channel));
            }
        }
    }

    /// Commits the shards' outputs as if the serial arbitrator had
    /// produced them: strands flagged headers, then rebuilds the global
    /// grant list by sorting the disjoint per-shard lists with the same
    /// key the serial path sorts requesters by — reproducing the serial
    /// grant order exactly (which [`Simulation::advance`] relies on for
    /// in-flight ordering).
    fn merge_shards(&mut self, outs: &[Mutex<ShardScratch>]) {
        let mut grants = std::mem::take(&mut self.scratch.grants);
        grants.clear();
        for out in outs {
            let out = out.lock().unwrap();
            grants.extend_from_slice(&out.grants);
            for &id in &out.newly_stranded {
                self.strand(id);
            }
        }
        match self.config.input_selection {
            InputSelection::FirstComeFirstServed => {
                grants.sort_unstable_by_key(|&(id, _)| self.fcfs_key(id));
            }
            InputSelection::FixedPriority => {
                grants.sort_unstable_by_key(|&(id, _)| self.fixed_priority_key(id));
            }
            InputSelection::Random => unreachable!("Random falls back to the serial path"),
        }
        self.scratch.grants = grants;
    }
}

#[cfg(test)]
mod tests {
    use super::partition;

    #[test]
    fn partition_covers_contiguously() {
        for nodes in [1usize, 2, 7, 64, 255, 256] {
            for shards in 1..=nodes.min(9) {
                let ranges = partition(nodes, shards);
                assert_eq!(ranges.len(), shards);
                assert_eq!(ranges[0].0, 0);
                assert_eq!(ranges[shards - 1].1, nodes);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
                let (min, max) = ranges
                    .iter()
                    .map(|&(lo, hi)| hi - lo)
                    .fold((usize::MAX, 0), |(mn, mx), len| (mn.min(len), mx.max(len)));
                assert!(max - min <= 1, "uneven partition: {ranges:?}");
                assert!(min >= 1, "empty shard: {ranges:?}");
            }
        }
    }
}
