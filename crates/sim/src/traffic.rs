//! Message generation: Poisson arrivals with the paper's bimodal
//! lengths.

use crate::config::LengthDistribution;
use turnroute_rng::{Rng, RngCore};

/// Per-node Poisson message source: inter-arrival times are drawn from a
/// negative exponential distribution (Section 6), message lengths from
/// the configured [`LengthDistribution`].
#[derive(Debug, Clone)]
pub struct PoissonSource {
    mean_interarrival: Option<f64>,
    lengths: LengthDistribution,
    /// Next arrival cycle per node (fractional cycles accumulate so the
    /// rate is exact in the long run).
    next_arrival: Vec<f64>,
}

impl PoissonSource {
    /// Creates a source for `num_nodes` nodes. `mean_interarrival` is in
    /// cycles; `None` disables generation. Initial phases are staggered
    /// by drawing the first arrival of each node from the same
    /// exponential.
    pub fn new(
        num_nodes: usize,
        mean_interarrival: Option<f64>,
        lengths: LengthDistribution,
        rng: &mut dyn RngCore,
    ) -> Self {
        let next_arrival = match mean_interarrival {
            None => vec![f64::INFINITY; num_nodes],
            Some(mean) => (0..num_nodes).map(|_| exponential(rng, mean)).collect(),
        };
        PoissonSource {
            mean_interarrival,
            lengths,
            next_arrival,
        }
    }

    /// Calls `emit(length)` once per message node `node` generates up to
    /// and including `cycle`.
    pub fn poll(
        &mut self,
        node: usize,
        cycle: u64,
        rng: &mut dyn RngCore,
        mut emit: impl FnMut(u32),
    ) {
        let Some(mean) = self.mean_interarrival else {
            return;
        };
        while self.next_arrival[node] <= cycle as f64 {
            emit(self.sample_length(rng));
            self.next_arrival[node] += exponential(rng, mean);
        }
    }

    /// Draws a message length.
    pub fn sample_length(&self, rng: &mut dyn RngCore) -> u32 {
        match self.lengths {
            LengthDistribution::Fixed(l) => l,
            LengthDistribution::Bimodal { short, long } => {
                if rng.random_bool(0.5) {
                    short
                } else {
                    long
                }
            }
        }
    }
}

/// An exponential variate with the given mean, via inverse transform.
fn exponential(rng: &mut dyn RngCore, mean: f64) -> f64 {
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -u.ln() * mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_rng::StdRng;

    #[test]
    fn rate_is_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut src = PoissonSource::new(1, Some(50.0), LengthDistribution::Fixed(10), &mut rng);
        let mut count = 0u32;
        for cycle in 0..100_000u64 {
            src.poll(0, cycle, &mut rng, |_| count += 1);
        }
        // Expected 2000 messages; Poisson sd is ~45.
        assert!((1800..2200).contains(&count), "got {count}");
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut src = PoissonSource::new(4, None, LengthDistribution::paper(), &mut rng);
        for cycle in 0..1000 {
            src.poll(2, cycle, &mut rng, |_| panic!("no messages at zero load"));
        }
    }

    #[test]
    fn bimodal_lengths_are_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let src = PoissonSource::new(1, Some(1.0), LengthDistribution::paper(), &mut rng);
        let mut shorts = 0;
        for _ in 0..1000 {
            let l = src.sample_length(&mut rng);
            assert!(l == 10 || l == 200);
            if l == 10 {
                shorts += 1;
            }
        }
        assert!((420..580).contains(&shorts), "got {shorts}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..20_000).map(|_| exponential(&mut rng, 7.0)).sum::<f64>() / 20_000.0;
        assert!((mean - 7.0).abs() < 0.2, "got {mean}");
    }

    #[test]
    fn bursts_in_one_poll_are_possible() {
        // With a tiny mean, one poll spanning many cycles emits several
        // messages.
        let mut rng = StdRng::seed_from_u64(4);
        let mut src = PoissonSource::new(1, Some(0.5), LengthDistribution::Fixed(1), &mut rng);
        let mut count = 0;
        src.poll(0, 100, &mut rng, |_| count += 1);
        assert!(count > 50, "got {count}");
    }
}
