//! Message generation: Poisson or MMPP (bursty on-off) arrivals with
//! the paper's bimodal lengths.
//!
//! [`TrafficSource`] is the single entry point both the optimized
//! engine and the `turnroute-check` naive oracle construct — with the
//! same arguments, in the same order — so the arrival/length RNG
//! stream is bit-identical between them *by construction*. The source
//! IS the specification of that stream: any change here changes both
//! sides at once.

use crate::config::{LengthDistribution, SimConfig, TrafficModel};
use turnroute_rng::{split_mix_64, Rng, RngCore, StdRng};

/// Per-node Poisson message source: inter-arrival times are drawn from a
/// negative exponential distribution (Section 6), message lengths from
/// the configured [`LengthDistribution`].
#[derive(Debug, Clone)]
pub struct PoissonSource {
    mean_interarrival: Option<f64>,
    lengths: LengthDistribution,
    /// Next arrival cycle per node (fractional cycles accumulate so the
    /// rate is exact in the long run).
    next_arrival: Vec<f64>,
}

impl PoissonSource {
    /// Creates a source for `num_nodes` nodes. `mean_interarrival` is in
    /// cycles; `None` disables generation. Initial phases are staggered
    /// by drawing the first arrival of each node from the same
    /// exponential.
    pub fn new(
        num_nodes: usize,
        mean_interarrival: Option<f64>,
        lengths: LengthDistribution,
        rng: &mut dyn RngCore,
    ) -> Self {
        let next_arrival = match mean_interarrival {
            None => vec![f64::INFINITY; num_nodes],
            Some(mean) => (0..num_nodes).map(|_| exponential(rng, mean)).collect(),
        };
        PoissonSource {
            mean_interarrival,
            lengths,
            next_arrival,
        }
    }

    /// Calls `emit(length)` once per message node `node` generates up to
    /// and including `cycle`.
    pub fn poll(
        &mut self,
        node: usize,
        cycle: u64,
        rng: &mut dyn RngCore,
        mut emit: impl FnMut(u32),
    ) {
        let Some(mean) = self.mean_interarrival else {
            return;
        };
        while self.next_arrival[node] <= cycle as f64 {
            emit(self.sample_length(rng));
            self.next_arrival[node] += exponential(rng, mean);
        }
    }

    /// Draws a message length.
    pub fn sample_length(&self, rng: &mut dyn RngCore) -> u32 {
        match self.lengths {
            LengthDistribution::Fixed(l) => l,
            LengthDistribution::Bimodal { short, long } => {
                if rng.random_bool(0.5) {
                    short
                } else {
                    long
                }
            }
        }
    }
}

/// An exponential variate with the given mean, via inverse transform.
fn exponential(rng: &mut dyn RngCore, mean: f64) -> f64 {
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -u.ln() * mean
}

/// One node's lane of an [`MmppSource`]: its private RNG stream plus
/// the state of its on-off modulating chain.
#[derive(Debug, Clone)]
struct MmppLane {
    /// This node's private generator. Every draw the node ever makes —
    /// initial state, sojourn lengths, arrivals, message lengths —
    /// comes from here, so the sequence is independent of every other
    /// node and of how the run is threaded or sharded.
    rng: StdRng,
    /// Whether the node is currently in the ON (bursting) state.
    on: bool,
    /// Cycle (fractional) at which the current sojourn ends.
    next_toggle: f64,
    /// Next arrival cycle; `INFINITY` while OFF.
    next_arrival: f64,
}

/// Domain-separation tag folded into per-node traffic seeds so the
/// streams can never collide with the fault schedule's or the
/// executor's seed derivations.
const MMPP_SEED_TAG: u64 = 0x7472_6166_6669_633A; // "traffic:"

/// Per-node 2-state Markov-modulated Poisson source (bursty on-off
/// arrivals), normalized so the long-run mean rate equals the
/// configured injection rate.
///
/// Unlike [`PoissonSource`], which interleaves every node's draws on
/// one shared stream, each node here owns a private [`StdRng`] seeded
/// prefix-nested from `(run seed, node)` — the same discipline as the
/// fault schedule — so the arrival sequence of a node is a pure
/// function of `(seed, node)` and reports stay byte-identical at any
/// `--threads` / `--shards`.
#[derive(Debug, Clone)]
pub struct MmppSource {
    on_mean_interarrival: Option<f64>,
    burst_cycles: f64,
    idle_cycles: f64,
    lengths: LengthDistribution,
    lanes: Vec<MmppLane>,
}

impl MmppSource {
    /// Creates a source for `num_nodes` nodes. `mean_interarrival` is
    /// the *long-run* mean in cycles (same convention as
    /// [`PoissonSource::new`]); `None` disables generation. While ON,
    /// arrivals are exponential with mean `mean_interarrival * duty`
    /// where `duty = burst / (burst + idle)`, which restores the
    /// configured long-run rate. Initial states are drawn with the
    /// chain's stationary probability so the process starts in
    /// equilibrium.
    ///
    /// # Panics
    ///
    /// Panics if `burst_cycles` or `idle_cycles` is not positive and
    /// finite (spec layers reject these earlier with typed errors).
    pub fn new(
        num_nodes: usize,
        mean_interarrival: Option<f64>,
        lengths: LengthDistribution,
        burst_cycles: f64,
        idle_cycles: f64,
        seed: u64,
    ) -> Self {
        let model = TrafficModel::Mmpp {
            burst_cycles,
            idle_cycles,
        };
        if let Err(e) = model.check() {
            panic!("{e}");
        }
        let duty = model.duty();
        let on_mean = mean_interarrival.map(|m| m * duty);
        let lanes = (0..num_nodes)
            .map(|node| {
                // Prefix-nested per-node seed: tag, then run seed, then
                // node index, each stirred in before use.
                let mut s = MMPP_SEED_TAG;
                s ^= seed;
                split_mix_64(&mut s);
                s ^= node as u64;
                let mut rng = StdRng::seed_from_u64(split_mix_64(&mut s));
                let on = rng.random_bool(duty);
                let sojourn = if on { burst_cycles } else { idle_cycles };
                let next_toggle = exponential(&mut rng, sojourn);
                let next_arrival = match (on, on_mean) {
                    (true, Some(m)) => exponential(&mut rng, m),
                    _ => f64::INFINITY,
                };
                MmppLane {
                    rng,
                    on,
                    next_toggle,
                    next_arrival,
                }
            })
            .collect();
        MmppSource {
            on_mean_interarrival: on_mean,
            burst_cycles,
            idle_cycles,
            lengths,
            lanes,
        }
    }

    /// Calls `emit(length)` once per message node `node` generates up
    /// to and including `cycle`. All draws use the node's private
    /// stream; the shared engine RNG is never touched.
    pub fn poll(&mut self, node: usize, cycle: u64, mut emit: impl FnMut(u32)) {
        let Some(on_mean) = self.on_mean_interarrival else {
            return;
        };
        let lane = &mut self.lanes[node];
        let now = cycle as f64;
        loop {
            // Arrivals win ties with toggles: an arrival drawn at or
            // before the sojourn boundary belongs to the current ON
            // period. The rule is arbitrary but shared (engine and
            // oracle run this very code), so it cannot diverge.
            if lane.next_arrival <= now && lane.next_arrival <= lane.next_toggle {
                emit(sample_length(self.lengths, &mut lane.rng));
                lane.next_arrival += exponential(&mut lane.rng, on_mean);
            } else if lane.next_toggle <= now {
                let at = lane.next_toggle;
                lane.on = !lane.on;
                if lane.on {
                    lane.next_toggle = at + exponential(&mut lane.rng, self.burst_cycles);
                    lane.next_arrival = at + exponential(&mut lane.rng, on_mean);
                } else {
                    lane.next_toggle = at + exponential(&mut lane.rng, self.idle_cycles);
                    // Any arrival drawn past the ON period is discarded:
                    // exponential memorylessness makes redrawing at the
                    // next ON entry distribution-identical.
                    lane.next_arrival = f64::INFINITY;
                }
            } else {
                return;
            }
        }
    }
}

/// Draws a message length from `lengths` using `rng`.
fn sample_length(lengths: LengthDistribution, rng: &mut dyn RngCore) -> u32 {
    match lengths {
        LengthDistribution::Fixed(l) => l,
        LengthDistribution::Bimodal { short, long } => {
            if rng.random_bool(0.5) {
                short
            } else {
                long
            }
        }
    }
}

/// The arrival process of one run, dispatching on
/// [`SimConfig::traffic`](crate::SimConfig).
///
/// Both the optimized engine and the conformance oracle build this via
/// [`TrafficSource::for_config`] with identical arguments, which makes
/// their arrival/length RNG streams bit-identical by construction.
#[derive(Debug, Clone)]
pub enum TrafficSource {
    /// Stationary Poisson arrivals on the shared engine stream (the
    /// paper's model; draw-for-draw identical to the pre-axis engine).
    Poisson(PoissonSource),
    /// Bursty on-off arrivals on per-node private streams.
    Mmpp(MmppSource),
}

impl TrafficSource {
    /// Builds the source `config` asks for. For [`TrafficModel::Poisson`]
    /// this draws each node's initial phase from `rng` — exactly the
    /// draws [`PoissonSource::new`] always made, so legacy seeds
    /// reproduce. For [`TrafficModel::Mmpp`] the shared `rng` is left
    /// untouched; all state derives from per-node streams.
    pub fn for_config(num_nodes: usize, config: &SimConfig, rng: &mut dyn RngCore) -> Self {
        match config.traffic {
            TrafficModel::Poisson => TrafficSource::Poisson(PoissonSource::new(
                num_nodes,
                config.mean_interarrival_cycles(),
                config.lengths,
                rng,
            )),
            TrafficModel::Mmpp {
                burst_cycles,
                idle_cycles,
            } => TrafficSource::Mmpp(MmppSource::new(
                num_nodes,
                config.mean_interarrival_cycles(),
                config.lengths,
                burst_cycles,
                idle_cycles,
                config.seed,
            )),
        }
    }

    /// Calls `emit(length)` once per message node `node` generates up
    /// to and including `cycle`. `rng` is the shared engine stream;
    /// only the Poisson model consumes it.
    pub fn poll(&mut self, node: usize, cycle: u64, rng: &mut dyn RngCore, emit: impl FnMut(u32)) {
        match self {
            TrafficSource::Poisson(src) => src.poll(node, cycle, rng, emit),
            TrafficSource::Mmpp(src) => src.poll(node, cycle, emit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_rng::StdRng;

    #[test]
    fn rate_is_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut src = PoissonSource::new(1, Some(50.0), LengthDistribution::Fixed(10), &mut rng);
        let mut count = 0u32;
        for cycle in 0..100_000u64 {
            src.poll(0, cycle, &mut rng, |_| count += 1);
        }
        // Expected 2000 messages; Poisson sd is ~45.
        assert!((1800..2200).contains(&count), "got {count}");
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut src = PoissonSource::new(4, None, LengthDistribution::paper(), &mut rng);
        for cycle in 0..1000 {
            src.poll(2, cycle, &mut rng, |_| panic!("no messages at zero load"));
        }
    }

    #[test]
    fn bimodal_lengths_are_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let src = PoissonSource::new(1, Some(1.0), LengthDistribution::paper(), &mut rng);
        let mut shorts = 0;
        for _ in 0..1000 {
            let l = src.sample_length(&mut rng);
            assert!(l == 10 || l == 200);
            if l == 10 {
                shorts += 1;
            }
        }
        assert!((420..580).contains(&shorts), "got {shorts}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..20_000).map(|_| exponential(&mut rng, 7.0)).sum::<f64>() / 20_000.0;
        assert!((mean - 7.0).abs() < 0.2, "got {mean}");
    }

    #[test]
    fn bursts_in_one_poll_are_possible() {
        // With a tiny mean, one poll spanning many cycles emits several
        // messages.
        let mut rng = StdRng::seed_from_u64(4);
        let mut src = PoissonSource::new(1, Some(0.5), LengthDistribution::Fixed(1), &mut rng);
        let mut count = 0;
        src.poll(0, 100, &mut rng, |_| count += 1);
        assert!(count > 50, "got {count}");
    }

    #[test]
    fn mmpp_long_run_rate_matches_poisson_mean() {
        // Mean inter-arrival 50 cycles over 200k cycles: expect ~4000
        // messages. MMPP clumps them, but the long-run mean must match.
        let mut src = MmppSource::new(
            1,
            Some(50.0),
            LengthDistribution::Fixed(10),
            400.0,
            1200.0,
            7,
        );
        let mut count = 0u32;
        for cycle in 0..200_000u64 {
            src.poll(0, cycle, |_| count += 1);
        }
        assert!((3400..4600).contains(&count), "got {count}");
    }

    #[test]
    fn mmpp_zero_rate_generates_nothing() {
        let mut src = MmppSource::new(4, None, LengthDistribution::paper(), 100.0, 100.0, 1);
        for cycle in 0..1000 {
            src.poll(2, cycle, |_| panic!("no messages at zero load"));
        }
    }

    #[test]
    fn mmpp_nodes_are_independent_streams() {
        // Polling other nodes (or not) must not perturb node 0's
        // arrivals — that independence is what makes the draws
        // shard-layout-invariant.
        let lengths = LengthDistribution::Bimodal { short: 3, long: 9 };
        let collect_node0 = |poll_others: bool| {
            let mut src = MmppSource::new(8, Some(20.0), lengths, 150.0, 450.0, 99);
            let mut seen = Vec::new();
            for cycle in 0..50_000u64 {
                if poll_others {
                    for node in 1..8 {
                        src.poll(node, cycle, |_| {});
                    }
                }
                src.poll(0, cycle, |len| seen.push((cycle, len)));
            }
            seen
        };
        let alone = collect_node0(false);
        let crowded = collect_node0(true);
        assert!(!alone.is_empty());
        assert_eq!(alone, crowded);
    }

    #[test]
    fn mmpp_arrivals_are_burstier_than_poisson() {
        // Dispersion test: with duty 0.2 the per-window message counts
        // must be overdispersed relative to Poisson (variance well
        // above mean).
        let mut src = MmppSource::new(
            1,
            Some(10.0),
            LengthDistribution::Fixed(1),
            500.0,
            2000.0,
            5,
        );
        const WINDOW: u64 = 200;
        let mut counts = Vec::new();
        let mut current = 0u64;
        for cycle in 0..400_000u64 {
            src.poll(0, cycle, |_| current += 1);
            if (cycle + 1) % WINDOW == 0 {
                counts.push(current as f64);
                current = 0;
            }
        }
        let n = counts.len() as f64;
        let mean = counts.iter().sum::<f64>() / n;
        let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / n;
        assert!(
            var > 2.0 * mean,
            "expected overdispersion, got mean {mean:.2} var {var:.2}"
        );
    }

    #[test]
    fn traffic_source_dispatches_on_the_config_model() {
        use crate::config::{SimConfig, TrafficModel};
        let base = SimConfig::paper().injection_rate(0.1).seed(11);
        let mut rng = StdRng::seed_from_u64(base.seed);
        let poisson = TrafficSource::for_config(16, &base, &mut rng);
        assert!(matches!(poisson, TrafficSource::Poisson(_)));
        let mmpp_cfg = base.clone().traffic(TrafficModel::Mmpp {
            burst_cycles: 100.0,
            idle_cycles: 300.0,
        });
        let mut rng2 = StdRng::seed_from_u64(mmpp_cfg.seed);
        let before = rng2.clone().next_u64();
        let mmpp = TrafficSource::for_config(16, &mmpp_cfg, &mut rng2);
        assert!(matches!(mmpp, TrafficSource::Mmpp(_)));
        // MMPP construction must not consume the shared stream.
        assert_eq!(rng2.next_u64(), before);
    }

    #[test]
    #[should_panic(expected = "burst_cycles")]
    fn mmpp_rejects_nonpositive_sojourns() {
        MmppSource::new(1, Some(10.0), LengthDistribution::Fixed(1), 0.0, 10.0, 1);
    }
}
