//! The channel time-series observer.

use crate::obs::SimObserver;
use crate::packet::PacketId;
use turnroute_topology::{ChannelId, NodeId};

/// Collects per-channel activity over a run: how long each channel was
/// held by a worm (occupancy) and how many header-cycles were spent
/// blocked wanting it (contention).
///
/// Together with [`Simulation::channel_utilization`] this gives the
/// heatmaps behind the paper's funnel argument: dimension-order routing
/// concentrates transpose traffic — and therefore blocking — on a few
/// corner channels, while adaptive turn sets spread both.
///
/// The observer sizes its vectors lazily from the largest channel index
/// it sees, so it needs no topology handle at construction.
///
/// [`Simulation::channel_utilization`]: crate::Simulation::channel_utilization
#[derive(Debug, Clone, Default)]
pub struct ChannelActivityObserver {
    /// Cycle each currently-held channel was acquired at.
    acquired_at: Vec<Option<u64>>,
    /// Closed-interval busy cycles per channel.
    busy: Vec<u64>,
    /// Number of acquisitions per channel.
    acquisitions: Vec<u64>,
    /// Header-cycles spent blocked wanting each channel.
    blocked: Vec<u64>,
    /// Last cycle any event was seen at (closes open intervals in
    /// queries).
    last_cycle: u64,
}

impl ChannelActivityObserver {
    /// A fresh collector.
    pub fn new() -> Self {
        Self::default()
    }

    fn grow(&mut self, channel: ChannelId) {
        let need = channel.index() + 1;
        if self.busy.len() < need {
            self.acquired_at.resize(need, None);
            self.busy.resize(need, 0);
            self.acquisitions.resize(need, 0);
            self.blocked.resize(need, 0);
        }
    }

    /// Number of channels observed so far (highest seen index + 1).
    pub fn num_channels(&self) -> usize {
        self.busy.len()
    }

    /// Cycles `channel` was occupied by a worm, counting a still-open
    /// hold up to the last observed event.
    pub fn busy_cycles(&self, channel: ChannelId) -> u64 {
        let i = channel.index();
        if i >= self.busy.len() {
            return 0;
        }
        let open = self.acquired_at[i].map_or(0, |a| self.last_cycle.saturating_sub(a));
        self.busy[i] + open
    }

    /// How many times `channel` was acquired.
    pub fn acquisitions(&self, channel: ChannelId) -> u64 {
        self.acquisitions.get(channel.index()).copied().unwrap_or(0)
    }

    /// Header-cycles spent blocked wanting `channel`: each cycle a
    /// header requested a move and named this channel as its preferred
    /// choice without getting it adds one.
    pub fn blocked_cycles(&self, channel: ChannelId) -> u64 {
        self.blocked.get(channel.index()).copied().unwrap_or(0)
    }

    /// The occupancy heatmap: per-channel busy fraction of the observed
    /// span (`0.0..=1.0` per channel). Index by `ChannelId::index`.
    pub fn occupancy(&self) -> Vec<f64> {
        if self.last_cycle == 0 {
            return vec![0.0; self.busy.len()];
        }
        (0..self.busy.len())
            .map(|i| self.busy_cycles(ChannelId::new(i)) as f64 / self.last_cycle as f64)
            .collect()
    }

    /// The contention heatmap: per-channel blocked header-cycles. Index
    /// by `ChannelId::index`.
    pub fn blocked_heatmap(&self) -> Vec<u64> {
        self.blocked.clone()
    }

    /// Total blocked header-cycles across all channels.
    pub fn total_blocked_cycles(&self) -> u64 {
        self.blocked.iter().sum()
    }
}

impl SimObserver for ChannelActivityObserver {
    fn channel_acquired(&mut self, cycle: u64, _packet: PacketId, channel: ChannelId) {
        self.grow(channel);
        self.last_cycle = self.last_cycle.max(cycle);
        let i = channel.index();
        self.acquired_at[i] = Some(cycle);
        self.acquisitions[i] += 1;
    }

    fn channel_released(&mut self, cycle: u64, _packet: PacketId, channel: ChannelId) {
        self.grow(channel);
        self.last_cycle = self.last_cycle.max(cycle);
        let i = channel.index();
        if let Some(at) = self.acquired_at[i].take() {
            self.busy[i] += cycle.saturating_sub(at);
        }
    }

    fn packet_blocked(&mut self, cycle: u64, _packet: PacketId, _at: NodeId, wanted: ChannelId) {
        self.grow(wanted);
        self.last_cycle = self.last_cycle.max(cycle);
        self.blocked[wanted.index()] += 1;
    }

    fn flit_delivered(&mut self, cycle: u64, _packet: PacketId, _done: bool) {
        self.last_cycle = self.last_cycle.max(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_accounts_open_and_closed_holds() {
        let mut obs = ChannelActivityObserver::new();
        let c0 = ChannelId::new(0);
        let c1 = ChannelId::new(1);
        obs.channel_acquired(10, PacketId(0), c0);
        obs.channel_released(30, PacketId(0), c0);
        obs.channel_acquired(20, PacketId(1), c1);
        obs.flit_delivered(40, PacketId(0), true); // advances last_cycle
        assert_eq!(obs.busy_cycles(c0), 20);
        assert_eq!(obs.busy_cycles(c1), 20); // open hold counted to 40
        assert_eq!(obs.acquisitions(c0), 1);
        let occ = obs.occupancy();
        assert_eq!(occ[0], 0.5);
        assert_eq!(occ[1], 0.5);
    }

    #[test]
    fn blocked_cycles_accumulate_per_wanted_channel() {
        let mut obs = ChannelActivityObserver::new();
        let want = ChannelId::new(7);
        for cycle in 100..110 {
            obs.packet_blocked(cycle, PacketId(3), NodeId::new(2), want);
        }
        assert_eq!(obs.blocked_cycles(want), 10);
        assert_eq!(obs.total_blocked_cycles(), 10);
        assert_eq!(obs.blocked_heatmap()[7], 10);
        assert_eq!(obs.blocked_cycles(ChannelId::new(0)), 0);
    }

    #[test]
    fn unseen_channels_read_as_idle() {
        let obs = ChannelActivityObserver::new();
        assert_eq!(obs.busy_cycles(ChannelId::new(5)), 0);
        assert_eq!(obs.acquisitions(ChannelId::new(5)), 0);
        assert_eq!(obs.num_channels(), 0);
    }
}
