//! The turn-usage matrix observer.

use crate::obs::SimObserver;
use crate::packet::PacketId;
use turnroute_core::{Turn, TurnSet};
use turnroute_topology::{Direction, NodeId};

/// Counts every turn packets actually take, split by ordered direction
/// pair, and checks each against an expected [`TurnSet`].
///
/// The turn model's safety argument is that prohibited turns are never
/// taken — not merely that the routing function never *offers* them.
/// This observer turns that claim into a runtime invariant: a turn the
/// expected set prohibits is a **hard assertion failure**, naming the
/// packet, router and direction pair.
///
/// # Example
///
/// ```
/// use turnroute_core::{TurnSet, WestFirst};
/// use turnroute_sim::{patterns::Transpose, SimConfig, Simulation, TurnUsageObserver};
/// use turnroute_topology::Mesh;
///
/// let mesh = Mesh::new_2d(4, 4);
/// let algo = WestFirst::minimal();
/// let config = SimConfig::paper()
///     .injection_rate(0.05)
///     .warmup_cycles(200)
///     .measure_cycles(1_000);
/// let obs = TurnUsageObserver::new(TurnSet::west_first());
/// let mut sim = Simulation::with_observer(&mesh, &algo, &Transpose, config, obs);
/// sim.run(); // panics if any packet ever turned to the west
/// assert!(sim.observer().total_turns() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct TurnUsageObserver {
    expected: TurnSet,
    /// `counts[from.index() * 2n + to.index()]`.
    counts: Vec<u64>,
}

impl TurnUsageObserver {
    /// An observer checking turns against `expected`.
    pub fn new(expected: TurnSet) -> Self {
        let n = 2 * expected.num_dims();
        TurnUsageObserver {
            expected,
            counts: vec![0; n * n],
        }
    }

    /// The turn set turns are checked against.
    pub fn expected(&self) -> &TurnSet {
        &self.expected
    }

    /// How many times packets turned from `from` to `to` (`from == to`
    /// counts straight travel).
    pub fn count(&self, from: Direction, to: Direction) -> u64 {
        self.counts[from.index() * 2 * self.expected.num_dims() + to.index()]
    }

    /// Total observed turns, straight travel included.
    pub fn total_turns(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total observed 90-degree (or wider) turns — direction changes
    /// only.
    pub fn total_direction_changes(&self) -> u64 {
        let n = 2 * self.expected.num_dims();
        self.counts
            .iter()
            .enumerate()
            .filter(|(i, _)| i / n != i % n)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Every `(from, to, count)` with a nonzero count, in direction
    /// index order — the turn-usage matrix in sparse form.
    pub fn matrix(&self) -> impl Iterator<Item = (Direction, Direction, u64)> + '_ {
        let dirs: Vec<Direction> = Direction::all(self.expected.num_dims()).collect();
        let n = dirs.len();
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (dirs[i / n], dirs[i % n], c))
            .collect::<Vec<_>>()
            .into_iter()
    }
}

impl SimObserver for TurnUsageObserver {
    fn turn_taken(
        &mut self,
        cycle: u64,
        packet: PacketId,
        at: NodeId,
        from_dir: Direction,
        to_dir: Direction,
    ) {
        assert!(
            self.expected.allows(Turn::new(from_dir, to_dir)),
            "prohibited turn taken: packet {} turned {from_dir} -> {to_dir} at node {at} \
             on cycle {cycle}, but the active {} prohibits it",
            packet.index(),
            self.expected,
        );
        self.counts[from_dir.index() * 2 * self.expected.num_dims() + to_dir.index()] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_allowed_turns() {
        let mut obs = TurnUsageObserver::new(TurnSet::west_first());
        obs.turn_taken(
            5,
            PacketId(0),
            NodeId::new(3),
            Direction::WEST,
            Direction::NORTH,
        );
        obs.turn_taken(
            6,
            PacketId(1),
            NodeId::new(4),
            Direction::WEST,
            Direction::NORTH,
        );
        obs.turn_taken(
            7,
            PacketId(1),
            NodeId::new(4),
            Direction::NORTH,
            Direction::NORTH,
        );
        assert_eq!(obs.count(Direction::WEST, Direction::NORTH), 2);
        assert_eq!(obs.count(Direction::NORTH, Direction::NORTH), 1);
        assert_eq!(obs.count(Direction::EAST, Direction::NORTH), 0);
        assert_eq!(obs.total_turns(), 3);
        assert_eq!(obs.total_direction_changes(), 2);
        assert_eq!(obs.matrix().count(), 2);
    }

    #[test]
    #[should_panic(expected = "prohibited turn taken")]
    fn prohibited_turn_is_a_hard_failure() {
        let mut obs = TurnUsageObserver::new(TurnSet::west_first());
        obs.turn_taken(
            9,
            PacketId(2),
            NodeId::new(0),
            Direction::NORTH,
            Direction::WEST,
        );
    }
}
