//! The fault-event observer.

use crate::obs::SimObserver;
use turnroute_topology::ChannelId;

/// Records every scheduled fault event the engine applies: which
/// channels went down and came back, when, and how much cumulative
/// channel downtime the run accrued.
///
/// Pairs with [`FaultSchedule`](turnroute_fault::FaultSchedule): the
/// schedule says what *should* happen, this observer says what the
/// engine actually did (useful both in tests and when correlating a
/// degradation curve with its injected outages). Downtime is integrated
/// per channel from the failure cycle to the repair cycle, with still-
/// open outages counted up to the last event seen.
#[derive(Debug, Clone, Default)]
pub struct FaultObserver {
    /// Every applied event as `(cycle, channel, failed)` in application
    /// order.
    events: Vec<(u64, ChannelId, bool)>,
    /// Cycle each currently-down channel failed at.
    down_since: Vec<Option<u64>>,
    /// Closed-outage downtime per channel, in cycles.
    downtime: Vec<u64>,
    /// Number of channels currently out of service.
    currently_failed: usize,
    /// Largest number of channels simultaneously out of service.
    peak_failed: usize,
    /// Total failure events applied.
    failures: u64,
    /// Total repair events applied.
    repairs: u64,
    /// Last cycle any fault event was seen at.
    last_cycle: u64,
}

impl FaultObserver {
    /// A fresh collector.
    pub fn new() -> Self {
        Self::default()
    }

    fn grow(&mut self, channel: ChannelId) {
        let need = channel.index() + 1;
        if self.downtime.len() < need {
            self.down_since.resize(need, None);
            self.downtime.resize(need, 0);
        }
    }

    /// Every applied event as `(cycle, channel, failed)`, in the order
    /// the engine applied them.
    pub fn events(&self) -> &[(u64, ChannelId, bool)] {
        &self.events
    }

    /// Total failure events applied so far.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Total repair events applied so far.
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// Channels currently out of service.
    pub fn currently_failed(&self) -> usize {
        self.currently_failed
    }

    /// Largest number of channels simultaneously out of service.
    pub fn peak_failed(&self) -> usize {
        self.peak_failed
    }

    /// Whether `channel` is out of service as of the last event seen.
    pub fn is_down(&self, channel: ChannelId) -> bool {
        self.down_since
            .get(channel.index())
            .is_some_and(|d| d.is_some())
    }

    /// Cycles `channel` has spent out of service, counting a still-open
    /// outage up to the last observed event.
    pub fn downtime_cycles(&self, channel: ChannelId) -> u64 {
        let i = channel.index();
        if i >= self.downtime.len() {
            return 0;
        }
        let open = self.down_since[i].map_or(0, |at| self.last_cycle.saturating_sub(at));
        self.downtime[i] + open
    }

    /// Total channel-cycles of downtime across all channels.
    pub fn total_downtime_cycles(&self) -> u64 {
        (0..self.downtime.len())
            .map(|i| self.downtime_cycles(ChannelId::new(i)))
            .sum()
    }
}

impl SimObserver for FaultObserver {
    fn channel_failed(&mut self, cycle: u64, channel: ChannelId) {
        self.grow(channel);
        self.last_cycle = self.last_cycle.max(cycle);
        self.events.push((cycle, channel, true));
        self.failures += 1;
        let i = channel.index();
        if self.down_since[i].is_none() {
            self.down_since[i] = Some(cycle);
            self.currently_failed += 1;
            self.peak_failed = self.peak_failed.max(self.currently_failed);
        }
    }

    fn channel_repaired(&mut self, cycle: u64, channel: ChannelId) {
        self.grow(channel);
        self.last_cycle = self.last_cycle.max(cycle);
        self.events.push((cycle, channel, false));
        self.repairs += 1;
        let i = channel.index();
        if let Some(at) = self.down_since[i].take() {
            self.downtime[i] += cycle.saturating_sub(at);
            self.currently_failed -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downtime_integrates_closed_and_open_outages() {
        let mut obs = FaultObserver::new();
        let c0 = ChannelId::new(0);
        let c1 = ChannelId::new(3);
        obs.channel_failed(10, c0);
        obs.channel_failed(20, c1);
        obs.channel_repaired(40, c0);
        assert_eq!(obs.downtime_cycles(c0), 30);
        assert_eq!(obs.downtime_cycles(c1), 20); // open outage counted to 40
        assert_eq!(obs.total_downtime_cycles(), 50);
        assert!(!obs.is_down(c0));
        assert!(obs.is_down(c1));
        assert_eq!(obs.failures(), 2);
        assert_eq!(obs.repairs(), 1);
        assert_eq!(obs.currently_failed(), 1);
        assert_eq!(obs.peak_failed(), 2);
        assert_eq!(obs.events().len(), 3);
    }

    #[test]
    fn duplicate_failures_do_not_double_count_concurrency() {
        let mut obs = FaultObserver::new();
        let c = ChannelId::new(1);
        obs.channel_failed(5, c);
        obs.channel_failed(6, c); // merged intervals never emit this, but stay safe
        assert_eq!(obs.currently_failed(), 1);
        assert_eq!(obs.peak_failed(), 1);
        obs.channel_repaired(9, c);
        assert_eq!(obs.downtime_cycles(c), 4);
        assert_eq!(obs.currently_failed(), 0);
    }

    #[test]
    fn unseen_channels_read_as_healthy() {
        let obs = FaultObserver::new();
        assert!(!obs.is_down(ChannelId::new(9)));
        assert_eq!(obs.downtime_cycles(ChannelId::new(9)), 0);
        assert_eq!(obs.total_downtime_cycles(), 0);
    }
}
