//! The flit-level trace writer: Chrome trace-event JSON output.

use crate::deadlock::DeadlockReport;
use crate::obs::SimObserver;
use crate::packet::PacketId;
use std::collections::{BTreeMap, HashSet};
use std::io::{self, Write};
use turnroute_topology::{ChannelId, Direction, NodeId};

/// Timeline lane 0 carries packet-level instant events (injection,
/// turns, delivery, watchdog); lane `1 + c` carries channel `c`'s
/// occupancy spans.
const PACKET_LANE: u64 = 0;

/// One captured trace event, stored compactly until write-out.
#[derive(Debug, Clone)]
struct Event {
    /// Chrome trace phase: `'B'` / `'E'` duration span, `'i'` instant.
    ph: char,
    /// Simulation cycle of the event (converted to µs at write time).
    cycle: u64,
    /// Timeline lane (Chrome `tid`).
    tid: u64,
    name: String,
    /// Pre-rendered JSON object body for `args`, without braces.
    args: Option<String>,
}

/// Captures flit-level events and writes them as Chrome trace-event
/// JSON, loadable in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
///
/// Each channel is a timeline lane: a worm holding the channel is a
/// `B`/`E` duration span named after the packet (single-flit buffers
/// mean exactly one owner at a time, so spans never overlap within a
/// lane). Lane 0 carries instant events — injections, turns,
/// deliveries, blocked headers, and watchdog firings with the full
/// [`DeadlockReport`] rendered into machine-readable `args`.
///
/// Capture can be restricted to a cycle window, a packet set, or both;
/// unrestricted capture of a long saturated run can produce very large
/// traces.
///
/// # Example
///
/// ```
/// use turnroute_core::WestFirst;
/// use turnroute_sim::{patterns::Transpose, FlitTraceObserver, SimConfig, Simulation};
/// use turnroute_topology::Mesh;
///
/// let mesh = Mesh::new_2d(4, 4);
/// let algo = WestFirst::minimal();
/// let config = SimConfig::paper()
///     .injection_rate(0.05)
///     .warmup_cycles(0)
///     .measure_cycles(500);
/// let obs = FlitTraceObserver::new().window(0, 500);
/// let mut sim = Simulation::with_observer(&mesh, &algo, &Transpose, config, obs);
/// sim.run();
/// let json = sim.observer().to_chrome_trace_string(&[]);
/// assert!(json.starts_with('{') && json.contains("traceEvents"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlitTraceObserver {
    /// Half-open cycle window `[start, end)` to capture; `None` = all.
    window: Option<(u64, u64)>,
    /// Packet indices to capture; `None` = all packets.
    selected: Option<HashSet<u64>>,
    events: Vec<Event>,
    /// Channels with a captured-but-unclosed `B` span, and the owning
    /// packet — closed synthetically at write time.
    open: BTreeMap<usize, u64>,
    last_cycle: u64,
}

impl FlitTraceObserver {
    /// A trace capturing every event of every packet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts capture to cycles in `[start, end)`.
    pub fn window(mut self, start: u64, end: u64) -> Self {
        assert!(start < end, "empty trace window");
        self.window = Some((start, end));
        self
    }

    /// Restricts capture to the given packets.
    pub fn packets(mut self, ids: &[PacketId]) -> Self {
        self.selected = Some(ids.iter().map(|p| p.index()).collect());
        self
    }

    /// Number of captured events so far (before synthetic span closes).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn keep(&self, cycle: u64, packet: PacketId) -> bool {
        if let Some((start, end)) = self.window {
            if cycle < start || cycle >= end {
                return false;
            }
        }
        match &self.selected {
            Some(set) => set.contains(&packet.index()),
            None => true,
        }
    }

    fn push(&mut self, ph: char, cycle: u64, tid: u64, name: String, args: Option<String>) {
        self.last_cycle = self.last_cycle.max(cycle);
        self.events.push(Event {
            ph,
            cycle,
            tid,
            name,
            args,
        });
    }

    /// Writes the captured trace as Chrome trace-event JSON.
    ///
    /// `channel_names` (indexed by `ChannelId::index`) supplies
    /// human-readable lane names via metadata events; pass `&[]` to
    /// label lanes by bare channel index. Spans still open at write
    /// time are closed at the last captured cycle, so the output is
    /// always well-formed.
    pub fn write_chrome_trace<W: Write>(
        &self,
        w: &mut W,
        channel_names: &[String],
    ) -> io::Result<()> {
        writeln!(w, "{{")?;
        writeln!(w, "  \"displayTimeUnit\": \"ms\",")?;
        writeln!(w, "  \"traceEvents\": [")?;
        let mut first = true;
        let mut item = |w: &mut W, body: String| -> io::Result<()> {
            if !first {
                writeln!(w, ",")?;
            }
            first = false;
            write!(w, "    {body}")
        };

        // Metadata: name the process and every lane that appears.
        item(
            w,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"turnroute-sim\"}}"
                .to_string(),
        )?;
        let mut lanes: Vec<u64> = self.events.iter().map(|e| e.tid).collect();
        lanes.push(PACKET_LANE);
        lanes.sort_unstable();
        lanes.dedup();
        for lane in lanes {
            let label = if lane == PACKET_LANE {
                "packets".to_string()
            } else {
                let ch = (lane - 1) as usize;
                match channel_names.get(ch) {
                    Some(name) => name.clone(),
                    None => format!("ch{ch}"),
                }
            };
            item(
                w,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{lane},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    escape(&label)
                ),
            )?;
        }

        for e in &self.events {
            item(w, render(e))?;
        }
        // Close still-open spans so every B has its E.
        for (&channel, &packet) in &self.open {
            item(
                w,
                render(&Event {
                    ph: 'E',
                    cycle: self.last_cycle,
                    tid: 1 + channel as u64,
                    name: format!("p{packet}"),
                    args: None,
                }),
            )?;
        }

        writeln!(w)?;
        writeln!(w, "  ]")?;
        writeln!(w, "}}")
    }

    /// The trace as a JSON string (see [`Self::write_chrome_trace`]).
    pub fn to_chrome_trace_string(&self, channel_names: &[String]) -> String {
        let mut out = Vec::new();
        self.write_chrome_trace(&mut out, channel_names)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("trace output is ASCII")
    }
}

/// Renders one event as a JSON object. Timestamps are microseconds at
/// the paper's 20 flits/µs: each cycle is exactly 0.05 µs, so two
/// decimals render every cycle boundary exactly.
fn render(e: &Event) -> String {
    let ts = format!("{:.2}", e.cycle as f64 * 0.05);
    let mut out = format!(
        "{{\"name\":\"{}\",\"ph\":\"{}\",\"pid\":0,\"tid\":{},\"ts\":{ts}",
        escape(&e.name),
        e.ph,
        e.tid
    );
    if e.ph == 'i' {
        out.push_str(",\"s\":\"t\"");
    }
    if let Some(args) = &e.args {
        out.push_str(",\"args\":{");
        out.push_str(args);
        out.push('}');
    }
    out.push('}');
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl SimObserver for FlitTraceObserver {
    fn packet_injected(
        &mut self,
        cycle: u64,
        packet: PacketId,
        src: NodeId,
        dst: NodeId,
        len: u32,
    ) {
        if !self.keep(cycle, packet) {
            return;
        }
        self.push(
            'i',
            cycle,
            PACKET_LANE,
            format!("inject p{}", packet.index()),
            Some(format!(
                "\"src\":{},\"dst\":{},\"length\":{len}",
                src.index(),
                dst.index()
            )),
        );
    }

    fn turn_taken(
        &mut self,
        cycle: u64,
        packet: PacketId,
        at: NodeId,
        from: Direction,
        to: Direction,
    ) {
        if from == to || !self.keep(cycle, packet) {
            return; // straight travel would drown the interesting turns
        }
        self.push(
            'i',
            cycle,
            PACKET_LANE,
            format!("turn p{} {from}->{to}", packet.index()),
            Some(format!("\"at_node\":{}", at.index())),
        );
    }

    fn channel_acquired(&mut self, cycle: u64, packet: PacketId, channel: ChannelId) {
        if !self.keep(cycle, packet) {
            return;
        }
        self.push(
            'B',
            cycle,
            1 + channel.index() as u64,
            format!("p{}", packet.index()),
            None,
        );
        self.open.insert(channel.index(), packet.index());
    }

    fn channel_released(&mut self, cycle: u64, packet: PacketId, channel: ChannelId) {
        // Only close spans we opened: a release whose acquisition fell
        // outside the capture filter must not emit an orphan E.
        if self.open.remove(&channel.index()).is_none() {
            return;
        }
        self.push(
            'E',
            cycle,
            1 + channel.index() as u64,
            format!("p{}", packet.index()),
            None,
        );
    }

    fn packet_blocked(&mut self, cycle: u64, packet: PacketId, at: NodeId, wanted: ChannelId) {
        if !self.keep(cycle, packet) {
            return;
        }
        self.push(
            'i',
            cycle,
            1 + wanted.index() as u64,
            format!("blocked p{}", packet.index()),
            Some(format!("\"at_node\":{}", at.index())),
        );
    }

    fn flit_delivered(&mut self, cycle: u64, packet: PacketId, done: bool) {
        if !done || !self.keep(cycle, packet) {
            return; // per-flit instants are too fine; record completion
        }
        self.push(
            'i',
            cycle,
            PACKET_LANE,
            format!("delivered p{}", packet.index()),
            None,
        );
    }

    fn watchdog_fired(&mut self, cycle: u64, report: &DeadlockReport) {
        // Watchdog evidence ignores the packet filter (there is no one
        // packet) but respects the window.
        if let Some((start, end)) = self.window {
            if cycle < start || cycle >= end {
                return;
            }
        }
        let cycle_edges: Vec<String> = report
            .cycle
            .iter()
            .map(|e| {
                format!(
                    "{{\"packet\":{},\"at_node\":{},\"wants\":{}}}",
                    e.packet.index(),
                    e.at_node.index(),
                    e.wants.index()
                )
            })
            .collect();
        let stranded: Vec<String> = report
            .stranded
            .iter()
            .map(|p| p.index().to_string())
            .collect();
        self.push(
            'i',
            cycle,
            PACKET_LANE,
            "watchdog: deadlock detected".to_string(),
            Some(format!(
                "\"detected_at\":{},\"blocked_packets\":{},\"stranded\":[{}],\"circular_wait\":[{}]",
                report.detected_at,
                report.blocked_packets,
                stranded.join(","),
                cycle_edges.join(",")
            )),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_pair_up_and_open_spans_close_at_write() {
        let mut obs = FlitTraceObserver::new();
        let c = ChannelId::new(2);
        obs.channel_acquired(10, PacketId(0), c);
        obs.channel_released(20, PacketId(0), c);
        obs.channel_acquired(30, PacketId(1), c); // never released
        let json = obs.to_chrome_trace_string(&[]);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        // The synthetic close lands at the last captured cycle (30).
        assert!(json.contains("\"ts\":1.50"));
    }

    #[test]
    fn window_filters_capture() {
        let mut obs = FlitTraceObserver::new().window(100, 200);
        obs.packet_injected(50, PacketId(0), NodeId::new(0), NodeId::new(5), 10);
        obs.packet_injected(150, PacketId(1), NodeId::new(1), NodeId::new(6), 10);
        assert_eq!(obs.len(), 1);
        let json = obs.to_chrome_trace_string(&[]);
        assert!(json.contains("inject p1"));
        assert!(!json.contains("inject p0"));
    }

    #[test]
    fn packet_filter_selects_packets() {
        let mut obs = FlitTraceObserver::new().packets(&[PacketId(7)]);
        obs.flit_delivered(10, PacketId(7), true);
        obs.flit_delivered(11, PacketId(8), true);
        obs.turn_taken(
            12,
            PacketId(7),
            NodeId::new(0),
            Direction::WEST,
            Direction::NORTH,
        );
        let json = obs.to_chrome_trace_string(&[]);
        assert!(json.contains("delivered p7"));
        assert!(!json.contains("delivered p8"));
        assert!(json.contains("turn p7"));
    }

    #[test]
    fn release_without_captured_acquire_is_dropped() {
        let mut obs = FlitTraceObserver::new().window(100, 200);
        let c = ChannelId::new(0);
        obs.channel_acquired(50, PacketId(0), c); // outside window
        obs.channel_released(150, PacketId(0), c); // would orphan an E
        assert!(obs.is_empty());
    }

    #[test]
    fn lane_names_come_from_channel_names() {
        let mut obs = FlitTraceObserver::new();
        obs.channel_acquired(0, PacketId(0), ChannelId::new(0));
        let json = obs.to_chrome_trace_string(&["(0,0)->(1,0) +d0".to_string()]);
        assert!(json.contains("(0,0)->(1,0) +d0"));
        assert!(json.contains("\"name\":\"packets\""));
    }
}
