//! The event-probe layer: fine-grained simulation observers.
//!
//! [`SimObserver`] is a set of hooks the engine invokes at every
//! interesting micro-event — injection, header movement, turns, channel
//! acquisition and release, blocking, delivery, watchdog firings. A
//! simulation is generic over its observer and defaults to
//! [`NoopObserver`], whose empty `#[inline]` hooks monomorphize away:
//! the uninstrumented hot path compiles to exactly the code it had
//! before this layer existed.
//!
//! Observers are **strictly read-only and RNG-free**: every hook takes
//! only copies of engine state, never a handle back into the
//! simulation, and the engine consumes no randomness on behalf of an
//! observer. Attaching any combination of observers therefore cannot
//! change simulation results — sweep output bytes are identical with
//! observers present or absent (enforced by integration test).
//!
//! Hook arguments that are expensive to compute (e.g. *which* channel a
//! blocked header wanted, which requires a topology query off the hot
//! path) are gated on [`SimObserver::ENABLED`], a compile-time constant
//! that is `false` for [`NoopObserver`], so even the argument
//! computation vanishes from uninstrumented builds.
//!
//! Ship-with observers:
//!
//! * [`TurnUsageObserver`] — per direction-pair turn counts, checked
//!   against a [`TurnSet`](turnroute_core::TurnSet) so a prohibited
//!   turn taken at runtime is a hard assertion failure;
//! * [`ChannelActivityObserver`] — per-channel occupancy and
//!   blocked-cycle heatmaps;
//! * [`FlitTraceObserver`] — flit-level event capture written out as
//!   Chrome trace-event JSON (loads directly in Perfetto).
//!
//! Compose observers with tuples: `(TurnUsageObserver, FlitTraceObserver)`
//! implements [`SimObserver`] and forwards every hook to both.

mod channels;
mod faults;
mod trace;
mod turns;

pub use channels::ChannelActivityObserver;
pub use faults::FaultObserver;
pub use trace::FlitTraceObserver;
pub use turns::TurnUsageObserver;

use crate::deadlock::DeadlockReport;
use crate::packet::PacketId;
use turnroute_topology::{ChannelId, Direction, NodeId};

/// Hooks invoked by the simulation engine at each micro-event.
///
/// All hooks default to empty bodies, so an observer implements only
/// the events it cares about. Implementations must not panic on normal
/// traffic (the one deliberate exception: [`TurnUsageObserver`] asserts
/// that no prohibited turn is ever taken) and must not depend on any
/// randomness of their own — determinism of the simulation with
/// observers attached is part of the layer's contract.
pub trait SimObserver {
    /// `true` if this observer actually consumes events. The engine
    /// skips computing *expensive hook arguments* when `ENABLED` is
    /// `false`; since it is an associated constant, the check and the
    /// computation both fold away at compile time for [`NoopObserver`].
    const ENABLED: bool = true;

    /// A packet left its source queue and entered the network (its
    /// header acquired the injection channel).
    fn packet_injected(
        &mut self,
        _cycle: u64,
        _packet: PacketId,
        _src: NodeId,
        _dst: NodeId,
        _length: u32,
    ) {
    }

    /// A header moved one hop: it now sits at `to`, having crossed
    /// `via`.
    fn header_advanced(&mut self, _cycle: u64, _packet: PacketId, _to: NodeId, _via: ChannelId) {}

    /// A header changed or kept direction at router `at`: it arrived
    /// travelling `from_dir` and departed travelling `to_dir`
    /// (`from_dir == to_dir` is straight travel, the 0-degree turn).
    /// Not fired for the first hop out of the source, which has no
    /// arrival direction.
    fn turn_taken(
        &mut self,
        _cycle: u64,
        _packet: PacketId,
        _at: NodeId,
        _from_dir: Direction,
        _to_dir: Direction,
    ) {
    }

    /// `packet`'s header acquired `channel` (one flit per channel, so
    /// the worm occupies it until the tail drains).
    fn channel_acquired(&mut self, _cycle: u64, _packet: PacketId, _channel: ChannelId) {}

    /// `packet`'s tail drained out of `channel`, releasing it.
    fn channel_released(&mut self, _cycle: u64, _packet: PacketId, _channel: ChannelId) {}

    /// `packet`'s header requested a move at router `at` this cycle and
    /// got nothing: `wanted_channel` is the channel it would have
    /// preferred (busy, faulty, or granted to a higher-priority header).
    fn packet_blocked(
        &mut self,
        _cycle: u64,
        _packet: PacketId,
        _at: NodeId,
        _wanted_channel: ChannelId,
    ) {
    }

    /// The destination consumed one flit of `packet`; `done` marks the
    /// tail flit (the packet is now fully delivered).
    fn flit_delivered(&mut self, _cycle: u64, _packet: PacketId, _done: bool) {}

    /// The deadlock watchdog fired and produced `report`.
    fn watchdog_fired(&mut self, _cycle: u64, _report: &DeadlockReport) {}

    /// A scheduled fault took `channel` out of service at the start of
    /// `cycle`. Fired only for fault-plan events, not for manual
    /// [`fail_channel`](crate::Simulation::fail_channel) calls.
    fn channel_failed(&mut self, _cycle: u64, _channel: ChannelId) {}

    /// A scheduled repair returned `channel` to service at the start of
    /// `cycle`.
    fn channel_repaired(&mut self, _cycle: u64, _channel: ChannelId) {}
}

/// The default observer: observes nothing. Every hook is an empty
/// `#[inline]` body and [`SimObserver::ENABLED`] is `false`, so a
/// `Simulation<NoopObserver>` compiles to the same machine code as an
/// unobserved engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {
    const ENABLED: bool = false;
}

/// Forwarding impl so a simulation can borrow an observer owned by the
/// caller (e.g. reuse one collector across runs).
impl<O: SimObserver> SimObserver for &mut O {
    const ENABLED: bool = O::ENABLED;

    fn packet_injected(
        &mut self,
        cycle: u64,
        packet: PacketId,
        src: NodeId,
        dst: NodeId,
        len: u32,
    ) {
        (**self).packet_injected(cycle, packet, src, dst, len);
    }
    fn header_advanced(&mut self, cycle: u64, packet: PacketId, to: NodeId, via: ChannelId) {
        (**self).header_advanced(cycle, packet, to, via);
    }
    fn turn_taken(&mut self, cycle: u64, packet: PacketId, at: NodeId, f: Direction, t: Direction) {
        (**self).turn_taken(cycle, packet, at, f, t);
    }
    fn channel_acquired(&mut self, cycle: u64, packet: PacketId, channel: ChannelId) {
        (**self).channel_acquired(cycle, packet, channel);
    }
    fn channel_released(&mut self, cycle: u64, packet: PacketId, channel: ChannelId) {
        (**self).channel_released(cycle, packet, channel);
    }
    fn packet_blocked(&mut self, cycle: u64, packet: PacketId, at: NodeId, wanted: ChannelId) {
        (**self).packet_blocked(cycle, packet, at, wanted);
    }
    fn flit_delivered(&mut self, cycle: u64, packet: PacketId, done: bool) {
        (**self).flit_delivered(cycle, packet, done);
    }
    fn watchdog_fired(&mut self, cycle: u64, report: &DeadlockReport) {
        (**self).watchdog_fired(cycle, report);
    }
    fn channel_failed(&mut self, cycle: u64, channel: ChannelId) {
        (**self).channel_failed(cycle, channel);
    }
    fn channel_repaired(&mut self, cycle: u64, channel: ChannelId) {
        (**self).channel_repaired(cycle, channel);
    }
}

/// Pairwise composition: `(A, B)` forwards every hook to `A` then `B`.
/// Nest tuples for more: `(A, (B, C))`.
impl<A: SimObserver, B: SimObserver> SimObserver for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn packet_injected(
        &mut self,
        cycle: u64,
        packet: PacketId,
        src: NodeId,
        dst: NodeId,
        len: u32,
    ) {
        self.0.packet_injected(cycle, packet, src, dst, len);
        self.1.packet_injected(cycle, packet, src, dst, len);
    }
    fn header_advanced(&mut self, cycle: u64, packet: PacketId, to: NodeId, via: ChannelId) {
        self.0.header_advanced(cycle, packet, to, via);
        self.1.header_advanced(cycle, packet, to, via);
    }
    fn turn_taken(&mut self, cycle: u64, packet: PacketId, at: NodeId, f: Direction, t: Direction) {
        self.0.turn_taken(cycle, packet, at, f, t);
        self.1.turn_taken(cycle, packet, at, f, t);
    }
    fn channel_acquired(&mut self, cycle: u64, packet: PacketId, channel: ChannelId) {
        self.0.channel_acquired(cycle, packet, channel);
        self.1.channel_acquired(cycle, packet, channel);
    }
    fn channel_released(&mut self, cycle: u64, packet: PacketId, channel: ChannelId) {
        self.0.channel_released(cycle, packet, channel);
        self.1.channel_released(cycle, packet, channel);
    }
    fn packet_blocked(&mut self, cycle: u64, packet: PacketId, at: NodeId, wanted: ChannelId) {
        self.0.packet_blocked(cycle, packet, at, wanted);
        self.1.packet_blocked(cycle, packet, at, wanted);
    }
    fn flit_delivered(&mut self, cycle: u64, packet: PacketId, done: bool) {
        self.0.flit_delivered(cycle, packet, done);
        self.1.flit_delivered(cycle, packet, done);
    }
    fn watchdog_fired(&mut self, cycle: u64, report: &DeadlockReport) {
        self.0.watchdog_fired(cycle, report);
        self.1.watchdog_fired(cycle, report);
    }
    fn channel_failed(&mut self, cycle: u64, channel: ChannelId) {
        self.0.channel_failed(cycle, channel);
        self.1.channel_failed(cycle, channel);
    }
    fn channel_repaired(&mut self, cycle: u64, channel: ChannelId) {
        self.0.channel_repaired(cycle, channel);
        self.1.channel_repaired(cycle, channel);
    }
}
