//! Uniform emission of sweep results: one CSV schema and one JSON
//! schema for every figure and table regenerator.
//!
//! Every regenerator used to hand-roll its own `println!` CSV; this
//! module is the single source of truth for the output formats, so
//! downstream plotting sees one schema regardless of which binary
//! produced the file.

use crate::sweep::{SweepPoint, SweepSeries};
use std::io::{self, Write};

/// The CSV header every regenerator emits.
pub const CSV_HEADER: &str = "algorithm,pattern,offered_load,throughput_flits_per_usec,\
avg_latency_usec,p95_latency_usec,avg_hops,sustainable,status";

/// Formats one point as a CSV row (no trailing newline).
pub fn csv_row(algorithm: &str, pattern: &str, p: &SweepPoint) -> String {
    format!(
        "{},{},{:.4},{:.3},{},{},{},{},{}",
        algorithm,
        pattern,
        p.offered_load,
        p.throughput,
        p.avg_latency_usec.map_or("".into(), |v| format!("{v:.3}")),
        p.p95_latency_usec.map_or("".into(), |v| format!("{v:.3}")),
        p.avg_hops.map_or("".into(), |v| format!("{v:.2}")),
        p.sustainable,
        if p.skipped { "skipped" } else { "ok" },
    )
}

/// Writes the header plus every series' rows.
pub fn write_csv(series: &[SweepSeries], w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "{CSV_HEADER}")?;
    for s in series {
        for p in &s.points {
            writeln!(w, "{}", csv_row(&s.algorithm, &s.pattern, p))?;
        }
    }
    Ok(())
}

/// Writes the series as a machine-readable JSON document:
/// `[{"algorithm": ..., "pattern": ..., "points": [{...}]}, ...]`.
pub fn write_json(series: &[SweepSeries], w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "[")?;
    for (i, s) in series.iter().enumerate() {
        writeln!(w, "  {{")?;
        writeln!(w, "    \"algorithm\": {},", json_string(&s.algorithm))?;
        writeln!(w, "    \"pattern\": {},", json_string(&s.pattern))?;
        writeln!(
            w,
            "    \"max_sustainable_throughput\": {},",
            json_f64(s.max_sustainable_throughput())
        )?;
        writeln!(w, "    \"points\": [")?;
        for (j, p) in s.points.iter().enumerate() {
            write!(
                w,
                "      {{\"offered_load\": {}, \"throughput_flits_per_usec\": {}, \
\"avg_latency_usec\": {}, \"p95_latency_usec\": {}, \"avg_hops\": {}, \
\"sustainable\": {}, \"skipped\": {}}}",
                json_f64(p.offered_load),
                json_f64(p.throughput),
                json_opt(p.avg_latency_usec),
                json_opt(p.p95_latency_usec),
                json_opt(p.avg_hops),
                p.sustainable,
                p.skipped,
            )?;
            writeln!(w, "{}", if j + 1 < s.points.len() { "," } else { "" })?;
        }
        writeln!(w, "    ]")?;
        writeln!(w, "  }}{}", if i + 1 < series.len() { "," } else { "" })?;
    }
    writeln!(w, "]")
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned() // JSON has no Infinity/NaN
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or("null".to_owned(), json_f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SweepSeries> {
        vec![SweepSeries {
            algorithm: "negative-first".into(),
            pattern: "uniform".into(),
            points: vec![
                SweepPoint {
                    offered_load: 0.05,
                    throughput: 12.5,
                    avg_latency_usec: Some(3.25),
                    p95_latency_usec: Some(7.0),
                    avg_hops: Some(4.5),
                    sustainable: true,
                    skipped: false,
                },
                SweepPoint::skipped_at(0.1),
            ],
        }]
    }

    #[test]
    fn csv_has_header_and_status() {
        let mut buf = Vec::new();
        write_csv(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], CSV_HEADER);
        assert!(lines[1].ends_with(",true,ok"));
        assert!(lines[2].ends_with(",false,skipped"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut buf = Vec::new();
        write_json(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Balanced braces/brackets and the key fields present.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        assert!(text.contains("\"algorithm\": \"negative-first\""));
        assert!(text.contains("\"skipped\": true"));
        assert!(text.contains("\"avg_latency_usec\": null"));
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
