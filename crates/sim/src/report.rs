//! Uniform emission of sweep results: one CSV schema and one JSON
//! schema for every figure and table regenerator.
//!
//! Every regenerator used to hand-roll its own `println!` CSV; this
//! module is the single source of truth for the output formats, so
//! downstream plotting sees one schema regardless of which binary
//! produced the file.

use crate::config::cycles_to_usec;
use crate::exec::{ExecStats, ExecTelemetry};
use crate::sweep::{SweepPoint, SweepSeries};
use std::io::{self, Write};

/// The CSV header every regenerator emits.
pub const CSV_HEADER: &str = "algorithm,pattern,faults,offered_load,\
throughput_flits_per_usec,avg_latency_usec,p95_latency_usec,avg_hops,\
delivered,stranded,disconnected,sustainable,status";

/// Formats one point as a CSV row (no trailing newline). `faults` and
/// `disconnected` are series-level fault columns (both 0 for a healthy
/// network).
pub fn csv_row(
    algorithm: &str,
    pattern: &str,
    faults: u64,
    disconnected: u64,
    p: &SweepPoint,
) -> String {
    format!(
        "{},{},{},{:.4},{:.3},{},{},{},{},{},{},{},{}",
        algorithm,
        pattern,
        faults,
        p.offered_load,
        p.throughput,
        p.avg_latency_usec.map_or("".into(), |v| format!("{v:.3}")),
        p.p95_latency_usec.map_or("".into(), |v| format!("{v:.3}")),
        p.avg_hops.map_or("".into(), |v| format!("{v:.2}")),
        p.delivered,
        p.stranded,
        disconnected,
        p.sustainable,
        if p.skipped { "skipped" } else { "ok" },
    )
}

/// Writes the header plus every series' rows.
pub fn write_csv(series: &[SweepSeries], w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "{CSV_HEADER}")?;
    for s in series {
        for p in &s.points {
            writeln!(
                w,
                "{}",
                csv_row(&s.algorithm, &s.pattern, s.faults, s.disconnected, p)
            )?;
        }
    }
    Ok(())
}

/// Writes the series as a machine-readable JSON document:
/// `[{"algorithm": ..., "pattern": ..., "points": [{...}]}, ...]`.
pub fn write_json(series: &[SweepSeries], w: &mut impl Write) -> io::Result<()> {
    write_json_array(series, w, "")?;
    writeln!(w)
}

/// Version of the sweep-report JSON document emitted by
/// [`write_report_json`]. Bump on any field rename, removal, or
/// semantic change; consumers gate on it before parsing.
pub const REPORT_SCHEMA_VERSION: u64 = 1;

/// Writes the full versioned sweep report — the series array plus the
/// executor's deterministic counters — as one JSON document:
/// `{"schema_version": 1, "series": [...], "executor": {...}}`.
///
/// This is **the** report serializer: the CLI's `--format json` and the
/// job server's `/v1/jobs/{id}/result` both emit through it, so the two
/// surfaces are byte-identical for identical experiments.
///
/// Only schedule-invariant counters are included (`cache_hits`,
/// `skipped`, and the emitted splits), never [`ExecStats::simulated`],
/// which counts speculative work and varies with thread count — the
/// document stays byte-identical for any `--threads`.
pub fn write_report_json(
    series: &[SweepSeries],
    stats: &ExecStats,
    w: &mut impl Write,
) -> io::Result<()> {
    writeln!(w, "{{")?;
    writeln!(w, "  \"schema_version\": {REPORT_SCHEMA_VERSION},")?;
    write!(w, "  \"series\": ")?;
    write_json_array(series, w, "  ")?;
    writeln!(w, ",")?;
    writeln!(w, "  \"executor\": {{")?;
    writeln!(w, "    \"cache_hits\": {},", stats.cache_hits)?;
    writeln!(
        w,
        "    \"emitted_from_cache\": {},",
        stats.emitted_from_cache
    )?;
    writeln!(w, "    \"emitted_simulated\": {},", stats.emitted_simulated)?;
    writeln!(w, "    \"skipped\": {}", stats.skipped)?;
    writeln!(w, "  }}")?;
    writeln!(w, "}}")
}

/// Writes executor telemetry — per-cell wall times and the merged
/// latency histogram's quantiles — as a JSON document.
///
/// Wall times are measurements: this output is for profiling, not for
/// byte comparison.
pub fn write_telemetry_json(telemetry: &ExecTelemetry, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "{{")?;
    writeln!(
        w,
        "  \"total_wall_secs\": {},",
        json_f64(telemetry.total_wall_secs())
    )?;
    let h = &telemetry.latencies;
    let q = |q: f64| json_opt(h.quantile(q).map(cycles_to_usec));
    writeln!(w, "  \"latency_histogram\": {{")?;
    writeln!(w, "    \"messages\": {},", h.len())?;
    writeln!(
        w,
        "    \"mean_usec\": {},",
        json_opt(h.mean().map(cycles_to_usec_f))
    )?;
    writeln!(w, "    \"p50_usec\": {},", q(0.50))?;
    writeln!(w, "    \"p95_usec\": {},", q(0.95))?;
    writeln!(w, "    \"p99_usec\": {},", q(0.99))?;
    writeln!(
        w,
        "    \"max_usec\": {}",
        json_opt(h.max().map(cycles_to_usec))
    )?;
    writeln!(w, "  }},")?;
    writeln!(w, "  \"cells\": [")?;
    for (i, c) in telemetry.cells.iter().enumerate() {
        write!(
            w,
            "    {{\"algorithm\": {}, \"pattern\": {}, \"offered_load\": {}, \
\"wall_secs\": {}, \"from_cache\": {}}}",
            json_string(&c.algorithm),
            json_string(&c.pattern),
            json_f64(c.offered_load),
            json_f64(c.wall_secs),
            c.from_cache,
        )?;
        writeln!(
            w,
            "{}",
            if i + 1 < telemetry.cells.len() {
                ","
            } else {
                ""
            }
        )?;
    }
    writeln!(w, "  ]")?;
    writeln!(w, "}}")
}

/// Mean latencies arrive as fractional cycles; convert like
/// [`cycles_to_usec`] but without rounding through `u64`.
fn cycles_to_usec_f(cycles: f64) -> f64 {
    cycles / crate::config::FLITS_PER_USEC
}

/// `write_json` body with a configurable indent, shared by the plain
/// and stats-wrapped forms.
fn write_json_array(series: &[SweepSeries], w: &mut impl Write, extra: &str) -> io::Result<()> {
    writeln!(w, "[")?;
    for (i, s) in series.iter().enumerate() {
        writeln!(w, "{extra}  {{")?;
        writeln!(
            w,
            "{extra}    \"algorithm\": {},",
            json_string(&s.algorithm)
        )?;
        writeln!(w, "{extra}    \"pattern\": {},", json_string(&s.pattern))?;
        writeln!(w, "{extra}    \"faults\": {},", s.faults)?;
        writeln!(w, "{extra}    \"disconnected\": {},", s.disconnected)?;
        writeln!(
            w,
            "{extra}    \"max_sustainable_throughput\": {},",
            json_f64(s.max_sustainable_throughput())
        )?;
        writeln!(w, "{extra}    \"points\": [")?;
        for (j, p) in s.points.iter().enumerate() {
            write!(
                w,
                "{extra}      {{\"offered_load\": {}, \"throughput_flits_per_usec\": {}, \
\"avg_latency_usec\": {}, \"p95_latency_usec\": {}, \"avg_hops\": {}, \
\"delivered\": {}, \"stranded\": {}, \"sustainable\": {}, \"skipped\": {}}}",
                json_f64(p.offered_load),
                json_f64(p.throughput),
                json_opt(p.avg_latency_usec),
                json_opt(p.p95_latency_usec),
                json_opt(p.avg_hops),
                p.delivered,
                p.stranded,
                p.sustainable,
                p.skipped,
            )?;
            writeln!(w, "{}", if j + 1 < s.points.len() { "," } else { "" })?;
        }
        writeln!(w, "{extra}    ]")?;
        write!(
            w,
            "{extra}  }}{}",
            if i + 1 < series.len() { "," } else { "" }
        )?;
        if i + 1 < series.len() {
            writeln!(w)?;
        }
    }
    writeln!(w)?;
    write!(w, "{extra}]")
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned() // JSON has no Infinity/NaN
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or("null".to_owned(), json_f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SweepSeries> {
        vec![SweepSeries {
            algorithm: "negative-first".into(),
            pattern: "uniform".into(),
            faults: 2,
            disconnected: 0,
            points: vec![
                SweepPoint {
                    offered_load: 0.05,
                    throughput: 12.5,
                    avg_latency_usec: Some(3.25),
                    p95_latency_usec: Some(7.0),
                    avg_hops: Some(4.5),
                    delivered: 480,
                    stranded: 3,
                    sustainable: true,
                    skipped: false,
                },
                SweepPoint::skipped_at(0.1),
            ],
        }]
    }

    #[test]
    fn csv_has_header_and_status() {
        let mut buf = Vec::new();
        write_csv(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], CSV_HEADER);
        assert!(lines[1].ends_with(",true,ok"));
        assert!(lines[2].ends_with(",false,skipped"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut buf = Vec::new();
        write_json(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Balanced braces/brackets and the key fields present.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        assert!(text.contains("\"algorithm\": \"negative-first\""));
        assert!(text.contains("\"skipped\": true"));
        assert!(text.contains("\"avg_latency_usec\": null"));
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_json_is_versioned_and_schedule_invariant() {
        let stats = ExecStats {
            simulated: 99, // speculative; must NOT appear in the output
            cache_hits: 1,
            skipped: 1,
            emitted_from_cache: 1,
            emitted_simulated: 1,
        };
        let mut buf = Vec::new();
        write_report_json(&sample(), &stats, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\n  \"schema_version\": 1,"));
        assert!(text.contains("\"series\": ["));
        assert!(text.contains("\"cache_hits\": 1"));
        assert!(!text.contains("simulated\": 99"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
