//! Precomputed route lookup tables for the wormhole engine's hot path.
//!
//! The turn-model routing relations are pure functions of
//! `(node, dst, arrived)` (see
//! [`RoutingAlgorithm::is_tabulable`]), yet the engine re-derives them
//! through a dyn-dispatched `route()` call for every requesting header
//! on every cycle. A [`RouteTable`] precomputes the permitted
//! [`DirSet`] for every triple of a `(topology, algorithm)` pair into a
//! flat dense array — one byte per entry, since every table-eligible
//! topology has at most 8 directions — built once and shared across
//! sweep cells via [`Arc`]. The table is immutable after construction,
//! so the sharded engine's arbitration workers (`engine/shard.rs`)
//! read it concurrently through `&self` with no synchronisation.
//!
//! # Indexing
//!
//! With `N = num_nodes` and `S = 2 * num_dims + 1` arrival slots (slot
//! 0 is "at source", slot `d + 1` is arrival over direction index `d`):
//!
//! ```text
//! entry(node, dst, arrived) = (node * N + dst) * S + slot(arrived)
//! ```
//!
//! so one lookup is a multiply-add and a byte load. The memory cost is
//! exactly `N² * S` bytes (`16x16` mesh: 256² × 5 = 320 KiB).
//!
//! # Size cap and fallback
//!
//! Tables are only built when they are sound and affordable:
//!
//! * topologies with more than 4 dimensions (> 8 directions) cannot
//!   pack a [`DirSet`] into one byte — never tabled;
//! * algorithms reporting [`RoutingAlgorithm::is_tabulable`] `false`
//!   are never tabled;
//! * under [`RouteTableMode::Auto`] the table must also fit the
//!   configured memory budget
//!   ([`SimConfig::route_table_budget`](crate::SimConfig), default
//!   [`DEFAULT_ROUTE_TABLE_BUDGET`]); [`RouteTableMode::On`] ignores
//!   the budget but still refuses unsound tables.
//!
//! When no table is built the engine simply calls `algo.route()`
//! directly; results are bit-identical either way (enforced by unit and
//! integration tests).

use std::sync::Arc;

use crate::config::SimConfig;
use turnroute_core::RoutingAlgorithm;
use turnroute_fault::FaultedRelation;
use turnroute_topology::{DirSet, Direction, NodeId, Topology};

/// Whether the engine precomputes a [`RouteTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteTableMode {
    /// Build a table when it is sound and fits the memory budget — the
    /// default.
    #[default]
    Auto,
    /// Build a table whenever it is sound, ignoring the budget.
    On,
    /// Never build a table; always call the algorithm directly.
    Off,
}

/// Default memory budget for [`RouteTableMode::Auto`]: 64 MiB, which
/// admits every topology the figures use (a 64×64 mesh costs 80 MiB
/// and falls back).
pub const DEFAULT_ROUTE_TABLE_BUDGET: usize = 64 << 20;

/// Directions an entry byte can hold: 4 dimensions × 2 signs.
const MAX_TABLE_DIRS: usize = 8;

/// A dense `(node, dst, arrived) -> DirSet` lookup table for one
/// `(topology, algorithm)` pair. See the [module docs](self) for the
/// layout and build policy.
///
/// # Example
///
/// ```
/// use turnroute_core::{RoutingAlgorithm, WestFirst};
/// use turnroute_sim::lut::RouteTable;
/// use turnroute_topology::{Mesh, Topology};
///
/// let mesh = Mesh::new_2d(8, 8);
/// let wf = WestFirst::minimal();
/// let table = RouteTable::build(&mesh, &wf).expect("2D mesh is tabulable");
/// let from = mesh.node_at(&[4, 4].into());
/// let to = mesh.node_at(&[1, 6].into());
/// assert_eq!(table.lookup(from, to, None), wf.route(&mesh, from, to, None));
/// ```
pub struct RouteTable {
    /// `DirSet::bits()` truncated to a byte, `(node * N + dst) * S +
    /// slot` indexed.
    entries: Vec<u8>,
    num_nodes: usize,
    /// Arrival slots per (node, dst) pair: `2 * num_dims + 1`.
    slots: usize,
}

impl RouteTable {
    /// The exact memory the table for `topo` would occupy, in bytes:
    /// `num_nodes² × (2 × num_dims + 1)`.
    pub fn required_bytes(topo: &dyn Topology) -> usize {
        topo.num_nodes() * topo.num_nodes() * (2 * topo.num_dims() + 1)
    }

    /// `true` if a table for this pair would be sound: at most 4
    /// dimensions (so a [`DirSet`] fits the one-byte entries) and a
    /// tabulable algorithm. Says nothing about the memory budget.
    pub fn supports(topo: &dyn Topology, algo: &dyn RoutingAlgorithm) -> bool {
        2 * topo.num_dims() <= MAX_TABLE_DIRS && algo.is_tabulable()
    }

    /// Builds the table, or `None` if the pair is unsound for tabling
    /// (see [`RouteTable::supports`]). Applies no memory cap; use
    /// [`RouteTable::for_config`] for the policy-driven entry point.
    pub fn build(topo: &dyn Topology, algo: &dyn RoutingAlgorithm) -> Option<RouteTable> {
        if !RouteTable::supports(topo, algo) {
            return None;
        }
        let n = topo.num_nodes();
        let slots = 2 * topo.num_dims() + 1;

        // A routing relation only promises answers on states it can
        // itself produce (some panic outside them — e.g. the torus
        // algorithms once their wraparound credit is spent). So walk
        // the relation per destination from every source instead of
        // querying every physically possible arrival; unreachable
        // `(node, arrived)` slots keep the empty set, and the engine
        // never reads them because packets only occupy relation-made
        // states.
        let mut entries = vec![0u8; n * n * slots];
        let mut visited = vec![false; n * slots];
        let mut stack: Vec<(NodeId, Option<Direction>)> = Vec::new();
        for dst in topo.nodes() {
            visited.iter_mut().for_each(|v| *v = false);
            stack.extend(topo.nodes().filter(|&s| s != dst).map(|s| (s, None)));
            while let Some((node, arrived)) = stack.pop() {
                let slot = arrived.map_or(0, |d| 1 + d.index());
                if std::mem::replace(&mut visited[node.index() * slots + slot], true) {
                    continue;
                }
                let dirs = algo.route(topo, node, dst, arrived);
                entries[(node.index() * n + dst.index()) * slots + slot] = pack(dirs);
                for dir in dirs {
                    match topo.neighbor(node, dir) {
                        Some(next) if next != dst => stack.push((next, Some(dir))),
                        _ => {}
                    }
                }
            }
        }
        Some(RouteTable {
            entries,
            num_nodes: n,
            slots,
        })
    }

    /// Builds the table `config` asks for — the engine's entry point.
    /// Returns `None` (direct `route()` calls) under
    /// [`RouteTableMode::Off`], for unsound pairs, and under
    /// [`RouteTableMode::Auto`] when [`RouteTable::required_bytes`]
    /// exceeds the configured budget.
    pub fn for_config(
        topo: &dyn Topology,
        algo: &dyn RoutingAlgorithm,
        config: &SimConfig,
    ) -> Option<Arc<RouteTable>> {
        let over_budget = RouteTable::required_bytes(topo) > config.route_table_budget;
        match config.route_table {
            RouteTableMode::Off => None,
            RouteTableMode::Auto if over_budget => None,
            RouteTableMode::Auto | RouteTableMode::On => {
                RouteTable::build(topo, algo).map(Arc::new)
            }
        }
    }

    /// [`RouteTable::for_config`], but honest about fault plans: a
    /// table built from the healthy relation would happily route into a
    /// dead link, so with an active
    /// [`FaultSchedule`](turnroute_fault::FaultSchedule) the table must be
    /// built against the *pruned* relation — possible only when the
    /// fault set never changes
    /// ([`is_static`](turnroute_fault::FaultSchedule::is_static)). For
    /// a dynamic plan no table is built; the second element then names
    /// the reason (surfaced by the CLI), mirroring the Auto-budget
    /// fallback.
    pub fn for_config_with_faults(
        topo: &dyn Topology,
        algo: &dyn RoutingAlgorithm,
        config: &SimConfig,
    ) -> (Option<Arc<RouteTable>>, Option<&'static str>) {
        let Some(schedule) = config.faults.as_deref() else {
            return (RouteTable::for_config(topo, algo, config), None);
        };
        if !schedule.is_static() {
            let reason = (config.route_table != RouteTableMode::Off)
                .then_some("fault plan schedules events after cycle 0; route table disabled");
            return (None, reason);
        }
        let over_budget = RouteTable::required_bytes(topo) > config.route_table_budget;
        let table = match config.route_table {
            RouteTableMode::Off => None,
            RouteTableMode::Auto if over_budget => None,
            RouteTableMode::Auto | RouteTableMode::On => {
                let pruned = FaultedRelation::from_schedule(algo, topo, schedule);
                RouteTable::build(topo, &pruned).map(Arc::new)
            }
        };
        (table, None)
    }

    /// The permitted directions for a header at `node` bound for `dst`
    /// that arrived over `arrived` (`None` at its source) — exactly
    /// what `algo.route()` returned at build time.
    ///
    /// # Panics
    ///
    /// Panics (by slice bounds) if `node`, `dst` or `arrived` is out of
    /// range for the tabled topology.
    #[inline]
    pub fn lookup(&self, node: NodeId, dst: NodeId, arrived: Option<Direction>) -> DirSet {
        let slot = match arrived {
            None => 0,
            Some(dir) => 1 + dir.index(),
        };
        let i = (node.index() * self.num_nodes + dst.index()) * self.slots + slot;
        DirSet::from_bits(self.entries[i] as u32)
    }

    /// The table's memory footprint in bytes (== entry count).
    pub fn size_bytes(&self) -> usize {
        self.entries.len()
    }
}

impl std::fmt::Debug for RouteTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteTable")
            .field("num_nodes", &self.num_nodes)
            .field("slots", &self.slots)
            .field("size_bytes", &self.entries.len())
            .finish()
    }
}

fn pack(dirs: DirSet) -> u8 {
    debug_assert!(dirs.bits() <= u8::MAX as u32, "DirSet exceeds one byte");
    dirs.bits() as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_core::{DimensionOrder, NegativeFirst, NegativeFirstTorus, PCube, WestFirst};
    use turnroute_topology::{Hypercube, Mesh, Torus};

    /// Checks every relation-reachable `(node, dst, arrived)` state
    /// agrees with the live relation, via an independent traversal.
    fn assert_table_matches(topo: &dyn Topology, algo: &dyn RoutingAlgorithm) {
        let table = RouteTable::build(topo, algo).expect("pair must be tabulable");
        let mut states = 0usize;
        for dst in topo.nodes() {
            assert!(table.lookup(dst, dst, None).is_empty());
            let mut seen = std::collections::HashSet::new();
            let mut stack: Vec<(NodeId, Option<Direction>)> = topo
                .nodes()
                .filter(|&s| s != dst)
                .map(|s| (s, None))
                .collect();
            while let Some((node, arrived)) = stack.pop() {
                if !seen.insert((node, arrived)) {
                    continue;
                }
                states += 1;
                let dirs = algo.route(topo, node, dst, arrived);
                assert_eq!(
                    table.lookup(node, dst, arrived),
                    dirs,
                    "{} {node:?}->{dst:?} arrived {arrived:?}",
                    algo.name()
                );
                for dir in dirs {
                    match topo.neighbor(node, dir) {
                        Some(next) if next != dst => stack.push((next, Some(dir))),
                        _ => {}
                    }
                }
            }
        }
        // Sanity: at minimum every at-source state was visited.
        assert!(states >= topo.num_nodes() * (topo.num_nodes() - 1));
    }

    #[test]
    fn table_matches_relation_on_mesh() {
        let mesh = Mesh::new_2d(5, 4);
        assert_table_matches(&mesh, &WestFirst::minimal());
        assert_table_matches(&mesh, &DimensionOrder::new());
        assert_table_matches(&mesh, &NegativeFirst::minimal());
    }

    #[test]
    fn table_matches_relation_on_torus() {
        let torus = Torus::new(4, 2);
        assert_table_matches(&torus, &NegativeFirstTorus::new(&torus));
        assert_table_matches(&torus, &DimensionOrder::new());
    }

    #[test]
    fn table_matches_relation_on_small_hypercube() {
        // 3-cube: 6 directions, still one byte per entry.
        let cube = Hypercube::new(3);
        assert_table_matches(&cube, &PCube::minimal());
        assert_table_matches(&cube, &NegativeFirst::with_dims(3, true));
    }

    #[test]
    fn boundary_nodes_index_correctly() {
        // Corner-to-corner lookups exercise both extremes of the
        // `(node * N + dst) * S + slot` arithmetic: node 0 with dst 0
        // hits entry 0, and the last node to the last destination with
        // the highest arrival slot hits the final entry.
        let mesh = Mesh::new_2d(5, 4);
        let algo = NegativeFirst::minimal();
        let table = RouteTable::build(&mesh, &algo).unwrap();
        let n = mesh.num_nodes();
        let corners = [
            NodeId::new(0),     // (0, 0)
            NodeId::new(4),     // (4, 0)
            NodeId::new(15),    // (0, 3)
            NodeId::new(n - 1), // (4, 3)
        ];
        for &src in &corners {
            for &dst in &corners {
                if src == dst {
                    assert!(table.lookup(src, dst, None).is_empty());
                    continue;
                }
                assert_eq!(
                    table.lookup(src, dst, None),
                    algo.route(&mesh, src, dst, None),
                    "corner {src:?} -> corner {dst:?}"
                );
            }
        }
    }

    #[test]
    fn last_entry_of_the_table_is_reachable_and_correct() {
        // On a 1D mesh the highest-index state — last node, last
        // destination, arrived over the highest direction index — is
        // relation-reachable: node k-2 -> k-1 arriving over +d0.
        let mesh = Mesh::new(vec![6]);
        let algo = DimensionOrder::new();
        let table = RouteTable::build(&mesh, &algo).unwrap();
        let node = NodeId::new(4);
        let dst = NodeId::new(5);
        let arrived = Some(Direction::plus(0)); // index 1 = 2n - 1 for n = 1
        assert_eq!(
            table.lookup(node, dst, arrived),
            algo.route(&mesh, node, dst, arrived)
        );
        // And the max-arrival slot at the max node pair on a 2D mesh:
        // node 14 = (4, 2) forwarding north to dst 19 = (4, 3).
        let mesh = Mesh::new_2d(5, 4);
        let algo = NegativeFirst::minimal();
        let table = RouteTable::build(&mesh, &algo).unwrap();
        let node = NodeId::new(mesh.num_nodes() - 1);
        let dst = NodeId::new(mesh.num_nodes() - 1);
        assert!(table.lookup(node, dst, None).is_empty());
        let under = NodeId::new(14);
        let top = NodeId::new(19);
        let north = Some(Direction::NORTH); // highest arrival slot in 2D
        assert_eq!(
            table.lookup(under, top, north),
            algo.route(&mesh, under, top, north)
        );
    }

    #[test]
    fn memory_formula_is_exact() {
        let mesh = Mesh::new_2d(16, 16);
        let table = RouteTable::build(&mesh, &WestFirst::minimal()).unwrap();
        assert_eq!(RouteTable::required_bytes(&mesh), 256 * 256 * 5);
        assert_eq!(table.size_bytes(), RouteTable::required_bytes(&mesh));
    }

    #[test]
    fn high_dimensional_topologies_are_never_tabled() {
        // An 8-cube has 16 directions: a DirSet no longer fits a byte.
        let cube = Hypercube::new(8);
        let pcube = PCube::minimal();
        assert!(!RouteTable::supports(&cube, &pcube));
        assert!(RouteTable::build(&cube, &pcube).is_none());
        // Even `On` refuses the unsound table.
        let config = SimConfig::paper().route_table(RouteTableMode::On);
        assert!(RouteTable::for_config(&cube, &pcube, &config).is_none());
    }

    #[test]
    fn size_cap_fallback_engages_on_an_oversized_topology() {
        let mesh = Mesh::new_2d(16, 16);
        let wf = WestFirst::minimal();
        // 320 KiB required; a 64 KiB budget must force the fallback...
        let capped = SimConfig::paper().route_table_budget(64 << 10);
        assert!(RouteTable::for_config(&mesh, &wf, &capped).is_none());
        // ...while `On` ignores the budget and `Auto` under the default
        // budget builds.
        let forced = capped.clone().route_table(RouteTableMode::On);
        assert!(RouteTable::for_config(&mesh, &wf, &forced).is_some());
        assert!(RouteTable::for_config(&mesh, &wf, &SimConfig::paper()).is_some());
        // `Off` never builds, budget or not.
        let off = SimConfig::paper().route_table(RouteTableMode::Off);
        assert!(RouteTable::for_config(&mesh, &wf, &off).is_none());
    }

    #[test]
    fn non_tabulable_algorithms_opt_out() {
        struct Stateful;
        impl RoutingAlgorithm for Stateful {
            fn name(&self) -> String {
                "stateful".into()
            }
            fn route(
                &self,
                topo: &dyn Topology,
                current: NodeId,
                dest: NodeId,
                _arrived: Option<Direction>,
            ) -> DirSet {
                topo.minimal_directions(current, dest)
            }
            fn is_adaptive(&self) -> bool {
                true
            }
            fn is_minimal(&self) -> bool {
                true
            }
            fn is_tabulable(&self) -> bool {
                false
            }
        }
        let mesh = Mesh::new_2d(4, 4);
        assert!(!RouteTable::supports(&mesh, &Stateful));
        assert!(RouteTable::build(&mesh, &Stateful).is_none());
    }

    #[test]
    fn debug_is_a_summary_not_a_dump() {
        let mesh = Mesh::new_2d(4, 4);
        let table = RouteTable::build(&mesh, &DimensionOrder::new()).unwrap();
        let text = format!("{table:?}");
        assert!(text.contains("size_bytes"), "{text}");
        assert!(text.len() < 200, "{text}");
    }
}
