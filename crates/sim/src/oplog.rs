//! Structured operational logging: leveled, timestamped, span-tagged
//! line-JSON event records.
//!
//! The simulator's [`obs`](crate::obs) layer observes *simulations*
//! (flit traces, turn matrices) with zero default overhead; this module
//! observes the *system around them* — the job server's requests, job
//! lifecycles and store traffic, and the executor's per-cell progress.
//! Events are single-line JSON objects written to an arbitrary sink
//! (stderr or a file), so they grep cleanly and parse with any JSON
//! reader:
//!
//! ```text
//! {"ts_ms":1754700000123,"level":"info","event":"job_done","span":"j1","cells":4}
//! ```
//!
//! Design constraints, in order:
//!
//! * **Disabled means free.** A [`Logger::disabled`] logger carries no
//!   sink; every field builder short-circuits on `None` and
//!   [`Logger::enabled`] lets hot paths skip event construction
//!   entirely. Experiment *results* must be byte-identical with logging
//!   on or off — logs go to their own sink, never stdout.
//! * **No globals.** A [`Logger`] is an explicit, cheaply clonable
//!   handle (`Arc` inside), so tests run isolated loggers side by side
//!   and ownership is visible at construction sites.
//! * **std-only.** Rendering is hand-rolled line JSON; timestamps are
//!   wall-clock milliseconds since the Unix epoch.
//!
//! # Span model
//!
//! A *span* is a correlation id stitching one logical operation's
//! events together: the job server uses the job id (`"j7"`) for
//! lifecycle events and a per-connection id (`"r12"`, from
//! [`Logger::next_span`]) for request events. Events carry at most one
//! span; nesting is expressed by logging the parent id as an ordinary
//! field.

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume diagnostics (per-cell executor events).
    Debug,
    /// Normal lifecycle events (requests, job transitions).
    Info,
    /// Something off but handled (malformed request, store corruption).
    Warn,
    /// Something failed (job failure, store write error).
    Error,
}

impl Level {
    /// The lowercase name used in the `"level"` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "debug" => Ok(Level::Debug),
            "info" => Ok(Level::Info),
            "warn" => Ok(Level::Warn),
            "error" => Ok(Level::Error),
            other => Err(format!(
                "unknown log level '{other}' (debug | info | warn | error)"
            )),
        }
    }
}

struct Inner {
    min: Level,
    sink: Mutex<Box<dyn Write + Send>>,
    spans: AtomicU64,
}

/// A handle to a structured-log sink (or to nothing at all).
///
/// Cloning shares the sink; see the module docs for the design rules.
#[derive(Clone, Default)]
pub struct Logger {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Logger(disabled)"),
            Some(inner) => write!(f, "Logger(min: {})", inner.min),
        }
    }
}

impl Logger {
    /// A logger that drops everything at zero cost (the default).
    pub fn disabled() -> Self {
        Logger { inner: None }
    }

    /// A logger writing events at or above `min` to `sink`.
    pub fn to_writer(min: Level, sink: impl Write + Send + 'static) -> Self {
        Logger {
            inner: Some(Arc::new(Inner {
                min,
                sink: Mutex::new(Box::new(sink)),
                spans: AtomicU64::new(0),
            })),
        }
    }

    /// A logger appending to the file at `path` (created if missing).
    pub fn to_file(min: Level, path: impl AsRef<std::path::Path>) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self::to_writer(min, file))
    }

    /// A logger writing to standard error.
    pub fn to_stderr(min: Level) -> Self {
        Self::to_writer(min, io::stderr())
    }

    /// `true` if an event at `level` would actually be written — gate
    /// any per-event work a hot path would rather skip.
    pub fn enabled(&self, level: Level) -> bool {
        self.inner.as_ref().is_some_and(|i| level >= i.min)
    }

    /// A fresh span id with the given prefix (`"r"` → `"r1"`, `"r2"`,
    /// ...), unique per logger.
    pub fn next_span(&self, prefix: &str) -> String {
        let n = self
            .inner
            .as_ref()
            .map_or(0, |i| i.spans.fetch_add(1, Ordering::Relaxed) + 1);
        format!("{prefix}{n}")
    }

    /// Starts an event record named `event` at `level`. Append fields
    /// with the builder methods, then [`Event::emit`].
    pub fn event(&self, level: Level, event: &str) -> Event<'_> {
        let Some(inner) = self.inner.as_ref().filter(|i| level >= i.min) else {
            return Event {
                sink: None,
                buf: String::new(),
            };
        };
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        let mut buf = String::with_capacity(128);
        buf.push_str("{\"ts_ms\":");
        buf.push_str(&ts_ms.to_string());
        buf.push_str(",\"level\":\"");
        buf.push_str(level.as_str());
        buf.push_str("\",\"event\":");
        push_json_str(&mut buf, event);
        Event {
            sink: Some(&inner.sink),
            buf,
        }
    }
}

/// One in-flight event record; append fields, then [`Event::emit`].
///
/// All builders are no-ops when the owning logger filtered the event
/// out, so callers never branch on log levels themselves.
#[must_use = "an event does nothing until emit() is called"]
pub struct Event<'a> {
    sink: Option<&'a Mutex<Box<dyn Write + Send>>>,
    buf: String,
}

impl Event<'_> {
    fn key(&mut self, key: &str) {
        self.buf.push(',');
        push_json_str(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Adds the span id this event belongs to.
    pub fn span(self, id: &str) -> Self {
        self.str("span", id)
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        if self.sink.is_some() {
            self.key(key);
            push_json_str(&mut self.buf, value);
        }
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        if self.sink.is_some() {
            self.key(key);
            self.buf.push_str(&value.to_string());
        }
        self
    }

    /// Adds a float field (`null` for non-finite values — JSON has no
    /// NaN or infinity).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        if self.sink.is_some() {
            self.key(key);
            if value.is_finite() {
                self.buf.push_str(&value.to_string());
            } else {
                self.buf.push_str("null");
            }
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        if self.sink.is_some() {
            self.key(key);
            self.buf.push_str(if value { "true" } else { "false" });
        }
        self
    }

    /// Writes the record as one line. Sink errors are swallowed:
    /// logging must never take the system down with it.
    pub fn emit(mut self) {
        let Some(sink) = self.sink else { return };
        self.buf.push_str("}\n");
        if let Ok(mut w) = sink.lock() {
            let _ = w.write_all(self.buf.as_bytes());
            let _ = w.flush();
        }
    }
}

/// Appends `s` as a JSON string literal (quotes and escapes included).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink capturing everything written, shareable with the test.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Capture {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn events_render_as_line_json_with_schema_fields() {
        let cap = Capture::default();
        let log = Logger::to_writer(Level::Debug, cap.clone());
        log.event(Level::Info, "request")
            .span("r1")
            .str("method", "GET")
            .u64("status", 200)
            .f64("duration_secs", 0.25)
            .bool("cached", true)
            .emit();
        let text = cap.text();
        assert!(text.ends_with("}\n"), "one line per event: {text:?}");
        assert_eq!(text.lines().count(), 1);
        let line = text.lines().next().unwrap();
        assert!(line.starts_with("{\"ts_ms\":"));
        assert!(line.contains("\"level\":\"info\""));
        assert!(line.contains("\"event\":\"request\""));
        assert!(line.contains("\"span\":\"r1\""));
        assert!(line.contains("\"method\":\"GET\""));
        assert!(line.contains("\"status\":200"));
        assert!(line.contains("\"duration_secs\":0.25"));
        assert!(line.contains("\"cached\":true"));
    }

    #[test]
    fn level_filter_drops_quieter_events() {
        let cap = Capture::default();
        let log = Logger::to_writer(Level::Warn, cap.clone());
        assert!(!log.enabled(Level::Info));
        assert!(log.enabled(Level::Error));
        log.event(Level::Info, "dropped").emit();
        log.event(Level::Warn, "kept").emit();
        let text = cap.text();
        assert!(!text.contains("dropped"));
        assert!(text.contains("kept"));
    }

    #[test]
    fn disabled_logger_emits_nothing_and_reports_disabled() {
        let log = Logger::disabled();
        assert!(!log.enabled(Level::Error));
        // Emitting through a disabled logger is a no-op, not a panic.
        log.event(Level::Error, "void").u64("x", 1).emit();
        assert_eq!(format!("{log:?}"), "Logger(disabled)");
        assert_eq!(format!("{:?}", Logger::default()), "Logger(disabled)");
    }

    #[test]
    fn strings_are_escaped_and_floats_sanitized() {
        let cap = Capture::default();
        let log = Logger::to_writer(Level::Debug, cap.clone());
        log.event(Level::Info, "e")
            .str("path", "a\"b\\c\nd")
            .f64("nan", f64::NAN)
            .emit();
        let text = cap.text();
        assert!(text.contains("\"path\":\"a\\\"b\\\\c\\nd\""));
        assert!(text.contains("\"nan\":null"));
    }

    #[test]
    fn span_ids_are_unique_per_logger() {
        let cap = Capture::default();
        let log = Logger::to_writer(Level::Debug, cap);
        assert_eq!(log.next_span("r"), "r1");
        assert_eq!(log.next_span("r"), "r2");
        assert_eq!(log.next_span("j"), "j3");
        // Disabled loggers still hand out (constant) ids harmlessly.
        assert_eq!(Logger::disabled().next_span("r"), "r0");
    }

    #[test]
    fn levels_parse_and_order() {
        assert!(Level::Debug < Level::Info && Level::Warn < Level::Error);
        assert_eq!("warn".parse::<Level>(), Ok(Level::Warn));
        assert!("loud".parse::<Level>().is_err());
    }
}
