//! Simulation configuration.

use std::sync::Arc;

use crate::lut::{RouteTableMode, DEFAULT_ROUTE_TABLE_BUDGET};
use turnroute_fault::FaultSchedule;

/// Channel bandwidth used throughout the paper's Section 6: 20 flits/µs,
/// i.e. one flit crosses one channel per 0.05 µs cycle.
pub const FLITS_PER_USEC: f64 = 20.0;

/// Converts simulator cycles to microseconds at the paper's channel
/// bandwidth.
pub fn cycles_to_usec(cycles: u64) -> f64 {
    cycles as f64 / FLITS_PER_USEC
}

/// How message lengths are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthDistribution {
    /// Every message has the same length.
    Fixed(u32),
    /// Each message is `short` or `long` with equal probability — the
    /// paper uses 10 or 200 flits.
    Bimodal {
        /// The short length (paper: 10 flits).
        short: u32,
        /// The long length (paper: 200 flits).
        long: u32,
    },
}

impl LengthDistribution {
    /// The paper's Section 6 distribution: 10 or 200 flits, equally
    /// likely.
    pub fn paper() -> Self {
        LengthDistribution::Bimodal {
            short: 10,
            long: 200,
        }
    }

    /// The mean length in flits.
    pub fn mean(&self) -> f64 {
        match *self {
            LengthDistribution::Fixed(l) => l as f64,
            LengthDistribution::Bimodal { short, long } => (short + long) as f64 / 2.0,
        }
    }
}

/// How message arrivals are generated at each node.
///
/// The model is orthogonal to the offered load: every model is
/// normalized so the *long-run mean* injection rate equals
/// [`SimConfig::injection_rate_flits`], which keeps sweep load axes and
/// saturation comparisons meaningful across models.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TrafficModel {
    /// Stationary Poisson arrivals — the paper's Section 6 model.
    /// Inter-arrival times are exponential with mean
    /// `mean_length / injection_rate_flits` cycles.
    #[default]
    Poisson,
    /// A 2-state Markov-modulated Poisson process (bursty on-off
    /// traffic). Each node alternates between an ON state, where
    /// arrivals are Poisson at a rate boosted by `1 / duty` (duty =
    /// `burst_cycles / (burst_cycles + idle_cycles)`), and an OFF state
    /// with no arrivals. Sojourn times are exponential with the given
    /// means, so the long-run mean rate matches the configured load.
    ///
    /// Draws come from per-node seeded streams (prefix-nested from the
    /// run seed, the same discipline as the fault schedule), so the
    /// arrival sequence is invariant under threading and sharding.
    Mmpp {
        /// Mean ON-state sojourn, in cycles (positive, finite).
        burst_cycles: f64,
        /// Mean OFF-state sojourn, in cycles (positive, finite).
        idle_cycles: f64,
    },
}

impl TrafficModel {
    /// The canonical spec string: `poisson` or `mmpp:<burst>,<idle>`.
    /// Round-trips through the CLI / wire-format parser.
    pub fn as_spec(&self) -> String {
        match *self {
            TrafficModel::Poisson => "poisson".to_owned(),
            TrafficModel::Mmpp {
                burst_cycles,
                idle_cycles,
            } => format!("mmpp:{burst_cycles},{idle_cycles}"),
        }
    }

    /// The fraction of time a node spends in the ON state (`1.0` for
    /// Poisson).
    pub fn duty(&self) -> f64 {
        match *self {
            TrafficModel::Poisson => 1.0,
            TrafficModel::Mmpp {
                burst_cycles,
                idle_cycles,
            } => burst_cycles / (burst_cycles + idle_cycles),
        }
    }

    /// Checks the model's parameters, returning a human-readable
    /// complaint for non-positive or non-finite sojourn means.
    pub fn check(&self) -> Result<(), String> {
        match *self {
            TrafficModel::Poisson => Ok(()),
            TrafficModel::Mmpp {
                burst_cycles,
                idle_cycles,
            } => {
                for (name, v) in [("burst_cycles", burst_cycles), ("idle_cycles", idle_cycles)] {
                    if !v.is_finite() || v <= 0.0 {
                        return Err(format!(
                            "mmpp {name} must be a positive finite number of cycles, got {v}"
                        ));
                    }
                }
                Ok(())
            }
        }
    }
}

/// Which header wins when several compete for one output channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InputSelection {
    /// Local first-come-first-served: the header that has waited at the
    /// router longest wins. Fair, so indefinite postponement is
    /// impossible — the paper's policy.
    #[default]
    FirstComeFirstServed,
    /// The header that arrived over the lowest-indexed direction wins
    /// (injection beats every network input). Unfair; can postpone
    /// indefinitely. Included for the selection-policy ablation.
    FixedPriority,
    /// A uniformly random contender wins each cycle.
    Random,
}

/// Which output channel a header takes when several are permitted and
/// free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputSelection {
    /// Prefer the lowest dimension (minus before plus) — the paper's
    /// "xy" policy.
    #[default]
    LowestDimension,
    /// Prefer the highest dimension.
    HighestDimension,
    /// Prefer continuing in the arrival direction, then lowest
    /// dimension.
    StraightFirst,
    /// Pick uniformly at random among the free permitted channels.
    Random,
}

/// Full configuration of one simulation run.
///
/// The defaults reproduce the paper's Section 6 setup: 20 flits/µs
/// channels, single-flit buffers, bimodal 10/200-flit messages,
/// local-FCFS input selection and "xy" output selection.
///
/// # Example
///
/// ```
/// use turnroute_sim::SimConfig;
///
/// let config = SimConfig::paper()
///     .injection_rate(0.1)
///     .seed(7)
///     .warmup_cycles(1_000)
///     .measure_cycles(10_000);
/// assert_eq!(config.injection_rate_flits, 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Offered load per node, in flits per cycle (1 flit/cycle = the
    /// full 20 flits/µs channel bandwidth). Messages are generated with
    /// exponentially distributed inter-arrival times whose mean is
    /// `mean_length / injection_rate_flits` cycles.
    pub injection_rate_flits: f64,
    /// The arrival process generating messages at each node. Every
    /// model is normalized to the same long-run mean rate, so this axis
    /// changes *when* messages arrive, never how many on average.
    pub traffic: TrafficModel,
    /// Message length distribution.
    pub lengths: LengthDistribution,
    /// Input (arbitration) policy.
    pub input_selection: InputSelection,
    /// Output (channel choice) policy.
    pub output_selection: OutputSelection,
    /// RNG seed — runs are fully deterministic given the seed.
    pub seed: u64,
    /// Cycles to run before statistics collection starts.
    pub warmup_cycles: u64,
    /// Cycles of the measurement window.
    pub measure_cycles: u64,
    /// Cycles of no in-flight progress after which deadlock is declared.
    pub deadlock_threshold: u64,
    /// Whether routing decisions come from a precomputed
    /// [`RouteTable`](crate::RouteTable) instead of live `route()`
    /// calls. Purely a speed knob: reports and RNG streams are
    /// bit-identical either way.
    pub route_table: RouteTableMode,
    /// Memory cap, in bytes, above which [`RouteTableMode::Auto`] falls
    /// back to direct routing.
    pub route_table_budget: usize,
    /// Compiled fault schedule to replay during the run, `None` for a
    /// healthy network. The engine applies each event at the start of
    /// its cycle and prunes failed channels out of the offered
    /// direction set. A schedule participates in experiment cache
    /// identity through its content fingerprint.
    pub faults: Option<Arc<FaultSchedule>>,
    /// How many topology shards arbitrate in parallel inside one run:
    /// `1` is the serial engine, `0` means "auto" (one shard per
    /// available core). Purely a speed knob — reports are bit-identical
    /// at every shard count (see `DESIGN.md` §11), so cache keys and
    /// spec fingerprints canonicalize it away. Configurations the
    /// sharded arbitrator cannot split deterministically (RNG-consuming
    /// selection policies, attached observers) fall back to serial with
    /// a recorded reason.
    pub shards: usize,
}

impl SimConfig {
    /// The paper's Section 6 configuration at zero load; set
    /// [`injection_rate`](Self::injection_rate) before running.
    pub fn paper() -> Self {
        SimConfig {
            injection_rate_flits: 0.0,
            traffic: TrafficModel::Poisson,
            lengths: LengthDistribution::paper(),
            input_selection: InputSelection::FirstComeFirstServed,
            output_selection: OutputSelection::LowestDimension,
            seed: 0x7453_1DE5,
            warmup_cycles: 20_000,
            measure_cycles: 60_000,
            deadlock_threshold: 50_000,
            route_table: RouteTableMode::Auto,
            route_table_budget: DEFAULT_ROUTE_TABLE_BUDGET,
            faults: None,
            shards: 1,
        }
    }

    /// Sets the offered load per node in flits per cycle.
    pub fn injection_rate(mut self, flits_per_cycle: f64) -> Self {
        assert!(flits_per_cycle >= 0.0, "negative injection rate");
        self.injection_rate_flits = flits_per_cycle;
        self
    }

    /// Sets the arrival process (see [`TrafficModel`]).
    pub fn traffic(mut self, model: TrafficModel) -> Self {
        self.traffic = model;
        self
    }

    /// Sets the message length distribution.
    pub fn lengths(mut self, lengths: LengthDistribution) -> Self {
        self.lengths = lengths;
        self
    }

    /// Sets the input selection policy.
    pub fn input_selection(mut self, policy: InputSelection) -> Self {
        self.input_selection = policy;
        self
    }

    /// Sets the output selection policy.
    pub fn output_selection(mut self, policy: OutputSelection) -> Self {
        self.output_selection = policy;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the warmup length in cycles.
    pub fn warmup_cycles(mut self, cycles: u64) -> Self {
        self.warmup_cycles = cycles;
        self
    }

    /// Sets the measurement window in cycles.
    pub fn measure_cycles(mut self, cycles: u64) -> Self {
        self.measure_cycles = cycles;
        self
    }

    /// Sets the deadlock watchdog threshold in cycles.
    pub fn deadlock_threshold(mut self, cycles: u64) -> Self {
        self.deadlock_threshold = cycles;
        self
    }

    /// Sets the route-table policy.
    pub fn route_table(mut self, mode: RouteTableMode) -> Self {
        self.route_table = mode;
        self
    }

    /// Sets the [`RouteTableMode::Auto`] memory cap in bytes.
    pub fn route_table_budget(mut self, bytes: usize) -> Self {
        self.route_table_budget = bytes;
        self
    }

    /// Attaches a compiled fault schedule; an empty schedule is
    /// equivalent to `None`.
    pub fn faults(mut self, schedule: FaultSchedule) -> Self {
        self.faults = (!schedule.is_empty()).then(|| Arc::new(schedule));
        self
    }

    /// Attaches an already-shared fault schedule (or clears it).
    pub fn fault_schedule(mut self, schedule: Option<Arc<FaultSchedule>>) -> Self {
        self.faults = schedule.filter(|s| !s.is_empty());
        self
    }

    /// Sets the intra-run shard count: `1` = serial, `0` = auto (one
    /// shard per available core). Reports are bit-identical at every
    /// value.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Mean message inter-arrival time per node, in cycles; `None` at
    /// zero load.
    pub fn mean_interarrival_cycles(&self) -> Option<f64> {
        (self.injection_rate_flits > 0.0).then(|| self.lengths.mean() / self.injection_rate_flits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SimConfig::paper();
        assert_eq!(c.lengths, LengthDistribution::paper());
        assert_eq!(c.lengths.mean(), 105.0);
        assert_eq!(c.input_selection, InputSelection::FirstComeFirstServed);
        assert_eq!(c.output_selection, OutputSelection::LowestDimension);
    }

    #[test]
    fn interarrival_matches_load() {
        let c = SimConfig::paper().injection_rate(0.5);
        // 105-flit mean messages at 0.5 flits/cycle: one message every
        // 210 cycles.
        assert_eq!(c.mean_interarrival_cycles(), Some(210.0));
        assert_eq!(SimConfig::paper().mean_interarrival_cycles(), None);
    }

    #[test]
    fn traffic_model_specs_and_duty() {
        assert_eq!(TrafficModel::Poisson.as_spec(), "poisson");
        assert_eq!(TrafficModel::Poisson.duty(), 1.0);
        let mmpp = TrafficModel::Mmpp {
            burst_cycles: 200.0,
            idle_cycles: 600.0,
        };
        assert_eq!(mmpp.as_spec(), "mmpp:200,600");
        assert_eq!(mmpp.duty(), 0.25);
        assert!(mmpp.check().is_ok());
        for bad in [
            (0.0, 100.0),
            (100.0, 0.0),
            (-1.0, 100.0),
            (f64::NAN, 100.0),
            (100.0, f64::INFINITY),
        ] {
            let m = TrafficModel::Mmpp {
                burst_cycles: bad.0,
                idle_cycles: bad.1,
            };
            assert!(m.check().is_err(), "{bad:?}");
        }
        assert_eq!(SimConfig::paper().traffic, TrafficModel::Poisson);
        assert_eq!(SimConfig::paper().traffic(mmpp).traffic, mmpp);
    }

    #[test]
    fn cycles_convert_to_usec() {
        assert_eq!(cycles_to_usec(20), 1.0);
        assert_eq!(cycles_to_usec(0), 0.0);
    }

    #[test]
    fn builder_chains() {
        let c = SimConfig::paper()
            .injection_rate(0.25)
            .seed(42)
            .warmup_cycles(5)
            .measure_cycles(10)
            .deadlock_threshold(99)
            .output_selection(OutputSelection::Random)
            .input_selection(InputSelection::Random)
            .lengths(LengthDistribution::Fixed(16));
        assert_eq!(c.injection_rate_flits, 0.25);
        assert_eq!(c.seed, 42);
        assert_eq!(c.warmup_cycles, 5);
        assert_eq!(c.measure_cycles, 10);
        assert_eq!(c.deadlock_threshold, 99);
        assert_eq!(c.lengths.mean(), 16.0);
    }
}
