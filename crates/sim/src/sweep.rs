//! Injection-rate sweeps: the driver behind every latency-vs-throughput
//! figure.

use crate::config::SimConfig;
use crate::engine::SimReport;
use crate::exec::{Executor, SeriesJob};
use crate::patterns::TrafficPattern;
use turnroute_core::RoutingAlgorithm;
use turnroute_topology::Topology;

/// One operating point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Offered load per node, flits per cycle.
    pub offered_load: f64,
    /// Delivered network throughput, flits per microsecond.
    pub throughput: f64,
    /// Mean message latency (creation to delivery), microseconds.
    pub avg_latency_usec: Option<f64>,
    /// 95th-percentile latency, microseconds.
    pub p95_latency_usec: Option<f64>,
    /// Mean header hops of measured messages.
    pub avg_hops: Option<f64>,
    /// Messages delivered over the whole run (warmup and drain
    /// included) — the degradation-sweep numerator.
    pub delivered: u64,
    /// Messages stranded by the routing relation (no permitted
    /// direction left, e.g. every offered channel permanently failed).
    pub stranded: u64,
    /// `true` if the point is sustainable (bounded source queues, no
    /// deadlock).
    pub sustainable: bool,
    /// `true` if the executor never simulated this point: a lower load
    /// in the same series was already unsustainable, so this one is
    /// monotonically unsustainable too.
    pub skipped: bool,
}

impl SweepPoint {
    /// The operating point a finished simulation measured.
    pub fn from_report(report: &SimReport) -> Self {
        SweepPoint {
            offered_load: report.offered_load,
            throughput: report.metrics.throughput_flits_per_usec(),
            avg_latency_usec: report.metrics.avg_latency_usec(),
            p95_latency_usec: report.metrics.latency_quantile_usec(0.95),
            avg_hops: report.metrics.avg_hops(),
            delivered: report.total_delivered,
            stranded: report.stranded_packets,
            sustainable: report.sustainable(),
            skipped: false,
        }
    }

    /// The placeholder for a load the executor skipped as monotonically
    /// unsustainable.
    pub fn skipped_at(offered_load: f64) -> Self {
        SweepPoint {
            offered_load,
            throughput: 0.0,
            avg_latency_usec: None,
            p95_latency_usec: None,
            avg_hops: None,
            delivered: 0,
            stranded: 0,
            sustainable: false,
            skipped: true,
        }
    }
}

/// The result of sweeping one algorithm under one traffic pattern.
#[derive(Debug, Clone)]
pub struct SweepSeries {
    /// The routing algorithm's name.
    pub algorithm: String,
    /// The traffic pattern's name.
    pub pattern: String,
    /// Channels failed at cycle 0 by the series' fault plan (0 for a
    /// healthy network) — the degradation-sweep x-axis.
    pub faults: u64,
    /// (src, dst) pairs [`turnroute_fault::verify`] found unroutable
    /// under the series' fault set (0 for a healthy network).
    pub disconnected: u64,
    /// One point per offered load, in sweep order.
    pub points: Vec<SweepPoint>,
}

impl SweepSeries {
    /// The largest sustainable delivered throughput observed —
    /// the paper's "maximum sustainable throughput".
    pub fn max_sustainable_throughput(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.sustainable)
            .map(|p| p.throughput)
            .fold(0.0, f64::max)
    }

    /// Renders the series as CSV rows in the uniform schema
    /// (see [`crate::report`] for the header and a JSON writer).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            out.push_str(&crate::report::csv_row(
                &self.algorithm,
                &self.pattern,
                self.faults,
                self.disconnected,
                p,
            ));
            out.push('\n');
        }
        out
    }
}

/// Runs `algorithm` under `pattern` at each offered load and collects
/// the latency/throughput series.
///
/// Each load runs a fresh simulation whose seed derives from the cell's
/// identity (see [`crate::exec::derive_cell_seed`]), so the series is
/// reproducible cell by cell under any schedule. A deadlocked run
/// (impossible for the paper's algorithms; possible for hand-built turn
/// sets) yields an unsustainable point with zero throughput, and the
/// executor skips every higher load in the series.
///
/// This is the single-threaded convenience form of
/// [`crate::exec::Executor`]; pass more threads there to fan grids out.
pub fn sweep(
    topo: &dyn Topology,
    algorithm: &dyn RoutingAlgorithm,
    pattern: &dyn TrafficPattern,
    base: &SimConfig,
    offered_loads: &[f64],
) -> SweepSeries {
    let job = SeriesJob::simulation(topo, algorithm, pattern, base, offered_loads);
    Executor::new(1).run(vec![job]).remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{Transpose, Uniform};
    use turnroute_core::{DimensionOrder, NegativeFirst};
    use turnroute_topology::Mesh;

    fn small_config() -> SimConfig {
        SimConfig::paper()
            .warmup_cycles(1_000)
            .measure_cycles(6_000)
            .seed(5)
    }

    #[test]
    fn throughput_tracks_offered_load_below_saturation() {
        let mesh = Mesh::new_2d(4, 4);
        let algo = DimensionOrder::new();
        let series = sweep(&mesh, &algo, &Uniform, &small_config(), &[0.01, 0.05]);
        assert_eq!(series.points.len(), 2);
        let (a, b) = (&series.points[0], &series.points[1]);
        assert!(a.sustainable && b.sustainable);
        assert!(b.throughput > a.throughput);
        // Delivered roughly equals offered: 16 nodes * load * 20.
        let offered_fpu = 16.0 * 0.05 * 20.0;
        assert!(
            (b.throughput - offered_fpu).abs() / offered_fpu < 0.25,
            "delivered {} vs offered {}",
            b.throughput,
            offered_fpu
        );
    }

    #[test]
    fn saturation_is_detected_at_absurd_load() {
        let mesh = Mesh::new_2d(4, 4);
        let algo = DimensionOrder::new();
        let series = sweep(&mesh, &algo, &Uniform, &small_config(), &[2.0]);
        assert!(!series.points[0].sustainable);
        assert!(series.max_sustainable_throughput() == 0.0);
    }

    #[test]
    fn csv_has_one_row_per_point() {
        let mesh = Mesh::new_2d(4, 4);
        let algo = NegativeFirst::minimal();
        let series = sweep(&mesh, &algo, &Transpose, &small_config(), &[0.01, 0.02]);
        let csv = series.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("negative-first,matrix-transpose,"));
    }
}
