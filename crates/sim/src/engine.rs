//! The cycle-based wormhole simulation engine.

mod shard;

use crate::config::{InputSelection, OutputSelection, SimConfig};
use crate::deadlock::{detect_deadlock, DeadlockReport};
use crate::lut::RouteTable;
use crate::metrics::MetricsCollector;
use crate::obs::{NoopObserver, SimObserver};
use crate::packet::{Packet, PacketId, PacketState};
use crate::patterns::TrafficPattern;
use crate::traffic::TrafficSource;
use std::collections::VecDeque;
use std::sync::Arc;
use turnroute_core::RoutingAlgorithm;
use turnroute_fault::FaultEvent;
use turnroute_rng::{Rng, StdRng};
use turnroute_topology::{ChannelId, DirSet, Direction, NodeId, Topology};

/// Upper bound on directions of any topology ([`DirSet`] is a `u32`
/// bitset), sizing the engine's stack-allocated direction and candidate
/// arrays.
const MAX_DIRS: usize = 32;

/// Per-cycle scratch buffers owned by the simulation so the hot path
/// never allocates: each is cleared (cheap — `len = 0` or an epoch
/// bump) and refilled every cycle, keeping its capacity across the
/// whole run.
struct Scratch {
    /// Headers requesting an output channel this cycle.
    requesters: Vec<PacketId>,
    /// `(packet, channel)` grants flowing from arbitration to advance.
    grants: Vec<(PacketId, ChannelId)>,
    /// In-flight headers parked at their destination this cycle.
    at_dest: Vec<PacketId>,
    /// Channel-granted set, epoch-stamped: entry `c` holds `cycle + 1`
    /// if `c` was granted this cycle (0 = never granted), so "clearing"
    /// it is free.
    granted_epoch: Vec<u64>,
    /// Freshly generated `(source, length)` messages.
    messages: Vec<(NodeId, u32)>,
}

/// Hot per-packet fields mirrored as struct-of-arrays: the cycle
/// kernel's requester scans and sort keys read densely packed columns
/// instead of striding over whole [`Packet`] records (~130 bytes each).
/// The AoS `Packet` remains the source of truth for the public API,
/// observers and deadlock analysis; the few write sites (creation, head
/// moves, stranding) update both.
struct HotLanes {
    /// The router each packet's header currently occupies.
    head_node: Vec<NodeId>,
    /// Each packet's destination (immutable after creation).
    dst: Vec<NodeId>,
    /// Direction each header arrived over (`None` before injection).
    arrived: Vec<Option<Direction>>,
    /// Cycle each header arrived at its current router (the FCFS key).
    head_arrival: Vec<u64>,
    /// Stranded flags (see [`Packet::is_stranded`]).
    stranded: Vec<bool>,
}

impl HotLanes {
    fn push(&mut self, src: NodeId, dst: NodeId, created_at: u64) {
        self.head_node.push(src);
        self.dst.push(dst);
        self.arrived.push(None);
        self.head_arrival.push(created_at);
        self.stranded.push(false);
    }
}

/// Why a simulation run ended.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The configured cycles completed.
    Completed,
    /// The deadlock watchdog fired: no in-flight packet advanced for the
    /// configured threshold, and a circular wait was found.
    Deadlocked(DeadlockReport),
}

/// The result of a simulation run: the collected metrics plus outcome
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Offered load per node in flits per cycle.
    pub offered_load: f64,
    /// Collected measurement-window statistics.
    pub metrics: MetricsCollector,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Packets the routing relation stranded (no permitted direction
    /// while in flight — only possible with hand-built turn sets).
    pub stranded_packets: u64,
    /// Total messages delivered over the whole run.
    pub total_delivered: u64,
    /// Total messages generated over the whole run.
    pub total_generated: u64,
}

impl SimReport {
    /// `true` if the run completed with bounded source queues — the
    /// paper's criterion for a *sustainable* operating point.
    pub fn sustainable(&self) -> bool {
        matches!(self.outcome, RunOutcome::Completed) && self.metrics.queues_bounded()
    }
}

/// A flit-level wormhole network simulation, faithful to the paper's
/// Section 6 setup:
///
/// * every channel moves one flit per 0.05 µs cycle (20 flits/µs);
/// * each router input channel buffers a single flit, so a blocked worm
///   stalls in place, one flit per occupied channel;
/// * one injection and one ejection channel connect each router to its
///   processor; blocked messages queue at the source; destinations
///   consume immediately;
/// * input selection is local first-come-first-served, output selection
///   prefers the lowest dimension ("xy"), both configurable for
///   ablations.
///
/// Use [`Simulation::run`] for a full warmup + measurement run, or
/// [`Simulation::step`] to single-step in tests.
///
/// The simulation is generic over a [`SimObserver`] receiving
/// fine-grained event callbacks (see [`crate::obs`]); the default
/// [`NoopObserver`] monomorphizes every hook away, so [`Simulation::new`]
/// builds exactly the uninstrumented engine. Attach probes with
/// [`Simulation::with_observer`].
///
/// # Example
///
/// ```
/// use turnroute_core::WestFirst;
/// use turnroute_sim::{SimConfig, Simulation, patterns::Uniform};
/// use turnroute_topology::Mesh;
///
/// let mesh = Mesh::new_2d(4, 4);
/// let algo = WestFirst::minimal();
/// let config = SimConfig::paper()
///     .injection_rate(0.05)
///     .warmup_cycles(500)
///     .measure_cycles(2_000);
/// let mut sim = Simulation::new(&mesh, &algo, &Uniform, config);
/// let report = sim.run();
/// assert!(report.sustainable());
/// ```
pub struct Simulation<'a, O: SimObserver = NoopObserver> {
    obs: O,
    topo: &'a dyn Topology,
    algo: &'a dyn RoutingAlgorithm,
    pattern: &'a dyn TrafficPattern,
    config: SimConfig,
    rng: StdRng,
    source: TrafficSource,
    cycle: u64,
    packets: Vec<Packet>,
    /// Struct-of-arrays mirror of the packet fields the cycle kernel
    /// reads every cycle.
    lanes: HotLanes,
    /// Per-node source queue of packets waiting to inject.
    queues: Vec<VecDeque<PacketId>>,
    /// Total packets across all source queues, maintained on push/pop
    /// so drain checks and queue sampling are O(1) instead of O(nodes).
    queued_total: usize,
    /// Per-node packet currently streaming flits from the source.
    injecting: Vec<Option<PacketId>>,
    /// Per-node packet currently streaming flits into the local
    /// processor (the single ejection channel of the paper's router).
    ejecting: Vec<Option<PacketId>>,
    /// Per-channel occupant.
    channel_owner: Vec<Option<PacketId>>,
    /// Channel-occupancy bitset (64 channels per word), kept in lockstep
    /// with `channel_owner`: the hot free-channel check reads one bit
    /// instead of a 16-byte `Option<PacketId>`.
    channel_busy: Vec<u64>,
    /// Channels taken out of service by fault injection.
    faulty: Vec<bool>,
    /// The configured fault schedule's events, replayed in order.
    fault_events: Vec<FaultEvent>,
    /// Next unapplied entry in `fault_events`.
    fault_cursor: usize,
    /// Whether the live routing query must prune failed channels out of
    /// the permitted set *before* output selection. True exactly when a
    /// fault plan is active and no (already-pruned) route table is in
    /// use, so table-on and table-off runs stay bit-identical under
    /// RNG-consuming output selection.
    prune_faulty: bool,
    /// Whether the schedule contains repair events: an empty pruned set
    /// then blocks (the link may come back) instead of stranding.
    fault_repairs: bool,
    /// Why the configured route table was disabled, if it was.
    table_fallback: Option<&'static str>,
    /// Why a requested multi-shard run fell back to the serial
    /// arbitrator, if it did.
    shard_fallback: Option<&'static str>,
    /// Flits routed over each channel during the measurement window
    /// (credited when a header acquires the channel).
    channel_flits: Vec<u64>,
    /// Packets currently in flight.
    in_flight: Vec<PacketId>,
    /// Packets the routing relation stranded (each flagged on its
    /// [`Packet::is_stranded`]; stranded packets stay in flight
    /// forever, so this never decreases).
    stranded_count: u64,
    /// Precomputed routing decisions, when the configured
    /// [`RouteTableMode`](crate::RouteTableMode) admits one for this
    /// `(topology, algorithm)` pair.
    table: Option<Arc<RouteTable>>,
    scratch: Scratch,
    last_progress: u64,
    generation_enabled: bool,
    metrics: MetricsCollector,
    total_delivered: u64,
    total_generated: u64,
}

impl<'a> Simulation<'a> {
    /// Builds a simulation over `topo` routed by `algo` under `pattern`,
    /// with no observer attached.
    pub fn new(
        topo: &'a dyn Topology,
        algo: &'a dyn RoutingAlgorithm,
        pattern: &'a dyn TrafficPattern,
        config: SimConfig,
    ) -> Self {
        Simulation::with_observer(topo, algo, pattern, config, NoopObserver)
    }
}

impl<'a, O: SimObserver> Simulation<'a, O> {
    /// Builds a simulation with `observer` attached: it receives every
    /// engine event (see [`SimObserver`]). Observers are read-only and
    /// RNG-free, so results are identical to an unobserved run.
    pub fn with_observer(
        topo: &'a dyn Topology,
        algo: &'a dyn RoutingAlgorithm,
        pattern: &'a dyn TrafficPattern,
        config: SimConfig,
        observer: O,
    ) -> Self {
        let (table, fallback) = RouteTable::for_config_with_faults(topo, algo, &config);
        let mut sim =
            Simulation::with_observer_and_table(topo, algo, pattern, config, observer, table);
        sim.table_fallback = fallback;
        sim
    }

    /// Builds a simulation with `observer` attached and a caller-owned
    /// route table. `None` means route directly; a `Some` table must
    /// have been built for exactly this `(topo, algo)` pair. The sweep
    /// executor uses this to build the table once per series and share
    /// it across cells.
    pub fn with_observer_and_table(
        topo: &'a dyn Topology,
        algo: &'a dyn RoutingAlgorithm,
        pattern: &'a dyn TrafficPattern,
        config: SimConfig,
        observer: O,
        table: Option<Arc<RouteTable>>,
    ) -> Self {
        let (fault_events, fault_repairs) = match config.faults.as_deref() {
            Some(schedule) => {
                assert_eq!(
                    schedule.num_channels(),
                    topo.num_channels(),
                    "fault schedule compiled for a different topology"
                );
                assert!(
                    schedule.is_static() || table.is_none(),
                    "dynamic fault schedules cannot use a precomputed route table"
                );
                (schedule.events().to_vec(), schedule.has_repairs())
            }
            None => (Vec::new(), false),
        };
        let prune_faulty = !fault_events.is_empty() && table.is_none();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let source = TrafficSource::for_config(topo.num_nodes(), &config, &mut rng);
        Simulation {
            obs: observer,
            topo,
            algo,
            pattern,
            config,
            rng,
            source,
            cycle: 0,
            packets: Vec::new(),
            lanes: HotLanes {
                head_node: Vec::new(),
                dst: Vec::new(),
                arrived: Vec::new(),
                head_arrival: Vec::new(),
                stranded: Vec::new(),
            },
            queues: vec![VecDeque::new(); topo.num_nodes()],
            queued_total: 0,
            injecting: vec![None; topo.num_nodes()],
            ejecting: vec![None; topo.num_nodes()],
            channel_owner: vec![None; topo.num_channels()],
            channel_busy: vec![0; topo.num_channels().div_ceil(64)],
            faulty: vec![false; topo.num_channels()],
            fault_events,
            fault_cursor: 0,
            prune_faulty,
            fault_repairs,
            table_fallback: None,
            shard_fallback: None,
            channel_flits: vec![0; topo.num_channels()],
            in_flight: Vec::new(),
            stranded_count: 0,
            table,
            scratch: Scratch {
                requesters: Vec::new(),
                grants: Vec::new(),
                at_dest: Vec::new(),
                granted_epoch: vec![0; topo.num_channels()],
                messages: Vec::new(),
            },
            last_progress: 0,
            generation_enabled: true,
            metrics: MetricsCollector::default(),
            total_delivered: 0,
            total_generated: 0,
        }
    }

    /// The current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// `true` if routing decisions come from a precomputed
    /// [`RouteTable`] rather than live `route()` calls. Purely a speed
    /// distinction: results are bit-identical either way.
    pub fn uses_route_table(&self) -> bool {
        self.table.is_some()
    }

    /// Why the configured route table was disabled, if it was: set when
    /// a requested table was refused because the fault plan schedules
    /// events after cycle 0 (the table cannot track a changing channel
    /// set). `None` for caller-owned tables.
    pub fn route_table_fallback_reason(&self) -> Option<&'static str> {
        self.table_fallback
    }

    /// Why a requested multi-shard run fell back to the serial
    /// arbitrator, if it did: RNG-consuming selection policies draw
    /// during arbitration (so splitting it would reorder the stream),
    /// and attached observers receive per-requester events in global
    /// priority order. Set by [`Simulation::run`]; `None` before the
    /// run or when sharding was honoured.
    #[must_use]
    pub fn shard_fallback_reason(&self) -> Option<&'static str> {
        self.shard_fallback
    }

    /// `true` if `channel` currently holds a flit — the bitset read the
    /// hot arbitration loop uses (one bit, versus the 16-byte
    /// [`Simulation::channel_owner`] entry).
    #[must_use]
    pub fn channel_is_busy(&self, channel: ChannelId) -> bool {
        let c = channel.index();
        self.channel_busy[c >> 6] & (1u64 << (c & 63)) != 0
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.obs
    }

    /// The attached observer, mutably (e.g. to reset a collector
    /// between phases).
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.obs
    }

    /// Consumes the simulation and returns the observer with everything
    /// it collected.
    pub fn into_observer(self) -> O {
        self.obs
    }

    /// The packet with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this simulation.
    pub fn packet(&self, id: PacketId) -> &Packet {
        &self.packets[id.0 as usize]
    }

    /// All packets created so far.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Packets currently in flight.
    pub fn in_flight(&self) -> &[PacketId] {
        &self.in_flight
    }

    /// The packet currently occupying `channel`, if any.
    pub fn channel_owner(&self, channel: ChannelId) -> Option<PacketId> {
        self.channel_owner[channel.index()]
    }

    /// Total messages waiting in source queues. O(1): a running count
    /// maintained on every queue push and pop.
    #[must_use]
    pub fn queued_messages(&self) -> usize {
        debug_assert_eq!(
            self.queued_total,
            self.queues.iter().map(VecDeque::len).sum::<usize>()
        );
        self.queued_total
    }

    /// Enqueues a hand-crafted message (useful for directed tests and
    /// the deadlock demonstration). Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or `length == 0`.
    pub fn inject_message(&mut self, src: NodeId, dst: NodeId, length: u32) -> PacketId {
        let id = PacketId(self.packets.len() as u64);
        self.packets
            .push(Packet::new(id, src, dst, length, self.cycle));
        self.lanes.push(src, dst, self.cycle);
        self.queues[src.index()].push_back(id);
        self.queued_total += 1;
        self.total_generated += 1;
        if self.in_window() {
            self.metrics.messages_generated += 1;
            self.metrics.flits_generated += length as u64;
        }
        id
    }

    /// Stops Poisson generation (used while draining).
    pub fn disable_generation(&mut self) {
        self.generation_enabled = false;
    }

    /// Takes a channel out of service: no header will be granted it
    /// from the next arbitration on. A worm currently occupying it is
    /// not disturbed (the fault model is "link goes down for new
    /// traffic", the common assumption in the paper's fault-tolerance
    /// discussion); adaptive algorithms route around, nonadaptive ones
    /// block.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn fail_channel(&mut self, channel: ChannelId) {
        self.faulty[channel.index()] = true;
    }

    /// Returns a failed channel to service.
    pub fn repair_channel(&mut self, channel: ChannelId) {
        self.faulty[channel.index()] = false;
    }

    /// `true` if `channel` is currently failed.
    pub fn is_faulty(&self, channel: ChannelId) -> bool {
        self.faulty[channel.index()]
    }

    /// Per-channel offered load over the measurement window, in flits
    /// per microsecond (each channel's capacity is
    /// [`FLITS_PER_USEC`](crate::FLITS_PER_USEC) = 20). Flits are
    /// credited to a channel when a header acquires it, so the tail of
    /// the window can slightly overshoot true utilization; the *shape*
    /// — which channels are hot — is exact, and it is the shape that
    /// explains the figures: dimension-order routing funnels transpose
    /// traffic through a few corner channels, adaptive routing spreads
    /// it.
    #[must_use]
    pub fn channel_utilization(&self) -> Vec<f64> {
        self.utilization_samples().collect()
    }

    /// [`Simulation::channel_utilization`] into a caller-owned buffer
    /// (cleared first), so periodic sampling reuses one allocation.
    pub fn channel_utilization_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.utilization_samples());
    }

    /// The per-channel utilization values both public variants emit.
    fn utilization_samples(&self) -> impl Iterator<Item = f64> + '_ {
        let cycles = self
            .metrics
            .window_end
            .min(self.cycle)
            .saturating_sub(self.metrics.window_start);
        let usec = crate::config::cycles_to_usec(cycles);
        self.channel_flits
            .iter()
            .map(move |&f| if cycles == 0 { 0.0 } else { f as f64 / usec })
    }

    fn in_window(&self) -> bool {
        self.cycle >= self.metrics.window_start && self.cycle < self.metrics.window_end
    }

    /// Applies every scheduled fault event due at the current cycle:
    /// flips the channel's service bit and notifies the observer. Events
    /// take effect before this cycle's routing and arbitration.
    fn apply_due_faults(&mut self) {
        while let Some(&ev) = self.fault_events.get(self.fault_cursor) {
            if ev.cycle > self.cycle {
                break;
            }
            self.fault_cursor += 1;
            self.faulty[ev.channel.index()] = ev.fail;
            if ev.fail {
                self.obs.channel_failed(self.cycle, ev.channel);
            } else {
                self.obs.channel_repaired(self.cycle, ev.channel);
            }
        }
    }

    /// Advances the simulation one cycle. Returns a deadlock report if
    /// the watchdog fired this cycle.
    pub fn step(&mut self) -> Option<DeadlockReport> {
        self.begin_cycle();
        self.arbitrate();
        self.finish_cycle()
    }

    /// The serial head of a cycle: fault events, then traffic
    /// generation (all RNG draws of the cycle's pre-arbitration phase,
    /// in node order).
    fn begin_cycle(&mut self) {
        self.apply_due_faults();
        self.generate();
    }

    /// The serial tail of a cycle, after arbitration filled
    /// `scratch.grants`: apply grants, sample queues, run the stall
    /// rule, advance the clock, fire the watchdog.
    fn finish_cycle(&mut self) -> Option<DeadlockReport> {
        let progressed = self.advance();
        if self.in_window() && self.cycle.is_multiple_of(256) {
            let queued = self.queued_messages();
            self.metrics.queue_samples.push(queued);
        }
        // Stranded packets never move again, so "everything in flight
        // is stranded" is not a stall the watchdog should report.
        if progressed || self.stranded_count == self.in_flight.len() as u64 {
            self.last_progress = self.cycle;
        }
        self.cycle += 1;
        if !self.in_flight.is_empty()
            && self.cycle - self.last_progress >= self.config.deadlock_threshold
        {
            let report = detect_deadlock(self);
            self.obs.watchdog_fired(self.cycle, &report);
            return Some(report);
        }
        None
    }

    /// The single-threaded run loop ([`Simulation::run`] dispatches
    /// here at one effective shard). Expects the measurement window to
    /// be set already.
    fn run_serial(&mut self) -> SimReport {
        let drain_limit = self.metrics.window_end + self.config.measure_cycles;
        let mut outcome = RunOutcome::Completed;
        while self.cycle < drain_limit {
            if self.cycle == self.metrics.window_end {
                self.disable_generation();
            }
            if let Some(report) = self.step() {
                outcome = RunOutcome::Deadlocked(report);
                break;
            }
            // Stop draining early once the network is empty.
            if self.cycle > self.metrics.window_end
                && self.in_flight.is_empty()
                && self.queued_messages() == 0
            {
                break;
            }
        }
        self.build_report(outcome)
    }

    fn build_report(&self, outcome: RunOutcome) -> SimReport {
        SimReport {
            offered_load: self.config.injection_rate_flits,
            metrics: self.metrics.clone(),
            outcome,
            stranded_packets: self.stranded_count,
            total_delivered: self.total_delivered,
            total_generated: self.total_generated,
        }
    }

    fn generate(&mut self) {
        if !self.generation_enabled {
            return;
        }
        // The messages buffer is detached from `self` for the loop so
        // `inject_message` can borrow `self` mutably; source and RNG
        // are disjoint fields.
        let mut messages = std::mem::take(&mut self.scratch.messages);
        messages.clear();
        for node in 0..self.topo.num_nodes() {
            let (source, rng) = (&mut self.source, &mut self.rng);
            source.poll(node, self.cycle, rng, |len| {
                messages.push((NodeId::new(node), len));
            });
        }
        for &(src, len) in &messages {
            if let Some(dst) = self.pattern.dest(self.topo, src, &mut self.rng) {
                self.inject_message(src, dst, len);
            }
        }
        self.scratch.messages = messages;
    }

    /// The routing relation's answer for a header at `head`: the table
    /// when one was built, the live algorithm otherwise — bit-identical
    /// by construction.
    #[inline]
    fn permitted(&self, head: NodeId, dst: NodeId, arrived: Option<Direction>) -> DirSet {
        match &self.table {
            Some(table) => table.lookup(head, dst, arrived),
            None => self.algo.route(self.topo, head, dst, arrived),
        }
    }

    /// Fills `out` with the requesting header's permitted, free output
    /// channels, in the output-selection policy's preference order.
    /// Returns the count and the raw permitted set (so callers can
    /// distinguish "all busy" from "relation offers nothing" without a
    /// second routing query).
    fn candidates(&mut self, id: PacketId, out: &mut [ChannelId; MAX_DIRS]) -> (usize, DirSet) {
        let (head, permitted) = self.permitted_pruned(id);
        let arrived = self.lanes.arrived[id.0 as usize];
        let mut dirs = [Direction::WEST; MAX_DIRS];
        let ordered = self.order_directions(permitted, arrived, &mut dirs);
        let count = self.free_candidates(head, &dirs[..ordered], out);
        (count, permitted)
    }

    /// The RNG-free twin of [`Simulation::candidates`] used by the
    /// sharded arbitrator: same pruning, same deterministic ordering,
    /// same free-channel filter, via the same helpers.
    ///
    /// Callers guarantee the output selection is not `Random` (the
    /// shard planner falls back to serial otherwise).
    fn candidates_deterministic(
        &self,
        id: PacketId,
        out: &mut [ChannelId; MAX_DIRS],
    ) -> (usize, DirSet) {
        debug_assert!(self.config.output_selection != OutputSelection::Random);
        let (head, permitted) = self.permitted_pruned(id);
        let arrived = self.lanes.arrived[id.0 as usize];
        let mut dirs = [Direction::WEST; MAX_DIRS];
        let ordered = Self::order_directions_deterministic(
            self.config.output_selection,
            permitted,
            arrived,
            &mut dirs,
        );
        let count = self.free_candidates(head, &dirs[..ordered], out);
        (count, permitted)
    }

    /// The routing relation's (optionally fault-pruned) answer for
    /// `id`'s header, plus the head node it sits at.
    #[inline]
    fn permitted_pruned(&self, id: PacketId) -> (NodeId, DirSet) {
        let i = id.0 as usize;
        let (head, dst, arrived) = (
            self.lanes.head_node[i],
            self.lanes.dst[i],
            self.lanes.arrived[i],
        );
        let mut permitted = self.permitted(head, dst, arrived);
        if self.prune_faulty {
            // Mirror the pruned route table exactly: drop failed (and
            // edge-of-mesh) directions before output selection, so the
            // RNG-consuming Random policy draws over the same set with
            // the table on or off.
            for dir in permitted {
                match self.topo.channel_from(head, dir) {
                    Some(c) if !self.faulty[c.index()] => {}
                    _ => permitted.remove(dir),
                }
            }
        }
        (head, permitted)
    }

    /// Filters `dirs` down to in-service, unoccupied channels out of
    /// `head` (the bitset occupancy check), writing them to `out` in
    /// order; returns the count.
    #[inline]
    fn free_candidates(
        &self,
        head: NodeId,
        dirs: &[Direction],
        out: &mut [ChannelId; MAX_DIRS],
    ) -> usize {
        let mut count = 0;
        for &dir in dirs {
            if let Some(c) = self.topo.channel_from(head, dir) {
                if !self.faulty[c.index()] && !self.channel_is_busy(c) {
                    out[count] = c;
                    count += 1;
                }
            }
        }
        count
    }

    /// Expands `permitted` into `out` in the output-selection policy's
    /// preference order; returns how many directions were written.
    fn order_directions(
        &mut self,
        permitted: DirSet,
        arrived: Option<Direction>,
        out: &mut [Direction; MAX_DIRS],
    ) -> usize {
        let n = Self::order_directions_deterministic(
            self.config.output_selection,
            permitted,
            arrived,
            out,
        );
        if self.config.output_selection == OutputSelection::Random {
            // Fisher-Yates with the simulation RNG.
            let dirs = &mut out[..n];
            for i in (1..dirs.len()).rev() {
                let j = self.rng.random_range(0..=i);
                dirs.swap(i, j);
            }
        }
        n
    }

    /// The RNG-free part of direction ordering, shared by the serial
    /// and sharded paths (`Random` is left in insertion order here; the
    /// serial caller shuffles afterwards).
    fn order_directions_deterministic(
        policy: OutputSelection,
        permitted: DirSet,
        arrived: Option<Direction>,
        out: &mut [Direction; MAX_DIRS],
    ) -> usize {
        let mut n = 0;
        for dir in permitted {
            out[n] = dir;
            n += 1;
        }
        let dirs = &mut out[..n];
        match policy {
            OutputSelection::LowestDimension | OutputSelection::Random => {}
            OutputSelection::HighestDimension => dirs.reverse(),
            OutputSelection::StraightFirst => {
                if let Some(fwd) = arrived {
                    if let Some(pos) = dirs.iter().position(|&d| d == fwd) {
                        // Move the straight-ahead direction to the
                        // front, preserving the order of the rest.
                        dirs[..=pos].rotate_right(1);
                    }
                }
            }
        }
        n
    }

    /// Appends the cycle's requesters whose head node index lies in
    /// `[lo, hi)`: in-flight headers not yet at their destination and
    /// not stranded, plus each node's queue head if the injection
    /// channel is free. The serial path passes the full node range;
    /// shards pass their partition. Order within `out` is in-flight
    /// order then node order — the caller sorts (or shuffles) before
    /// granting.
    fn collect_requesters(&self, lo: usize, hi: usize, out: &mut Vec<PacketId>) {
        out.extend(self.in_flight.iter().copied().filter(|&id| {
            let i = id.0 as usize;
            let head = self.lanes.head_node[i];
            (lo..hi).contains(&head.index()) && head != self.lanes.dst[i] && !self.lanes.stranded[i]
        }));
        for node in lo..hi {
            if self.injecting[node].is_none() {
                if let Some(&head) = self.queues[node].front() {
                    out.push(head);
                }
            }
        }
    }

    /// Sorts requesters into the global priority order that implements
    /// the (deterministic) input-selection policy at every contested
    /// channel. The keys end in the unique packet id, so the unstable
    /// sort is a total order; shards sorting disjoint subsets produce
    /// exactly the serial order restricted to each subset.
    fn sort_requesters(&self, requesters: &mut [PacketId]) {
        match self.config.input_selection {
            InputSelection::FirstComeFirstServed => {
                requesters.sort_unstable_by_key(|&id| self.fcfs_key(id));
            }
            InputSelection::FixedPriority => {
                requesters.sort_unstable_by_key(|&id| self.fixed_priority_key(id));
            }
            InputSelection::Random => unreachable!("Random is shuffled, not sorted"),
        }
    }

    /// First-come-first-served priority key (earlier header arrival
    /// wins; packet id breaks ties).
    #[inline]
    fn fcfs_key(&self, id: PacketId) -> (u64, u64) {
        (self.lanes.head_arrival[id.0 as usize], id.0)
    }

    /// Fixed-priority key (injection beats every network input, then
    /// lowest arrival direction; packet id breaks ties).
    #[inline]
    fn fixed_priority_key(&self, id: PacketId) -> (usize, u64) {
        let dir_rank = self.lanes.arrived[id.0 as usize].map_or(0, |d| d.index() + 1);
        (dir_rank, id.0)
    }

    /// Whether a header whose pruned direction set is empty is stuck
    /// for good. Under a fault plan with repairs, an empty *pruned* set
    /// can heal when a link comes back; strand only if the relation
    /// itself offers nothing. (Repairs imply a dynamic schedule, so no
    /// table is in use and `route` is the raw, unpruned relation.)
    fn strands_permanently(&self, id: PacketId) -> bool {
        !(self.prune_faulty && self.fault_repairs) || {
            let i = id.0 as usize;
            self.algo
                .route(
                    self.topo,
                    self.lanes.head_node[i],
                    self.lanes.dst[i],
                    self.lanes.arrived[i],
                )
                .is_empty()
        }
    }

    /// Marks an in-flight header stranded (idempotent; queued packets
    /// are left alone — their source may still route around the fault).
    fn strand(&mut self, id: PacketId) {
        let i = id.0 as usize;
        let p = &mut self.packets[i];
        if p.state() == PacketState::InFlight && !p.is_stranded {
            p.is_stranded = true;
            self.lanes.stranded[i] = true;
            self.stranded_count += 1;
        }
    }

    /// Arbitration: headers request channels; contested channels go to
    /// the input-selection winner. Fills `scratch.grants` with
    /// `(packet, channel)` grants for [`Simulation::advance`].
    fn arbitrate(&mut self) {
        // Requesters: in-flight headers not yet at their destination,
        // plus each node's queue head if the injection channel is free.
        let mut requesters = std::mem::take(&mut self.scratch.requesters);
        requesters.clear();
        self.collect_requesters(0, self.topo.num_nodes(), &mut requesters);

        // Input selection: a global priority order implements the local
        // policy at every contested channel. The sort keys end in the
        // unique packet id, so the unstable sorts are total orders and
        // produce exactly what the allocating stable sorts used to.
        match self.config.input_selection {
            InputSelection::FirstComeFirstServed | InputSelection::FixedPriority => {
                self.sort_requesters(&mut requesters);
            }
            InputSelection::Random => {
                for i in (1..requesters.len()).rev() {
                    let j = self.rng.random_range(0..=i);
                    requesters.swap(i, j);
                }
            }
        }

        let mut grants = std::mem::take(&mut self.scratch.grants);
        let mut granted = std::mem::take(&mut self.scratch.granted_epoch);
        grants.clear();
        // "Granted this cycle" marks carry the cycle's epoch, so last
        // cycle's marks are stale without any clearing pass.
        let epoch = self.cycle + 1;
        let mut candidates = [ChannelId::new(0); MAX_DIRS];
        for &id in &requesters {
            let (count, permitted) = self.candidates(id, &mut candidates);
            if count == 0 {
                // Either every permitted channel is busy (normal
                // blocking) or the relation offers nothing (stranded).
                if permitted.is_empty() {
                    if self.strands_permanently(id) {
                        self.strand(id);
                    }
                } else if O::ENABLED {
                    // Name the channel the header would have preferred.
                    // Direction preference order (not the RNG-consuming
                    // output-selection ordering) keeps observed runs
                    // bit-identical.
                    let head = self.packets[id.0 as usize].head_node;
                    if let Some(wanted) = permitted
                        .iter()
                        .find_map(|dir| self.topo.channel_from(head, dir))
                    {
                        self.obs.packet_blocked(self.cycle, id, head, wanted);
                    }
                }
                continue;
            }
            if let Some(&channel) = candidates[..count]
                .iter()
                .find(|c| granted[c.index()] != epoch)
            {
                granted[channel.index()] = epoch;
                grants.push((id, channel));
            } else if O::ENABLED {
                // Every free candidate went to a higher-priority header
                // this cycle.
                let head = self.packets[id.0 as usize].head_node;
                self.obs.packet_blocked(self.cycle, id, head, candidates[0]);
            }
        }
        self.scratch.requesters = requesters;
        self.scratch.grants = grants;
        self.scratch.granted_epoch = granted;
    }

    /// Moves every worm that can move: granted headers take their new
    /// channel; headers at their destination consume a flit.
    fn advance(&mut self) -> bool {
        let mut progressed = false;

        // Consumption first: headers parked at their destinations. Each
        // router has a single ejection channel, held by one packet until
        // its tail passes; contenders wait (local FCFS by header
        // arrival). Unstable sort: the key ends in the unique id.
        let mut at_dest = std::mem::take(&mut self.scratch.at_dest);
        at_dest.clear();
        at_dest.extend(self.in_flight.iter().copied().filter(|&id| {
            let i = id.0 as usize;
            self.lanes.head_node[i] == self.lanes.dst[i]
        }));
        at_dest.sort_unstable_by_key(|&id| self.fcfs_key(id));
        for &id in &at_dest {
            let node = self.packets[id.0 as usize].dst.index();
            match self.ejecting[node] {
                None => self.ejecting[node] = Some(id),
                Some(holder) if holder == id => {}
                Some(_) => continue, // ejection channel busy
            }
            self.consume_one_flit(id);
            progressed = true;
        }
        self.scratch.at_dest = at_dest;

        let grants = std::mem::take(&mut self.scratch.grants);
        for &(id, channel) in &grants {
            self.take_channel(id, channel);
            progressed = true;
        }
        self.scratch.grants = grants;
        progressed
    }

    fn take_channel(&mut self, id: PacketId, channel: ChannelId) {
        let ch = self.topo.channel(channel);
        let first_hop = {
            let p = &self.packets[id.0 as usize];
            p.state() == PacketState::Queued
        };
        if first_hop {
            // Leave the source queue and claim the injection channel.
            let node = ch.src.index();
            let front = self.queues[node].pop_front();
            debug_assert_eq!(front, Some(id));
            self.queued_total -= 1;
            self.injecting[node] = Some(id);
            self.packets[id.0 as usize].injected_at = Some(self.cycle);
            self.in_flight.push(id);
            let (src, dst, length) = {
                let p = &self.packets[id.0 as usize];
                (p.src, p.dst, p.length)
            };
            self.obs.packet_injected(self.cycle, id, src, dst, length);
        }
        self.channel_owner[channel.index()] = Some(id);
        let c = channel.index();
        self.channel_busy[c >> 6] |= 1u64 << (c & 63);
        if self.in_window() {
            let len = self.packets[id.0 as usize].length as u64;
            self.channel_flits[channel.index()] += len;
        }
        let cycle = self.cycle;
        let idx = id.0 as usize;
        let p = &mut self.packets[idx];
        let from_dir = p.arrived;
        p.worm.push(channel);
        p.head_node = ch.dst;
        p.arrived = Some(ch.dir);
        p.head_arrival = cycle + 1;
        p.hops += 1;
        self.lanes.head_node[idx] = ch.dst;
        self.lanes.arrived[idx] = Some(ch.dir);
        self.lanes.head_arrival[idx] = cycle + 1;
        if let Some(from) = from_dir {
            // The turn happened at the channel's source router.
            self.obs.turn_taken(cycle, id, ch.src, from, ch.dir);
        }
        self.obs.channel_acquired(cycle, id, channel);
        self.obs.header_advanced(cycle, id, ch.dst, channel);
        self.shift_tail(id);
    }

    fn consume_one_flit(&mut self, id: PacketId) {
        self.note_delivered_flit();
        let p = &mut self.packets[id.0 as usize];
        p.flits_consumed += 1;
        let done = p.flits_consumed == p.length;
        self.obs.flit_delivered(self.cycle, id, done);
        self.shift_tail(id);
        if done {
            let p = &mut self.packets[id.0 as usize];
            debug_assert_eq!(p.worm_head, p.worm.len(), "delivered with flits in flight");
            p.delivered_at = Some(self.cycle);
            let dst = p.dst.index();
            if self.ejecting[dst] == Some(id) {
                self.ejecting[dst] = None;
            }
            self.total_delivered += 1;
            self.in_flight.retain(|&q| q != id);
            let p = &self.packets[id.0 as usize];
            let record =
                p.created_at >= self.metrics.window_start && p.created_at < self.metrics.window_end;
            if record {
                let latency = self.cycle - p.created_at;
                let net_latency = self.cycle - p.injected_at.expect("delivered => injected");
                let hops = p.hops;
                self.metrics.latencies.record(latency);
                self.metrics.network_latencies.record(net_latency);
                self.metrics.hop_counts.push(hops);
            }
        }
    }

    /// After the worm moved one step at the head (new channel or
    /// consumed flit), feed the tail: a fresh flit enters from the
    /// source, or the tail channel drains and is released.
    fn shift_tail(&mut self, id: PacketId) {
        let idx = id.0 as usize;
        if self.packets[idx].flits_at_source > 0 {
            self.packets[idx].flits_at_source -= 1;
            if self.packets[idx].flits_at_source == 0 {
                // Tail left the source: release the injection channel.
                let src = self.packets[idx].src.index();
                if self.injecting[src] == Some(id) {
                    self.injecting[src] = None;
                }
            }
        } else if self.packets[idx].worm_head < self.packets[idx].worm.len() {
            let p = &mut self.packets[idx];
            let tail = p.worm[p.worm_head];
            p.worm_head += 1;
            let t = tail.index();
            self.channel_owner[t] = None;
            self.channel_busy[t >> 6] &= !(1u64 << (t & 63));
            self.obs.channel_released(self.cycle, id, tail);
        }
    }

    /// Flits consumed this window (updated by `consume_one_flit`).
    fn note_delivered_flit(&mut self) {
        if self.in_window() {
            self.metrics.flits_delivered += 1;
        }
    }

    /// Internal accessors for deadlock analysis.
    #[allow(clippy::type_complexity)]
    pub(crate) fn deadlock_view(
        &self,
    ) -> (
        &dyn Topology,
        &dyn RoutingAlgorithm,
        &[Packet],
        &[Option<PacketId>],
        &[PacketId],
        &[bool],
    ) {
        (
            self.topo,
            self.algo,
            &self.packets,
            &self.channel_owner,
            &self.in_flight,
            &self.faulty,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{Transpose, Uniform};
    use turnroute_core::{DimensionOrder, NegativeFirst, WestFirst};
    use turnroute_topology::Mesh;

    fn quiet_config() -> SimConfig {
        SimConfig::paper()
            .warmup_cycles(0)
            .measure_cycles(5_000)
            .deadlock_threshold(2_000)
    }

    #[test]
    fn single_packet_pipeline_latency() {
        // One 10-flit packet over d hops takes d + 10 cycles to deliver
        // (header d hops, then one flit consumed per cycle, the last at
        // cycle d + 10 - 1... measured inclusive below).
        let mesh = Mesh::new_2d(8, 8);
        let algo = DimensionOrder::new();
        let config = quiet_config();
        let mut sim = Simulation::new(&mesh, &algo, &Uniform, config);
        let src = mesh.node_at(&[0, 0].into());
        let dst = mesh.node_at(&[4, 0].into());
        let id = sim.inject_message(src, dst, 10);
        for _ in 0..100 {
            assert!(sim.step().is_none());
        }
        let p = sim.packet(id);
        assert_eq!(p.state(), PacketState::Delivered);
        // Distance 4: header advances one hop per cycle starting at
        // cycle 0; the header reaches the destination at cycle 3 (end of
        // cycle), consumption runs cycles 4..14.
        let latency = p.latency_cycles().unwrap();
        assert_eq!(latency, 4 + 10 - 1, "got {latency}");
        assert_eq!(p.hops(), 4);
    }

    #[test]
    fn worm_occupies_min_of_length_and_path() {
        let mesh = Mesh::new_2d(8, 8);
        let algo = DimensionOrder::new();
        let mut sim = Simulation::new(&mesh, &algo, &Uniform, quiet_config());
        let src = mesh.node_at(&[0, 0].into());
        let dst = mesh.node_at(&[6, 0].into());
        let id = sim.inject_message(src, dst, 3);
        // After 4 cycles the head has taken 4 hops but only 3 flits
        // exist: the worm spans 3 channels.
        for _ in 0..4 {
            sim.step();
        }
        let p = sim.packet(id);
        assert_eq!(p.flits_in_network(), 3);
        assert!(p.injection_complete());
    }

    #[test]
    fn two_packets_share_the_network_without_collision() {
        let mesh = Mesh::new_2d(4, 4);
        let algo = WestFirst::minimal();
        let mut sim = Simulation::new(&mesh, &algo, &Uniform, quiet_config());
        let a = sim.inject_message(
            mesh.node_at(&[0, 0].into()),
            mesh.node_at(&[3, 3].into()),
            20,
        );
        let b = sim.inject_message(
            mesh.node_at(&[3, 0].into()),
            mesh.node_at(&[0, 3].into()),
            20,
        );
        for _ in 0..300 {
            sim.step();
        }
        assert_eq!(sim.packet(a).state(), PacketState::Delivered);
        assert_eq!(sim.packet(b).state(), PacketState::Delivered);
        // Every channel was released.
        for c in 0..mesh.num_channels() {
            assert_eq!(sim.channel_owner(ChannelId::new(c)), None);
        }
    }

    #[test]
    fn injection_serializes_per_node() {
        let mesh = Mesh::new_2d(4, 4);
        let algo = DimensionOrder::new();
        let mut sim = Simulation::new(&mesh, &algo, &Uniform, quiet_config());
        let src = mesh.node_at(&[0, 0].into());
        let a = sim.inject_message(src, mesh.node_at(&[3, 0].into()), 50);
        let b = sim.inject_message(src, mesh.node_at(&[0, 3].into()), 10);
        sim.step();
        // Packet a claimed the injection channel; b still queued.
        assert_eq!(sim.packet(a).state(), PacketState::InFlight);
        assert_eq!(sim.packet(b).state(), PacketState::Queued);
        // b cannot inject before a's tail leaves the source (50 flits).
        for _ in 0..40 {
            sim.step();
            assert_eq!(sim.packet(b).state(), PacketState::Queued);
        }
        for _ in 0..300 {
            sim.step();
        }
        assert_eq!(sim.packet(b).state(), PacketState::Delivered);
    }

    #[test]
    fn contended_channel_blocks_the_later_header() {
        let mesh = Mesh::new_2d(4, 4);
        let algo = DimensionOrder::new();
        let mut sim = Simulation::new(&mesh, &algo, &Uniform, quiet_config());
        // Both packets need the north channel out of (1,0).
        let first = sim.inject_message(
            mesh.node_at(&[0, 0].into()),
            mesh.node_at(&[1, 3].into()),
            30,
        );
        for _ in 0..5 {
            sim.step(); // first acquires the contested channel
        }
        let second = sim.inject_message(
            mesh.node_at(&[1, 0].into()),
            mesh.node_at(&[1, 2].into()),
            30,
        );
        // While the first worm streams, the second stays queued.
        for _ in 0..10 {
            sim.step();
            assert_eq!(sim.packet(second).state(), PacketState::Queued);
        }
        for _ in 0..200 {
            sim.step();
        }
        let (p1, p2) = (sim.packet(first), sim.packet(second));
        assert_eq!(p1.state(), PacketState::Delivered);
        assert_eq!(p2.state(), PacketState::Delivered);
        assert!(p1.delivered_at.unwrap() < p2.delivered_at.unwrap());
    }

    #[test]
    fn uniform_traffic_low_load_is_sustainable() {
        let mesh = Mesh::new_2d(4, 4);
        let algo = WestFirst::minimal();
        let config = SimConfig::paper()
            .injection_rate(0.02)
            .warmup_cycles(1_000)
            .measure_cycles(8_000)
            .seed(11);
        let mut sim = Simulation::new(&mesh, &algo, &Uniform, config);
        let report = sim.run();
        assert!(report.sustainable());
        assert!(report.total_delivered > 0);
        assert!(report.metrics.avg_latency_usec().unwrap() > 0.0);
        assert_eq!(report.stranded_packets, 0);
    }

    #[test]
    fn transpose_runs_on_all_algorithms() {
        let mesh = Mesh::new_2d(4, 4);
        let config = SimConfig::paper()
            .injection_rate(0.02)
            .warmup_cycles(500)
            .measure_cycles(4_000);
        let algos: Vec<Box<dyn RoutingAlgorithm>> = vec![
            Box::new(DimensionOrder::new()),
            Box::new(WestFirst::minimal()),
            Box::new(NegativeFirst::minimal()),
        ];
        for algo in &algos {
            let mut sim = Simulation::new(&mesh, algo.as_ref(), &Transpose, config.clone());
            let report = sim.run();
            assert!(report.sustainable(), "{} saturated", algo.name());
            assert!(report.total_delivered > 0);
        }
    }

    #[test]
    fn flit_conservation_invariant() {
        let mesh = Mesh::new_2d(4, 4);
        let algo = WestFirst::minimal();
        let config = SimConfig::paper()
            .injection_rate(0.1)
            .warmup_cycles(0)
            .measure_cycles(0);
        let mut sim = Simulation::new(&mesh, &algo, &Uniform, config);
        for _ in 0..2_000 {
            sim.step();
            for p in sim.packets() {
                let total = p.flits_at_source + p.flits_in_network() + p.flits_consumed;
                assert_eq!(total, p.length);
            }
            // Channel ownership is consistent with worms.
            let mut owned = 0;
            for p in sim.packets() {
                for c in p.worm() {
                    assert_eq!(sim.channel_owner(*c), Some(p.id));
                    owned += 1;
                }
            }
            let owners = (0..mesh.num_channels())
                .filter(|&c| sim.channel_owner(ChannelId::new(c)).is_some())
                .count();
            assert_eq!(owned, owners);
        }
    }

    #[test]
    fn route_table_is_invisible_in_the_report() {
        use crate::lut::RouteTableMode;
        let mesh = Mesh::new_2d(6, 6);
        let algo = WestFirst::minimal();
        let config = SimConfig::paper()
            .injection_rate(0.06)
            .warmup_cycles(200)
            .measure_cycles(2_000)
            .seed(99)
            .output_selection(OutputSelection::Random)
            .input_selection(InputSelection::Random);
        let mut on = Simulation::new(
            &mesh,
            &algo,
            &Transpose,
            config.clone().route_table(RouteTableMode::On),
        );
        let mut off = Simulation::new(
            &mesh,
            &algo,
            &Transpose,
            config.route_table(RouteTableMode::Off),
        );
        assert!(on.uses_route_table());
        assert!(!off.uses_route_table());
        let (r_on, r_off) = (on.run(), off.run());
        // RNG-consuming policies above make any extra or missing RNG
        // draw diverge instantly; the Debug rendering covers every
        // metric field, so this is a byte comparison of the reports.
        assert_eq!(format!("{r_on:?}"), format!("{r_off:?}"));
        assert_eq!(on.cycle(), off.cycle());
        assert_eq!(on.channel_utilization(), off.channel_utilization());
    }

    #[test]
    fn deterministic_given_seed() {
        let mesh = Mesh::new_2d(4, 4);
        let algo = NegativeFirst::minimal();
        let config = SimConfig::paper()
            .injection_rate(0.05)
            .warmup_cycles(200)
            .measure_cycles(2_000)
            .seed(1234);
        let r1 = Simulation::new(&mesh, &algo, &Uniform, config.clone()).run();
        let r2 = Simulation::new(&mesh, &algo, &Uniform, config).run();
        assert_eq!(r1.total_delivered, r2.total_delivered);
        assert_eq!(r1.metrics.latencies, r2.metrics.latencies);
    }

    /// Runs `config` serially and at `shards` shards and asserts the
    /// reports (Debug covers every metric field), final cycles and
    /// utilization vectors are identical.
    fn assert_shards_invisible(
        mesh: &Mesh,
        algo: &dyn RoutingAlgorithm,
        config: SimConfig,
        shards: usize,
    ) {
        let mut serial = Simulation::new(mesh, algo, &Transpose, config.clone().shards(1));
        let mut sharded = Simulation::new(mesh, algo, &Transpose, config.shards(shards));
        let (r1, rn) = (serial.run(), sharded.run());
        assert!(
            sharded.shard_fallback_reason().is_none(),
            "unexpected fallback: {:?}",
            sharded.shard_fallback_reason()
        );
        assert_eq!(format!("{r1:?}"), format!("{rn:?}"));
        assert_eq!(serial.cycle(), sharded.cycle());
        assert_eq!(serial.channel_utilization(), sharded.channel_utilization());
    }

    #[test]
    fn sharded_report_is_bit_identical() {
        let mesh = Mesh::new_2d(6, 6);
        let config = SimConfig::paper()
            .injection_rate(0.08)
            .warmup_cycles(300)
            .measure_cycles(3_000)
            .seed(7);
        // Three shards over 36 nodes: boundaries cut through the mesh
        // interior, so plenty of worms span shards every cycle.
        assert_shards_invisible(&mesh, &WestFirst::minimal(), config.clone(), 3);
        assert_shards_invisible(&mesh, &DimensionOrder::new(), config, 5);
    }

    #[test]
    fn sharded_faulted_run_matches_serial() {
        use turnroute_fault::FaultPlan;
        let mesh = Mesh::new_2d(6, 6);
        // A transient fault on a channel out of node 18 — the first
        // node of the second of two equal shards, i.e. a shard-boundary
        // router — plus a permanent one elsewhere.
        let boundary = mesh.channel_from(NodeId::new(18), Direction::EAST).unwrap();
        let schedule = FaultPlan::new()
            .channel_transient(boundary, 200, 900)
            .channel(ChannelId::new(7), 400)
            .compile(&mesh)
            .unwrap();
        let config = SimConfig::paper()
            .injection_rate(0.06)
            .warmup_cycles(100)
            .measure_cycles(2_000)
            .seed(21)
            .faults(schedule);
        assert_shards_invisible(&mesh, &WestFirst::minimal(), config, 2);
    }

    #[test]
    fn sharded_selection_ablation_matches_serial() {
        let mesh = Mesh::new_2d(5, 5);
        let config = SimConfig::paper()
            .injection_rate(0.05)
            .warmup_cycles(100)
            .measure_cycles(1_500)
            .input_selection(InputSelection::FixedPriority)
            .output_selection(OutputSelection::StraightFirst)
            .seed(5);
        assert_shards_invisible(&mesh, &NegativeFirst::minimal(), config, 4);
    }

    #[test]
    fn rng_consuming_policies_fall_back_to_serial() {
        let mesh = Mesh::new_2d(4, 4);
        let algo = WestFirst::minimal();
        let config = quiet_config()
            .injection_rate(0.03)
            .measure_cycles(400)
            .output_selection(OutputSelection::Random)
            .shards(4);
        let mut sim = Simulation::new(&mesh, &algo, &Uniform, config.clone());
        assert!(sim.shard_fallback_reason().is_none());
        sim.run();
        assert!(sim.shard_fallback_reason().is_some());
        // Observers also force the serial path (per-requester events).
        let mut observed = Simulation::with_observer(
            &mesh,
            &algo,
            &Uniform,
            config.output_selection(OutputSelection::LowestDimension),
            crate::obs::ChannelActivityObserver::new(),
        );
        observed.run();
        assert!(observed.shard_fallback_reason().is_some());
    }

    #[test]
    fn large_mesh_smoke_512x512() {
        // The ROADMAP "production scale" target: a 512x512 mesh (262144
        // nodes) must construct and simulate. Short window; the drain
        // limit bounds the run regardless of in-flight traffic.
        let mesh = Mesh::new_2d(512, 512);
        let algo = DimensionOrder::new();
        let config = SimConfig::paper()
            .injection_rate(0.004)
            .lengths(crate::config::LengthDistribution::Fixed(4))
            .warmup_cycles(0)
            .measure_cycles(64)
            .seed(3)
            .shards(4);
        let mut sim = Simulation::new(&mesh, &algo, &Uniform, config);
        let report = sim.run();
        assert!(matches!(report.outcome, RunOutcome::Completed));
        assert!(report.total_generated > 0);
    }
}
