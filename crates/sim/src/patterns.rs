//! Traffic patterns: who sends to whom.
//!
//! The paper's Section 6 evaluates uniform, matrix-transpose (in the
//! mesh and embedded in the hypercube) and reverse-flip traffic; this
//! module adds the other classic patterns (bit-complement, bit-reversal,
//! shuffle, tornado, hotspot, nearest-neighbor) for wider studies.

use turnroute_rng::{split_mix_64, Rng, RngCore};
use turnroute_topology::{NodeId, Topology};

/// A traffic pattern: maps a source to a destination, possibly randomly.
///
/// Returns `None` when the pattern maps the source to itself (such
/// messages are consumed locally and never enter the network).
pub trait TrafficPattern: Send + Sync {
    /// A short name for tables and plots.
    fn name(&self) -> String;

    /// Picks the destination for a message from `src`.
    fn dest(&self, topo: &dyn Topology, src: NodeId, rng: &mut dyn RngCore) -> Option<NodeId>;

    /// The smallest node count the pattern is defined for: `0` for
    /// patterns generic over topology size, `max referenced node + 1`
    /// for patterns naming explicit nodes (hotspots, trace files).
    /// Spec layers check this against the topology and reject the
    /// combination with a typed error instead of letting the engine
    /// index out of range.
    fn min_nodes(&self) -> usize {
        0
    }
}

/// Uniform traffic: every other node is equally likely (Section 6).
#[derive(Debug, Clone, Copy, Default)]
pub struct Uniform;

impl TrafficPattern for Uniform {
    fn name(&self) -> String {
        "uniform".to_owned()
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        let n = topo.num_nodes();
        if n < 2 {
            // A single-node network has no valid destination; consume no
            // randomness so degenerate runs stay deterministic.
            return None;
        }
        let mut pick = rng.random_range(0..n - 1);
        if pick >= src.index() {
            pick += 1;
        }
        Some(NodeId::new(pick))
    }
}

/// Matrix transpose in a 2D mesh (Section 6): the processor at row `r`,
/// column `c` sends to the one at row `c`, column `r`.
///
/// With the matrix convention the paper uses — row 0 at the top — this
/// is `(i, j) -> (k-1-j, k-1-i)` in the Cartesian (y-up) coordinates of
/// [`Mesh`](turnroute_topology::Mesh): a reflection across the
/// *anti*-diagonal. Both offsets of every pair then share a sign, which
/// is what makes negative-first fully adaptive on this pattern (and is
/// confirmed by the paper's own hypercube embedding of the same
/// pattern, whose complemented bits encode exactly this reflection).
/// Anti-diagonal nodes send to themselves and generate no network
/// traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct Transpose;

impl TrafficPattern for Transpose {
    fn name(&self) -> String {
        "matrix-transpose".to_owned()
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, _rng: &mut dyn RngCore) -> Option<NodeId> {
        assert_eq!(topo.num_dims(), 2, "transpose is a 2D-mesh pattern");
        assert_eq!(
            topo.radix(0),
            topo.radix(1),
            "transpose needs a square mesh"
        );
        let k = topo.radix(0) as u16;
        let c = topo.coord_of(src);
        let (i, j) = (c.get(0), c.get(1));
        (i + j != k - 1).then(|| topo.node_at(&[k - 1 - j, k - 1 - i].into()))
    }
}

/// The diagonal transpose `(i, j) -> (j, i)` in Cartesian coordinates: a
/// reflection across the *main* diagonal. Every pair's offsets have
/// **opposite** signs (`dx = -dy`), which puts all traffic on the mixed
/// quadrants where Section 3.4 shows every channel-free turn-model
/// algorithm allows exactly one shortest path (`S_p = 1`) — the
/// adversarial complement of [`Transpose`], and the showcase workload
/// for the fully adaptive virtual-channel algorithms of
/// `turnroute-vc`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiagonalTranspose;

impl TrafficPattern for DiagonalTranspose {
    fn name(&self) -> String {
        "diagonal-transpose".to_owned()
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, _rng: &mut dyn RngCore) -> Option<NodeId> {
        assert_eq!(
            topo.num_dims(),
            2,
            "diagonal transpose is a 2D-mesh pattern"
        );
        assert_eq!(
            topo.radix(0),
            topo.radix(1),
            "diagonal transpose needs a square mesh"
        );
        let c = topo.coord_of(src);
        let (i, j) = (c.get(0), c.get(1));
        (i != j).then(|| topo.node_at(&[j, i].into()))
    }
}

/// The paper's matrix transpose embedded in the binary 8-cube: a message
/// from `(x0, ..., x7)` goes to `(!x4, x5, x6, x7, !x0, x1, x2, x3)`,
/// derived by mapping a 16x16 mesh onto the hypercube so mesh neighbors
/// stay neighbors (Section 6). Generalizes to any even `n`.
#[derive(Debug, Clone, Copy, Default)]
pub struct HypercubeTranspose;

impl TrafficPattern for HypercubeTranspose {
    fn name(&self) -> String {
        "matrix-transpose".to_owned()
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, _rng: &mut dyn RngCore) -> Option<NodeId> {
        let n = topo.num_dims();
        assert!(
            n.is_multiple_of(2),
            "hypercube transpose needs an even dimension count"
        );
        assert!(
            (0..n).all(|d| topo.radix(d) == 2),
            "hypercube transpose is a hypercube pattern"
        );
        let half = n / 2;
        let x = src.index();
        let low = x & ((1 << half) - 1);
        let high = x >> half;
        // Swap halves, complementing the bit that crosses each half's
        // origin (bits 0 and `half`).
        let d = (high | (low << half)) ^ (1 | (1 << half));
        (d != x).then(|| NodeId::new(d))
    }
}

/// Reverse-flip traffic in a hypercube: destination bit `i` is the
/// complement of source bit `n-1-i` (Section 6).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReverseFlip;

impl TrafficPattern for ReverseFlip {
    fn name(&self) -> String {
        "reverse-flip".to_owned()
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, _rng: &mut dyn RngCore) -> Option<NodeId> {
        let n = topo.num_dims();
        assert!(
            (0..n).all(|d| topo.radix(d) == 2),
            "reverse-flip is a hypercube pattern"
        );
        let x = src.index();
        let mut d = 0usize;
        for i in 0..n {
            let bit = x >> (n - 1 - i) & 1;
            d |= (bit ^ 1) << i;
        }
        (d != x).then(|| NodeId::new(d))
    }
}

/// Bit-complement traffic: destination bit `i` is the complement of
/// source bit `i`. In a mesh, the coordinate reflection
/// `x_i -> k_i - 1 - x_i`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BitComplement;

impl TrafficPattern for BitComplement {
    fn name(&self) -> String {
        "bit-complement".to_owned()
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, _rng: &mut dyn RngCore) -> Option<NodeId> {
        let c = topo.coord_of(src);
        let flipped: Vec<u16> = (0..topo.num_dims())
            .map(|i| (topo.radix(i) - 1) as u16 - c.get(i))
            .collect();
        let d = topo.node_at(&flipped.into());
        (d != src).then_some(d)
    }
}

/// Bit-reversal traffic in a hypercube: destination bit `i` is source
/// bit `n-1-i`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BitReversal;

impl TrafficPattern for BitReversal {
    fn name(&self) -> String {
        "bit-reversal".to_owned()
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, _rng: &mut dyn RngCore) -> Option<NodeId> {
        let n = topo.num_dims();
        assert!(
            (0..n).all(|d| topo.radix(d) == 2),
            "bit-reversal is a hypercube pattern"
        );
        let x = src.index();
        let mut d = 0usize;
        for i in 0..n {
            d |= (x >> (n - 1 - i) & 1) << i;
        }
        (d != x).then(|| NodeId::new(d))
    }
}

/// Perfect-shuffle traffic in a hypercube: rotate the address bits left
/// by one.
#[derive(Debug, Clone, Copy, Default)]
pub struct Shuffle;

impl TrafficPattern for Shuffle {
    fn name(&self) -> String {
        "shuffle".to_owned()
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, _rng: &mut dyn RngCore) -> Option<NodeId> {
        let n = topo.num_dims();
        assert!(
            (0..n).all(|d| topo.radix(d) == 2),
            "shuffle is a hypercube pattern"
        );
        let x = src.index();
        let d = ((x << 1) | (x >> (n - 1))) & ((1 << n) - 1);
        (d != x).then(|| NodeId::new(d))
    }
}

/// Tornado traffic: halfway around dimension 0 (toward the diagonal in a
/// mesh) — a classic adversarial pattern for dimension-order routing.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tornado;

impl TrafficPattern for Tornado {
    fn name(&self) -> String {
        "tornado".to_owned()
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, _rng: &mut dyn RngCore) -> Option<NodeId> {
        let mut c = topo.coord_of(src);
        let k = topo.radix(0);
        let shift = (k - 1) / 2;
        c.set(0, ((c.get(0) as usize + shift) % k) as u16);
        let d = topo.node_at(&c);
        (d != src).then_some(d)
    }
}

/// Hotspot traffic: with probability `fraction`, send to the hotspot
/// node; otherwise uniform.
#[derive(Debug, Clone, Copy)]
pub struct Hotspot {
    /// The favored node.
    pub hotspot: NodeId,
    /// The probability a message targets the hotspot.
    pub fraction: f64,
}

impl Hotspot {
    /// Creates a hotspot pattern.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction <= 1.0`.
    pub fn new(hotspot: NodeId, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        Hotspot { hotspot, fraction }
    }
}

impl TrafficPattern for Hotspot {
    fn name(&self) -> String {
        format!("hotspot({}%)", (self.fraction * 100.0).round())
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        if rng.random_bool(self.fraction) {
            (self.hotspot != src).then_some(self.hotspot)
        } else {
            Uniform.dest(topo, src, rng)
        }
    }

    fn min_nodes(&self) -> usize {
        self.hotspot.index() + 1
    }
}

/// Weighted multi-hotspot traffic, the generalization of [`Hotspot`]:
/// with probability `fraction` a message targets one of several favored
/// nodes, picked proportionally to its weight; otherwise uniform.
///
/// RNG contract: one `random_bool` always, plus one `random_range` draw
/// on the hotspot branch (or the [`Uniform`] draw otherwise). The
/// single-hotspot `Hotspot` keeps its original one-draw stream, so
/// legacy seeds reproduce.
#[derive(Debug, Clone)]
pub struct WeightedHotspot {
    hotspots: Vec<(NodeId, f64)>,
    fraction: f64,
    total_weight: f64,
}

impl WeightedHotspot {
    /// Creates a weighted hotspot pattern.
    ///
    /// # Panics
    ///
    /// Panics if `hotspots` is empty, a weight is not positive and
    /// finite, or `fraction` is outside `[0, 1]` (spec layers reject
    /// these earlier with typed errors).
    pub fn new(hotspots: Vec<(NodeId, f64)>, fraction: f64) -> Self {
        assert!(!hotspots.is_empty(), "at least one hotspot is required");
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        assert!(
            hotspots.iter().all(|&(_, w)| w.is_finite() && w > 0.0),
            "hotspot weights must be positive finite numbers"
        );
        let total_weight = hotspots.iter().map(|&(_, w)| w).sum();
        WeightedHotspot {
            hotspots,
            fraction,
            total_weight,
        }
    }
}

impl TrafficPattern for WeightedHotspot {
    fn name(&self) -> String {
        let nodes: Vec<String> = self
            .hotspots
            .iter()
            .map(|(n, w)| {
                if *w == 1.0 {
                    format!("{}", n.index())
                } else {
                    format!("{}*{w}", n.index())
                }
            })
            .collect();
        format!(
            "hotspot({};{}%)",
            nodes.join("+"),
            (self.fraction * 100.0).round()
        )
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        if rng.random_bool(self.fraction) {
            let mut t = rng.random_range(0.0..self.total_weight);
            for &(node, w) in &self.hotspots {
                if t < w {
                    return (node != src).then_some(node);
                }
                t -= w;
            }
            // Floating-point slack lands on the last hotspot.
            let node = self.hotspots.last().expect("non-empty by construction").0;
            (node != src).then_some(node)
        } else {
            Uniform.dest(topo, src, rng)
        }
    }

    fn min_nodes(&self) -> usize {
        self.hotspots
            .iter()
            .map(|(n, _)| n.index() + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Trace-driven traffic: each source node draws its destination from a
/// weighted list read out of a text file (the `FileMap` idea from
/// caminos-lib, generalized from permutations to weighted fan-out).
///
/// File format, one entry per line:
///
/// ```text
/// # comment lines and blank lines are ignored
/// <src> <dst> [weight]
/// ```
///
/// A source with several entries picks among them proportionally to
/// weight (default `1`); a source with no entries generates no network
/// traffic and *consumes no randomness* (like [`Uniform`] on a
/// single-node network). An entry whose destination equals its source
/// is drawn but consumed locally, mirroring [`Hotspot`] semantics.
///
/// The pattern's [`name`](TrafficPattern::name) embeds a content
/// fingerprint of the parsed entries, so per-cell seeds, cache keys and
/// store fingerprints all track the *contents* of the trace file, not
/// its path: editing the file changes every derived identity, renaming
/// it does not change the simulated numbers.
#[derive(Debug, Clone)]
pub struct Trace {
    label: String,
    fingerprint: u64,
    /// Destination lists indexed by source node; `(dst, weight)`.
    dests: Vec<Vec<(NodeId, f64)>>,
    /// Per-source total weight, precomputed for the draw.
    totals: Vec<f64>,
    min_nodes: usize,
}

impl Trace {
    /// Parses trace-file `text`. `label` names the source in the
    /// pattern's display name (conventionally `trace:<path>`).
    ///
    /// # Errors
    ///
    /// Returns a line-numbered message for malformed lines (wrong field
    /// count, unparsable ids, non-positive or non-finite weights) and
    /// for files with no entries at all.
    pub fn parse(text: &str, label: impl Into<String>) -> Result<Self, String> {
        let mut dests: Vec<Vec<(NodeId, f64)>> = Vec::new();
        let mut fp = 0x7261_6365_5f66_7031u64;
        let mut entries = 0usize;
        let mut min_nodes = 0usize;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let (src, dst, weight) = match fields.as_slice() {
                [s, d] => (*s, *d, None),
                [s, d, w] => (*s, *d, Some(*w)),
                _ => {
                    return Err(format!(
                        "line {}: expected '<src> <dst> [weight]', got '{line}'",
                        i + 1
                    ))
                }
            };
            let src: usize = src
                .parse()
                .map_err(|_| format!("line {}: bad source node '{src}'", i + 1))?;
            let dst: usize = dst
                .parse()
                .map_err(|_| format!("line {}: bad destination node '{dst}'", i + 1))?;
            let weight: f64 = match weight {
                None => 1.0,
                Some(w) => {
                    let w: f64 = w
                        .parse()
                        .map_err(|_| format!("line {}: bad weight '{w}'", i + 1))?;
                    if !w.is_finite() || w <= 0.0 {
                        return Err(format!(
                            "line {}: weight must be a positive finite number, got {w}",
                            i + 1
                        ));
                    }
                    w
                }
            };
            if dests.len() <= src {
                dests.resize(src + 1, Vec::new());
            }
            dests[src].push((NodeId::new(dst), weight));
            min_nodes = min_nodes.max(src + 1).max(dst + 1);
            entries += 1;
            // Content fingerprint over the parsed entries, so comments
            // and whitespace never perturb experiment identity.
            for word in [src as u64, dst as u64, weight.to_bits()] {
                fp ^= word;
                split_mix_64(&mut fp);
            }
        }
        if entries == 0 {
            return Err("trace file has no entries".into());
        }
        let totals = dests
            .iter()
            .map(|list| list.iter().map(|&(_, w)| w).sum())
            .collect();
        Ok(Trace {
            label: label.into(),
            fingerprint: fp,
            dests,
            totals,
            min_nodes,
        })
    }

    /// The number of trace entries (weighted destination edges).
    pub fn num_entries(&self) -> usize {
        self.dests.iter().map(Vec::len).sum()
    }
}

impl TrafficPattern for Trace {
    fn name(&self) -> String {
        format!("{}@{:016x}", self.label, self.fingerprint)
    }

    fn dest(&self, _topo: &dyn Topology, src: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        let list = self.dests.get(src.index())?;
        match list.as_slice() {
            [] => None,
            // One entry: no draw needed, and skipping it keeps silent
            // sources and deterministic single-target sources cheap.
            [(dst, _)] => (*dst != src).then_some(*dst),
            _ => {
                let mut t = rng.random_range(0.0..self.totals[src.index()]);
                for &(dst, w) in list {
                    if t < w {
                        return (dst != src).then_some(dst);
                    }
                    t -= w;
                }
                let dst = list.last().expect("non-empty by match arm").0;
                (dst != src).then_some(dst)
            }
        }
    }

    fn min_nodes(&self) -> usize {
        self.min_nodes
    }
}

/// Nearest-neighbor traffic: a uniformly random neighbor.
#[derive(Debug, Clone, Copy, Default)]
pub struct NearestNeighbor;

impl TrafficPattern for NearestNeighbor {
    fn name(&self) -> String {
        "nearest-neighbor".to_owned()
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        let neighbors: Vec<NodeId> = turnroute_topology::Direction::all(topo.num_dims())
            .filter_map(|d| topo.neighbor(src, d))
            .collect();
        let pick = rng.random_range(0..neighbors.len());
        Some(neighbors[pick])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_rng::StdRng;
    use turnroute_topology::{Hypercube, Mesh, Torus};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn uniform_never_sends_to_self_and_covers_everyone() {
        let mesh = Mesh::new_2d(4, 4);
        let mut rng = rng();
        let src = NodeId::new(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let d = Uniform.dest(&mesh, src, &mut rng).unwrap();
            assert_ne!(d, src);
            seen.insert(d);
        }
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn uniform_on_a_single_node_returns_none_without_drawing() {
        let point = Mesh::new(vec![1, 1]);
        let mut a = rng();
        let mut b = rng();
        assert_eq!(Uniform.dest(&point, NodeId::new(0), &mut a), None);
        // No randomness was consumed: both streams still agree.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn transpose_reflects_across_the_anti_diagonal() {
        let mesh = Mesh::new_2d(16, 16);
        let mut rng = rng();
        let src = mesh.node_at(&[3, 11].into());
        let d = Transpose.dest(&mesh, src, &mut rng).unwrap();
        assert_eq!(mesh.coord_of(d), [4, 12].into());
        // The anti-diagonal stays silent.
        let diag = mesh.node_at(&[7, 8].into());
        assert_eq!(Transpose.dest(&mesh, diag, &mut rng), None);
        // It is an involution.
        let back = Transpose.dest(&mesh, d, &mut rng).unwrap();
        assert_eq!(back, src);
    }

    #[test]
    fn diagonal_transpose_offsets_have_opposite_signs() {
        let mesh = Mesh::new_2d(8, 8);
        let mut rng = rng();
        for src in mesh.nodes() {
            if let Some(d) = DiagonalTranspose.dest(&mesh, src, &mut rng) {
                let (s, t) = (mesh.coord_of(src), mesh.coord_of(d));
                let dx = t.get(0) as i32 - s.get(0) as i32;
                let dy = t.get(1) as i32 - s.get(1) as i32;
                assert_eq!(dx, -dy);
                assert_ne!(dx, 0);
            }
        }
        // Involution; main diagonal silent.
        let diag = mesh.node_at(&[5, 5].into());
        assert_eq!(DiagonalTranspose.dest(&mesh, diag, &mut rng), None);
    }

    #[test]
    fn transpose_offsets_share_a_sign() {
        // The property behind the paper's Figure 14: negative-first is
        // fully adaptive on transpose because both offsets of every
        // pair point the same way.
        let mesh = Mesh::new_2d(16, 16);
        let mut rng = rng();
        for src in mesh.nodes() {
            if let Some(d) = Transpose.dest(&mesh, src, &mut rng) {
                let (s, t) = (mesh.coord_of(src), mesh.coord_of(d));
                let dx = t.get(0) as i32 - s.get(0) as i32;
                let dy = t.get(1) as i32 - s.get(1) as i32;
                assert_eq!(dx, dy, "transpose offsets are equal");
            }
        }
    }

    #[test]
    fn hypercube_transpose_matches_paper_formula() {
        // (x0..x7) -> (!x4, x5, x6, x7, !x0, x1, x2, x3).
        let cube = Hypercube::new(8);
        let mut rng = rng();
        let x = 0b1011_0100usize; // bits x0..x7 = 0,0,1,0,1,1,0,1
        let d = HypercubeTranspose
            .dest(&cube, NodeId::new(x), &mut rng)
            .unwrap()
            .index();
        for i in 0..4 {
            let expect = if i == 0 {
                (x >> 4 & 1) ^ 1
            } else {
                x >> (4 + i) & 1
            };
            assert_eq!(d >> i & 1, expect, "bit {i}");
            let expect_high = if i == 0 { (x & 1) ^ 1 } else { x >> i & 1 };
            assert_eq!(d >> (4 + i) & 1, expect_high, "bit {}", i + 4);
        }
    }

    #[test]
    fn hypercube_transpose_is_an_involution() {
        let cube = Hypercube::new(8);
        let mut rng = rng();
        for src in cube.nodes() {
            if let Some(d) = HypercubeTranspose.dest(&cube, src, &mut rng) {
                let back = HypercubeTranspose.dest(&cube, d, &mut rng).unwrap();
                assert_eq!(back, src);
            }
        }
    }

    #[test]
    fn reverse_flip_mean_distance_matches_paper() {
        // Section 6: average path length 4.27 hops for reverse-flip in
        // the 8-cube (over the 240 nodes that generate traffic).
        let cube = Hypercube::new(8);
        let mut rng = rng();
        let (mut total, mut senders) = (0usize, 0usize);
        for src in cube.nodes() {
            if let Some(d) = ReverseFlip.dest(&cube, src, &mut rng) {
                total += cube.distance(src, d);
                senders += 1;
            }
        }
        assert_eq!(senders, 240);
        let mean = total as f64 / senders as f64;
        assert!((mean - 4.2667).abs() < 1e-3, "got {mean}");
    }

    #[test]
    fn mesh_transpose_mean_distance_matches_paper() {
        // Section 6: 11.34 hops for matrix-transpose in the 16x16 mesh.
        let mesh = Mesh::new_2d(16, 16);
        let mut rng = rng();
        let (mut total, mut senders) = (0usize, 0usize);
        for src in mesh.nodes() {
            if let Some(d) = Transpose.dest(&mesh, src, &mut rng) {
                total += mesh.distance(src, d);
                senders += 1;
            }
        }
        let mean = total as f64 / senders as f64;
        assert!((mean - 11.3333).abs() < 1e-3, "got {mean}");
    }

    #[test]
    fn hypercube_transpose_mean_distance_matches_paper() {
        // Section 6 reports 4.01 hops for uniform and cites transpose as
        // nonuniform; the embedded transpose averages 4.27 hops over its
        // senders (the same value as reverse-flip, by symmetry of the
        // half-swap).
        let cube = Hypercube::new(8);
        let mut rng = rng();
        let (mut total, mut senders) = (0usize, 0usize);
        for src in cube.nodes() {
            if let Some(d) = HypercubeTranspose.dest(&cube, src, &mut rng) {
                total += cube.distance(src, d);
                senders += 1;
            }
        }
        let mean = total as f64 / senders as f64;
        assert!(mean > 4.0, "transpose is longer than uniform, got {mean}");
    }

    #[test]
    fn bit_complement_reflects_mesh_coordinates() {
        let mesh = Mesh::new_2d(8, 8);
        let mut rng = rng();
        let src = mesh.node_at(&[1, 6].into());
        let d = BitComplement.dest(&mesh, src, &mut rng).unwrap();
        assert_eq!(mesh.coord_of(d), [6, 1].into());
    }

    #[test]
    fn bit_reversal_reverses() {
        let cube = Hypercube::new(6);
        let mut rng = rng();
        let d = BitReversal
            .dest(&cube, NodeId::new(0b110010), &mut rng)
            .unwrap();
        assert_eq!(d.index(), 0b010011);
    }

    #[test]
    fn shuffle_rotates() {
        let cube = Hypercube::new(4);
        let mut rng = rng();
        let d = Shuffle.dest(&cube, NodeId::new(0b1001), &mut rng).unwrap();
        assert_eq!(d.index(), 0b0011);
    }

    #[test]
    fn tornado_moves_half_way() {
        let torus = Torus::new(8, 2);
        let mut rng = rng();
        let src = torus.node_at(&[1, 3].into());
        let d = Tornado.dest(&torus, src, &mut rng).unwrap();
        assert_eq!(torus.coord_of(d), [4, 3].into());
    }

    #[test]
    fn hotspot_favors_the_hotspot() {
        let mesh = Mesh::new_2d(4, 4);
        let mut rng = rng();
        let hs = NodeId::new(9);
        let pattern = Hotspot::new(hs, 0.5);
        let hits = (0..1000)
            .filter(|_| pattern.dest(&mesh, NodeId::new(0), &mut rng) == Some(hs))
            .count();
        assert!((400..650).contains(&hits), "got {hits}");
    }

    #[test]
    fn weighted_hotspot_splits_by_weight() {
        let mesh = Mesh::new_2d(4, 4);
        let mut rng = rng();
        let a = NodeId::new(3);
        let b = NodeId::new(12);
        // 3:1 weights at 100% hotspot fraction.
        let pattern = WeightedHotspot::new(vec![(a, 3.0), (b, 1.0)], 1.0);
        let (mut hits_a, mut hits_b) = (0, 0);
        for _ in 0..4000 {
            match pattern.dest(&mesh, NodeId::new(0), &mut rng) {
                Some(d) if d == a => hits_a += 1,
                Some(d) if d == b => hits_b += 1,
                other => panic!("unexpected destination {other:?}"),
            }
        }
        assert!((2800..3200).contains(&hits_a), "got {hits_a}");
        assert_eq!(hits_a + hits_b, 4000);
        assert_eq!(pattern.min_nodes(), 13);
        assert_eq!(pattern.name(), "hotspot(3*3+12;100%)");
    }

    #[test]
    fn weighted_hotspot_falls_back_to_uniform() {
        let mesh = Mesh::new_2d(4, 4);
        let mut rng = rng();
        let pattern = WeightedHotspot::new(vec![(NodeId::new(5), 1.0)], 0.0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(pattern.dest(&mesh, NodeId::new(0), &mut rng).unwrap());
        }
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn hotspot_min_nodes_names_the_node() {
        assert_eq!(Hotspot::new(NodeId::new(9), 0.1).min_nodes(), 10);
        assert_eq!(Uniform.min_nodes(), 0);
    }

    #[test]
    fn trace_parses_and_draws_by_weight() {
        let trace = Trace::parse("# demo\n\n0 5\n0 9 3\n1 2\n", "trace:demo").unwrap();
        assert_eq!(trace.num_entries(), 3);
        assert_eq!(trace.min_nodes(), 10);
        let mesh = Mesh::new_2d(4, 4);
        let mut rng = rng();
        let mut to9 = 0;
        for _ in 0..4000 {
            match trace.dest(&mesh, NodeId::new(0), &mut rng).unwrap().index() {
                9 => to9 += 1,
                5 => {}
                other => panic!("unexpected destination {other}"),
            }
        }
        // Weight 3 of 4 total.
        assert!((2800..3200).contains(&to9), "got {to9}");
        // Single-entry source: deterministic, no draw.
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(0);
        assert_eq!(
            trace.dest(&mesh, NodeId::new(1), &mut a).unwrap().index(),
            2
        );
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn trace_silent_sources_consume_no_randomness() {
        let trace = Trace::parse("0 1\n", "trace:tiny").unwrap();
        let mesh = Mesh::new_2d(4, 4);
        let mut a = rng();
        let mut b = rng();
        // Node 7 has no entries; node 99 is past the table entirely.
        assert_eq!(trace.dest(&mesh, NodeId::new(7), &mut a), None);
        assert_eq!(trace.dest(&mesh, NodeId::new(99), &mut a), None);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn trace_self_entries_are_consumed_locally() {
        let trace = Trace::parse("3 3\n", "trace:selfy").unwrap();
        let mesh = Mesh::new_2d(4, 4);
        let mut rng = rng();
        assert_eq!(trace.dest(&mesh, NodeId::new(3), &mut rng), None);
    }

    #[test]
    fn trace_name_tracks_content_not_formatting() {
        let a = Trace::parse("0 1\n2 3 1.5\n", "trace:x").unwrap();
        let b = Trace::parse("# hello\n 0  1 \n\n2 3 1.5\n", "trace:x").unwrap();
        assert_eq!(a.name(), b.name());
        let c = Trace::parse("0 1\n2 3 2.5\n", "trace:x").unwrap();
        assert_ne!(a.name(), c.name());
        assert!(a.name().starts_with("trace:x@"));
    }

    #[test]
    fn trace_rejects_malformed_input() {
        for (text, needle) in [
            ("", "no entries"),
            ("# only comments\n", "no entries"),
            ("0\n", "expected"),
            ("0 1 2 3\n", "expected"),
            ("zero 1\n", "bad source"),
            ("0 one\n", "bad destination"),
            ("0 1 heavy\n", "bad weight"),
            ("0 1 0\n", "positive"),
            ("0 1 -2\n", "positive"),
            ("0 1 inf\n", "positive"),
        ] {
            let e = Trace::parse(text, "trace:bad").unwrap_err();
            assert!(e.contains(needle), "{text:?}: {e}");
        }
    }

    #[test]
    fn nearest_neighbor_stays_adjacent() {
        let mesh = Mesh::new_2d(5, 5);
        let mut rng = rng();
        for _ in 0..100 {
            let d = NearestNeighbor
                .dest(&mesh, NodeId::new(12), &mut rng)
                .unwrap();
            assert_eq!(mesh.distance(NodeId::new(12), d), 1);
        }
    }
}
