//! Runtime deadlock detection: wait-for graph extraction.
//!
//! The paper's algorithms make deadlock impossible by construction; this
//! module exists to *demonstrate* the opposite case (Figs. 1 and 4) and
//! to guard experiments against modelling mistakes. When the engine's
//! progress watchdog fires, the blocked packets and the channels they
//! wait for are assembled into a wait-for graph; a circular wait in that
//! graph is a concrete deadlock witness.

use crate::engine::Simulation;
use crate::packet::PacketId;
use turnroute_topology::ChannelId;

/// One packet's entry in a circular wait.
#[derive(Debug, Clone)]
pub struct WaitEdge {
    /// The blocked packet.
    pub packet: PacketId,
    /// The router its header is stuck at.
    pub at_node: turnroute_topology::NodeId,
    /// A channel it wants that is held by the next packet in the cycle.
    pub wants: ChannelId,
}

/// A deadlock witness: packets in a circular wait, each holding channels
/// the previous one needs — or, when a hand-built turn set strands
/// packets outright, the permanent blockage rooted at those stranded
/// packets.
#[derive(Debug, Clone)]
pub struct DeadlockReport {
    /// The cycle of waits; entry `i` waits on a channel held by entry
    /// `(i + 1) % len`. Empty when the stall is rooted at stranded
    /// packets rather than a circular wait.
    pub cycle: Vec<WaitEdge>,
    /// Packets with no grantable option left — the relation offers no
    /// direction (possible with hand-built turn sets), or every offered
    /// channel has failed: permanent roadblocks everything else is
    /// queued behind.
    pub stranded: Vec<PacketId>,
    /// The cycle at which the watchdog fired.
    pub detected_at: u64,
    /// In-flight packets at detection time (cycle participants and
    /// bystanders blocked behind them).
    pub blocked_packets: usize,
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.cycle.is_empty() {
            writeln!(
                f,
                "permanent blockage at cycle {}: {} packets blocked behind {} stranded packet(s) {:?}",
                self.detected_at,
                self.blocked_packets,
                self.stranded.len(),
                self.stranded.iter().map(|p| p.index()).collect::<Vec<_>>(),
            )?;
            return Ok(());
        }
        writeln!(
            f,
            "deadlock at cycle {}: {} packets blocked, circular wait of {}:",
            self.detected_at,
            self.blocked_packets,
            self.cycle.len()
        )?;
        for edge in &self.cycle {
            writeln!(
                f,
                "  packet {} at {} waits for {}",
                edge.packet.index(),
                edge.at_node,
                edge.wants
            )?;
        }
        Ok(())
    }
}

/// Builds the wait-for graph of the current simulation state and
/// extracts a circular wait.
///
/// Every blocked in-flight packet contributes edges to the owners of all
/// channels its routing relation currently permits (all of which must be
/// occupied, or it would not be blocked). Any cycle among those edges is
/// a true deadlock under wormhole routing, because a packet holds its
/// channels until it can advance.
pub(crate) fn detect_deadlock<O: crate::obs::SimObserver>(
    sim: &Simulation<'_, O>,
) -> DeadlockReport {
    let (topo, algo, packets, channel_owner, in_flight, faulty) = sim.deadlock_view();

    // wait[p] = (wanted channel, owner) pairs.
    let mut edges: Vec<Vec<(ChannelId, PacketId)>> = Vec::new();
    let mut ids: Vec<PacketId> = Vec::new();
    let mut stranded = Vec::new();
    let mut index_of = std::collections::HashMap::new();
    for &id in in_flight {
        let p = &packets[id.index() as usize];
        if p.head_node() == p.dst {
            continue; // consuming, not blocked
        }
        let permitted = algo.route(topo, p.head_node(), p.dst, p.arrived);
        let mut waits = Vec::new();
        let mut usable = 0;
        for dir in permitted {
            if let Some(ch) = topo.channel_from(p.head_node(), dir) {
                if faulty[ch.index()] {
                    continue; // a failed link can never be granted
                }
                usable += 1;
                if let Some(owner) = channel_owner[ch.index()] {
                    if owner != id {
                        waits.push((ch, owner));
                    }
                }
            }
        }
        if usable == 0 {
            // Nothing the relation offers can ever be granted: a
            // permanent roadblock (empty permitted set, or every
            // permitted channel failed).
            stranded.push(id);
        }
        index_of.insert(id, ids.len());
        ids.push(id);
        edges.push(waits);
    }

    // DFS for a cycle over packet wait edges.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = ids.len();
    let mut color = vec![Color::White; n];
    let mut parent: Vec<Option<(usize, ChannelId)>> = vec![None; n];
    let mut cycle_nodes: Option<(usize, usize, ChannelId)> = None;

    'outer: for start in 0..n {
        if color[start] != Color::White {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color[start] = Color::Gray;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succs: Vec<(ChannelId, PacketId)> = edges[node].clone();
            if *next < succs.len() {
                let (ch, owner) = succs[*next];
                *next += 1;
                let Some(&succ) = index_of.get(&owner) else {
                    continue;
                };
                match color[succ] {
                    Color::White => {
                        color[succ] = Color::Gray;
                        parent[succ] = Some((node, ch));
                        stack.push((succ, 0));
                    }
                    Color::Gray => {
                        cycle_nodes = Some((node, succ, ch));
                        break 'outer;
                    }
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
                stack.pop();
            }
        }
    }

    let mut cycle = Vec::new();
    if let Some((from, to, closing_channel)) = cycle_nodes {
        // Unwind: to -> ... -> from, plus the closing edge from -> to.
        let mut chain = vec![(from, closing_channel)];
        let mut cur = from;
        while cur != to {
            let (prev, ch) = parent[cur].expect("path back to cycle head");
            chain.push((prev, ch));
            cur = prev;
        }
        chain.reverse();
        for (node, ch) in chain {
            let id = ids[node];
            let p = &packets[id.index() as usize];
            cycle.push(WaitEdge {
                packet: id,
                at_node: p.head_node(),
                wants: ch,
            });
        }
    }

    DeadlockReport {
        cycle,
        stranded,
        detected_at: sim.cycle(),
        blocked_packets: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::patterns::Uniform;
    use turnroute_core::{TurnSet, TurnSetRouting};
    use turnroute_topology::Mesh;

    /// The situation of Fig. 1: packets with unrestricted turns
    /// (fully adaptive minimal routing, no extra channels) wind up in a
    /// circular wait. Under saturating random traffic with long worms
    /// this is quick and — with a fixed seed — deterministic.
    #[test]
    fn unrestricted_turns_deadlock_under_load() {
        let mesh = Mesh::new_2d(4, 4);
        let algo = TurnSetRouting::new(TurnSet::fully_adaptive(2));
        let config = SimConfig::paper()
            .injection_rate(0.9)
            .lengths(crate::config::LengthDistribution::Fixed(64))
            .warmup_cycles(0)
            .measure_cycles(0)
            .deadlock_threshold(1_000)
            .seed(3);
        let mut sim = Simulation::new(&mesh, &algo, &Uniform, config);

        let mut deadlock = None;
        for _ in 0..200_000 {
            if let Some(report) = sim.step() {
                deadlock = Some(report);
                break;
            }
        }
        let report = deadlock.expect("unrestricted turns must deadlock under load");
        assert!(report.cycle.len() >= 2, "cycle: {report}");
        assert!(report.blocked_packets >= report.cycle.len());
        // The witness is genuine: each entry waits on a channel held by
        // the next packet in the cycle.
        for (k, edge) in report.cycle.iter().enumerate() {
            let next = &report.cycle[(k + 1) % report.cycle.len()];
            assert_eq!(sim.channel_owner(edge.wants), Some(next.packet));
        }
        let text = report.to_string();
        assert!(text.contains("circular wait"));
    }

    #[test]
    fn display_circular_wait_lists_every_edge() {
        let report = DeadlockReport {
            cycle: vec![
                WaitEdge {
                    packet: PacketId(3),
                    at_node: turnroute_topology::NodeId::new(5),
                    wants: ChannelId::new(9),
                },
                WaitEdge {
                    packet: PacketId(8),
                    at_node: turnroute_topology::NodeId::new(6),
                    wants: ChannelId::new(2),
                },
            ],
            stranded: vec![],
            detected_at: 1_234,
            blocked_packets: 7,
        };
        let text = report.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header plus one line per edge: {text}");
        assert_eq!(
            lines[0],
            "deadlock at cycle 1234: 7 packets blocked, circular wait of 2:"
        );
        assert!(lines[1].starts_with("  packet 3 at "), "{text}");
        assert!(lines[1].contains(" waits for "), "{text}");
        assert!(lines[2].starts_with("  packet 8 at "), "{text}");
    }

    #[test]
    fn display_stranded_variant_names_the_roadblocks() {
        let report = DeadlockReport {
            cycle: vec![],
            stranded: vec![PacketId(1), PacketId(4)],
            detected_at: 50,
            blocked_packets: 9,
        };
        assert_eq!(
            report.to_string(),
            "permanent blockage at cycle 50: 9 packets blocked behind \
             2 stranded packet(s) [1, 4]\n"
        );
    }

    #[test]
    fn west_first_never_deadlocks_under_the_same_load() {
        let mesh = Mesh::new_2d(4, 4);
        let algo = turnroute_core::WestFirst::minimal();
        let config = SimConfig::paper()
            .injection_rate(0.9)
            .lengths(crate::config::LengthDistribution::Fixed(64))
            .warmup_cycles(0)
            .measure_cycles(0)
            .deadlock_threshold(1_000)
            .seed(3);
        let mut sim = Simulation::new(&mesh, &algo, &Uniform, config);
        for _ in 0..30_000 {
            assert!(sim.step().is_none(), "west-first must not deadlock");
        }
        // Saturated, but always making progress.
        assert!(sim.packets().iter().any(|p| p.delivered_at.is_some()));
    }
}
