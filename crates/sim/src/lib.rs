//! A flit-level wormhole-routed network simulator.
//!
//! Reproduces the experimental setup of Glass & Ni, *"The Turn Model for
//! Adaptive Routing"* (ISCA 1992), Section 6:
//!
//! * channels carry 20 flits/µs (one flit per 0.05 µs cycle);
//! * every router input channel buffers a single flit, so blocked worms
//!   stall in place;
//! * each router has one injection and one ejection channel to its local
//!   processor; blocked messages queue at the source and destinations
//!   consume immediately;
//! * messages arrive per node with exponential inter-arrival times and
//!   are one packet of 10 or 200 flits with equal probability;
//! * arbitration is local first-come-first-served, channel choice
//!   prefers the lowest dimension ("xy") — both swappable for the
//!   selection-policy ablation.
//!
//! The engine models each packet as a *worm*: the contiguous chain of
//! channels its flits occupy (one flit per channel, matching the paper's
//! single-flit buffers). This is behaviourally identical to per-flit
//! simulation but considerably faster.
//!
//! # Example
//!
//! ```
//! use turnroute_core::NegativeFirst;
//! use turnroute_sim::{patterns::Transpose, SimConfig, Simulation};
//! use turnroute_topology::Mesh;
//!
//! let mesh = Mesh::new_2d(8, 8);
//! let algo = NegativeFirst::minimal();
//! let config = SimConfig::paper()
//!     .injection_rate(0.05)
//!     .warmup_cycles(1_000)
//!     .measure_cycles(4_000);
//! let report = Simulation::new(&mesh, &algo, &Transpose, config).run();
//! assert!(report.sustainable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod deadlock;
mod engine;
pub mod exec;
pub mod hist;
pub mod lut;
mod metrics;
pub mod obs;
pub mod oplog;
mod packet;
pub mod patterns;
pub mod report;
mod sweep;
mod traffic;

pub use config::{
    cycles_to_usec, InputSelection, LengthDistribution, OutputSelection, SimConfig, TrafficModel,
    FLITS_PER_USEC,
};
pub use deadlock::{DeadlockReport, WaitEdge};
pub use engine::{RunOutcome, SimReport, Simulation};
pub use exec::{
    CellCache, CellOutput, CellTiming, ExecProgress, ExecStats, ExecTelemetry, Executor, SeriesJob,
};
pub use hist::LatencyHistogram;
pub use lut::{RouteTable, RouteTableMode, DEFAULT_ROUTE_TABLE_BUDGET};
pub use metrics::MetricsCollector;
pub use obs::{
    ChannelActivityObserver, FaultObserver, FlitTraceObserver, NoopObserver, SimObserver,
    TurnUsageObserver,
};
pub use oplog::{Level, Logger};
pub use packet::{Packet, PacketId, PacketState};
pub use sweep::{sweep, SweepPoint, SweepSeries};
pub use traffic::{MmppSource, PoissonSource, TrafficSource};
