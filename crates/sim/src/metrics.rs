//! Latency and throughput accounting.

use crate::config::cycles_to_usec;
use crate::hist::LatencyHistogram;

/// Statistics collected over a measurement window.
#[derive(Debug, Clone, Default)]
pub struct MetricsCollector {
    /// Cycle the window opened.
    pub window_start: u64,
    /// Cycle the window closed (exclusive).
    pub window_end: u64,
    /// Flits consumed at destinations during the window.
    pub flits_delivered: u64,
    /// Messages created during the window.
    pub messages_generated: u64,
    /// Flits of messages created during the window.
    pub flits_generated: u64,
    /// Latencies (creation to tail delivery), in cycles, of delivered
    /// messages that were created during the window.
    pub latencies: LatencyHistogram,
    /// Network latencies (injection to tail delivery) of the same
    /// messages.
    pub network_latencies: LatencyHistogram,
    /// Header hop counts of the same messages.
    pub hop_counts: Vec<u32>,
    /// Samples of the total number of queued messages, taken
    /// periodically during the window.
    pub queue_samples: Vec<usize>,
}

impl MetricsCollector {
    /// Mean of `latencies`, converted to microseconds.
    pub fn avg_latency_usec(&self) -> Option<f64> {
        self.latencies
            .mean()
            .map(|c| c / crate::config::FLITS_PER_USEC)
    }

    /// Mean of `network_latencies`, converted to microseconds.
    pub fn avg_network_latency_usec(&self) -> Option<f64> {
        self.network_latencies
            .mean()
            .map(|c| c / crate::config::FLITS_PER_USEC)
    }

    /// The `q`-quantile (0..=1) of message latency, in microseconds.
    ///
    /// Read straight from the latency histogram: O(buckets) per query
    /// with no clone or sort, accurate to one histogram bucket width
    /// (exact for latencies under [`crate::hist::LINEAR_LIMIT`] cycles).
    pub fn latency_quantile_usec(&self, q: f64) -> Option<f64> {
        self.latencies.quantile(q).map(cycles_to_usec)
    }

    /// Delivered throughput over the window, in flits per microsecond
    /// (network total, as the paper reports).
    pub fn throughput_flits_per_usec(&self) -> f64 {
        let cycles = self.window_end.saturating_sub(self.window_start);
        if cycles == 0 {
            return 0.0;
        }
        self.flits_delivered as f64 / cycles_to_usec(cycles)
    }

    /// Mean header hop count of measured messages.
    pub fn avg_hops(&self) -> Option<f64> {
        if self.hop_counts.is_empty() {
            None
        } else {
            Some(
                self.hop_counts.iter().map(|&h| h as f64).sum::<f64>()
                    / self.hop_counts.len() as f64,
            )
        }
    }

    /// `true` if source queues stayed small and bounded: the paper's
    /// sustainability criterion. Compares queue occupancy early in the
    /// window against late; growth beyond both a 1.5x factor and an
    /// absolute slack marks saturation.
    pub fn queues_bounded(&self) -> bool {
        let n = self.queue_samples.len();
        if n < 4 {
            return true;
        }
        let early: f64 = self.queue_samples[..n / 2]
            .iter()
            .map(|&q| q as f64)
            .sum::<f64>()
            / (n / 2) as f64;
        let late: f64 = self.queue_samples[n / 2..]
            .iter()
            .map(|&q| q as f64)
            .sum::<f64>()
            / (n - n / 2) as f64;
        late <= early * 1.5 + 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_has_no_latency() {
        let m = MetricsCollector::default();
        assert_eq!(m.avg_latency_usec(), None);
        assert_eq!(m.latency_quantile_usec(0.95), None);
        assert_eq!(m.throughput_flits_per_usec(), 0.0);
        assert!(m.queues_bounded());
    }

    #[test]
    fn latency_converts_to_usec() {
        let m = MetricsCollector {
            latencies: LatencyHistogram::from_values(&[20, 40, 60]),
            ..Default::default()
        };
        // Mean 40 cycles = 2 usec at 20 flits/usec.
        assert_eq!(m.avg_latency_usec(), Some(2.0));
        assert_eq!(m.latency_quantile_usec(0.0), Some(1.0));
        assert_eq!(m.latency_quantile_usec(1.0), Some(3.0));
    }

    #[test]
    fn throughput_counts_window_flits() {
        let m = MetricsCollector {
            window_start: 1000,
            window_end: 3000, // 100 usec
            flits_delivered: 5000,
            ..Default::default()
        };
        assert_eq!(m.throughput_flits_per_usec(), 50.0);
    }

    #[test]
    fn bounded_queues_detected() {
        let stable = MetricsCollector {
            queue_samples: vec![3, 4, 3, 5, 4, 3, 4, 4],
            ..Default::default()
        };
        assert!(stable.queues_bounded());
        let growing = MetricsCollector {
            queue_samples: vec![5, 20, 40, 60, 80, 100, 120, 140],
            ..Default::default()
        };
        assert!(!growing.queues_bounded());
    }

    #[test]
    fn avg_hops() {
        let m = MetricsCollector {
            hop_counts: vec![2, 4, 6],
            ..Default::default()
        };
        assert_eq!(m.avg_hops(), Some(4.0));
    }
}
