//! Messages, packets and in-flight worm state.

use turnroute_topology::{ChannelId, Direction, NodeId};

/// Identifies a packet across the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub(crate) u64);

impl PacketId {
    /// The dense index of this packet (creation order).
    pub fn index(self) -> u64 {
        self.0
    }
}

/// Where a packet is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketState {
    /// Waiting in its source processor's queue.
    Queued,
    /// Streaming flits into / through the network.
    InFlight,
    /// Every flit consumed at the destination.
    Delivered,
}

/// A message (one packet, as in the paper's Section 6) and, once
/// injected, its worm: the contiguous chain of channels its flits
/// occupy, one flit per channel.
///
/// With single-flit input buffers, a wormhole packet's flits advance in
/// lockstep: when the head moves one hop, every flit behind it shifts one
/// channel and a new flit (if any remain) enters at the tail. The worm
/// is therefore fully described by the occupied-channel chain plus the
/// counts of flits still at the source and already consumed.
#[derive(Debug, Clone)]
pub struct Packet {
    /// This packet's id.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Total length in flits.
    pub length: u32,
    /// Cycle the message was created (entered the source queue).
    pub created_at: u64,
    /// Cycle the header first entered the network, if it has.
    pub injected_at: Option<u64>,
    /// Cycle the tail flit was consumed, if delivered.
    pub delivered_at: Option<u64>,
    /// Channels the header has taken, in order. The occupied chain is
    /// `worm[worm_head..]` (tail first, head last), each holding exactly
    /// one flit; drained channels stay in the prefix so releasing the
    /// tail is a cursor bump, not a `Vec::remove(0)` shift.
    pub(crate) worm: Vec<ChannelId>,
    /// Index of the tail flit's channel within `worm`.
    pub(crate) worm_head: usize,
    /// `true` once the routing relation offered the in-flight header no
    /// direction (only possible with hand-built turn sets). Stranded
    /// packets stop requesting channels; the flag is never cleared
    /// because the relation is a pure function of the header position.
    pub(crate) is_stranded: bool,
    /// Flits not yet entered into the network.
    pub(crate) flits_at_source: u32,
    /// Flits consumed at the destination.
    pub(crate) flits_consumed: u32,
    /// The router the header currently occupies (the head channel's
    /// `dst`, or `src` before injection).
    pub(crate) head_node: NodeId,
    /// Direction of the head channel (`None` before injection).
    pub(crate) arrived: Option<Direction>,
    /// Cycle the header arrived at `head_node` (for FCFS arbitration).
    pub(crate) head_arrival: u64,
    /// Number of hops the header has taken.
    pub(crate) hops: u32,
}

impl Packet {
    /// Creates a queued packet.
    pub(crate) fn new(
        id: PacketId,
        src: NodeId,
        dst: NodeId,
        length: u32,
        created_at: u64,
    ) -> Self {
        assert!(length > 0, "packets have at least one flit");
        assert_ne!(src, dst, "self-addressed packets are consumed locally");
        Packet {
            id,
            src,
            dst,
            length,
            created_at,
            injected_at: None,
            delivered_at: None,
            worm: Vec::new(),
            worm_head: 0,
            is_stranded: false,
            flits_at_source: length,
            flits_consumed: 0,
            head_node: src,
            arrived: None,
            head_arrival: created_at,
            hops: 0,
        }
    }

    /// The packet's lifecycle state.
    pub fn state(&self) -> PacketState {
        if self.delivered_at.is_some() {
            PacketState::Delivered
        } else if self.injected_at.is_some() {
            PacketState::InFlight
        } else {
            PacketState::Queued
        }
    }

    /// The router the header currently occupies.
    pub fn head_node(&self) -> NodeId {
        self.head_node
    }

    /// Hops taken by the header so far.
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// The occupied channel chain, tail first.
    pub fn worm(&self) -> &[ChannelId] {
        &self.worm[self.worm_head..]
    }

    /// Flits currently inside the network (== occupied channels).
    pub fn flits_in_network(&self) -> u32 {
        (self.worm.len() - self.worm_head) as u32
    }

    /// `true` if the routing relation stranded this packet: its
    /// in-flight header was offered no direction, so it will never
    /// move again (only possible with hand-built turn sets).
    pub fn is_stranded(&self) -> bool {
        self.is_stranded
    }

    /// Flits not yet entered into the network.
    pub fn flits_at_source(&self) -> u32 {
        self.flits_at_source
    }

    /// Flits already consumed at the destination.
    pub fn flits_consumed(&self) -> u32 {
        self.flits_consumed
    }

    /// `true` once the tail flit has left the source, freeing the
    /// injection channel for the next queued message.
    pub fn injection_complete(&self) -> bool {
        self.flits_at_source == 0
    }

    /// Latency from creation to delivery, in cycles.
    ///
    /// `None` until delivered.
    pub fn latency_cycles(&self) -> Option<u64> {
        self.delivered_at.map(|d| d - self.created_at)
    }

    /// Latency from injection to delivery, in cycles (excludes source
    /// queueing). `None` until delivered.
    pub fn network_latency_cycles(&self) -> Option<u64> {
        match (self.injected_at, self.delivered_at) {
            (Some(i), Some(d)) => Some(d - i),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet() -> Packet {
        Packet::new(PacketId(1), NodeId::new(0), NodeId::new(5), 10, 100)
    }

    #[test]
    fn fresh_packet_is_queued() {
        let p = packet();
        assert_eq!(p.state(), PacketState::Queued);
        assert_eq!(p.flits_in_network(), 0);
        assert_eq!(p.head_node(), NodeId::new(0));
        assert!(!p.injection_complete());
        assert_eq!(p.latency_cycles(), None);
    }

    #[test]
    fn latency_accounts_from_creation() {
        let mut p = packet();
        p.injected_at = Some(120);
        p.delivered_at = Some(150);
        assert_eq!(p.state(), PacketState::Delivered);
        assert_eq!(p.latency_cycles(), Some(50));
        assert_eq!(p.network_latency_cycles(), Some(30));
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_rejected() {
        let _ = Packet::new(PacketId(0), NodeId::new(0), NodeId::new(1), 0, 0);
    }

    #[test]
    #[should_panic(expected = "self-addressed")]
    fn self_addressed_rejected() {
        let _ = Packet::new(PacketId(0), NodeId::new(3), NodeId::new(3), 5, 0);
    }
}
